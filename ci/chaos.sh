#!/bin/sh
# Chaos sweep: the fault-injection and guarded-execution matrices under a
# family of seeds, with a determinism cross-check.
#
# Both test suites fold the CHAOS_SEED environment variable into every
# fault-plan seed (see the `chaos()` helper in tests/fault_matrix.rs and
# tests/guard_matrix.rs), so each sweep iteration exercises a different
# fault pattern while staying fully reproducible. The invariants under test
# (quarantine exactness, mode parity, self-healing demotion, retry
# accounting) must hold for every family member.
#
# The second half re-runs one seed twice and diffs the outputs: two runs
# with the same CHAOS_SEED must produce byte-identical test results —
# quarantine reports, guard verdicts, and retry counts are all specified to
# be pure functions of (input, seed), independent of worker scheduling.
set -eu
cd "$(dirname "$0")/.."

SEEDS="${CHAOS_SEEDS:-0 1 7438951 18446744073709551615 305419896}"

# Build once so per-seed runs are test-only.
cargo test -q --no-run --test fault_matrix --test guard_matrix --test churn_matrix \
    --test recovery_matrix

for seed in $SEEDS; do
    echo "chaos: seed family $seed"
    CHAOS_SEED="$seed" cargo test -q --test fault_matrix --test guard_matrix
done

# Service-churn phase: a seeded schedule of batch submissions, per-tenant
# register/deregister ops and epochs against udf-serve, interleaved with
# Transient/LibError/Panic faults. The suite asserts the zero-silent-drop
# invariant (admitted == processed + shed + queued) after every epoch and
# replays each schedule in-process to check determinism; the sweep varies
# the fault pattern per seed family.
for seed in $SEEDS; do
    echo "chaos: service churn, seed family $seed"
    CHAOS_SEED="$seed" cargo test -q --test churn_matrix
done

# Crash-recovery phase: every simulated crash point (torn mid-append,
# written-but-unsynced append, mid-checkpoint, checkpoint-synced-but-
# unrenamed, renamed-but-journal-untruncated) × a spread of trigger
# offsets, per seed family. tests/recovery_matrix.rs drops each crashed
# service on the floor, recovers it from the write-ahead journal, finishes
# the schedule, and asserts the recovered run is bit-identical to an
# uncrashed reference — same epoch output digests, same final accounting,
# same per-tenant state, with exact frame replay/skip/salvage accounting.
# Any divergence fails the suite, which fails this phase.
for seed in $SEEDS; do
    echo "chaos: crash recovery, seed family $seed"
    CHAOS_SEED="$seed" cargo test -q --test recovery_matrix
done

echo "chaos: determinism cross-check (two runs, same seed)"
first=$(mktemp)
second=$(mktemp)
trap 'rm -f "$first" "$second"' EXIT
# --test-threads=1 keeps the suite ordering stable so the outputs are
# comparable; the sed strips wall-clock timings, the only legitimately
# nondeterministic part of the harness output. Nondeterminism inside any
# single test still shows up as a failure or a diff.
normalized_run() {
    CHAOS_SEED=7438951 cargo test -q --test fault_matrix --test guard_matrix --test churn_matrix \
        --test recovery_matrix \
        -- --test-threads=1 2>&1 | sed 's/finished in [0-9.]*s//'
}
normalized_run >"$first"
normalized_run >"$second"
if ! cmp -s "$first" "$second"; then
    echo "chaos: FAIL — two same-seed runs diverged:" >&2
    diff "$first" "$second" >&2 || true
    exit 1
fi
echo "chaos: ok"
