#!/bin/sh
# Lint gate for the whole workspace, in two tiers.
#
# The fail-soft layers — naiad-lite (engine, quarantine, fault injection),
# consolidate (budgeted consolidation), plan-cache (shared plan store),
# udf-serve (the long-lived service: a panic drops every tenant), and
# udf-obs (instrumentation must never panic the host) — must not unwrap in
# production code: faults are data here, not bugs. For them
# clippy::unwrap_used is denied on top of all default warnings; integration
# tests and unit-test modules opt back in via explicit allow attributes. The
# remaining crates (language, solver, datasets, benches) are held to
# -D warnings.
set -eu
cd "$(dirname "$0")/.."
cargo clippy -p naiad-lite -p consolidate -p plan-cache -p udf-serve -p udf-obs --all-targets --no-deps -- \
    -D warnings -D clippy::unwrap_used
cargo clippy -p udf-lang -p udf-smt -p udf-data -p udf-bench --all-targets --no-deps -- \
    -D warnings
