#!/bin/sh
# Lint gate for the fail-soft layers: naiad-lite (engine, quarantine, fault
# injection) and consolidate (budgeted consolidation). Production code in
# these crates must not unwrap — faults are data here, not bugs — so
# clippy::unwrap_used is denied on top of all default warnings. Integration
# tests and unit-test modules opt back in via explicit allow attributes.
set -eu
cd "$(dirname "$0")/.."
cargo clippy -p naiad-lite -p consolidate --all-targets --no-deps -- \
    -D warnings -D clippy::unwrap_used
