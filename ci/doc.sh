#!/bin/sh
# Documentation gate: every public item in the workspace must document
# cleanly. `-D warnings` turns rustdoc lints (broken intra-doc links, bare
# URLs, invalid code-block attributes) into hard failures, so the metric
# registry in udf-obs and the OBSERVABILITY.md cross-references stay
# accurate as the surface grows.
set -eu
cd "$(dirname "$0")/.."
# The vendored crates (rand/proptest/criterion subsets) are not held to the
# gate — list the workspace's own crates explicitly.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --document-private-items \
    -p udf-lang -p udf-smt -p udf-obs -p consolidate -p plan-cache \
    -p naiad-lite -p udf-serve -p udf-data -p udf-bench
