#!/bin/sh
# Docs-as-tests: every example under examples/ must build and run to
# completion. The examples double as the README's worked walkthroughs
# (quickstart, fail-soft execution, plan-cache warm start, guarded
# execution, pre-filtered consolidation, ...), and each one asserts its
# own invariants internally (output parity, zero solver work on warm
# hits, demotion self-healing, skip counts) — a panic or non-zero exit
# here means the documented behaviour drifted from the code.
set -eu
cd "$(dirname "$0")/.."

examples="quickstart weather_monitor flight_search scalability \
failsoft warm_start guarded_execution prefiltered service_recovery"

for ex in $examples; do
    [ -f "examples/$ex.rs" ] || { echo "missing examples/$ex.rs" >&2; exit 1; }
done

# Catch examples added to the tree but not to this list.
for f in examples/*.rs; do
    name="$(basename "$f" .rs)"
    case " $examples " in
        *" $name "*) ;;
        *) echo "examples/$name.rs is not run by ci/examples.sh" >&2; exit 1 ;;
    esac
done

for ex in $examples; do
    echo "== example: $ex"
    cargo run --release --example "$ex" >/dev/null
done

echo "examples OK: all $(echo $examples | wc -w) examples ran"
