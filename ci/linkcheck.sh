#!/bin/sh
# Markdown link check: every relative link or image target in the repo's
# tracked .md files must resolve to an existing file or directory, and
# in-page / cross-page #anchors must match a heading in the target file.
# External (http/https/mailto) links are not fetched — CI is offline.
# Dead links exit non-zero.
set -eu
cd "$(dirname "$0")/.."

python3 - <<'EOF'
import os, re, subprocess, sys

files = subprocess.run(
    ["git", "ls-files", "*.md"], capture_output=True, text=True, check=True
).stdout.split()

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

def slugify(heading):
    # GitHub-style anchor: lowercase, drop punctuation, spaces to dashes.
    h = heading.strip().lower()
    h = re.sub(r"[`*_]", "", h)
    h = re.sub(r"[^\w\- ]", "", h)
    return h.replace(" ", "-")

def anchors(path):
    out = set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = re.match(r"\s{0,3}(#{1,6})\s+(.*)", line)
            if m:
                out.add(slugify(m.group(2)))
    return out

anchor_cache = {}
def anchors_of(path):
    if path not in anchor_cache:
        anchor_cache[path] = anchors(path)
    return anchor_cache[path]

bad = []
for md in files:
    in_fence = False
    with open(md, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK.findall(line):
                if re.match(r"^(https?:|mailto:|ftp:)", target):
                    continue
                target, _, frag = target.partition("#")
                if not target:  # pure in-page anchor
                    if frag and slugify(frag) not in anchors_of(md):
                        bad.append(f"{md}:{lineno}: dead anchor #{frag}")
                    continue
                dest = os.path.normpath(
                    os.path.join(os.path.dirname(md), target))
                if not os.path.exists(dest):
                    bad.append(f"{md}:{lineno}: dead link {target}")
                    continue
                if frag and dest.endswith(".md") \
                        and slugify(frag) not in anchors_of(dest):
                    bad.append(f"{md}:{lineno}: dead anchor {target}#{frag}")

if bad:
    print("\n".join(bad), file=sys.stderr)
    sys.exit(1)
print(f"linkcheck OK: {len(files)} markdown files, 0 dead links")
EOF
