//! Public entry points: pairwise consolidation (`Π₁ ⊗ Π₂`) and the parallel
//! divide-and-conquer consolidation of `n` programs (paper §6.1).

use crate::rules::{Engine, Options, RuleStats};
use crate::symbolic::{SymState, SymbolicCtx};
use std::fmt;
use std::time::{Duration, Instant};
use udf_lang::analysis::{notify_ids, rename_locals};
use udf_lang::ast::Program;
use udf_lang::cost::{CostModel, FnCost};
use udf_lang::intern::Interner;

/// Errors reported by the consolidation entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsolidateError {
    /// The programs do not share a parameter list. Consolidation is defined
    /// for programs operating on the *same* input `ᾱ` (Definition 1).
    ParamMismatch,
    /// Two inputs broadcast the same program id; the combined notification
    /// environment would not be a disjoint union.
    DuplicateIds,
    /// No programs were supplied.
    Empty,
}

impl fmt::Display for ConsolidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsolidateError::ParamMismatch => {
                write!(f, "programs must share an identical parameter list")
            }
            ConsolidateError::DuplicateIds => {
                write!(f, "programs must broadcast disjoint notification ids")
            }
            ConsolidateError::Empty => write!(f, "no programs to consolidate"),
        }
    }
}

impl std::error::Error for ConsolidateError {}

/// Result of one consolidation run.
#[derive(Debug, Clone)]
pub struct Consolidated {
    /// The merged program.
    pub program: Program,
    /// Rule application counters (summed over all pairs for n-way runs).
    pub stats: RuleStats,
    /// Total entailment queries issued.
    pub entailment_queries: u64,
    /// Wall-clock time spent consolidating.
    pub elapsed: Duration,
}

fn check_compatible(p1: &Program, p2: &Program) -> Result<(), ConsolidateError> {
    if p1.params != p2.params {
        return Err(ConsolidateError::ParamMismatch);
    }
    let ids1 = notify_ids(&p1.body);
    let ids2 = notify_ids(&p2.body);
    if ids1.intersection(&ids2).next().is_some() {
        return Err(ConsolidateError::DuplicateIds);
    }
    Ok(())
}

/// Consolidates two programs whose local variables are already disjoint
/// (e.g. after [`rename_locals`], or outputs of previous consolidations of
/// disjoint inputs).
///
/// # Errors
///
/// Returns [`ConsolidateError`] when the programs do not share a parameter
/// list or broadcast overlapping ids.
pub fn consolidate_pair_prerenamed(
    p1: &Program,
    p2: &Program,
    interner: &Interner,
    cm: &CostModel,
    fns: &dyn FnCost,
    opts: &Options,
) -> Result<Consolidated, ConsolidateError> {
    check_compatible(p1, p2)?;
    let start = Instant::now();
    let mut cx = SymbolicCtx::new(interner, opts.mode);
    let st = SymState::initial(&mut cx, &p1.params);
    let mut engine = Engine::new(&mut cx, cm, fns, opts, p1.params.iter().copied());
    let body = engine.omega(st, p1.body.clone(), p2.body.clone(), 0);
    let stats = engine.stats;
    Ok(Consolidated {
        program: Program::new(p1.id, p1.params.clone(), body),
        stats,
        entailment_queries: cx.entailment_queries(),
        elapsed: start.elapsed(),
    })
}

/// Consolidates two programs, renaming their local variables apart first.
///
/// # Errors
///
/// Returns [`ConsolidateError`] when the programs do not share a parameter
/// list or broadcast overlapping ids.
pub fn consolidate_pair(
    p1: &Program,
    p2: &Program,
    interner: &mut Interner,
    cm: &CostModel,
    fns: &dyn FnCost,
    opts: &Options,
) -> Result<Consolidated, ConsolidateError> {
    check_compatible(p1, p2)?;
    let r1 = rename_locals(p1, interner, &format!("q{}$", p1.id.0));
    let r2 = rename_locals(p2, interner, &format!("q{}$", p2.id.0));
    consolidate_pair_prerenamed(&r1, &r2, interner, cm, fns, opts)
}

/// Consolidates `n` programs with the parallel divide-and-conquer strategy
/// of §6.1: locals are renamed apart once, then pairs are merged level by
/// level of a balanced reduction tree, with the pairs of each level
/// consolidated on separate threads.
///
/// # Errors
///
/// Returns [`ConsolidateError::Empty`] for an empty input and propagates
/// compatibility errors from pairing.
pub fn consolidate_many(
    programs: &[Program],
    interner: &mut Interner,
    cm: &CostModel,
    fns: &(dyn FnCost + Sync),
    opts: &Options,
    parallel: bool,
) -> Result<Consolidated, ConsolidateError> {
    if programs.is_empty() {
        return Err(ConsolidateError::Empty);
    }
    let start = Instant::now();
    // Rename all locals apart up front (needs &mut Interner); the reduction
    // itself only reads the interner and can run in parallel.
    let mut level: Vec<Program> = programs
        .iter()
        .enumerate()
        .map(|(k, p)| rename_locals(p, interner, &format!("u{k}$")))
        .collect();
    let mut stats = RuleStats::default();
    let mut queries = 0u64;
    let frozen: &Interner = interner;
    while level.len() > 1 {
        let mut next: Vec<Program> = Vec::with_capacity(level.len().div_ceil(2));
        let pairs: Vec<(&Program, &Program)> = level.chunks(2).filter(|c| c.len() == 2).map(|c| (&c[0], &c[1])).collect();
        let results: Vec<Result<Consolidated, ConsolidateError>> = if parallel && pairs.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = pairs
                    .iter()
                    .map(|&(a, b)| {
                        scope.spawn(move || {
                            consolidate_pair_prerenamed(a, b, frozen, cm, fns, opts)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("pair thread panicked")).collect()
            })
        } else {
            pairs
                .iter()
                .map(|&(a, b)| consolidate_pair_prerenamed(a, b, frozen, cm, fns, opts))
                .collect()
        };
        for r in results {
            let c = r?;
            add_stats(&mut stats, &c.stats);
            queries += c.entailment_queries;
            next.push(c.program);
        }
        if level.len() % 2 == 1 {
            next.push(level.pop().expect("odd element"));
        }
        level = next;
    }
    let program = level.pop().expect("non-empty reduction");
    Ok(Consolidated {
        program,
        stats,
        entailment_queries: queries,
        elapsed: start.elapsed(),
    })
}

fn add_stats(acc: &mut RuleStats, s: &RuleStats) {
    acc.if_eliminated += s.if_eliminated;
    acc.if3 += s.if3;
    acc.if4 += s.if4;
    acc.if5 += s.if5;
    acc.loop2 += s.loop2;
    acc.loop3 += s.loop3;
    acc.loop_seq += s.loop_seq;
    acc.depth_fallbacks += s.depth_fallbacks;
}
