//! Public entry points: pairwise consolidation (`Π₁ ⊗ Π₂`) and the parallel
//! divide-and-conquer consolidation of `n` programs (paper §6.1).

use crate::budget::{BudgetState, DegradationTier};
use crate::explain::ExplainReport;
use crate::rules::{Engine, Options, RuleStats};
use crate::symbolic::{SymState, SymbolicCtx};
use udf_obs::names;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};
use udf_lang::analysis::{notify_ids, rename_locals};
use udf_lang::ast::Program;
use udf_lang::cost::{CostModel, FnCost};
use udf_lang::intern::Interner;

/// Errors reported by the consolidation entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsolidateError {
    /// The programs do not share a parameter list. Consolidation is defined
    /// for programs operating on the *same* input `ᾱ` (Definition 1).
    ParamMismatch,
    /// Two inputs broadcast the same program id; the combined notification
    /// environment would not be a disjoint union.
    DuplicateIds,
    /// No programs were supplied.
    Empty,
}

impl fmt::Display for ConsolidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsolidateError::ParamMismatch => {
                write!(f, "programs must share an identical parameter list")
            }
            ConsolidateError::DuplicateIds => {
                write!(f, "programs must broadcast disjoint notification ids")
            }
            ConsolidateError::Empty => write!(f, "no programs to consolidate"),
        }
    }
}

impl std::error::Error for ConsolidateError {}

/// Aggregated statistics of one consolidation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConsolidationStats {
    /// Rule application counters (summed over all pairs for n-way runs).
    pub rules: RuleStats,
    /// Total entailment queries issued.
    pub entailment_queries: u64,
    /// Entailments answered from the shared [`crate::memo::EntailmentMemo`]
    /// (no solver work, no budget charge).
    pub memo_hits: u64,
    /// Cumulative SMT solver statistics (summed over all pair contexts).
    /// On a plan-cache hit these are zero: the stored plan is served without
    /// any solver work.
    pub solver: udf_smt::SolverStats,
    /// Pairs processed through the Ω engine.
    pub pairs_consolidated: u64,
    /// Pairs merged by plain concatenation because the budget had already
    /// run out when they were reached.
    pub pairs_degraded: u64,
    /// How much of the run completed before budgets ran out.
    pub tier: DegradationTier,
}

/// Result of one consolidation run.
#[derive(Debug, Clone)]
pub struct Consolidated {
    /// The merged program.
    pub program: Program,
    /// Run statistics, including the degradation tier.
    pub stats: ConsolidationStats,
    /// Wall-clock time spent consolidating.
    pub elapsed: Duration,
    /// Rule-derivation trees, present iff [`Options::explain`] was set
    /// (`consolidate_many` concatenates one [`crate::explain::PairExplain`]
    /// per engine pair).
    pub explain: Option<ExplainReport>,
    /// The verified cross-query pre-filter, present iff
    /// [`Options::prefilter`] was set *and* synthesis succeeded (synthesis
    /// is fail-open: `None` here simply means the plan runs unfiltered).
    /// Only [`consolidate_many`] synthesizes one; pairwise entry points
    /// leave it `None`.
    pub prefilter: Option<crate::prefilter::Prefilter>,
}

fn check_compatible(p1: &Program, p2: &Program) -> Result<(), ConsolidateError> {
    if p1.params != p2.params {
        return Err(ConsolidateError::ParamMismatch);
    }
    let ids1 = notify_ids(&p1.body);
    let ids2 = notify_ids(&p2.body);
    if ids1.intersection(&ids2).next().is_some() {
        return Err(ConsolidateError::DuplicateIds);
    }
    Ok(())
}

/// Whether any cost-reducing rewrite landed (concatenation-only outputs
/// have none; `loop_seq` executes loops sequentially, so it doesn't count).
fn any_rewrites(r: &RuleStats) -> bool {
    r.if_eliminated + r.if3 + r.if4 + r.if5 + r.loop2 + r.loop3 > 0
}

/// The trivially sound merge: run `p1` then `p2` — exactly `where_many`
/// semantics expressed as one program.
fn sequential_merge(p1: &Program, p2: &Program) -> Program {
    Program::new(
        p1.id,
        p1.params.clone(),
        p1.body.clone().then(p2.body.clone()),
    )
}

/// One pair through the Ω engine, charging the shared budget when present.
/// `pub(crate)` so [`crate::delta`] can re-merge spine pairs under one
/// shared per-operation budget.
pub(crate) fn consolidate_pair_budgeted(
    p1: &Program,
    p2: &Program,
    interner: &Interner,
    cm: &CostModel,
    fns: &dyn FnCost,
    opts: &Options,
    budget: Option<&Arc<BudgetState>>,
) -> Result<Consolidated, ConsolidateError> {
    check_compatible(p1, p2)?;
    let start = Instant::now();
    let _pair_span = opts.recorder.span(names::PAIR_NS);
    if budget.is_some_and(|b| b.exhausted()) {
        opts.recorder.add(names::PAIRS_DEGRADED, 1);
        return Ok(Consolidated {
            program: sequential_merge(p1, p2),
            stats: ConsolidationStats {
                pairs_degraded: 1,
                tier: DegradationTier::Sequential,
                ..ConsolidationStats::default()
            },
            elapsed: start.elapsed(),
            explain: None,
            prefilter: None,
        });
    }
    let mut cx = SymbolicCtx::new(interner, opts.mode);
    // One sink for all three layers: the engine's rule counters, the
    // context's entailment counters and the solver's search counters all
    // land in `opts.recorder`, which is what makes the emitted metrics
    // agree with the returned `ConsolidationStats` by construction.
    cx.set_recorder(opts.recorder.clone());
    let mut solver = opts.solver.clone();
    if opts.recorder.enabled() {
        solver.recorder = opts.recorder.clone();
    }
    cx.set_solver(solver);
    if let Some(b) = budget {
        cx.set_budget(Arc::clone(b));
    }
    if let Some(m) = &opts.memo {
        cx.set_memo(Arc::clone(m));
        // Tag every verdict this pair proves (or reuses) with the queries
        // it serves, so a runtime demotion of one of them can drop exactly
        // the verdicts its predicates touched.
        let mut scope: Vec<u32> = notify_ids(&p1.body)
            .union(&notify_ids(&p2.body))
            .map(|id| id.0)
            .collect();
        scope.sort_unstable();
        cx.set_memo_scope(scope);
    }
    let st = SymState::initial(&mut cx, &p1.params);
    let mut engine = Engine::new(&mut cx, cm, fns, opts, p1.params.iter().copied());
    let body = engine.omega(st, p1.body.clone(), p2.body.clone(), 0);
    let rules = engine.stats;
    let trace = engine.take_trace();
    let explain = opts
        .explain
        .then(|| ExplainReport::single(p1.id, p2.id, trace));
    let exhausted = cx.budget_exhausted();
    opts.recorder.add(names::PAIRS, 1);
    // Budget-consumption timeline: cumulative entailment queries charged by
    // this pair, observed once at pair end.
    opts.recorder
        .observe(names::BUDGET_QUERIES, cx.entailment_queries());
    let tier = if !exhausted {
        DegradationTier::Full
    } else if any_rewrites(&rules) {
        DegradationTier::Partial
    } else {
        DegradationTier::Sequential
    };
    Ok(Consolidated {
        program: Program::new(p1.id, p1.params.clone(), body),
        stats: ConsolidationStats {
            rules,
            entailment_queries: cx.entailment_queries(),
            memo_hits: cx.memo_hits(),
            solver: cx.solver_stats(),
            pairs_consolidated: 1,
            pairs_degraded: 0,
            tier,
        },
        elapsed: start.elapsed(),
        explain,
        prefilter: None,
    })
}

/// Consolidates two programs whose local variables are already disjoint
/// (e.g. after [`rename_locals`], or outputs of previous consolidations of
/// disjoint inputs).
///
/// # Errors
///
/// Returns [`ConsolidateError`] when the programs do not share a parameter
/// list or broadcast overlapping ids.
pub fn consolidate_pair_prerenamed(
    p1: &Program,
    p2: &Program,
    interner: &Interner,
    cm: &CostModel,
    fns: &dyn FnCost,
    opts: &Options,
) -> Result<Consolidated, ConsolidateError> {
    let state = (!opts.budget.is_unlimited()).then(|| Arc::new(BudgetState::new(&opts.budget)));
    consolidate_pair_budgeted(p1, p2, interner, cm, fns, opts, state.as_ref())
}

/// Consolidates two programs, renaming their local variables apart first.
///
/// # Errors
///
/// Returns [`ConsolidateError`] when the programs do not share a parameter
/// list or broadcast overlapping ids.
pub fn consolidate_pair(
    p1: &Program,
    p2: &Program,
    interner: &mut Interner,
    cm: &CostModel,
    fns: &dyn FnCost,
    opts: &Options,
) -> Result<Consolidated, ConsolidateError> {
    check_compatible(p1, p2)?;
    let r1 = rename_locals(p1, interner, &format!("q{}$", p1.id.0));
    let r2 = rename_locals(p2, interner, &format!("q{}$", p2.id.0));
    consolidate_pair_prerenamed(&r1, &r2, interner, cm, fns, opts)
}

/// Consolidates `n` programs with the parallel divide-and-conquer strategy
/// of §6.1: locals are renamed apart once, then pairs are merged level by
/// level of a balanced reduction tree, with the pairs of each level
/// consolidated on separate threads.
///
/// The run's [`crate::budget::ConsolidationBudget`] (`opts.budget`) is
/// shared across all pair threads. On exhaustion the output degrades but
/// the call still succeeds: pairs in flight finish by emitting remaining
/// statements verbatim, later pairs are merged by plain concatenation, and
/// the result's [`ConsolidationStats::tier`] records how far degradation
/// went (see the lattice in [`crate::budget`]).
///
/// # Errors
///
/// Returns [`ConsolidateError::Empty`] for an empty input and propagates
/// compatibility errors from pairing. Budget exhaustion is *not* an error.
pub fn consolidate_many(
    programs: &[Program],
    interner: &mut Interner,
    cm: &CostModel,
    fns: &(dyn FnCost + Sync),
    opts: &Options,
    parallel: bool,
) -> Result<Consolidated, ConsolidateError> {
    if programs.is_empty() {
        return Err(ConsolidateError::Empty);
    }
    let start = Instant::now();
    let state = Arc::new(BudgetState::new(&opts.budget));
    // Every pair thread shares one entailment memo: structurally equal
    // obligations from sibling pairs are proved once. Callers that pass
    // their own `opts.memo` keep verdicts across runs.
    let shared_memo;
    let opts = if opts.memo.is_some() {
        opts
    } else {
        shared_memo = Options {
            memo: Some(Arc::new(crate::memo::EntailmentMemo::new())),
            ..opts.clone()
        };
        &shared_memo
    };
    // Rename all locals apart up front (needs &mut Interner); the reduction
    // itself only reads the interner and can run in parallel.
    let mut level: Vec<Program> = programs
        .iter()
        .enumerate()
        .map(|(k, p)| rename_locals(p, interner, &format!("u{k}$")))
        .collect();
    let mut stats = ConsolidationStats::default();
    let mut explain_pairs = Vec::new();
    let frozen: &Interner = interner;
    while level.len() > 1 {
        let mut next: Vec<Program> = Vec::with_capacity(level.len().div_ceil(2));
        let pairs: Vec<(&Program, &Program)> = level.chunks(2).filter(|c| c.len() == 2).map(|c| (&c[0], &c[1])).collect();
        let results: Vec<Result<Consolidated, ConsolidateError>> = if parallel && pairs.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = pairs
                    .iter()
                    .map(|&(a, b)| {
                        let state = Arc::clone(&state);
                        scope.spawn(move || {
                            consolidate_pair_budgeted(a, b, frozen, cm, fns, opts, Some(&state))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        // A panicking pair thread degrades its pair, not
                        // the whole run: concatenation is always available.
                        h.join().unwrap_or(Err(ConsolidateError::Empty))
                    })
                    .collect()
            })
        } else {
            pairs
                .iter()
                .map(|&(a, b)| consolidate_pair_budgeted(a, b, frozen, cm, fns, opts, Some(&state)))
                .collect()
        };
        for (k, r) in results.into_iter().enumerate() {
            let c = match r {
                Ok(c) => c,
                Err(e @ (ConsolidateError::ParamMismatch | ConsolidateError::DuplicateIds)) => {
                    return Err(e);
                }
                // Only the poisoned-thread placeholder reaches here (the
                // `Empty` check ran before the loop): degrade this pair.
                Err(ConsolidateError::Empty) => {
                    let (a, b) = pairs[k];
                    stats.pairs_degraded += 1;
                    opts.recorder.add(names::PAIRS_DEGRADED, 1);
                    next.push(sequential_merge(a, b));
                    continue;
                }
            };
            add_stats(&mut stats, &c.stats);
            if let Some(mut rep) = c.explain {
                explain_pairs.append(&mut rep.pairs);
            }
            next.push(c.program);
        }
        if level.len() % 2 == 1 {
            next.push(level.pop().expect("odd element"));
        }
        level = next;
    }
    let program = level.pop().expect("non-empty reduction");
    stats.tier = if !state.exhausted() && stats.pairs_degraded == 0 {
        DegradationTier::Full
    } else if any_rewrites(&stats.rules) {
        DegradationTier::Partial
    } else {
        DegradationTier::Sequential
    };
    // Predicate pushdown rides the same run: extract a candidate from the
    // *original* per-query programs and prove it against the merged output.
    // Fail-open — every rejection leaves the plan exactly as without the
    // knob (see `crate::prefilter`).
    let prefilter = if opts.prefilter {
        crate::prefilter::synthesize(programs, &program, interner, cm, fns, opts).ok()
    } else {
        None
    };
    Ok(Consolidated {
        program,
        stats,
        elapsed: start.elapsed(),
        explain: opts.explain.then_some(ExplainReport {
            pairs: explain_pairs,
        }),
        prefilter,
    })
}

pub(crate) fn add_stats(acc: &mut ConsolidationStats, s: &ConsolidationStats) {
    let (a, r) = (&mut acc.rules, &s.rules);
    a.if_eliminated += r.if_eliminated;
    a.if3 += r.if3;
    a.if4 += r.if4;
    a.if5 += r.if5;
    a.loop2 += r.loop2;
    a.loop3 += r.loop3;
    a.loop_seq += r.loop_seq;
    a.depth_fallbacks += r.depth_fallbacks;
    a.budget_fallbacks += r.budget_fallbacks;
    acc.entailment_queries += s.entailment_queries;
    acc.memo_hits += s.memo_hits;
    let (sv, t) = (&mut acc.solver, &s.solver);
    sv.checks += t.checks;
    sv.theory_checks += t.theory_checks;
    sv.theory_conflicts += t.theory_conflicts;
    sv.minimized_literals += t.minimized_literals;
    sv.sat_decisions += t.sat_decisions;
    sv.sat_conflicts += t.sat_conflicts;
    sv.sat_propagations += t.sat_propagations;
    sv.simplex_pivots += t.simplex_pivots;
    sv.theory_rounds += t.theory_rounds;
    acc.pairs_consolidated += s.pairs_consolidated;
    acc.pairs_degraded += s.pairs_degraded;
}
