//! Resource budgets for consolidation and the graceful-degradation lattice.
//!
//! Consolidation quality is a *soundness-free* variable: every entailment
//! the engine fails to prove only loses a rewrite, never correctness
//! (`Unknown ⇒ not proved` is the same fallback the solver already takes on
//! its own limits). A [`ConsolidationBudget`] exploits that to bound the
//! optimizer's latency: when the deadline or the solver-query ceiling is
//! hit, every subsequent entailment answers "not proved", the Ω engine
//! emits remaining statements verbatim, and outstanding pairs of the n-way
//! reduction are merged by plain concatenation. The output degrades along
//! the lattice
//!
//! ```text
//! Full  ⊒  Partial (consolidated prefix, sequential rest)  ⊒  Sequential
//! ```
//!
//! recorded as the run's [`DegradationTier`] — but it always compiles, is
//! always sound, and never costs more than `where_many` (Theorem 1's
//! cost-non-increase argument holds pointwise for every applied rewrite,
//! and concatenation is exactly the sequential cost).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Resource ceilings for one consolidation run. `None` fields are unlimited;
/// the default budget is fully unlimited (original behaviour).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConsolidationBudget {
    /// Wall-clock ceiling for the whole run, measured from its start.
    pub deadline: Option<Duration>,
    /// Ceiling on SMT entailment queries across the whole run (shared by
    /// all pair threads of an n-way consolidation).
    pub max_solver_queries: Option<u64>,
    /// Ceiling on Ω recursion depth (tightens `Options::max_depth` when
    /// smaller).
    pub max_rule_depth: Option<usize>,
}

impl ConsolidationBudget {
    /// An unlimited budget.
    pub const UNLIMITED: ConsolidationBudget = ConsolidationBudget {
        deadline: None,
        max_solver_queries: None,
        max_rule_depth: None,
    };

    /// Sets the wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, d: Duration) -> ConsolidationBudget {
        self.deadline = Some(d);
        self
    }

    /// Sets the solver-query ceiling.
    #[must_use]
    pub fn with_max_solver_queries(mut self, n: u64) -> ConsolidationBudget {
        self.max_solver_queries = Some(n);
        self
    }

    /// Sets the rule-depth ceiling.
    #[must_use]
    pub fn with_max_rule_depth(mut self, d: usize) -> ConsolidationBudget {
        self.max_rule_depth = Some(d);
        self
    }

    /// Whether every ceiling is absent.
    pub fn is_unlimited(&self) -> bool {
        *self == ConsolidationBudget::UNLIMITED
    }
}

/// Shared mutable budget accounting for one run. Cheap to consult from
/// several pair-consolidation threads; exhaustion is sticky.
#[derive(Debug)]
pub struct BudgetState {
    deadline_at: Option<Instant>,
    max_queries: u64,
    queries: AtomicU64,
    exhausted: AtomicBool,
}

impl BudgetState {
    /// Starts accounting for `budget` now (the deadline clock begins here).
    pub fn new(budget: &ConsolidationBudget) -> BudgetState {
        BudgetState {
            deadline_at: budget.deadline.map(|d| Instant::now() + d),
            max_queries: budget.max_solver_queries.unwrap_or(u64::MAX),
            queries: AtomicU64::new(0),
            exhausted: AtomicBool::new(false),
        }
    }

    /// Charges one solver query. Returns `false` — without charging — once
    /// the budget is exhausted; the caller must then treat the query as
    /// unproved.
    pub fn charge_query(&self) -> bool {
        if self.exhausted() {
            return false;
        }
        let used = self.queries.fetch_add(1, Ordering::Relaxed) + 1;
        if used > self.max_queries {
            self.exhausted.store(true, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Whether the budget has run out (also trips on a passed deadline).
    pub fn exhausted(&self) -> bool {
        if self.exhausted.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(d) = self.deadline_at {
            if Instant::now() >= d {
                self.exhausted.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Queries charged so far.
    pub fn queries_charged(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }
}

/// How much of a consolidation completed before its budget ran out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationTier {
    /// The budget never ran out; the full Ω engine processed everything.
    #[default]
    Full,
    /// The budget ran out mid-run: a prefix is consolidated, the rest is
    /// emitted sequentially.
    Partial,
    /// The budget ran out before any rewrite landed: the output is the
    /// plain sequential concatenation, semantically `where_many` in one
    /// program.
    Sequential,
}

impl DegradationTier {
    /// Short stable label for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            DegradationTier::Full => "full",
            DegradationTier::Partial => "partial",
            DegradationTier::Sequential => "sequential",
        }
    }
}

impl std::fmt::Display for DegradationTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let st = BudgetState::new(&ConsolidationBudget::UNLIMITED);
        for _ in 0..10_000 {
            assert!(st.charge_query());
        }
        assert!(!st.exhausted());
    }

    #[test]
    fn query_ceiling_is_sticky() {
        let b = ConsolidationBudget::default().with_max_solver_queries(3);
        let st = BudgetState::new(&b);
        assert!(st.charge_query());
        assert!(st.charge_query());
        assert!(st.charge_query());
        assert!(!st.charge_query());
        assert!(st.exhausted());
        assert!(!st.charge_query());
    }

    #[test]
    fn zero_deadline_exhausts_immediately() {
        let b = ConsolidationBudget::default().with_deadline(Duration::ZERO);
        let st = BudgetState::new(&b);
        assert!(st.exhausted());
        assert!(!st.charge_query());
    }
}
