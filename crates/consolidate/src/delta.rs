//! Delta-consolidation: incremental maintenance of a merged plan under
//! query churn.
//!
//! `consolidate_many` is a batch operation: adding or removing one query
//! means re-running the whole Ω reduction over all `n` programs. A
//! long-lived service with live register/deregister traffic cannot afford
//! that — the churn rate, not the query count, would dominate solver time.
//!
//! [`DeltaPlan`] keeps the divide-and-conquer reduction *tree* alive
//! between operations. Leaves are the registered programs (locals renamed
//! apart once, at registration); every internal node caches the merged
//! program of its subtree. Adding or removing one query then re-consolidates
//! only the **spine** — the `O(log n)` internal nodes between the touched
//! leaf and the root — while every other subtree's merged program is reused
//! verbatim. With a shared [`crate::memo::EntailmentMemo`] the spine pairs
//! themselves hit memoized verdicts for the unchanged obligations, so a
//! delta operation issues strictly fewer SMT checks than a from-scratch
//! `consolidate_many` of the same final set (asserted by the
//! `delta_equivalence` integration tests).
//!
//! # Tree shape
//!
//! The tree is a complete binary tree over a fixed power-of-two capacity of
//! leaf slots, stored as an implicit array (`nodes[1]` is the root, node `k`
//! has children `2k` and `2k+1`, leaf slot `i` lives at `cap + i`). Empty
//! slots — never-used capacity or holes left by removals — are `None` and
//! merge as passthrough: a node with one live child clones that child's
//! program, with zero solver work. When the capacity is exhausted it
//! doubles; the old tree becomes the left subtree of the new root (a pure
//! index relabeling — no re-consolidation), and the add proceeds into the
//! fresh right half.
//!
//! Merge order differs from `consolidate_many`'s (holes shift pairings),
//! but Theorem 1 makes every order observationally equivalent: the plans
//! notify identically on every record, which is what the engine and the
//! service care about.
//!
//! # Degradation
//!
//! Each node carries the [`DegradationTier`] of its own merge; the plan's
//! tier is the worst tier on the root's derivation, recomputed bottom-up.
//! A budget-starved delta op degrades only the spine it touched, and a
//! later [`DeltaPlan::refresh`] under a healthier budget re-merges exactly
//! the degraded nodes (the plan-cache tier-upgrade rule, applied per node).

use crate::api::{add_stats, consolidate_pair_budgeted, ConsolidateError, Consolidated,
                 ConsolidationStats};
use crate::budget::{BudgetState, DegradationTier};
use crate::memo::EntailmentMemo;
use crate::rules::Options;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use udf_lang::analysis::{notify_ids, rename_locals};
use udf_lang::ast::{ProgId, Program};
use udf_lang::cost::{CostModel, FnCost};
use udf_lang::intern::Interner;

/// Errors reported by delta operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// A program with this notify id is already registered.
    DuplicateId(ProgId),
    /// No registered program has this id.
    UnknownId(ProgId),
    /// The program notifies an id other than (or besides) its own — the
    /// tree relies on one leaf ↔ one notify id.
    IdMismatch(ProgId),
    /// The underlying pair consolidation failed.
    Consolidate(ConsolidateError),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::DuplicateId(id) => write!(f, "query id {} already registered", id.0),
            DeltaError::UnknownId(id) => write!(f, "no registered query with id {}", id.0),
            DeltaError::IdMismatch(id) => write!(
                f,
                "program must notify exactly its own id {} (and nothing else)",
                id.0
            ),
            DeltaError::Consolidate(e) => write!(f, "consolidation failed: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<ConsolidateError> for DeltaError {
    fn from(e: ConsolidateError) -> DeltaError {
        DeltaError::Consolidate(e)
    }
}

/// What one delta operation cost and produced.
#[derive(Debug, Clone, Default)]
pub struct DeltaReport {
    /// Consolidation statistics summed over the re-merged spine pairs
    /// (solver checks here are the op's *entire* solver bill).
    pub stats: ConsolidationStats,
    /// Spine nodes whose two children were live and were re-consolidated.
    pub pairs_recomputed: u64,
    /// Spine nodes with a single live child (cloned through, no solver
    /// work).
    pub passthroughs: u64,
    /// Whether the leaf capacity doubled during this op (index relabeling
    /// only — no extra consolidation).
    pub grew: bool,
    /// Tier of the resulting plan (worst node on the root derivation).
    pub tier: DegradationTier,
}

/// One registered query.
#[derive(Debug, Clone)]
struct Leaf {
    id: ProgId,
    /// The program as registered (locals *not* renamed) — what
    /// [`DeltaPlan::programs`] returns for per-query compilation.
    original: Program,
}

/// One cached internal merge.
#[derive(Debug, Clone)]
struct Node {
    program: Program,
    /// Worst tier in this subtree's derivation.
    tier: DegradationTier,
}

/// A live consolidated plan supporting incremental add/remove of queries.
///
/// See the module docs for the data structure. All operations take the
/// interner, cost model, function-cost oracle and [`Options`] explicitly so
/// one plan can serve callers that thread their own; pass the *same*
/// options across operations (the plan does not re-fingerprint them).
#[derive(Debug)]
pub struct DeltaPlan {
    /// Leaf slots (index `i` ↔ node `cap + i`); `None` is a hole.
    leaves: Vec<Option<Leaf>>,
    /// Implicit complete binary tree; `nodes[0]` unused, `nodes[1]` root.
    /// Leaf node `cap + i` holds the *renamed* registered program.
    nodes: Vec<Option<Node>>,
    /// Leaf capacity (power of two).
    cap: usize,
    /// Slot index by query id.
    by_id: HashMap<ProgId, usize>,
    /// Reusable holes, served LIFO.
    free: Vec<usize>,
    /// Monotone counter making every registration's rename prefix unique —
    /// re-registering the same program gets fresh locals, keeping all live
    /// leaves disjoint.
    renames: u64,
    /// Shared entailment memo: spine re-merges reuse verdicts across
    /// operations (and with any other consolidation sharing the table).
    memo: Arc<EntailmentMemo>,
}

impl Default for DeltaPlan {
    fn default() -> DeltaPlan {
        DeltaPlan::new()
    }
}

impl DeltaPlan {
    /// Creates an empty plan with its own [`EntailmentMemo`].
    pub fn new() -> DeltaPlan {
        DeltaPlan::with_memo(Arc::new(EntailmentMemo::new()))
    }

    /// Creates an empty plan sharing an existing memo table (e.g. the one a
    /// plan cache or another plan already uses).
    pub fn with_memo(memo: Arc<EntailmentMemo>) -> DeltaPlan {
        DeltaPlan {
            leaves: vec![None],
            nodes: vec![None, None],
            cap: 1,
            by_id: HashMap::new(),
            free: vec![0],
            renames: 0,
            memo,
        }
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// The shared entailment memo (for scoped invalidation on demotion).
    pub fn memo(&self) -> &Arc<EntailmentMemo> {
        &self.memo
    }

    /// The merged program over all registered queries (`None` when empty).
    pub fn program(&self) -> Option<&Program> {
        self.nodes[1].as_ref().map(|n| &n.program)
    }

    /// Tier of the current plan (worst node on the root derivation;
    /// [`DegradationTier::Full`] when empty).
    pub fn tier(&self) -> DegradationTier {
        self.nodes[1].as_ref().map_or(DegradationTier::Full, |n| n.tier)
    }

    /// Registered query ids in slot order — the order [`DeltaPlan::programs`]
    /// returns and the order a consolidated engine run's notify buffer uses.
    pub fn ids(&self) -> Vec<ProgId> {
        self.leaves
            .iter()
            .filter_map(|l| l.as_ref().map(|l| l.id))
            .collect()
    }

    /// Registered programs (as supplied, un-renamed) in slot order.
    pub fn programs(&self) -> Vec<Program> {
        self.leaves
            .iter()
            .filter_map(|l| l.as_ref().map(|l| l.original.clone()))
            .collect()
    }

    /// Whether `id` is registered.
    pub fn contains(&self, id: ProgId) -> bool {
        self.by_id.contains_key(&id)
    }

    /// Registers one query and re-consolidates the spine from its leaf to
    /// the root.
    ///
    /// # Errors
    ///
    /// [`DeltaError::DuplicateId`] when the id is live,
    /// [`DeltaError::IdMismatch`] when the program notifies anything but its
    /// own id, and [`DeltaError::Consolidate`] when a spine pair fails
    /// (parameter mismatch with the existing set).
    pub fn add(
        &mut self,
        program: &Program,
        interner: &mut Interner,
        cm: &CostModel,
        fns: &dyn FnCost,
        opts: &Options,
    ) -> Result<DeltaReport, DeltaError> {
        if self.by_id.contains_key(&program.id) {
            return Err(DeltaError::DuplicateId(program.id));
        }
        let ids = notify_ids(&program.body);
        if ids.len() != 1 || !ids.contains(&program.id) {
            return Err(DeltaError::IdMismatch(program.id));
        }
        let mut report = DeltaReport::default();
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.grow();
                report.grew = true;
                self.free.pop().expect("grow frees the new half")
            }
        };
        let renamed = rename_locals(program, interner, &format!("d{}$", self.renames));
        self.renames += 1;
        self.leaves[slot] = Some(Leaf {
            id: program.id,
            original: program.clone(),
        });
        self.by_id.insert(program.id, slot);
        self.nodes[self.cap + slot] = Some(Node {
            program: renamed,
            tier: DegradationTier::Full,
        });
        if let Err(e) = self.reconsolidate_path(self.cap + slot, interner, cm, fns, opts, &mut report)
        {
            // Roll the registration back so a failed add leaves the plan
            // exactly as it was (the spine above the leaf was not touched:
            // reconsolidation writes bottom-up and the first pair failed).
            self.leaves[slot] = None;
            self.by_id.remove(&program.id);
            self.nodes[self.cap + slot] = None;
            self.free.push(slot);
            return Err(e.into());
        }
        report.tier = self.tier();
        Ok(report)
    }

    /// Deregisters one query and re-consolidates the spine from its former
    /// leaf to the root.
    ///
    /// # Errors
    ///
    /// [`DeltaError::UnknownId`] when the id is not live.
    pub fn remove(
        &mut self,
        id: ProgId,
        interner: &Interner,
        cm: &CostModel,
        fns: &dyn FnCost,
        opts: &Options,
    ) -> Result<DeltaReport, DeltaError> {
        let slot = *self.by_id.get(&id).ok_or(DeltaError::UnknownId(id))?;
        let mut report = DeltaReport::default();
        self.by_id.remove(&id);
        self.leaves[slot] = None;
        self.nodes[self.cap + slot] = None;
        self.free.push(slot);
        // Removal cannot fail compatibility (survivors were compatible);
        // surface internal errors anyway rather than panicking.
        self.reconsolidate_path(self.cap + slot, interner, cm, fns, opts, &mut report)?;
        report.tier = self.tier();
        Ok(report)
    }

    /// Re-merges every node whose subtree is degraded below
    /// [`DegradationTier::Full`] — the tier-upgrade rule applied to the
    /// live tree. Call under a healthier budget after pressure subsides.
    ///
    /// # Errors
    ///
    /// Propagates pair-consolidation failures ([`DeltaError::Consolidate`]).
    pub fn refresh(
        &mut self,
        interner: &Interner,
        cm: &CostModel,
        fns: &dyn FnCost,
        opts: &Options,
    ) -> Result<DeltaReport, DeltaError> {
        let mut report = DeltaReport::default();
        let budget =
            (!opts.budget.is_unlimited()).then(|| Arc::new(BudgetState::new(&opts.budget)));
        let opts = self.opts_with_memo(opts);
        // Bottom-up: internal nodes in decreasing index order sit above
        // their children, so each recompute sees already-refreshed inputs.
        for k in (1..self.cap).rev() {
            if self.nodes[k].as_ref().is_some_and(|n| n.tier == DegradationTier::Full) {
                continue;
            }
            if self.nodes[k].is_some() {
                self.recompute_node(k, interner, cm, fns, &opts, budget.as_ref(), &mut report)?;
            }
        }
        report.tier = self.tier();
        Ok(report)
    }

    /// Doubles the leaf capacity. The old tree's nodes keep their merged
    /// programs under new indices (old node `k` → `k + 2^depth(k)`), so no
    /// consolidation happens; the new right half is empty.
    fn grow(&mut self) {
        let old_cap = self.cap;
        let new_cap = old_cap * 2;
        let mut nodes: Vec<Option<Node>> = vec![None; new_cap * 2];
        for k in 1..old_cap * 2 {
            if let Some(n) = self.nodes[k].take() {
                let msb = usize::BITS - 1 - k.leading_zeros();
                nodes[k + (1usize << msb)] = Some(n);
            }
        }
        // The new root's only live child is the old tree: passthrough.
        nodes[1] = nodes[2].clone();
        self.nodes = nodes;
        self.cap = new_cap;
        self.leaves.resize(new_cap, None);
        for slot in (old_cap..new_cap).rev() {
            self.free.push(slot);
        }
    }

    /// Installs the plan's memo into `opts` unless the caller brought one.
    fn opts_with_memo(&self, opts: &Options) -> Options {
        if opts.memo.is_some() {
            opts.clone()
        } else {
            Options {
                memo: Some(Arc::clone(&self.memo)),
                ..opts.clone()
            }
        }
    }

    /// Re-merges every internal node from `node`'s parent up to the root.
    fn reconsolidate_path(
        &mut self,
        node: usize,
        interner: &Interner,
        cm: &CostModel,
        fns: &dyn FnCost,
        opts: &Options,
        report: &mut DeltaReport,
    ) -> Result<(), ConsolidateError> {
        let budget =
            (!opts.budget.is_unlimited()).then(|| Arc::new(BudgetState::new(&opts.budget)));
        let opts = self.opts_with_memo(opts);
        let mut k = node / 2;
        while k >= 1 {
            self.recompute_node(k, interner, cm, fns, &opts, budget.as_ref(), report)?;
            if k == 1 {
                break;
            }
            k /= 2;
        }
        Ok(())
    }

    /// Recomputes one internal node from its children.
    #[allow(clippy::too_many_arguments)]
    fn recompute_node(
        &mut self,
        k: usize,
        interner: &Interner,
        cm: &CostModel,
        fns: &dyn FnCost,
        opts: &Options,
        budget: Option<&Arc<BudgetState>>,
        report: &mut DeltaReport,
    ) -> Result<(), ConsolidateError> {
        let merged = match (&self.nodes[2 * k], &self.nodes[2 * k + 1]) {
            (Some(a), Some(b)) => {
                let Consolidated { program, stats, .. } =
                    consolidate_pair_budgeted(&a.program, &b.program, interner, cm, fns, opts, budget)?;
                add_stats(&mut report.stats, &stats);
                report.pairs_recomputed += 1;
                Some(Node {
                    program,
                    tier: stats.tier.max(a.tier).max(b.tier),
                })
            }
            (Some(a), None) | (None, Some(a)) => {
                report.passthroughs += 1;
                Some(a.clone())
            }
            (None, None) => None,
        };
        self.nodes[k] = merged;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::consolidate_many;
    use udf_lang::cost::UniformFnCost;
    use udf_lang::parse::parse_program;
    use udf_lang::pretty;

    fn query(k: u32, interner: &mut Interner) -> Program {
        parse_program(
            &format!(
                "program q{k} @{k} (v) {{ w := inc(v); if (w > {}) {{ notify true; }} else {{ notify false; }} }}",
                k * 10
            ),
            interner,
        )
        .expect("test query parses")
    }

    #[test]
    fn add_remove_roundtrip_tracks_membership() {
        let mut i = Interner::new();
        let cm = CostModel::default();
        let fns = UniformFnCost(10);
        let opts = Options::default();
        let mut plan = DeltaPlan::new();
        assert!(plan.program().is_none());
        for k in 0..5 {
            let q = query(k, &mut i);
            plan.add(&q, &mut i, &cm, &fns, &opts).expect("add");
        }
        assert_eq!(plan.len(), 5);
        assert_eq!(plan.ids().len(), 5);
        plan.remove(ProgId(2), &i, &cm, &fns, &opts).expect("remove");
        assert_eq!(plan.len(), 4);
        assert!(!plan.contains(ProgId(2)));
        assert!(plan.program().is_some());
        assert_eq!(plan.tier(), DegradationTier::Full);
        // Holes are reused.
        let q = query(2, &mut i);
        plan.add(&q, &mut i, &cm, &fns, &opts).expect("re-add");
        assert_eq!(plan.len(), 5);
    }

    #[test]
    fn duplicate_and_unknown_ids_are_rejected() {
        let mut i = Interner::new();
        let cm = CostModel::default();
        let fns = UniformFnCost(10);
        let opts = Options::default();
        let mut plan = DeltaPlan::new();
        let q = query(1, &mut i);
        plan.add(&q, &mut i, &cm, &fns, &opts).expect("add");
        assert_eq!(
            plan.add(&q, &mut i, &cm, &fns, &opts).map(|_| ()),
            Err(DeltaError::DuplicateId(ProgId(1))),
        );
        assert_eq!(
            plan.remove(ProgId(9), &i, &cm, &fns, &opts).map(|_| ()),
            Err(DeltaError::UnknownId(ProgId(9))),
        );
    }

    #[test]
    fn failed_add_rolls_back_cleanly() {
        let mut i = Interner::new();
        let cm = CostModel::default();
        let fns = UniformFnCost(10);
        let opts = Options::default();
        let mut plan = DeltaPlan::new();
        plan.add(&query(0, &mut i), &mut i, &cm, &fns, &opts).expect("add");
        let before = pretty::program(plan.program().expect("plan"), &i);
        // Mismatched parameter list: the spine pair fails.
        let bad = parse_program("program b @7 (x, y) { notify true; }", &mut i).expect("parses");
        assert!(matches!(
            plan.add(&bad, &mut i, &cm, &fns, &opts),
            Err(DeltaError::Consolidate(ConsolidateError::ParamMismatch)),
        ));
        assert_eq!(plan.len(), 1);
        assert!(!plan.contains(ProgId(7)));
        assert_eq!(pretty::program(plan.program().expect("plan"), &i), before);
    }

    #[test]
    fn multi_notify_program_is_rejected() {
        let mut i = Interner::new();
        let cm = CostModel::default();
        let fns = UniformFnCost(10);
        let opts = Options::default();
        let mut plan = DeltaPlan::new();
        let two = parse_program(
            "program t @3 (v) { notify @3 true; notify @4 false; }",
            &mut i,
        );
        if let Ok(two) = two {
            assert_eq!(
                plan.add(&two, &mut i, &cm, &fns, &opts).map(|_| ()),
                Err(DeltaError::IdMismatch(ProgId(3))),
            );
        }
    }

    #[test]
    fn growth_preserves_the_registered_set() {
        let mut i = Interner::new();
        let cm = CostModel::default();
        let fns = UniformFnCost(10);
        let opts = Options::default();
        let mut plan = DeltaPlan::new();
        let mut grew = false;
        for k in 0..9 {
            let r = plan.add(&query(k, &mut i), &mut i, &cm, &fns, &opts).expect("add");
            grew |= r.grew;
        }
        assert!(grew, "9 adds must outgrow the initial capacity");
        assert_eq!(plan.len(), 9);
        let ids: Vec<u32> = {
            let mut v: Vec<u32> = plan.ids().iter().map(|id| id.0).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(ids, (0..9).collect::<Vec<u32>>());
    }

    #[test]
    fn delta_plan_consolidates_like_batch_on_small_sets() {
        // Structural sanity at the consolidation level: the delta plan's
        // merged program applies real rewrites (not mere concatenation) —
        // observational equivalence against `consolidate_many` is asserted
        // end-to-end by the `delta_equivalence` integration tests.
        let mut i = Interner::new();
        let cm = CostModel::default();
        let fns = UniformFnCost(10);
        let opts = Options::default();
        let mut plan = DeltaPlan::new();
        let programs: Vec<Program> = (0..4).map(|k| query(k, &mut i)).collect();
        let mut delta_checks = 0;
        for q in &programs {
            let r = plan.add(q, &mut i, &cm, &fns, &opts).expect("add");
            delta_checks += r.stats.solver.checks;
        }
        let batch = consolidate_many(&programs, &mut i, &cm, &fns, &opts, false).expect("batch");
        // Both paths performed real consolidation work.
        assert!(delta_checks > 0);
        assert!(batch.stats.solver.checks > 0);
        // The merged program calls `inc` once per distinct argument chain —
        // consolidation shared the common prefix in both paths.
        let d = pretty::program(plan.program().expect("plan"), &i);
        assert!(d.matches("inc").count() <= 4);
    }
}
