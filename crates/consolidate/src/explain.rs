//! Explain mode: rule-derivation trees for consolidation runs.
//!
//! When [`crate::Options::explain`] is set, the Ω engine records one
//! [`ExplainEntry`] per committed rule — which rule fired at which recursion
//! depth, on what program fragment, and which entailment questions
//! (`Ψ ⊨ φ`) were asked since the previous commit, i.e. the questions that
//! *justified* this rule choice over its alternatives. The flat entry list
//! is reassembled into a derivation tree ([`ExplainNode`]) whose shape
//! mirrors the recursive structure of Figure 8: each rule's children are the
//! sub-consolidations its conclusion contains.
//!
//! Two renderings are provided: [`ExplainReport::render_text`] for humans
//! (indented, one rule per line, entailments as `⊨`-prefixed sub-lines) and
//! [`ExplainReport::to_json`] for tools. Degradation truncation points are
//! visible as `DepthFallback` / `BudgetFallback` leaves: everything below
//! them was emitted verbatim, not consolidated.

use udf_lang::ast::ProgId;

/// How one entailment question `Ψ ⊨ φ` was answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntailmentVia {
    /// Syntactic mode: `φ` was (or was not) literally a conjunct of `Ψ`.
    Syntactic,
    /// Served from the per-pair validity cache.
    Cache,
    /// Served from the shared cross-pair [`crate::memo::EntailmentMemo`].
    Memo,
    /// Decided by an SMT solver call.
    Solver,
    /// The consolidation budget was exhausted; answered "not proved"
    /// without consulting the solver (sound, possibly incomplete).
    BudgetExhausted,
}

impl EntailmentVia {
    /// Stable lowercase name used in text and JSON renderings.
    pub fn name(self) -> &'static str {
        match self {
            EntailmentVia::Syntactic => "syntactic",
            EntailmentVia::Cache => "cache",
            EntailmentVia::Memo => "memo",
            EntailmentVia::Solver => "solver",
            EntailmentVia::BudgetExhausted => "budget_exhausted",
        }
    }
}

/// One entailment question asked while deciding a rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntailmentEvent {
    /// The queried formula `φ`, printed over SSA-versioned variables.
    pub query: String,
    /// Whether `Ψ ⊨ φ` was proved.
    pub proved: bool,
    /// Which mechanism produced the answer.
    pub via: EntailmentVia,
}

/// One committed rule application, as recorded by the engine (flat form).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExplainEntry {
    /// Ω recursion depth at which the rule committed.
    pub depth: usize,
    /// Rule name (`"Assign"`, `"If4"`, `"Loop2"`, `"BudgetFallback"`, …).
    pub rule: &'static str,
    /// Human-readable fragment the rule applied to (guard, assignment, …).
    pub detail: String,
    /// Entailment questions asked since the previous committed rule — the
    /// justification for choosing this rule.
    pub entailments: Vec<EntailmentEvent>,
}

/// A node of the reassembled derivation tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExplainNode {
    /// Rule name.
    pub rule: &'static str,
    /// Fragment the rule applied to.
    pub detail: String,
    /// Justifying entailment questions.
    pub entailments: Vec<EntailmentEvent>,
    /// Sub-derivations performed inside this rule's conclusion.
    pub children: Vec<ExplainNode>,
}

/// Derivation of one program pair `Π_left ⊗ Π_right`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairExplain {
    /// Id of the first program of the pair.
    pub left: ProgId,
    /// Id of the second program of the pair.
    pub right: ProgId,
    /// Top-level derivation steps, in commit order.
    pub roots: Vec<ExplainNode>,
}

/// Full explain output of a consolidation run (one entry per engine pair;
/// `consolidate_many` concatenates the pairs of its reduction tree in
/// completion order, level by level).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExplainReport {
    /// Per-pair derivations.
    pub pairs: Vec<PairExplain>,
}

/// Rebuilds the derivation tree from the engine's flat, pre-order entry
/// list: an entry becomes a child of the nearest preceding entry with a
/// strictly smaller depth.
pub fn build_tree(entries: Vec<ExplainEntry>) -> Vec<ExplainNode> {
    let mut roots: Vec<ExplainNode> = Vec::new();
    let mut stack: Vec<(usize, ExplainNode)> = Vec::new();
    for e in entries {
        let node = ExplainNode {
            rule: e.rule,
            detail: e.detail,
            entailments: e.entailments,
            children: Vec::new(),
        };
        while stack.last().is_some_and(|&(d, _)| d >= e.depth) {
            if let Some((_, done)) = stack.pop() {
                attach(&mut roots, &mut stack, done);
            }
        }
        stack.push((e.depth, node));
    }
    while let Some((_, done)) = stack.pop() {
        attach(&mut roots, &mut stack, done);
    }
    roots
}

fn attach(
    roots: &mut Vec<ExplainNode>,
    stack: &mut [(usize, ExplainNode)],
    node: ExplainNode,
) {
    match stack.last_mut() {
        Some((_, parent)) => parent.children.push(node),
        None => roots.push(node),
    }
}

impl ExplainReport {
    /// A report covering a single pair, from the engine's flat trace.
    pub fn single(left: ProgId, right: ProgId, entries: Vec<ExplainEntry>) -> ExplainReport {
        ExplainReport {
            pairs: vec![PairExplain {
                left,
                right,
                roots: build_tree(entries),
            }],
        }
    }

    /// Names of every rule appearing anywhere in the report (sorted, deduped).
    pub fn rules_fired(&self) -> Vec<&'static str> {
        let mut out = std::collections::BTreeSet::new();
        fn walk(n: &ExplainNode, out: &mut std::collections::BTreeSet<&'static str>) {
            out.insert(n.rule);
            for c in &n.children {
                walk(c, out);
            }
        }
        for p in &self.pairs {
            for r in &p.roots {
                walk(r, &mut out);
            }
        }
        out.into_iter().collect()
    }

    /// Human-readable indented rendering of the full derivation.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for p in &self.pairs {
            out.push_str(&format!("pair {} (x) {}\n", p.left, p.right));
            for r in &p.roots {
                render_node(r, 1, &mut out);
            }
        }
        out
    }

    /// Machine-readable JSON rendering (hand-rolled; no dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"pairs\":[");
        for (i, p) in self.pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"left\":{},\"right\":{},\"derivation\":[",
                p.left.0, p.right.0
            ));
            for (j, r) in p.roots.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                node_json(r, &mut out);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn render_node(n: &ExplainNode, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    out.push_str(&pad);
    out.push_str(n.rule);
    if !n.detail.is_empty() {
        out.push_str("  ");
        out.push_str(&n.detail);
    }
    out.push('\n');
    for e in &n.entailments {
        out.push_str(&pad);
        out.push_str("  |= ");
        out.push_str(&e.query);
        out.push_str(if e.proved { "  [proved, " } else { "  [not proved, " });
        out.push_str(e.via.name());
        out.push_str("]\n");
    }
    for c in &n.children {
        render_node(c, indent + 1, out);
    }
}

fn node_json(n: &ExplainNode, out: &mut String) {
    out.push_str("{\"rule\":\"");
    escape_json(n.rule, out);
    out.push_str("\",\"detail\":\"");
    escape_json(&n.detail, out);
    out.push_str("\",\"entailments\":[");
    for (i, e) in n.entailments.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"query\":\"");
        escape_json(&e.query, out);
        out.push_str("\",\"proved\":");
        out.push_str(if e.proved { "true" } else { "false" });
        out.push_str(",\"via\":\"");
        out.push_str(e.via.name());
        out.push_str("\"}");
    }
    out.push_str("],\"children\":[");
    for (i, c) in n.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        node_json(c, out);
    }
    out.push_str("]}");
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(depth: usize, rule: &'static str) -> ExplainEntry {
        ExplainEntry {
            depth,
            rule,
            detail: String::new(),
            entailments: Vec::new(),
        }
    }

    #[test]
    fn tree_nests_by_depth() {
        let roots = build_tree(vec![
            entry(0, "Seq"),
            entry(1, "Assign"),
            entry(2, "If4"),
            entry(2, "Step"),
            entry(1, "Skip"),
        ]);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].rule, "Seq");
        assert_eq!(roots[0].children.len(), 2);
        assert_eq!(roots[0].children[0].rule, "Assign");
        assert_eq!(roots[0].children[0].children.len(), 2);
        assert_eq!(roots[0].children[1].rule, "Skip");
    }

    #[test]
    fn equal_depths_are_siblings() {
        let roots = build_tree(vec![entry(3, "Assign"), entry(3, "Step")]);
        assert_eq!(roots.len(), 2);
    }

    #[test]
    fn render_text_names_rules_and_entailments() {
        let mut e = entry(0, "If1");
        e.detail = "price < 200".to_owned();
        e.entailments.push(EntailmentEvent {
            query: "(<= 200 price@0)".to_owned(),
            proved: true,
            via: EntailmentVia::Solver,
        });
        let report = ExplainReport::single(ProgId(1), ProgId(2), vec![e]);
        let text = report.render_text();
        assert!(text.contains("pair"));
        assert!(text.contains("If1"));
        assert!(text.contains("price < 200"));
        assert!(text.contains("[proved, solver]"));
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let mut e = entry(0, "Assign");
        e.detail = "x := \"quote\"".to_owned();
        let report = ExplainReport::single(ProgId(7), ProgId(8), vec![e]);
        let json = report.to_json();
        assert!(json.starts_with("{\"pairs\":["));
        assert!(json.contains("\\\"quote\\\""));
        assert!(json.contains("\"left\":7"));
        assert!(json.contains("\"children\":[]"));
    }
}
