//! Homomorphism prover for user-defined aggregations.
//!
//! Parallel aggregation splits the input into chunks, folds each chunk from
//! the initial state, and merges the partial states in a contiguous binary
//! tree. That is correct exactly when, writing `x ⊕ y` for `merge` and
//! `fold_r` for one fold step with record `r`:
//!
//! * **H1 (right identity)** — `x ⊕ init == x`, and
//! * **H2 (merge/fold commutation)** — `x ⊕ fold_r(y) == fold_r(x ⊕ y)`
//!
//! hold for *all* states `x`, `y` and records `r`. By induction over a
//! chunk's records, H1+H2 give `x ⊕ fold*(init, ws) == fold*(x, ws)`, and
//! therefore merging two adjacent partial folds equals the fold of the
//! concatenated chunks — which closes any contiguous merge tree over the
//! scan, independent of worker count.
//!
//! The prover discharges H1 and H2 with the existing machinery: both sides
//! of each law are instantiated over disjoint fresh variables (via
//! [`udf_lang::analysis::subst_stmt`]), concatenated into one straight-line
//! program, pushed through the strongest-postcondition engine, and the
//! final-state equalities are asked as one entailment `Ψ ⊨ ∧ᵢ lᵢ == mᵢ`.
//! Library calls stay uninterpreted, so a proof is valid for every library
//! binding. `Unknown`, a refuted obligation and an exhausted budget all
//! collapse to "not proved": the engine then runs that UDAF on a single
//! sequential shard — slower, never wrong.
//!
//! Verdicts are memoized in the shared [`crate::memo::EntailmentMemo`] under the
//! alpha-invariant [`agg_hash`] key (domain-separated from entailment
//! keys), so a warm cache answers without touching the solver.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use crate::api::ConsolidateError;
use crate::budget::{BudgetState, DegradationTier};
use crate::rules::Options;
use crate::symbolic::{EntailmentMode, SymState, SymbolicCtx};
use udf_lang::agg::{agg_hash, AggDef};
use udf_lang::analysis::{assigned_vars, subst_stmt};
use udf_lang::ast::{BoolExpr, CmpOp, IntExpr, Stmt};
use udf_lang::intern::{Interner, Symbol};
use udf_obs::names;

/// How one aggregation's merge-correctness obligation was settled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProofOutcome {
    /// Both H1 and H2 discharged by the solver this run.
    Proved,
    /// Verdict reused from the shared proof memo (true = proved).
    Memo(bool),
    /// The definition contains a `while` loop; strongest postconditions
    /// havoc loop targets, so the obligation is undischargeable — refused
    /// up front with no solver work.
    RefusedLoop,
    /// The consolidation budget ran out before this definition was proved.
    BudgetExhausted,
    /// An obligation was refuted or came back `Unknown` (also the blanket
    /// answer under [`EntailmentMode::Syntactic`], which cannot prove
    /// post-state equalities).
    NotProved,
}

impl ProofOutcome {
    /// Whether the definition may be folded in parallel.
    pub fn is_proved(self) -> bool {
        matches!(self, ProofOutcome::Proved | ProofOutcome::Memo(true))
    }
}

/// Aggregate statistics of one [`consolidate_aggs`] run.
#[derive(Clone, Debug, Default)]
pub struct AggProofStats {
    /// Homomorphism obligations discharged against the solver (memo hits
    /// and refused loops excluded).
    pub checks: u64,
    /// Verdicts answered from the shared proof memo.
    pub proof_memo_hits: u64,
    /// Entailment queries asked across all proofs.
    pub entailment_queries: u64,
    /// Cumulative SMT search statistics.
    pub solver: udf_smt::SolverStats,
}

/// Result of proving a set of aggregations that share one scan.
#[derive(Clone, Debug)]
pub struct AggConsolidation {
    /// Per-definition verdicts, positionally aligned with the input slice.
    pub outcomes: Vec<ProofOutcome>,
    /// `Full` when every definition proved, `Partial` when some did,
    /// `Sequential` when none did — mirroring pairwise consolidation's
    /// degradation ladder.
    pub tier: DegradationTier,
    /// Proof-side statistics.
    pub stats: AggProofStats,
    /// Wall-clock time spent proving.
    pub elapsed: std::time::Duration,
}

impl AggConsolidation {
    /// Positional `proved?` flags (the form the engine consumes).
    pub fn proved_flags(&self) -> Vec<bool> {
        self.outcomes.iter().map(|o| o.is_proved()).collect()
    }
}

/// Proves the homomorphism obligation for every definition of a shared-scan
/// aggregation set, sharing one budget and the proof memo across the set.
///
/// Definitions must agree on the record parameter list (they run over one
/// scan) and carry distinct ids (results are keyed on them).
///
/// # Errors
///
/// [`ConsolidateError::Empty`] on an empty set,
/// [`ConsolidateError::ParamMismatch`] when parameter lists differ,
/// [`ConsolidateError::DuplicateIds`] on a repeated aggregation id.
pub fn consolidate_aggs(
    defs: &[AggDef],
    interner: &mut Interner,
    opts: &Options,
) -> Result<AggConsolidation, ConsolidateError> {
    let first = defs.first().ok_or(ConsolidateError::Empty)?;
    if defs.iter().any(|d| d.params != first.params) {
        return Err(ConsolidateError::ParamMismatch);
    }
    let mut ids: Vec<u32> = defs.iter().map(|d| d.id.0).collect();
    ids.sort_unstable();
    ids.dedup();
    if ids.len() != defs.len() {
        return Err(ConsolidateError::DuplicateIds);
    }

    let start = Instant::now();
    let budget = Arc::new(BudgetState::new(&opts.budget));
    let mut stats = AggProofStats::default();
    let mut outcomes = Vec::with_capacity(defs.len());
    for def in defs {
        outcomes.push(prove_one(def, interner, opts, &budget, &mut stats));
    }
    let proved = outcomes.iter().filter(|o| o.is_proved()).count();
    let tier = if proved == defs.len() {
        DegradationTier::Full
    } else if proved > 0 {
        DegradationTier::Partial
    } else {
        DegradationTier::Sequential
    };
    Ok(AggConsolidation {
        outcomes,
        tier,
        stats,
        elapsed: start.elapsed(),
    })
}

/// Proves one definition, consulting the memo first.
fn prove_one(
    def: &AggDef,
    interner: &mut Interner,
    opts: &Options,
    budget: &Arc<BudgetState>,
    stats: &mut AggProofStats,
) -> ProofOutcome {
    let key = agg_hash(def, interner);
    if let Some(memo) = &opts.memo {
        if let Some(v) = memo.lookup_scoped(key, &[def.id.0]) {
            stats.proof_memo_hits += 1;
            opts.recorder.add(names::AGG_PROOF_MEMO_HITS, 1);
            return ProofOutcome::Memo(v);
        }
    }
    if def.has_loop() {
        return ProofOutcome::RefusedLoop;
    }
    if opts.mode == EntailmentMode::Syntactic {
        // Post-state equalities are never literal conjuncts of Ψ; don't
        // pretend to try. (Not memoized: the verdict is a property of the
        // ablation mode, not of the definition.)
        return ProofOutcome::NotProved;
    }
    if budget.exhausted() {
        return ProofOutcome::BudgetExhausted;
    }

    stats.checks += 1;
    opts.recorder.add(names::AGG_HOMOMORPHISM_CHECKS, 1);
    let ob = build_obligations(def, interner);
    let mut cx = SymbolicCtx::new(interner, opts.mode);
    cx.set_recorder(opts.recorder.clone());
    let mut solver = opts.solver.clone();
    if opts.recorder.enabled() {
        solver.recorder = opts.recorder.clone();
    }
    cx.set_solver(solver);
    cx.set_budget(Arc::clone(budget));
    if let Some(m) = &opts.memo {
        cx.set_memo(Arc::clone(m));
        cx.set_memo_scope(vec![def.id.0]);
    }

    let mut proved = true;
    for law in [&ob.h1, &ob.h2] {
        let mut st = SymState::initial(&mut cx, &ob.inputs);
        st.sp_stmt(&mut cx, &law.program);
        let mut goal = BoolExpr::Const(true);
        for &(l, r) in &law.equalities {
            goal = BoolExpr::and(
                goal,
                BoolExpr::Cmp(CmpOp::Eq, IntExpr::Var(l), IntExpr::Var(r)),
            );
        }
        let phi = cx.formula_of_bool(&st, &goal);
        if !cx.entails(&st, phi) {
            proved = false;
            break;
        }
    }
    stats.entailment_queries += cx.entailment_queries();
    let sv = cx.solver_stats();
    stats.solver.checks += sv.checks;
    stats.solver.theory_checks += sv.theory_checks;
    stats.solver.theory_conflicts += sv.theory_conflicts;
    stats.solver.minimized_literals += sv.minimized_literals;
    stats.solver.sat_decisions += sv.sat_decisions;
    stats.solver.sat_conflicts += sv.sat_conflicts;
    stats.solver.sat_propagations += sv.sat_propagations;
    stats.solver.simplex_pivots += sv.simplex_pivots;
    stats.solver.theory_rounds += sv.theory_rounds;

    if cx.budget_exhausted() && !proved {
        // Don't memoize a budget artefact as a refutation.
        return ProofOutcome::BudgetExhausted;
    }
    if let Some(m) = &opts.memo {
        m.store_scoped(key, proved, &[def.id.0]);
    }
    if proved {
        ProofOutcome::Proved
    } else {
        ProofOutcome::NotProved
    }
}

/// One law: a straight-line program plus the final-state equalities to ask.
struct Law {
    program: Stmt,
    equalities: Vec<(Symbol, Symbol)>,
}

/// The H1/H2 obligation programs for one definition, over fresh disjoint
/// variable namespaces.
struct Obligations {
    /// Universally-quantified inputs: both state copies and the record.
    inputs: Vec<Symbol>,
    h1: Law,
    h2: Law,
}

/// Instantiates a body over fresh copies of the given variables.
fn fresh_map(
    interner: &mut Interner,
    out: &mut BTreeMap<Symbol, Symbol>,
    vars: &[Symbol],
    prefix: &str,
) -> Vec<Symbol> {
    let mut copies = Vec::with_capacity(vars.len());
    for (i, &v) in vars.iter().enumerate() {
        let c = interner.intern(&format!("__h_{prefix}{i}"));
        out.insert(v, c);
        copies.push(c);
    }
    copies
}

fn build_obligations(def: &AggDef, interner: &mut Interner) -> Obligations {
    let state = def.state_names();
    let rhs = def.rhs_names();
    let fold_locals: Vec<Symbol> = assigned_vars(&def.fold)
        .into_iter()
        .filter(|v| !state.contains(v))
        .collect();
    let merge_locals: Vec<Symbol> = assigned_vars(&def.merge)
        .into_iter()
        .filter(|v| !state.contains(v))
        .collect();

    let mut m = BTreeMap::new();
    let xs = fresh_map(interner, &mut m, &state, "x"); // left input state
    let ys = fresh_map(interner, &mut m, &state, "y"); // right input state
    let mut inputs = xs.clone();
    inputs.extend(ys.iter().copied());
    let mut record = Vec::with_capacity(def.params.len());
    for (j, &p) in def.params.iter().enumerate() {
        let a = interner.intern(&format!("__h_a{j}"));
        record.push((p, a));
        inputs.push(a);
    }

    let copy_all = |dst: &[Symbol], src: &[Symbol]| {
        Stmt::seq_all(
            dst.iter()
                .zip(src)
                .map(|(&d, &s)| Stmt::Assign(d, IntExpr::Var(s))),
        )
    };
    let inst = |body: &Stmt,
                interner: &mut Interner,
                state_to: &[Symbol],
                rhs_to: Option<&[Symbol]>,
                with_record: bool,
                locals: &[Symbol],
                tag: &str| {
        let mut map: BTreeMap<Symbol, Symbol> = BTreeMap::new();
        for (&s, &t) in state.iter().zip(state_to) {
            map.insert(s, t);
        }
        if let Some(rt) = rhs_to {
            for (&r, &t) in rhs.iter().zip(rt) {
                map.insert(r, t);
            }
        }
        if with_record {
            for &(p, a) in &record {
                map.insert(p, a);
            }
        }
        for (i, &l) in locals.iter().enumerate() {
            map.insert(l, interner.intern(&format!("__h_{tag}l{i}")));
        }
        subst_stmt(body, &map)
    };

    // H1: n := x; merge(n, init) ⟹ n == x.
    let mut ib = BTreeMap::new();
    let zs = fresh_map(interner, &mut ib, &rhs, "z");
    let init_assigns = Stmt::seq_all(
        zs.iter()
            .zip(def.init_state())
            .map(|(&z, c)| Stmt::Assign(z, IntExpr::Const(c))),
    );
    let mut nb = BTreeMap::new();
    let ns = fresh_map(interner, &mut nb, &state, "n");
    let h1_prog = init_assigns
        .then(copy_all(&ns, &xs))
        .then(inst(&def.merge, interner, &ns, Some(&zs), false, &merge_locals, "h1"));
    let h1 = Law {
        program: h1_prog,
        equalities: ns.iter().copied().zip(xs.iter().copied()).collect(),
    };

    // H2 LHS: f := y; fold(f, a); g := x; merge(g, f)  — x ⊕ fold_r(y).
    let mut fb = BTreeMap::new();
    let fs = fresh_map(interner, &mut fb, &state, "f");
    let mut gb = BTreeMap::new();
    let gs = fresh_map(interner, &mut gb, &state, "g");
    let lhs = copy_all(&fs, &ys)
        .then(inst(&def.fold, interner, &fs, None, true, &fold_locals, "lf"))
        .then(copy_all(&gs, &xs))
        .then(inst(&def.merge, interner, &gs, Some(&fs), false, &merge_locals, "lm"));
    // H2 RHS: w := x; merge(w, y); fold(w, a)  — fold_r(x ⊕ y).
    let mut wb = BTreeMap::new();
    let ws = fresh_map(interner, &mut wb, &state, "w");
    let rhs_prog = copy_all(&ws, &xs)
        .then(inst(&def.merge, interner, &ws, Some(&ys), false, &merge_locals, "rm"))
        .then(inst(&def.fold, interner, &ws, None, true, &fold_locals, "rf"));
    let h2 = Law {
        program: lhs.then(rhs_prog),
        equalities: gs.into_iter().zip(ws).collect(),
    };

    Obligations { inputs, h1, h2 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::EntailmentMemo;
    use udf_lang::agg::parse_agg;

    fn prove(src: &str, opts: &Options) -> (AggConsolidation, Interner) {
        let mut it = Interner::new();
        let d = parse_agg(src, &mut it).unwrap();
        let c = consolidate_aggs(&[d], &mut it, opts).unwrap();
        (c, it)
    }

    #[test]
    fn sum_and_count_prove() {
        let opts = Options::default();
        let (c, _) = prove(
            "aggregate s @1 (x) { state s = 0; fold { s := s + volumeAt(x); } merge { s := s + rhs_s; } }",
            &opts,
        );
        assert_eq!(c.outcomes, vec![ProofOutcome::Proved]);
        assert_eq!(c.tier, DegradationTier::Full);
        let (c, _) = prove(
            "aggregate c @1 (x) { state c = 0; fold { c := c + 1; } merge { c := c + rhs_c; } }",
            &opts,
        );
        assert!(c.outcomes[0].is_proved());
    }

    #[test]
    fn conditional_count_proves() {
        let opts = Options::default();
        let (c, _) = prove(
            "aggregate k @1 (x) { state c = 0;
               fold { if (100 < score(x)) { c := c + 1; } else { skip; } }
               merge { c := c + rhs_c; } }",
            &opts,
        );
        assert_eq!(c.outcomes, vec![ProofOutcome::Proved]);
    }

    #[test]
    fn last_value_is_refuted() {
        // fold overwrites; merge keeps the left value — not a homomorphism.
        let opts = Options::default();
        let (c, _) = prove(
            "aggregate last @1 (x) { state v = 0; fold { v := x; } merge { v := v + 0 * rhs_v; } }",
            &opts,
        );
        assert_eq!(c.outcomes, vec![ProofOutcome::NotProved]);
        assert_eq!(c.tier, DegradationTier::Sequential);
    }

    #[test]
    fn loopy_fold_is_refused() {
        let opts = Options::default();
        let (c, _) = prove(
            "aggregate l @1 (x) { state s = 0;
               fold { i := 0; while (i < x) { s := s + 1; i := i + 1; } }
               merge { s := s + rhs_s; } }",
            &opts,
        );
        assert_eq!(c.outcomes, vec![ProofOutcome::RefusedLoop]);
    }

    #[test]
    fn memo_round_trip_skips_solver() {
        let mut opts = Options::default();
        let memo = std::sync::Arc::new(EntailmentMemo::new());
        opts.memo = Some(std::sync::Arc::clone(&memo));
        let src = "aggregate s @1 (x) { state s = 0; fold { s := s + x; } merge { s := s + rhs_s; } }";
        let (c1, _) = prove(src, &opts);
        assert_eq!(c1.outcomes, vec![ProofOutcome::Proved]);
        assert_eq!(c1.stats.checks, 1);
        let (c2, _) = prove(src, &opts);
        assert_eq!(c2.outcomes, vec![ProofOutcome::Memo(true)]);
        assert_eq!(c2.stats.checks, 0);
        assert_eq!(c2.stats.proof_memo_hits, 1);
        assert_eq!(c2.stats.solver.checks, 0);
    }

    #[test]
    fn syntactic_mode_proves_nothing() {
        let opts = Options {
            mode: EntailmentMode::Syntactic,
            ..Options::default()
        };
        let (c, _) = prove(
            "aggregate s @1 (x) { state s = 0; fold { s := s + x; } merge { s := s + rhs_s; } }",
            &opts,
        );
        assert_eq!(c.outcomes, vec![ProofOutcome::NotProved]);
    }

    #[test]
    fn mixed_set_is_partial() {
        let mut it = Interner::new();
        let good = parse_agg(
            "aggregate s @1 (x) { state s = 0; fold { s := s + x; } merge { s := s + rhs_s; } }",
            &mut it,
        )
        .unwrap();
        let bad = parse_agg(
            "aggregate last @2 (x) { state v = 0; fold { v := x; } merge { v := v + 0 * rhs_v; } }",
            &mut it,
        )
        .unwrap();
        let c = consolidate_aggs(&[good, bad], &mut it, &Options::default()).unwrap();
        assert_eq!(c.proved_flags(), vec![true, false]);
        assert_eq!(c.tier, DegradationTier::Partial);
    }

    #[test]
    fn rejects_mismatched_sets() {
        let mut it = Interner::new();
        let a = parse_agg(
            "aggregate s @1 (x) { state s = 0; fold { s := s + x; } merge { s := s + rhs_s; } }",
            &mut it,
        )
        .unwrap();
        let b = parse_agg(
            "aggregate t @1 (x) { state t = 0; fold { t := t + x; } merge { t := t + rhs_t; } }",
            &mut it,
        )
        .unwrap();
        assert_eq!(
            consolidate_aggs(&[a.clone(), b], &mut it, &Options::default()).unwrap_err(),
            ConsolidateError::DuplicateIds
        );
        let c = parse_agg(
            "aggregate u @2 (x, y) { state u = 0; fold { u := u + x; } merge { u := u + rhs_u; } }",
            &mut it,
        )
        .unwrap();
        assert_eq!(
            consolidate_aggs(&[a, c], &mut it, &Options::default()).unwrap_err(),
            ConsolidateError::ParamMismatch
        );
        assert_eq!(
            consolidate_aggs(&[], &mut it, &Options::default()).unwrap_err(),
            ConsolidateError::Empty
        );
    }

    #[test]
    fn exhausted_budget_degrades_soundly() {
        let opts = Options {
            budget: crate::budget::ConsolidationBudget::UNLIMITED.with_max_solver_queries(0),
            ..Options::default()
        };
        let (c, _) = prove(
            "aggregate s @1 (x) { state s = 0; fold { s := s + x; } merge { s := s + rhs_s; } }",
            &opts,
        );
        assert_eq!(c.outcomes, vec![ProofOutcome::BudgetExhausted]);
        assert_eq!(c.tier, DegradationTier::Sequential);
    }

    #[test]
    fn sentinel_max_is_refuted() {
        // `max` seeded with a finite sentinel is NOT an unconditional
        // homomorphism: H1 fails for states below the sentinel (the solver
        // finds x = sentinel - 1). The engine's sequential fallback keeps
        // such definitions correct.
        let opts = Options::default();
        let (c, _) = prove(
            "aggregate mx @1 (x) { state m = -1000000;
               fold { if (m < x) { m := x; } else { skip; } }
               merge { if (m < rhs_m) { m := rhs_m; } else { skip; } } }",
            &opts,
        );
        assert_eq!(c.outcomes, vec![ProofOutcome::NotProved]);
    }

    #[test]
    fn empty_flagged_max_degrades_within_budget() {
        // The empty-flag encoding of max IS a homomorphism, but its H2
        // obligation (four nested branch merges) exceeds the bundled
        // solver's practical search budget. The answer must still come back
        // quickly and soundly as "not proved" — sequential fallback, never
        // a wrong parallel plan and never a runaway prove.
        let opts = Options::default();
        let t = std::time::Instant::now();
        let (c, _) = prove(
            "aggregate mx @1 (x) { state has = 0; state m = 0;
               fold { if (has == 0) { m := x; has := 1; }
                      else { if (m < x) { m := x; } else { skip; } } }
               merge { if (rhs_has == 0) { skip; }
                       else { if (has == 0) { m := rhs_m; has := rhs_has; }
                              else { if (m < rhs_m) { m := rhs_m; } else { skip; } } } } }",
            &opts,
        );
        assert_eq!(c.outcomes, vec![ProofOutcome::NotProved]);
        assert!(t.elapsed() < std::time::Duration::from_secs(30));
    }
}
