//! Loop invariant inference (`LoopInv` in the paper's Figure 7/8).
//!
//! The Loop 2/3 rules need an invariant `Ψ₁` of the *combined* loop
//! `while (e₁ ∧ e₂) do S₁;S₂` strong enough to relate the two programs'
//! induction variables (the paper's Example 6 needs `j = i − 1`).
//!
//! We use the classic Houdini scheme over a template family:
//!
//! 1. **Candidates** — linear relations `u = v + c` and `u = c` between the
//!    loop-relevant variables, with offsets `c` read off a *model* of the
//!    precondition `Ψ` and confirmed against `Ψ` by a validity query (so the
//!    candidate set starts out true on loop entry).
//! 2. **Filtering** — havoc the loop-assigned variables, assume all
//!    candidates plus the combined guard, push the loop body through
//!    `sp`, and drop every candidate not re-established; repeat to fixpoint.
//!
//! The surviving conjunction, together with the frame (`Ψ`'s facts about
//! unassigned variables, preserved automatically by SSA versioning), is
//! inductive and holds at the loop head.

use crate::symbolic::{SymbolicCtx, SymState};
use std::collections::BTreeSet;
use udf_lang::analysis::{assigned_vars, bool_expr_vars};
use udf_lang::ast::{BoolExpr, CmpOp, IntExpr, Stmt};
use udf_lang::intern::Symbol;

/// A candidate (and, once filtered, proven) linear invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinearInv {
    /// `u = v + c`.
    VarOffset(Symbol, Symbol, i64),
    /// `u = c`.
    Const(Symbol, i64),
}

impl LinearInv {
    /// The invariant as a program-level boolean expression.
    pub fn to_expr(&self) -> BoolExpr {
        match *self {
            LinearInv::VarOffset(u, v, c) => BoolExpr::Cmp(
                CmpOp::Eq,
                IntExpr::Var(u),
                if c == 0 {
                    IntExpr::Var(v)
                } else if c > 0 {
                    IntExpr::add(IntExpr::Var(v), IntExpr::Const(c))
                } else {
                    IntExpr::sub(IntExpr::Var(v), IntExpr::Const(-c))
                },
            ),
            LinearInv::Const(u, c) => {
                BoolExpr::Cmp(CmpOp::Eq, IntExpr::Var(u), IntExpr::Const(c))
            }
        }
    }
}

/// Limits for invariant inference.
#[derive(Clone, Copy, Debug)]
pub struct InvOptions {
    /// Maximum candidate relations to track.
    pub max_candidates: usize,
    /// Maximum Houdini iterations (each costs one symbolic body execution
    /// plus one validity query per surviving candidate).
    pub max_rounds: usize,
}

impl Default for InvOptions {
    fn default() -> InvOptions {
        InvOptions {
            max_candidates: 24,
            max_rounds: 4,
        }
    }
}

/// Result of [`infer`]: the loop-head state (assigned variables havoced,
/// invariant assumed) plus the surviving linear relations.
#[derive(Debug)]
pub struct LoopHead {
    /// Symbolic state at the loop head (invariant included, guard *not*
    /// included).
    pub state: SymState,
    /// The proven linear relations.
    pub invariants: Vec<LinearInv>,
}

/// Keeps the candidates entailed by `st`, using conjunction batching: when
/// every candidate holds (the common case), one validity query suffices;
/// otherwise the set is bisected, for O(failures · log n) queries.
fn filter_entailed(
    cx: &mut SymbolicCtx<'_>,
    st: &SymState,
    candidates: Vec<LinearInv>,
) -> Vec<LinearInv> {
    if candidates.is_empty() {
        return candidates;
    }
    let conj = {
        let fs: Vec<_> = candidates
            .iter()
            .map(|c| {
                let e = c.to_expr();
                cx.formula_of_bool(st, &e)
            })
            .collect();
        cx.smt.and_all(fs)
    };
    if cx.entails(st, conj) {
        return candidates;
    }
    if candidates.len() == 1 {
        return Vec::new();
    }
    let mid = candidates.len() / 2;
    let (left, right) = candidates.split_at(mid);
    let mut out = filter_entailed(cx, st, left.to_vec());
    out.extend(filter_entailed(cx, st, right.to_vec()));
    out
}

/// Infers an inductive invariant for `while (guard₁ ∧ guard₂) do body₁;body₂`
/// entered from `entry`. `guard2`/`body2` are `None` when analyzing a single
/// loop (used for self-simplification of one program's loop).
pub fn infer(
    cx: &mut SymbolicCtx<'_>,
    entry: &SymState,
    guard1: &BoolExpr,
    body1: &Stmt,
    guard2: Option<&BoolExpr>,
    body2: Option<&Stmt>,
    opts: &InvOptions,
) -> LoopHead {
    // Variables the combined loop writes.
    let mut assigned: BTreeSet<Symbol> = assigned_vars(body1);
    if let Some(b2) = body2 {
        assigned.extend(assigned_vars(b2));
    }
    // Relevant variables: assigned ∪ guard variables.
    let mut relevant = assigned.clone();
    bool_expr_vars(guard1, &mut relevant);
    if let Some(g2) = guard2 {
        bool_expr_vars(g2, &mut relevant);
    }
    let relevant: Vec<Symbol> = relevant.into_iter().collect();

    // Guard variables: relations among them (the induction variables) are
    // what discharge the Loop 2/Loop 3 premises, so they get priority in the
    // candidate budget.
    let mut guard_vars: BTreeSet<Symbol> = BTreeSet::new();
    bool_expr_vars(guard1, &mut guard_vars);
    if let Some(g2) = guard2 {
        bool_expr_vars(g2, &mut guard_vars);
    }

    // Candidate generation from a model of the entry state, ranked:
    // both-guard pairs first, then one-guard pairs, then the rest; small
    // offsets before large ones.
    let mut candidates: Vec<LinearInv> = Vec::new();
    if let Some(model) = cx.model(entry) {
        let vals: Vec<(Symbol, i128)> = relevant
            .iter()
            .map(|&v| (v, cx.model_value(entry, &model, v)))
            .collect();
        let mut ranked: Vec<(u32, LinearInv)> = Vec::new();
        for (idx, &(u, uv)) in vals.iter().enumerate() {
            // u = c candidates only for assigned vars (facts about unassigned
            // vars survive via the frame anyway).
            if assigned.contains(&u) {
                if let Ok(c) = i64::try_from(uv) {
                    ranked.push((4, LinearInv::Const(u, c)));
                }
            }
            for &(v, vv) in vals.iter().skip(idx + 1) {
                // Only relations that involve at least one assigned variable
                // can be non-trivial invariants.
                if !assigned.contains(&u) && !assigned.contains(&v) {
                    continue;
                }
                if let Some(c) = uv.checked_sub(vv).and_then(|d| i64::try_from(d).ok()) {
                    let in_guard =
                        u32::from(guard_vars.contains(&u)) + u32::from(guard_vars.contains(&v));
                    let rank = (2 - in_guard) * 2 + u32::from(c.unsigned_abs() > 4);
                    ranked.push((rank, LinearInv::VarOffset(u, v, c)));
                }
            }
        }
        ranked.sort_by_key(|&(rank, _)| rank);
        candidates.extend(ranked.into_iter().map(|(_, c)| c));
    }
    candidates.truncate(opts.max_candidates);

    // Keep only candidates that hold on entry (batched: one query when all
    // hold, logarithmic bisection otherwise).
    candidates = filter_entailed(cx, entry, candidates);

    // Houdini filtering.
    for _ in 0..opts.max_rounds {
        if candidates.is_empty() {
            break;
        }
        // Loop-head state for this round.
        let mut head = entry.clone();
        head.havoc(assigned.iter().copied());
        for cand in &candidates {
            let e = cand.to_expr();
            head.assume(cx, &e);
        }
        // One iteration: guard holds, then the body runs.
        let mut post = head.clone();
        post.assume(cx, guard1);
        if let Some(g2) = guard2 {
            post.assume(cx, g2);
        }
        post.sp_stmt(cx, body1);
        if let Some(b2) = body2 {
            post.sp_stmt(cx, b2);
        }
        let before = candidates.len();
        candidates = filter_entailed(cx, &post, candidates);
        if candidates.len() == before {
            break; // fixpoint: all survivors are inductive
        }
    }

    // Final loop-head state with the proven invariant.
    let mut state = entry.clone();
    state.havoc(assigned.iter().copied());
    for cand in &candidates {
        let e = cand.to_expr();
        state.assume(cx, &e);
    }
    LoopHead {
        state,
        invariants: candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::{initial_state, EntailmentMode};
    use udf_lang::intern::Interner;
    use udf_lang::parse::{parse_bool_expr, parse_program};

    /// The paper's Example 6: loops `while (i > 0) {i := i−1; …}` and
    /// `while (j ≥ 0) {…; j := j−1}` entered with `i = α ∧ j = α − 1` admit
    /// the invariant `j = i − 1`.
    #[test]
    fn example6_invariant() {
        let mut i = Interner::new();
        let p1 = parse_program(
            "program p1 @0 (alpha) { i := alpha; x := 0; while (i > 0) { i := i - 1; t1 := f(i); x := x + t1; } }",
            &mut i,
        )
        .unwrap();
        let p2 = parse_program(
            "program p2 @1 (alpha) { j := alpha - 1; y := alpha; while (j >= 0) { t2 := f(j); y := y + t2; j := j - 1; } }",
            &mut i,
        )
        .unwrap();
        // Split both programs: inits then loops.
        let (i1_init, rest1) = p1.body.clone().split_head();
        let (i1b, rest1b) = rest1.split_head();
        let (loop1, _) = rest1b.split_head();
        let (i2_init, rest2) = p2.body.clone().split_head();
        let (i2b, rest2b) = rest2.split_head();
        let (loop2, _) = rest2b.split_head();

        let inv_expr = parse_bool_expr("j == i - 1", &mut i).unwrap();
        let exit_expr = parse_bool_expr("i <= 0 && j < 0", &mut i).unwrap();
        let guard_neg = parse_bool_expr("!(i > 0 && j >= 0)", &mut i).unwrap();

        let params = p1.params.clone();
        let (mut cx, mut st) = initial_state(&i, EntailmentMode::Smt, &params);
        // Execute the four initializers symbolically.
        for s in [&i1_init, &i1b, &i2_init, &i2b] {
            st.sp_stmt(&mut cx, s);
        }
        let (udf_lang::ast::Stmt::While(g1, b1), udf_lang::ast::Stmt::While(g2, b2)) =
            (&loop1, &loop2)
        else {
            panic!("expected loops, got {loop1:?} / {loop2:?}");
        };
        let head = infer(
            &mut cx,
            &st,
            g1,
            b1,
            Some(g2),
            Some(b2),
            &InvOptions::default(),
        );
        // j = i − 1 must be among the invariants (in either orientation).
        let found = head.invariants.iter().any(|inv| match *inv {
            LinearInv::VarOffset(u, v, c) => {
                let (un, vn) = (c, (u, v));
                let _ = un;
                let names = (
                    // resolve names via the test interner
                    vn,
                );
                let _ = names;
                c == -1 || c == 1
            }
            _ => false,
        });
        assert!(found, "missing j = i − 1; got {:?}", head.invariants);
        // The invariant state entails the relation at the head…
        let f = cx.formula_of_bool(&head.state, &inv_expr);
        assert!(cx.entails(&head.state, f));
        // …and Loop 2's premise holds: Ψ₁ ∧ ¬(e₁ ∧ e₂) ⊨ ¬e₁ ∧ ¬e₂.
        let mut exit_state = head.state.clone();
        exit_state.assume(&mut cx, &guard_neg);
        let exit_f = cx.formula_of_bool(&exit_state, &exit_expr);
        assert!(cx.entails(&exit_state, exit_f));
    }

    /// A single loop `x := 0; k := 5; while (x < n) { x := x + 1 }` keeps
    /// `k = 5` (frame) and drops `x = 0` (not inductive).
    #[test]
    fn frame_facts_survive_constants_drop() {
        let mut i = Interner::new();
        let p = parse_program(
            "program p @0 (n) { x := 0; k := 5; while (x < n) { x := x + 1; } }",
            &mut i,
        )
        .unwrap();
        let (a1, rest) = p.body.clone().split_head();
        let (a2, rest2) = rest.split_head();
        let (lp, _) = rest2.split_head();
        let k_eq_5 = parse_bool_expr("k == 5", &mut i).unwrap();
        let x_eq_0 = parse_bool_expr("x == 0", &mut i).unwrap();
        let (mut cx, mut st) = initial_state(&i, EntailmentMode::Smt, &p.params);
        st.sp_stmt(&mut cx, &a1);
        st.sp_stmt(&mut cx, &a2);
        let udf_lang::ast::Stmt::While(g, b) = &lp else {
            panic!()
        };
        let head = infer(&mut cx, &st, g, b, None, None, &InvOptions::default());
        let f_k = cx.formula_of_bool(&head.state, &k_eq_5);
        assert!(cx.entails(&head.state, f_k), "unassigned k keeps its value");
        let f_x = cx.formula_of_bool(&head.state, &x_eq_0);
        assert!(!cx.entails(&head.state, f_x), "x = 0 is not inductive");
    }

    /// Lock-step loops: i and j both increment, so i = j is inductive.
    #[test]
    fn lockstep_difference_invariant() {
        let mut i = Interner::new();
        let p = parse_program(
            "program p @0 (n) { i := 0; j := 0; while (i < n) { i := i + 1; j := j + 1; } }",
            &mut i,
        )
        .unwrap();
        let (a1, rest) = p.body.clone().split_head();
        let (a2, rest2) = rest.split_head();
        let (lp, _) = rest2.split_head();
        let eq = parse_bool_expr("i == j", &mut i).unwrap();
        let (mut cx, mut st) = initial_state(&i, EntailmentMode::Smt, &p.params);
        st.sp_stmt(&mut cx, &a1);
        st.sp_stmt(&mut cx, &a2);
        let udf_lang::ast::Stmt::While(g, b) = &lp else {
            panic!()
        };
        let head = infer(&mut cx, &st, g, b, None, None, &InvOptions::default());
        let f = cx.formula_of_bool(&head.state, &eq);
        assert!(cx.entails(&head.state, f), "i = j is inductive");
    }
}
