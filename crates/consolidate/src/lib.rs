//! Program consolidation — the core contribution of *Consolidation of
//! Queries with User-Defined Functions* (PLDI 2014).
//!
//! Given `n` UDFs `Π₁ … Πₙ` over the same input, consolidation produces one
//! program `Π₁ ⊗ … ⊗ Πₙ` with the same observable behaviour (final
//! environments and notification broadcasts) whose execution cost never
//! exceeds — and usually greatly undercuts — running the UDFs sequentially
//! (Definition 1 / Theorem 1 of the paper).
//!
//! The crate decomposes the paper's machinery into:
//!
//! * [`symbolic`] — contexts `Ψ` as SMT formulas over SSA-versioned
//!   variables, with `sp` for every statement form;
//! * [`simplify`] — the cross-simplification judgements of Figure 3,
//!   model-guided and confirmed by validity queries;
//! * [`invariants`] — `LoopInv`: Houdini inference of linear loop invariants
//!   for the fused loop, powering Loop 2/Loop 3;
//! * [`rules`] — the Ω engine of Figure 8 applying Com/Skip/Assign/Step/
//!   Seq/If 1–5/Loop 2–3;
//! * [`api`] — pairwise and parallel divide-and-conquer n-way consolidation;
//! * [`prefilter`] — cross-query predicate pushdown: synthesis of a sound,
//!   parameter-only pre-filter whose failure proves every query notifies
//!   `false`, letting the engine skip the merged program per record
//!   (fail-open; see `DESIGN.md`);
//! * [`explain`] — opt-in rule-derivation trees recording which rule fired
//!   where and which entailments justified it (see `OBSERVABILITY.md`).
//!
//! Metrics: every layer emits counters/latency histograms through the
//! [`udf_obs::RecorderCell`] installed in [`Options`] (`recorder` field,
//! no-op by default).
//!
//! # Example
//!
//! The paper's Example 1 (two flight filters sharing the airline lookup):
//!
//! ```
//! use consolidate::{consolidate_pair, Options};
//! use udf_lang::{parse::parse_program, Interner, CostModel};
//! use udf_lang::cost::UniformFnCost;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut interner = Interner::new();
//! let f1 = parse_program(
//!     "program f1 @1 (airline, price) {
//!          name := toLower(airline);
//!          if (name == 7) { notify true; } else { notify false; }
//!      }", &mut interner)?;
//! let f2 = parse_program(
//!     "program f2 @2 (airline, price) {
//!          if (price >= 200) { notify false; }
//!          else { if (toLower(airline) == 7) { notify true; } else { notify false; } }
//!      }", &mut interner)?;
//! let out = consolidate_pair(&f1, &f2, &mut interner,
//!                            &CostModel::default(), &UniformFnCost(50),
//!                            &Options::default())?;
//! // The merged program calls toLower once; both notifications survive.
//! let printed = udf_lang::pretty::program(&out.program, &interner);
//! assert_eq!(printed.matches("toLower").count(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Production code must justify fallibility; tests may unwrap freely.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod api;
pub mod budget;
pub mod delta;
pub mod explain;
pub mod homomorphism;
pub mod invariants;
pub mod memo;
pub mod prefilter;
pub mod rules;
pub mod simplify;
pub mod symbolic;

pub use api::{consolidate_many, consolidate_pair, consolidate_pair_prerenamed, Consolidated,
              ConsolidateError, ConsolidationStats};
pub use budget::{BudgetState, ConsolidationBudget, DegradationTier};
pub use delta::{DeltaError, DeltaPlan, DeltaReport};
pub use homomorphism::{consolidate_aggs, AggConsolidation, AggProofStats, ProofOutcome};
pub use explain::{EntailmentEvent, EntailmentVia, ExplainEntry, ExplainNode, ExplainReport,
                  PairExplain};
pub use memo::EntailmentMemo;
pub use prefilter::{Prefilter, Reject as PrefilterReject};
pub use rules::{IfPolicy, Options, RuleStats};
pub use symbolic::EntailmentMode;
