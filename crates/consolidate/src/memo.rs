//! Cross-thread entailment memoization.
//!
//! `consolidate_many` reduces its query set level by level, spawning one
//! thread per pair; every thread owns an independent [`SymbolicCtx`] and so
//! an independent per-context entailment cache. Structurally similar pairs
//! (query families are generated from templates, so similarity is the common
//! case) fire the *same* obligations `Ψ ⊨ φ` up to variable renaming, and
//! each thread re-pays the SMT bill.
//!
//! [`EntailmentMemo`] is a process-wide verdict table keyed on the canonical
//! hash of the query ([`udf_smt::canon::entailment_key`]): variables are
//! De Bruijn-numbered jointly across `(Ψ, φ)`, so SSA fresh counters and
//! per-run renaming prefixes vanish. The table is sharded under `RwLock`s
//! and shared via `Arc` across pair threads *and across consolidation runs*
//! — this is what makes a warm second run solver-free.
//!
//! A memo hit does **not** charge the [`crate::ConsolidationBudget`] solver
//! query counter: budgets bound *solver work*, and a hit performs none.
//!
//! [`SymbolicCtx`]: crate::symbolic::SymbolicCtx

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

const SHARDS: usize = 16;

/// A sharded, thread-safe memo table mapping canonical entailment-query
/// hashes to verdicts. Cheap to share (`Arc`), cheap to hit (one shard read
/// lock).
pub struct EntailmentMemo {
    shards: Vec<RwLock<HashMap<u128, bool>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for EntailmentMemo {
    fn default() -> EntailmentMemo {
        EntailmentMemo::new()
    }
}

impl std::fmt::Debug for EntailmentMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EntailmentMemo")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl EntailmentMemo {
    /// Creates an empty memo table.
    pub fn new() -> EntailmentMemo {
        EntailmentMemo {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u128) -> &RwLock<HashMap<u128, bool>> {
        &self.shards[(key as usize) % SHARDS]
    }

    /// Looks up a verdict. Counts a hit or a miss.
    pub fn lookup(&self, key: u128) -> Option<bool> {
        let got = self
            .shard(key)
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .copied();
        match got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Records a verdict.
    pub fn store(&self, key: u128, verdict: bool) {
        self.shard(key)
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, verdict);
    }

    /// Number of memoized verdicts.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookup hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookup misses since creation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_store_roundtrip() {
        let memo = EntailmentMemo::new();
        assert_eq!(memo.lookup(42), None);
        memo.store(42, true);
        memo.store(7, false);
        assert_eq!(memo.lookup(42), Some(true));
        assert_eq!(memo.lookup(7), Some(false));
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.hits(), 2);
        assert_eq!(memo.misses(), 1);
    }

    #[test]
    fn shared_across_threads() {
        let memo = std::sync::Arc::new(EntailmentMemo::new());
        std::thread::scope(|scope| {
            for t in 0..4u128 {
                let memo = std::sync::Arc::clone(&memo);
                scope.spawn(move || {
                    for k in 0..64 {
                        memo.store(t * 1000 + k, k % 2 == 0);
                    }
                });
            }
        });
        assert_eq!(memo.len(), 256);
        assert_eq!(memo.lookup(1001), Some(false));
    }
}
