//! Cross-thread entailment memoization.
//!
//! `consolidate_many` reduces its query set level by level, spawning one
//! thread per pair; every thread owns an independent [`SymbolicCtx`] and so
//! an independent per-context entailment cache. Structurally similar pairs
//! (query families are generated from templates, so similarity is the common
//! case) fire the *same* obligations `Ψ ⊨ φ` up to variable renaming, and
//! each thread re-pays the SMT bill.
//!
//! [`EntailmentMemo`] is a process-wide verdict table keyed on the canonical
//! hash of the query ([`udf_smt::canon::entailment_key`]): variables are
//! De Bruijn-numbered jointly across `(Ψ, φ)`, so SSA fresh counters and
//! per-run renaming prefixes vanish. The table is sharded under `RwLock`s
//! and shared via `Arc` across pair threads *and across consolidation runs*
//! — this is what makes a warm second run solver-free.
//!
//! A memo hit does **not** charge the [`crate::ConsolidationBudget`] solver
//! query counter: budgets bound *solver work*, and a hit performs none.
//!
//! [`SymbolicCtx`]: crate::symbolic::SymbolicCtx

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

const SHARDS: usize = 16;

/// One memoized verdict plus the queries whose predicates contributed to
/// it (scope tags are [`udf_lang::ast::ProgId`] values).
#[derive(Debug, Clone)]
struct MemoEntry {
    verdict: bool,
    /// Sorted, deduplicated notify ids of every program pair whose
    /// consolidation stored *or reused* this verdict. Empty for verdicts
    /// recorded through the unscoped [`EntailmentMemo::store`].
    scope: Vec<u32>,
}

/// A sharded, thread-safe memo table mapping canonical entailment-query
/// hashes to verdicts. Cheap to share (`Arc`), cheap to hit (one shard read
/// lock).
///
/// # Scoped invalidation
///
/// Verdicts are pure logical facts, but a deployment may *distrust* them:
/// when a query's consolidated plan diverges at runtime (plan-guard trip),
/// every verdict derived from that query's predicates is suspect — serving
/// it on re-registration would re-prove the same bad plan without ever
/// touching the solver. [`EntailmentMemo::store_scoped`] tags each verdict
/// with the notify ids of the programs that produced it (and
/// [`EntailmentMemo::lookup_scoped`] widens the tag set on reuse), so
/// [`EntailmentMemo::invalidate_query`] can drop exactly the entries that
/// query's predicates ever touched.
pub struct EntailmentMemo {
    shards: Vec<RwLock<HashMap<u128, MemoEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for EntailmentMemo {
    fn default() -> EntailmentMemo {
        EntailmentMemo::new()
    }
}

impl std::fmt::Debug for EntailmentMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EntailmentMemo")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl EntailmentMemo {
    /// Creates an empty memo table.
    pub fn new() -> EntailmentMemo {
        EntailmentMemo {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u128) -> &RwLock<HashMap<u128, MemoEntry>> {
        &self.shards[(key as usize) % SHARDS]
    }

    /// Looks up a verdict. Counts a hit or a miss.
    pub fn lookup(&self, key: u128) -> Option<bool> {
        let got = self
            .shard(key)
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .map(|e| e.verdict);
        match got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Looks up a verdict on behalf of the queries in `scope` (notify ids).
    /// On a hit the entry's scope is widened to include `scope`, so a later
    /// [`EntailmentMemo::invalidate_query`] for *any* query that ever
    /// relied on this verdict removes it. Counts a hit or a miss.
    pub fn lookup_scoped(&self, key: u128, scope: &[u32]) -> Option<bool> {
        if scope.is_empty() {
            return self.lookup(key);
        }
        // Fast path: a read lock suffices when the scope is already covered.
        let (verdict, covered) = {
            let shard = self.shard(key).read().unwrap_or_else(|e| e.into_inner());
            match shard.get(&key) {
                Some(e) => (
                    Some(e.verdict),
                    scope.iter().all(|q| e.scope.binary_search(q).is_ok()),
                ),
                None => (None, true),
            }
        };
        match verdict {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if !covered {
                    let mut shard = self.shard(key).write().unwrap_or_else(|e| e.into_inner());
                    if let Some(e) = shard.get_mut(&key) {
                        for &q in scope {
                            if let Err(at) = e.scope.binary_search(&q) {
                                e.scope.insert(at, q);
                            }
                        }
                    }
                }
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records a verdict with no scope (never removed by
    /// [`EntailmentMemo::invalidate_query`]).
    pub fn store(&self, key: u128, verdict: bool) {
        self.store_scoped(key, verdict, &[]);
    }

    /// Records a verdict derived from the queries in `scope` (notify ids).
    /// Re-storing an existing key unions the scopes.
    pub fn store_scoped(&self, key: u128, verdict: bool, scope: &[u32]) {
        let mut shard = self.shard(key).write().unwrap_or_else(|e| e.into_inner());
        match shard.get_mut(&key) {
            Some(e) => {
                e.verdict = verdict;
                for &q in scope {
                    if let Err(at) = e.scope.binary_search(&q) {
                        e.scope.insert(at, q);
                    }
                }
            }
            None => {
                let mut sorted = scope.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                shard.insert(
                    key,
                    MemoEntry {
                        verdict,
                        scope: sorted,
                    },
                );
            }
        }
    }

    /// Drops every verdict whose scope contains `query` (a notify id),
    /// returning how many were removed. Call when that query's plan is
    /// demoted or quarantined at runtime: verdicts its predicates touched
    /// must be re-proved by the solver, not served from the table.
    pub fn invalidate_query(&self, query: u32) -> usize {
        let mut removed = 0;
        for s in &self.shards {
            let mut shard = s.write().unwrap_or_else(|e| e.into_inner());
            let before = shard.len();
            shard.retain(|_, e| e.scope.binary_search(&query).is_err());
            removed += before - shard.len();
        }
        removed
    }

    /// Number of memoized verdicts.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookup hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookup misses since creation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_store_roundtrip() {
        let memo = EntailmentMemo::new();
        assert_eq!(memo.lookup(42), None);
        memo.store(42, true);
        memo.store(7, false);
        assert_eq!(memo.lookup(42), Some(true));
        assert_eq!(memo.lookup(7), Some(false));
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.hits(), 2);
        assert_eq!(memo.misses(), 1);
    }

    #[test]
    fn shared_across_threads() {
        let memo = std::sync::Arc::new(EntailmentMemo::new());
        std::thread::scope(|scope| {
            for t in 0..4u128 {
                let memo = std::sync::Arc::clone(&memo);
                scope.spawn(move || {
                    for k in 0..64 {
                        memo.store(t * 1000 + k, k % 2 == 0);
                    }
                });
            }
        });
        assert_eq!(memo.len(), 256);
        assert_eq!(memo.lookup(1001), Some(false));
    }

    #[test]
    fn scoped_invalidation_removes_exactly_the_tagged_entries() {
        let memo = EntailmentMemo::new();
        memo.store_scoped(1, true, &[10, 11]);
        memo.store_scoped(2, false, &[11]);
        memo.store_scoped(3, true, &[12]);
        memo.store(4, true); // unscoped: survives any invalidation
        assert_eq!(memo.invalidate_query(11), 2);
        assert_eq!(memo.lookup(1), None);
        assert_eq!(memo.lookup(2), None);
        assert_eq!(memo.lookup(3), Some(true));
        assert_eq!(memo.lookup(4), Some(true));
        assert_eq!(memo.invalidate_query(11), 0);
    }

    #[test]
    fn scoped_lookup_widens_the_scope_on_reuse() {
        let memo = EntailmentMemo::new();
        memo.store_scoped(7, true, &[1, 2]);
        // A structurally identical obligation from queries {3, 4} reuses the
        // verdict; the entry is now suspect for all four queries.
        assert_eq!(memo.lookup_scoped(7, &[3, 4]), Some(true));
        assert_eq!(memo.invalidate_query(3), 1);
        assert_eq!(memo.lookup(7), None);
    }
}
