//! Cross-query predicate pushdown: synthesis of a sound pre-filter.
//!
//! On selective workloads most records satisfy none of the `n` consolidated
//! queries, yet every record still pays for the full merged program. This
//! pass synthesizes a cheap *pre-filter* `P` over the record parameters only
//! — no library calls, no loops — such that a record with `¬P` is **proved**
//! to drive the merged program down a call-free, loop-free path that
//! broadcasts `notify false` for every query. Such records can skip the
//! merged program entirely: the engine writes the all-`false` notification
//! vector directly, and by construction the skipped record can produce no
//! notification, no library fault (no call executes, so fault injection has
//! nothing to hook) and therefore no quarantine entry.
//!
//! Synthesis runs in two stages, both *fail-open* (no pre-filter ⇒ the
//! engine keeps its current behavior — never wrong, merely unaccelerated):
//!
//! 1. **Candidate extraction.** For each original query `Πᵢ`, a
//!    polarity-aware walk computes a necessary condition `NCᵢ` for
//!    "`Πᵢ` may broadcast `notify true`": atoms that mention a library call
//!    or an untracked local are widened to `true` in positive polarity (and
//!    to `false` under negation), parameter-defined locals are inlined, and
//!    conditionals/loops contribute their guards. The candidate is
//!    `P = ⋁ᵢ NCᵢ`, constant-folded; a candidate that folds to `true`
//!    carries no information and aborts synthesis.
//! 2. **Verification.** The *merged* program is executed symbolically under
//!    the assumption `¬P` (strongest postconditions via
//!    [`crate::symbolic`], forking at conditionals with entailment-based
//!    branch pruning through the run's solver, [`crate::memo`] table and a
//!    fresh [`crate::budget::BudgetState`] of the run's shape). The
//!    candidate is accepted only if **every** reachable path executes no
//!    library call, reaches no loop, and broadcasts `notify false` exactly
//!    once per query. Reaching a call is fatal even when the call's value
//!    is irrelevant, because the VM evaluates connectives strictly: the real
//!    run would perform the call, and a fault plan could target it — a
//!    skipped record must be bit-identical in quarantine behavior too.
//!
//! The verifier reasons over mathematical integers while the VM wraps at
//! `i64` — the same modeling assumption the consolidation rules already
//! make; the runtime guard (`naiad-lite::guard`) continues to shadow-sample
//! skipped records, so the engine's safety net covers this gap as well.

use crate::budget::BudgetState;
use crate::rules::Options;
use crate::symbolic::{SymState, SymbolicCtx};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use udf_lang::analysis::{assigned_vars, notify_ids};
use udf_lang::ast::{BoolExpr, CmpOp, IntExpr, ProgId, Program, Stmt};
use udf_lang::cost::{Cost, CostModel, FnCost};
use udf_lang::intern::{Interner, Symbol};
use udf_obs::names;

/// Fork budget of the verifier: a candidate whose merged program forks more
/// than this many times under `¬P` is rejected (fail-open).
pub const MAX_VERIFY_FORKS: u64 = 512;

/// Static-cost ceiling for the synthesized condition (per record, under the
/// run's [`CostModel`] including the `prefilter` dispatch entry). A filter
/// more expensive than this cannot plausibly pay for itself.
pub const MAX_FILTER_COST: Cost = 4096;

/// A verified pre-filter attached to a consolidated plan.
///
/// `cond` is parameter-only, library-call-free and loop-free; a record on
/// which it evaluates to `false` is proved to make every query of the plan
/// broadcast `notify false` without executing any library call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prefilter {
    /// The filter condition over the shared parameter list.
    pub cond: BoolExpr,
    /// Number of queries the proof covers (all queries of the plan).
    pub queries: u32,
    /// Symbolic paths of the merged program the verifier discharged
    /// (zero when the filter was reloaded from a cached plan).
    pub paths_checked: u64,
    /// Entailment queries charged during verification (zero on reload).
    pub entailment_queries: u64,
}

/// Why a candidate pre-filter was not attached (all outcomes fail-open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reject {
    /// The extracted candidate folded to `true`: no atom over cheap record
    /// fields bounds any query, so there is nothing to push down.
    Trivial,
    /// The candidate's static evaluation cost exceeds [`MAX_FILTER_COST`].
    TooExpensive,
    /// Under `¬P` a path of the merged program reaches a library call; the
    /// strict VM would execute it, so the record cannot be skipped.
    ReachableCall,
    /// Under `¬P` a path reaches a loop; the skip fuel bound (one VM
    /// instruction per opcode of a loop-free path) would not hold.
    ReachableLoop,
    /// Under `¬P` a path broadcasts `notify true`, or fails to broadcast
    /// `notify false` exactly once for some query — the candidate is not a
    /// necessary condition after all (refuted).
    Refuted,
    /// The verifier exceeded [`MAX_VERIFY_FORKS`] symbolic forks.
    PathCap,
    /// The [`crate::budget::ConsolidationBudget`] ran out mid-verification;
    /// an unpruned fork under an exhausted budget proves nothing.
    Budget,
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Reject::Trivial => "candidate folded to true",
            Reject::TooExpensive => "candidate exceeds the static cost ceiling",
            Reject::ReachableCall => "a library call is reachable under the negated filter",
            Reject::ReachableLoop => "a loop is reachable under the negated filter",
            Reject::Refuted => "a path under the negated filter does not notify all-false",
            Reject::PathCap => "verifier fork cap exceeded",
            Reject::Budget => "consolidation budget exhausted during verification",
        };
        f.write_str(s)
    }
}

// ---------------------------------------------------------------------------
// Stage 1: candidate extraction.
// ---------------------------------------------------------------------------

/// Inlines `e` into a parameter-only, call-free expression using the map of
/// known parameter-defined locals; `None` when the expression depends on a
/// call or an untracked local.
fn inline_int(e: &IntExpr, env: &BTreeMap<Symbol, IntExpr>, params: &BTreeSet<Symbol>) -> Option<IntExpr> {
    match e {
        IntExpr::Const(c) => Some(IntExpr::Const(*c)),
        IntExpr::Var(v) => {
            if params.contains(v) {
                Some(IntExpr::Var(*v))
            } else {
                env.get(v).cloned()
            }
        }
        IntExpr::Call(..) => None,
        IntExpr::Bin(op, a, b) => {
            let a = inline_int(a, env, params)?;
            let b = inline_int(b, env, params)?;
            Some(IntExpr::Bin(*op, Box::new(a), Box::new(b)))
        }
    }
}

/// Polarity-aware widening: returns an upper bound of `e` when `pos` and a
/// lower bound when `!pos`, over parameters only. Atoms that cannot be
/// inlined are widened to the polarity constant.
fn approx(e: &BoolExpr, env: &BTreeMap<Symbol, IntExpr>, params: &BTreeSet<Symbol>, pos: bool) -> BoolExpr {
    match e {
        BoolExpr::Const(b) => BoolExpr::Const(*b),
        BoolExpr::Cmp(op, a, b) => match (inline_int(a, env, params), inline_int(b, env, params)) {
            (Some(a), Some(b)) => BoolExpr::Cmp(*op, a, b),
            _ => BoolExpr::Const(pos),
        },
        BoolExpr::Not(a) => BoolExpr::not(approx(a, env, params, !pos)),
        // Both connectives are monotone in both operands, so polarity
        // propagates unchanged.
        BoolExpr::Bin(op, a, b) => BoolExpr::Bin(
            *op,
            Box::new(approx(a, env, params, pos)),
            Box::new(approx(b, env, params, pos)),
        ),
    }
}

/// Constant folding plus idempotent-disjunct/conjunct collapse.
fn fold(e: BoolExpr) -> BoolExpr {
    use udf_lang::ast::BoolOp;
    match e {
        BoolExpr::Not(a) => match fold(*a) {
            BoolExpr::Const(b) => BoolExpr::Const(!b),
            a => BoolExpr::not(a),
        },
        BoolExpr::Bin(op, a, b) => {
            let a = fold(*a);
            let b = fold(*b);
            match (op, &a, &b) {
                (BoolOp::And, BoolExpr::Const(true), _) => b,
                (BoolOp::And, _, BoolExpr::Const(true)) => a,
                (BoolOp::And, BoolExpr::Const(false), _) | (BoolOp::And, _, BoolExpr::Const(false)) => {
                    BoolExpr::Const(false)
                }
                (BoolOp::Or, BoolExpr::Const(false), _) => b,
                (BoolOp::Or, _, BoolExpr::Const(false)) => a,
                (BoolOp::Or, BoolExpr::Const(true), _) | (BoolOp::Or, _, BoolExpr::Const(true)) => {
                    BoolExpr::Const(true)
                }
                _ if a == b => a,
                _ => BoolExpr::Bin(op, Box::new(a), Box::new(b)),
            }
        }
        e => e,
    }
}

/// Upper bound for "executing `s` from here may broadcast `notify true`",
/// over parameters only. Threads `env`, the map of locals currently known
/// to hold parameter-only values, through the walk.
fn may_notify_true(s: &Stmt, env: &mut BTreeMap<Symbol, IntExpr>, params: &BTreeSet<Symbol>) -> BoolExpr {
    match s {
        Stmt::Skip => BoolExpr::Const(false),
        Stmt::Notify(_, v) => BoolExpr::Const(*v),
        Stmt::Assign(x, e) => {
            match inline_int(e, env, params) {
                Some(val) => {
                    env.insert(*x, val);
                }
                None => {
                    env.remove(x);
                }
            }
            BoolExpr::Const(false)
        }
        Stmt::Seq(a, b) => {
            let na = may_notify_true(a, env, params);
            let nb = may_notify_true(b, env, params);
            fold(BoolExpr::or(na, nb))
        }
        Stmt::If(c, t, e) => {
            let up_then = approx(c, env, params, true);
            // Upper bound of ¬c is the negated lower bound of c.
            let up_else = BoolExpr::not(approx(c, env, params, false));
            let mut env_t = env.clone();
            let mut env_e = env.clone();
            let nt = may_notify_true(t, &mut env_t, params);
            let ne = may_notify_true(e, &mut env_e, params);
            // Keep only bindings both branches agree on.
            env.retain(|k, v| env_t.get(k) == Some(v) && env_e.get(k) == Some(v));
            fold(BoolExpr::or(BoolExpr::and(up_then, nt), BoolExpr::and(up_else, ne)))
        }
        Stmt::While(c, body) => {
            // A notification inside the loop requires (a) entering it at
            // least once — the guard true at its *first* evaluation, over
            // the pre-loop environment — and (b) some iteration's body to
            // notify. Locals assigned in the body are unknown from the
            // second iteration on, so the body is walked with them havocked;
            // the surviving bound is parameter-only, hence
            // iteration-invariant.
            let up_guard = approx(c, env, params, true);
            let mut benv = env.clone();
            for v in assigned_vars(body) {
                benv.remove(&v);
            }
            let nb = may_notify_true(body, &mut benv, params);
            for v in assigned_vars(body) {
                env.remove(&v);
            }
            fold(BoolExpr::and(up_guard, nb))
        }
    }
}

fn flatten_or(e: BoolExpr, out: &mut Vec<BoolExpr>) {
    use udf_lang::ast::BoolOp;
    match e {
        BoolExpr::Bin(BoolOp::Or, a, b) => {
            flatten_or(*a, out);
            flatten_or(*b, out);
        }
        other => out.push(other),
    }
}

/// One-sided threshold facts a disjunct can contribute about a key
/// expression, normalized to inclusive bounds (`k < e` ⇔ `k+1 ≤ e` over
/// `i64`; the saturating edge cases are constant-false atoms and drop out).
struct KeyBounds {
    key: IntExpr,
    lower: Option<i64>,
    upper: Option<i64>,
    eqs: Vec<i64>,
}

/// Interval-collapse for a disjunction: same-key threshold atoms merge into
/// at most one lower and one upper bound per key expression
/// (`40 ≤ a ∨ 60 ≤ a ∨ 55 ≤ a` becomes `40 ≤ a`), equality atoms subsumed
/// by a surviving bound drop, and a key whose lower bound falls at or below
/// its upper bound covers all of `i64`, collapsing the whole condition to
/// `⊤` (which the caller then rejects as trivial — fail-open).
///
/// The rewrite is an equivalence over the language's total-order `i64`
/// comparisons, and the candidate is call-free by construction, so strict
/// evaluation cannot observe the dropped atoms. Soundness does not rest on
/// that argument, though: the verifier runs on the *simplified* condition.
/// What the collapse buys is a guard the execution engine can evaluate in a
/// comparison or two — on well-consolidated families a 20-disjunct guard
/// costs as much as the merged program's own fast-fail path and would erase
/// the pushdown's win — plus fewer condition nodes for the verifier to fork
/// on.
fn simplify_or(e: BoolExpr) -> BoolExpr {
    let mut disjuncts = Vec::new();
    flatten_or(e, &mut disjuncts);
    let mut keys: Vec<KeyBounds> = Vec::new();
    let mut others: Vec<BoolExpr> = Vec::new();
    fn entry<'k>(keys: &'k mut Vec<KeyBounds>, key: &IntExpr) -> &'k mut KeyBounds {
        if let Some(i) = keys.iter().position(|kb| kb.key == *key) {
            &mut keys[i]
        } else {
            keys.push(KeyBounds {
                key: key.clone(),
                lower: None,
                upper: None,
                eqs: Vec::new(),
            });
            let last = keys.len() - 1;
            &mut keys[last]
        }
    }
    fn bound(keys: &mut Vec<KeyBounds>, key: &IntExpr, lower: bool, k: i64) {
        let kb = entry(keys, key);
        if lower {
            // Disjunction keeps the *weakest* (smallest) lower bound.
            kb.lower = Some(kb.lower.map_or(k, |cur| cur.min(k)));
        } else {
            kb.upper = Some(kb.upper.map_or(k, |cur| cur.max(k)));
        }
    }
    for d in &disjuncts {
        match d {
            BoolExpr::Const(true) => return BoolExpr::Const(true),
            BoolExpr::Const(false) => {}
            BoolExpr::Cmp(op, a, b) => match (a, b) {
                (IntExpr::Const(x), IntExpr::Const(y)) => {
                    if op.apply(*x, *y) {
                        return BoolExpr::Const(true);
                    }
                }
                (IntExpr::Const(k), e) => match op {
                    CmpOp::Le => bound(&mut keys, e, true, *k),
                    CmpOp::Lt if *k < i64::MAX => bound(&mut keys, e, true, *k + 1),
                    CmpOp::Lt => {} // MAX < e: constant false
                    CmpOp::Eq => entry(&mut keys, e).eqs.push(*k),
                },
                (e, IntExpr::Const(k)) => match op {
                    CmpOp::Le => bound(&mut keys, e, false, *k),
                    CmpOp::Lt if *k > i64::MIN => bound(&mut keys, e, false, *k - 1),
                    CmpOp::Lt => {} // e < MIN: constant false
                    CmpOp::Eq => entry(&mut keys, e).eqs.push(*k),
                },
                _ => {
                    if !others.contains(d) {
                        others.push(d.clone());
                    }
                }
            },
            _ => {
                if !others.contains(d) {
                    others.push(d.clone());
                }
            }
        }
    }
    let mut out = BoolExpr::Const(false);
    let or_in = |e: BoolExpr, out: &mut BoolExpr| {
        *out = fold(BoolExpr::or(std::mem::replace(out, BoolExpr::Const(false)), e));
    };
    for kb in keys {
        if let (Some(l), Some(u)) = (kb.lower, kb.upper) {
            if l <= u {
                // `l ≤ e ∨ e ≤ u` with `l ≤ u` covers every i64 value.
                return BoolExpr::Const(true);
            }
        }
        if let Some(l) = kb.lower {
            or_in(
                BoolExpr::Cmp(CmpOp::Le, IntExpr::Const(l), kb.key.clone()),
                &mut out,
            );
        }
        if let Some(u) = kb.upper {
            or_in(
                BoolExpr::Cmp(CmpOp::Le, kb.key.clone(), IntExpr::Const(u)),
                &mut out,
            );
        }
        let mut seen: Vec<i64> = Vec::new();
        for k in kb.eqs {
            let covered = kb.lower.is_some_and(|l| l <= k)
                || kb.upper.is_some_and(|u| k <= u)
                || seen.contains(&k);
            if !covered {
                seen.push(k);
                or_in(
                    BoolExpr::Cmp(CmpOp::Eq, kb.key.clone(), IntExpr::Const(k)),
                    &mut out,
                );
            }
        }
    }
    for d in others {
        or_in(d, &mut out);
    }
    out
}

/// Extracts the candidate `P = ⋁ᵢ NCᵢ` from the original query programs.
/// Public so tests and tools can inspect the unverified candidate.
pub fn candidate(originals: &[Program]) -> BoolExpr {
    let mut p = BoolExpr::Const(false);
    for prog in originals {
        let params: BTreeSet<Symbol> = prog.params.iter().copied().collect();
        let mut env = BTreeMap::new();
        let nc = may_notify_true(&prog.body, &mut env, &params);
        p = fold(BoolExpr::or(p, nc));
    }
    simplify_or(p)
}

// ---------------------------------------------------------------------------
// Stage 2: verification.
// ---------------------------------------------------------------------------

fn int_has_call(e: &IntExpr) -> bool {
    match e {
        IntExpr::Const(_) | IntExpr::Var(_) => false,
        IntExpr::Call(..) => true,
        IntExpr::Bin(_, a, b) => int_has_call(a) || int_has_call(b),
    }
}

fn bool_has_call(e: &BoolExpr) -> bool {
    match e {
        BoolExpr::Const(_) => false,
        BoolExpr::Cmp(_, a, b) => int_has_call(a) || int_has_call(b),
        BoolExpr::Not(a) => bool_has_call(a),
        BoolExpr::Bin(_, a, b) => bool_has_call(a) || bool_has_call(b),
    }
}

struct VerifyPath<'a> {
    st: SymState,
    /// Continuation, innermost next statement last.
    k: Vec<&'a Stmt>,
    /// Per query (indexed like `ids`): has `notify false` been broadcast.
    notified: Vec<bool>,
}

/// Verifies a candidate against the merged program: symbolically executes
/// `merged` under `¬cond` and demands that every reachable path is
/// call-free and loop-free and broadcasts `notify false` exactly once per
/// query. Returns `(paths_checked, entailment_queries)` on success.
///
/// Exposed so regression tests can feed deliberately-unsound candidates and
/// assert they are rejected, never applied.
///
/// # Errors
///
/// Returns the [`Reject`] reason when the candidate cannot be proved sound;
/// callers must fall back to running the merged program on every record.
pub fn verify_candidate(
    cond: &BoolExpr,
    merged: &Program,
    interner: &Interner,
    opts: &Options,
) -> Result<(u64, u64), Reject> {
    let mut cx = SymbolicCtx::new(interner, opts.mode);
    cx.set_recorder(opts.recorder.clone());
    let mut solver = opts.solver.clone();
    if opts.recorder.enabled() {
        solver.recorder = opts.recorder.clone();
    }
    cx.set_solver(solver);
    // A fresh budget of the run's shape: verification is bounded exactly
    // like consolidation itself, and exhaustion fails open.
    cx.set_budget(Arc::new(BudgetState::new(&opts.budget)));
    if let Some(m) = &opts.memo {
        cx.set_memo(Arc::clone(m));
        let mut scope: Vec<u32> = notify_ids(&merged.body).iter().map(|id| id.0).collect();
        scope.sort_unstable();
        cx.set_memo_scope(scope);
    }
    let ids: Vec<ProgId> = notify_ids(&merged.body).into_iter().collect();
    let mut st = SymState::initial(&mut cx, &merged.params);
    st.assume_not(&mut cx, cond);

    let mut forks = 0u64;
    let mut paths_done = 0u64;
    let mut work = vec![VerifyPath {
        st,
        k: vec![&merged.body],
        notified: vec![false; ids.len()],
    }];
    while let Some(mut p) = work.pop() {
        loop {
            let Some(s) = p.k.pop() else {
                // Path end: every query must have broadcast `notify false`.
                if p.notified.iter().all(|&b| b) {
                    paths_done += 1;
                    break;
                }
                return Err(Reject::Refuted);
            };
            match s {
                Stmt::Skip => {}
                Stmt::Seq(a, b) => {
                    p.k.push(b);
                    p.k.push(a);
                }
                Stmt::Assign(x, e) => {
                    if int_has_call(e) {
                        return Err(Reject::ReachableCall);
                    }
                    p.st.assign(&mut cx, *x, e);
                }
                Stmt::Notify(id, v) => {
                    if *v {
                        return Err(Reject::Refuted);
                    }
                    let Some(idx) = ids.iter().position(|i| i == id) else {
                        return Err(Reject::Refuted);
                    };
                    if p.notified[idx] {
                        return Err(Reject::Refuted);
                    }
                    p.notified[idx] = true;
                }
                Stmt::While(..) => return Err(Reject::ReachableLoop),
                Stmt::If(c, t, e) => {
                    if bool_has_call(c) {
                        return Err(Reject::ReachableCall);
                    }
                    if cx.budget_exhausted() {
                        return Err(Reject::Budget);
                    }
                    let f = cx.formula_of_bool(&p.st, c);
                    let nf = cx.smt.not(f);
                    if cx.entails(&p.st, f) {
                        p.st.assume_formula(&mut cx, f);
                        p.k.push(t);
                    } else if cx.entails(&p.st, nf) {
                        p.st.assume_formula(&mut cx, nf);
                        p.k.push(e);
                    } else {
                        forks += 1;
                        if forks > MAX_VERIFY_FORKS {
                            return Err(Reject::PathCap);
                        }
                        let mut q = VerifyPath {
                            st: p.st.clone(),
                            k: p.k.clone(),
                            notified: p.notified.clone(),
                        };
                        q.st.assume_formula(&mut cx, nf);
                        q.k.push(e);
                        work.push(q);
                        p.st.assume_formula(&mut cx, f);
                        p.k.push(t);
                    }
                }
            }
        }
    }
    Ok((paths_done, cx.entailment_queries()))
}

// ---------------------------------------------------------------------------
// Entry point.
// ---------------------------------------------------------------------------

/// Synthesizes and verifies a pre-filter for a consolidated plan.
///
/// `originals` are the per-query input programs (the candidate is extracted
/// from them), `merged` the consolidated output (the proof runs against it).
/// Metrics land in `opts.recorder` under the `prefilter.*` names.
///
/// # Errors
///
/// Returns the fail-open [`Reject`] reason when no sound pre-filter could
/// be attached; the plan then executes exactly as without this pass.
pub fn synthesize(
    originals: &[Program],
    merged: &Program,
    interner: &Interner,
    cm: &CostModel,
    fns: &dyn FnCost,
    opts: &Options,
) -> Result<Prefilter, Reject> {
    let _span = opts.recorder.span(names::PREFILTER_NS);
    let cond = candidate(originals);
    let r = synthesize_checked(&cond, originals, merged, interner, cm, fns, opts);
    match &r {
        Ok(pf) => {
            opts.recorder.add(names::PREFILTER_SYNTHESIZED, 1);
            opts.recorder.observe(names::PREFILTER_PATHS, pf.paths_checked);
        }
        Err(Reject::Trivial) => opts.recorder.add(names::PREFILTER_TRIVIAL, 1),
        Err(_) => opts.recorder.add(names::PREFILTER_REJECTED, 1),
    }
    r
}

fn synthesize_checked(
    cond: &BoolExpr,
    originals: &[Program],
    merged: &Program,
    interner: &Interner,
    cm: &CostModel,
    fns: &dyn FnCost,
    opts: &Options,
) -> Result<Prefilter, Reject> {
    if matches!(cond, BoolExpr::Const(true)) {
        return Err(Reject::Trivial);
    }
    if cm.prefilter + cm.bool_expr_cost(cond, fns) > MAX_FILTER_COST {
        return Err(Reject::TooExpensive);
    }
    let (paths_checked, entailment_queries) = verify_candidate(cond, merged, interner, opts)?;
    Ok(Prefilter {
        cond: cond.clone(),
        queries: u32::try_from(originals.len()).unwrap_or(u32::MAX),
        paths_checked,
        entailment_queries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use udf_lang::ast::CmpOp;
    use udf_lang::cost::UniformFnCost;
    use udf_lang::parse::parse_program;

    fn prog(src: &str, i: &mut Interner) -> Program {
        parse_program(src, i).expect("parse")
    }

    #[test]
    fn candidate_of_param_only_query_is_its_guard() {
        let mut i = Interner::new();
        let p = prog(
            "program q @1 (x) { if (x >= 5) { notify true; } else { notify false; } }",
            &mut i,
        );
        let c = candidate(std::slice::from_ref(&p));
        let x = i.intern("x");
        assert_eq!(c, BoolExpr::Cmp(CmpOp::Le, IntExpr::Const(5), IntExpr::Var(x)));
    }

    #[test]
    fn candidate_widens_call_atoms_to_true() {
        let mut i = Interner::new();
        let p = prog(
            "program q @1 (x) { if (f(x) >= 5) { notify true; } else { notify false; } }",
            &mut i,
        );
        assert_eq!(candidate(std::slice::from_ref(&p)), BoolExpr::Const(true));
    }

    #[test]
    fn candidate_keeps_cheap_conjunct_of_nested_guard() {
        let mut i = Interner::new();
        // Cheap test outside, call guarded inside: NC = x >= 5.
        let p = prog(
            "program q @1 (x) { if (x >= 5) { if (f(x) >= 2) { notify true; } else { notify false; } } else { notify false; } }",
            &mut i,
        );
        let x = i.intern("x");
        assert_eq!(
            candidate(std::slice::from_ref(&p)),
            BoolExpr::Cmp(CmpOp::Le, IntExpr::Const(5), IntExpr::Var(x))
        );
    }

    #[test]
    fn candidate_inlines_param_defined_locals() {
        let mut i = Interner::new();
        let p = prog(
            "program q @1 (x) { y := x + 1; if (y >= 5) { notify true; } else { notify false; } }",
            &mut i,
        );
        let c = candidate(std::slice::from_ref(&p));
        // y inlined to x + 1: candidate stays parameter-only.
        let x = i.intern("x");
        let mut vars = BTreeSet::new();
        udf_lang::analysis::bool_expr_vars(&c, &mut vars);
        assert_eq!(vars.into_iter().collect::<Vec<_>>(), vec![x]);
        assert!(!bool_has_call(&c));
    }

    #[test]
    fn synthesize_accepts_and_verifier_counts_paths() {
        let mut i = Interner::new();
        let a = prog(
            "program a @1 (x) { if (x >= 5) { notify true; } else { notify false; } }",
            &mut i,
        );
        let b = prog(
            "program b @2 (x) { if (x >= 9) { notify true; } else { notify false; } }",
            &mut i,
        );
        let opts = Options::default();
        let cm = CostModel::default();
        let fns = UniformFnCost(50);
        let merged = crate::consolidate_many(
            &[a.clone(), b.clone()],
            &mut i,
            &cm,
            &fns,
            &opts,
            false,
        )
        .expect("consolidate");
        let pf = synthesize(&[a, b], &merged.program, &i, &cm, &fns, &opts).expect("prefilter");
        assert!(pf.paths_checked >= 1);
        assert_eq!(pf.queries, 2);
        // The raw candidate is the disjunction of the two guards
        // (x >= 5 || x >= 9); interval collapse keeps the weakest bound.
        let x = i.intern("x");
        assert_eq!(
            pf.cond,
            BoolExpr::Cmp(CmpOp::Le, IntExpr::Const(5), IntExpr::Var(x)),
        );
    }

    #[test]
    fn candidate_collapses_threshold_disjuncts() {
        let mut i = Interner::new();
        let progs: Vec<Program> = [7i64, 3, 11]
            .iter()
            .map(|k| {
                prog(
                    &format!(
                        "program a @1 (x) {{ if (x >= {k}) {{ notify true; }} else {{ notify false; }} }}"
                    ),
                    &mut i,
                )
            })
            .collect();
        let x = i.intern("x");
        // Three same-param lower bounds merge into the weakest one.
        assert_eq!(
            candidate(&progs),
            BoolExpr::Cmp(CmpOp::Le, IntExpr::Const(3), IntExpr::Var(x)),
        );
    }

    #[test]
    fn covering_bounds_collapse_to_trivial() {
        let mut i = Interner::new();
        // x >= 10 ∨ x <= 20 covers every i64 — the candidate folds to ⊤
        // and synthesis fails open.
        let a = prog(
            "program a @1 (x) { if (x >= 10) { notify true; } else { notify false; } }",
            &mut i,
        );
        let b = prog(
            "program b @2 (x) { if (x <= 20) { notify true; } else { notify false; } }",
            &mut i,
        );
        assert_eq!(candidate(&[a.clone(), b.clone()]), BoolExpr::Const(true));
        let opts = Options::default();
        let cm = CostModel::default();
        let fns = UniformFnCost(50);
        let merged = crate::consolidate_many(&[a.clone(), b.clone()], &mut i, &cm, &fns, &opts, false)
            .expect("consolidate");
        assert_eq!(
            synthesize(&[a, b], &merged.program, &i, &cm, &fns, &opts),
            Err(Reject::Trivial)
        );
    }

    #[test]
    fn unsound_candidate_is_refuted() {
        let mut i = Interner::new();
        let a = prog(
            "program a @1 (x) { if (x >= 3) { notify true; } else { notify false; } }",
            &mut i,
        );
        let opts = Options::default();
        let cm = CostModel::default();
        let fns = UniformFnCost(50);
        let merged =
            crate::consolidate_many(std::slice::from_ref(&a), &mut i, &cm, &fns, &opts, false)
                .expect("consolidate");
        // Deliberately wrong: claims only x >= 5 can notify, but x = 4 does.
        let x = i.intern("x");
        let bogus = BoolExpr::Cmp(CmpOp::Le, IntExpr::Const(5), IntExpr::Var(x));
        assert_eq!(
            verify_candidate(&bogus, &merged.program, &i, &opts),
            Err(Reject::Refuted)
        );
    }

    #[test]
    fn call_reachable_under_negation_is_rejected() {
        let mut i = Interner::new();
        // The call is unconditional: no record can skip it.
        let a = prog(
            "program a @1 (x) { s := f(x); if (x >= 5) { if (s >= 2) { notify true; } else { notify false; } } else { notify false; } }",
            &mut i,
        );
        let opts = Options::default();
        let x = i.intern("x");
        let cand = BoolExpr::Cmp(CmpOp::Le, IntExpr::Const(5), IntExpr::Var(x));
        assert_eq!(
            verify_candidate(&cand, &a, &i, &opts),
            Err(Reject::ReachableCall)
        );
    }

    #[test]
    fn trivial_candidate_fails_open() {
        let mut i = Interner::new();
        let a = prog(
            "program a @1 (x) { if (f(x) >= 5) { notify true; } else { notify false; } }",
            &mut i,
        );
        let opts = Options::default();
        let cm = CostModel::default();
        let fns = UniformFnCost(50);
        assert_eq!(
            synthesize(std::slice::from_ref(&a), &a, &i, &cm, &fns, &opts),
            Err(Reject::Trivial)
        );
    }
}
