//! The consolidation algorithm Ω (paper Figure 8) over the calculus of
//! Figures 5 and 7.
//!
//! The engine consumes two statements left-to-right, maintaining the context
//! `Ψ` as the strongest postcondition of everything already emitted:
//!
//! * non-control statements of the first program are simplified
//!   (cross-simplification, Figure 3) and consumed into `Ψ` (Assign/Step);
//! * when the first program is exhausted, the commutativity rule swaps the
//!   arguments so the second program is simplified under the accumulated `Ψ`;
//! * conditionals dispatch on entailment (If 1/If 2) and otherwise on the
//!   `related` heuristic between If 3 (embed everything — maximal sharing,
//!   maximal code growth), the derived If 4 (embed only the second program)
//!   and If 5 (no embedding);
//! * loop pairs try Loop 2 (provably equal trip counts) and Loop 3 (provably
//!   ordered trip counts) using an inferred invariant of the fused loop, and
//!   fall back to sequential execution with per-loop self-simplification.
//!
//! Every rewrite the engine performs is justified by an `Ψ ⊨ ·` validity
//! query and a static cost comparison, so the consolidated program never
//! costs more than the sequential composition (Theorem 1); the property
//! tests in `tests/` exercise exactly that invariant.

use crate::explain::ExplainEntry;
use crate::invariants::{self, InvOptions};
use crate::simplify::{self, is_false, is_true, SimplifyOptions};
use crate::symbolic::{EntailmentMode, SymState, SymbolicCtx};
use std::collections::BTreeSet;
use udf_obs::names;
use udf_lang::analysis::{assigned_vars, bool_expr_fns, bool_expr_vars, called_fns, read_vars};
use udf_lang::ast::{BoolExpr, Stmt};
use udf_lang::cost::{CostModel, FnCost};
use udf_lang::intern::Symbol;

/// Which If rule to use when `Ψ` decides neither branch (If 3/4/5 trade
/// cross-simplification opportunities against code size).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IfPolicy {
    /// The paper's heuristic: If 3 when both the test and the remainder are
    /// related to the other program, If 4 when only the test is, If 5
    /// otherwise.
    #[default]
    Heuristic,
    /// Always embed everything (maximal sharing, exponential worst-case
    /// size).
    AlwaysIf3,
    /// Always use the derived If 4.
    AlwaysIf4,
    /// Never embed (minimal size, fewest rewrites).
    AlwaysIf5,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct Options {
    /// Entailment mode (SMT vs the syntactic ablation).
    pub mode: EntailmentMode,
    /// Cross-simplification limits.
    pub simplify: SimplifyOptions,
    /// Invariant inference limits.
    pub inv: InvOptions,
    /// Enable Loop 2/Loop 3 fusion (ablation switch).
    pub loop_fusion: bool,
    /// If-rule dispatch policy.
    pub if_policy: IfPolicy,
    /// Node-count guard: If 3 is demoted to If 4 when embedding would copy
    /// more than this many AST nodes.
    pub if3_size_limit: usize,
    /// Recursion depth guard; beyond it the engine emits the remaining
    /// statements verbatim (always sound).
    pub max_depth: usize,
    /// Entailment-query budget per pair consolidation. If 3/If 4 embedding
    /// re-consolidates the second program inside both branches, which can
    /// explore exponentially many contexts on long conditional chains even
    /// when the *output* stays small (If 1/If 2 prune most of it). When the
    /// budget runs out the engine emits the remaining statements verbatim —
    /// always sound, merely less optimized.
    pub max_pair_queries: u64,
    /// Run-wide resource budget (deadline / solver queries / rule depth);
    /// exhaustion degrades the output along the lattice documented in
    /// [`crate::budget`] instead of erroring or hanging.
    pub budget: crate::budget::ConsolidationBudget,
    /// The SMT solver configuration used for entailment checks (resource
    /// limits, fault-injection hooks). Cloned into each pair consolidation.
    pub solver: udf_smt::Solver,
    /// Shared entailment memo table. `consolidate_many` installs one
    /// automatically when absent; callers that keep a handle across runs
    /// (e.g. the plan cache) make later runs reuse earlier verdicts. Do not
    /// share one table across differing solver configurations: a "not
    /// proved" verdict recorded under tight resource limits would mask what
    /// a larger budget could prove (sound, but needlessly conservative).
    pub memo: Option<std::sync::Arc<crate::memo::EntailmentMemo>>,
    /// Metrics sink shared by the engine, the symbolic context and (when
    /// enabled) the SMT solver of each pair. No-op by default; install
    /// [`udf_obs::RecorderCell::memory`] to collect. Clones share one sink,
    /// so parallel pair threads aggregate into a single snapshot.
    pub recorder: udf_obs::RecorderCell,
    /// Record the full rule-derivation tree (which rule fired at each AST
    /// node and which entailments justified it) into
    /// [`crate::api::Consolidated::explain`]. Off by default: tracing
    /// allocates per rule commit and renders every queried formula.
    pub explain: bool,
    /// Synthesize a sound cross-query pre-filter for the consolidated plan
    /// (see [`crate::prefilter`]). Fail-open: when no candidate verifies,
    /// the plan runs exactly as with the knob off. Off by default.
    pub prefilter: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            mode: EntailmentMode::Smt,
            simplify: SimplifyOptions::default(),
            inv: InvOptions::default(),
            loop_fusion: true,
            if_policy: IfPolicy::default(),
            if3_size_limit: 768,
            max_depth: 512,
            max_pair_queries: 900,
            budget: crate::budget::ConsolidationBudget::UNLIMITED,
            solver: udf_smt::Solver::new(),
            memo: None,
            recorder: udf_obs::RecorderCell::noop(),
            explain: false,
            prefilter: false,
        }
    }
}

/// Rule application counters (how the consolidation was achieved).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleStats {
    /// If 1/If 2 eliminations (dead branches).
    pub if_eliminated: u64,
    /// If 3 applications.
    pub if3: u64,
    /// If 4 applications.
    pub if4: u64,
    /// If 5 applications.
    pub if5: u64,
    /// Loop 2 fusions.
    pub loop2: u64,
    /// Loop 3 fusions.
    pub loop3: u64,
    /// Loop pairs executed sequentially.
    pub loop_seq: u64,
    /// Depth-guard fallbacks (verbatim emission).
    pub depth_fallbacks: u64,
    /// Budget-exhaustion fallbacks (verbatim emission because the run's
    /// [`crate::budget::ConsolidationBudget`] ran out).
    pub budget_fallbacks: u64,
}

/// The Ω engine.
pub struct Engine<'c, 'i> {
    cx: &'c mut SymbolicCtx<'i>,
    cm: &'c CostModel,
    fns: &'c dyn FnCost,
    opts: &'c Options,
    params: BTreeSet<Symbol>,
    query_base: u64,
    /// Rule application counters.
    pub stats: RuleStats,
    /// Flat derivation trace, present iff `opts.explain` is set.
    trace: Option<Vec<ExplainEntry>>,
}

impl<'c, 'i> std::fmt::Debug for Engine<'c, 'i> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine").field("stats", &self.stats).finish_non_exhaustive()
    }
}

impl<'c, 'i> Engine<'c, 'i> {
    /// Creates an engine. `params` are the shared input parameters `ᾱ`
    /// (used by the `related` heuristic).
    pub fn new(
        cx: &'c mut SymbolicCtx<'i>,
        cm: &'c CostModel,
        fns: &'c dyn FnCost,
        opts: &'c Options,
        params: impl IntoIterator<Item = Symbol>,
    ) -> Engine<'c, 'i> {
        let query_base = cx.entailment_queries();
        if opts.explain {
            cx.enable_explain();
        }
        Engine {
            cx,
            cm,
            fns,
            opts,
            params: params.into_iter().collect(),
            query_base,
            stats: RuleStats::default(),
            trace: opts.explain.then(Vec::new),
        }
    }

    /// Takes the flat derivation trace recorded so far (empty unless
    /// `opts.explain` was set; see [`crate::explain::build_tree`]).
    pub fn take_trace(&mut self) -> Vec<ExplainEntry> {
        self.trace.take().unwrap_or_default()
    }

    /// Whether the engine is recording a derivation trace.
    fn explain_on(&self) -> bool {
        self.trace.is_some()
    }

    /// Counts a committed rule in the metrics sink and, in explain mode,
    /// appends a derivation entry justified by every entailment event since
    /// the previous commit.
    fn note_rule(&mut self, depth: usize, metric: &'static str, rule: &'static str, detail: String) {
        self.opts.recorder.add(metric, 1);
        if self.trace.is_some() {
            let entailments = self.cx.drain_explain();
            if let Some(trace) = &mut self.trace {
                trace.push(ExplainEntry {
                    depth,
                    rule,
                    detail,
                    entailments,
                });
            }
        }
    }

    /// Pretty-prints a guard for explain details (empty when explain is off,
    /// so the hot path never allocates).
    fn detail_bool(&self, e: &BoolExpr) -> String {
        if self.explain_on() {
            udf_lang::pretty::bool_expr(e, self.cx.interner())
        } else {
            String::new()
        }
    }

    fn simp_int(&mut self, st: &SymState, e: &udf_lang::ast::IntExpr) -> udf_lang::ast::IntExpr {
        simplify::simplify_int(self.cx, st, e, self.cm, self.fns, &self.opts.simplify)
    }

    fn simp_bool(&mut self, st: &SymState, e: &BoolExpr) -> BoolExpr {
        simplify::simplify_bool(self.cx, st, e, self.cm, self.fns, &self.opts.simplify)
    }

    /// `related(a, b)`: do the two fragments share a library function or a
    /// shared input parameter? (The paper's heuristic for deciding whether
    /// embedding can pay off.)
    fn related(
        &self,
        fns_a: &BTreeSet<Symbol>,
        vars_a: &BTreeSet<Symbol>,
        fns_b: &BTreeSet<Symbol>,
        vars_b: &BTreeSet<Symbol>,
    ) -> bool {
        if fns_a.intersection(fns_b).next().is_some() {
            return true;
        }
        vars_a
            .intersection(vars_b)
            .any(|v| self.params.contains(v))
    }

    /// Relatedness of a test predicate to the other program. Deliberately
    /// *syntactic* (shared function symbols or shared parameters in the
    /// predicate itself): tests over locals defined from shared functions
    /// are handled by assignment-level memoization instead, and treating
    /// them as related here makes every query of a family embed into every
    /// other, exploding both analysis time and output size.
    fn related_expr_stmt(&self, e: &BoolExpr, s: &Stmt) -> bool {
        let mut fns_a = BTreeSet::new();
        bool_expr_fns(e, &mut fns_a);
        let mut vars_a = BTreeSet::new();
        bool_expr_vars(e, &mut vars_a);
        self.related(&fns_a, &vars_a, &called_fns(s), &read_vars(s))
    }

    fn related_stmt_stmt(&self, a: &Stmt, b: &Stmt) -> bool {
        self.related(&called_fns(a), &read_vars(a), &called_fns(b), &read_vars(b))
    }

    /// Consolidates `s1 ⊗ s2` under `st`, returning the merged statement.
    /// This is `Ω′` from Figure 8.
    pub fn omega(&mut self, st: SymState, s1: Stmt, s2: Stmt, depth: usize) -> Stmt {
        if self.cx.budget_exhausted()
            || self
                .opts
                .budget
                .max_rule_depth
                .is_some_and(|limit| depth > limit)
        {
            self.stats.budget_fallbacks += 1;
            self.note_rule(depth, names::RULE_BUDGET_FALLBACK, "BudgetFallback", String::new());
            return s1.then(s2);
        }
        if depth > self.opts.max_depth
            || self.cx.entailment_queries() - self.query_base > self.opts.max_pair_queries
        {
            self.stats.depth_fallbacks += 1;
            self.note_rule(depth, names::RULE_DEPTH_FALLBACK, "DepthFallback", String::new());
            return s1.then(s2);
        }
        let (h1, t1) = s1.split_head();
        // Seq: a compound first program is consumed head-first; the head's
        // rule and the tail's consolidation both appear under this entry.
        if !t1.is_skip() && !matches!(h1, Stmt::Skip) {
            self.note_rule(depth, names::RULE_SEQ, "Seq", String::new());
        }
        match h1 {
            // Lines 4–6: skip handling and commutation when the first
            // program is exhausted.
            Stmt::Skip => {
                if t1.is_skip() {
                    if s2.is_skip() {
                        return Stmt::Skip;
                    }
                    self.note_rule(depth, names::RULE_COM, "Com", String::new());
                    return self.omega(st, s2, Stmt::Skip, depth + 1);
                }
                self.note_rule(depth, names::RULE_SKIP, "Skip", String::new());
                self.omega(st, t1, s2, depth + 1)
            }
            // Line 7: Assign — simplify, emit, absorb into Ψ.
            Stmt::Assign(x, e) => {
                let e = self.simp_int(&st, &e);
                let detail = if self.explain_on() {
                    format!(
                        "{} := {}",
                        self.cx.interner().resolve(x),
                        udf_lang::pretty::int_expr(&e, self.cx.interner())
                    )
                } else {
                    String::new()
                };
                self.note_rule(depth, names::RULE_ASSIGN, "Assign", detail);
                let mut st2 = st;
                st2.assign(self.cx, x, &e);
                Stmt::Assign(x, e).then(self.omega(st2, t1, s2, depth + 1))
            }
            // Line 8: Step over notifications (broadcast as early as
            // possible; `sp` is transparent for them).
            notify @ Stmt::Notify(..) => {
                let detail = if self.explain_on() {
                    "notify".to_owned()
                } else {
                    String::new()
                };
                self.note_rule(depth, names::RULE_STEP, "Step", detail);
                notify.then(self.omega(st, t1, s2, depth + 1))
            }
            Stmt::If(c, l, r) => self.consolidate_if(st, c, *l, *r, t1, s2, depth),
            Stmt::While(g, b) => self.consolidate_while(st, g, *b, t1, s2, depth),
            Stmt::Seq(..) => unreachable!("split_head never returns a sequence head"),
        }
    }

    /// Lines 9–18: conditional dispatch.
    #[allow(clippy::too_many_arguments)]
    fn consolidate_if(
        &mut self,
        st: SymState,
        c: BoolExpr,
        l: Stmt,
        r: Stmt,
        t1: Stmt,
        s2: Stmt,
        depth: usize,
    ) -> Stmt {
        let c_s = self.simp_bool(&st, &c);
        if is_true(&c_s) {
            // If 1: the else branch is dead and the test is free.
            self.stats.if_eliminated += 1;
            let d = self.detail_bool(&c);
            self.note_rule(depth, names::RULE_IF1, "If1", d);
            return self.omega(st, l.then(t1), s2, depth + 1);
        }
        if is_false(&c_s) {
            // If 2.
            self.stats.if_eliminated += 1;
            let d = self.detail_bool(&c);
            self.note_rule(depth, names::RULE_IF2, "If2", d);
            return self.omega(st, r.then(t1), s2, depth + 1);
        }
        let mut then_st = st.clone();
        then_st.assume(self.cx, &c_s);
        let mut else_st = st.clone();
        else_st.assume_not(self.cx, &c_s);

        let embed_size = t1.size() + s2.size();
        let choice = match self.opts.if_policy {
            IfPolicy::AlwaysIf3 => 3,
            IfPolicy::AlwaysIf4 => 4,
            IfPolicy::AlwaysIf5 => 5,
            IfPolicy::Heuristic => {
                if self.related_expr_stmt(&c_s, &s2) && embed_size <= self.opts.if3_size_limit {
                    if self.related_stmt_stmt(&t1, &s2) {
                        3
                    } else {
                        4
                    }
                } else {
                    // Unrelated test, or embedding would duplicate too much
                    // code (both If 3 and If 4 copy the second program into
                    // both branches): fall back to the derived If 5.
                    5
                }
            }
        };
        match choice {
            // If 3: embed the remainder of program 1 *and* program 2 in both
            // branches.
            3 if embed_size <= self.opts.if3_size_limit => {
                self.stats.if3 += 1;
                let d = self.detail_bool(&c_s);
                self.note_rule(depth, names::RULE_IF3, "If3", d);
                let s_then = self.omega(then_st, l.then(t1.clone()), s2.clone(), depth + 1);
                let s_else = self.omega(else_st, r.then(t1), s2, depth + 1);
                Stmt::ite(c_s, s_then, s_else)
            }
            // If 4: embed only program 2; program 1's remainder follows the
            // conditional (consolidated with nothing, exactly as in the
            // derived rule).
            3 | 4 if s2.size() <= self.opts.if3_size_limit => {
                self.stats.if4 += 1;
                let d = self.detail_bool(&c_s);
                self.note_rule(depth, names::RULE_IF4, "If4", d);
                let s_then = self.omega(then_st, l, s2.clone(), depth + 1);
                let s_else = self.omega(else_st, r, s2, depth + 1);
                let mut post = st;
                // Branches may assign; havoc them for the continuation.
                let mut written = assigned_vars(&s_then);
                written.extend(assigned_vars(&s_else));
                post.havoc(written);
                let rest = self.omega(post, t1, Stmt::Skip, depth + 1);
                Stmt::ite(c_s, s_then, s_else).then(rest)
            }
            // If 5: no embedding — self-simplify the branches, then continue
            // consolidating the remainders after the conditional.
            _ => {
                self.stats.if5 += 1;
                let d = self.detail_bool(&c_s);
                self.note_rule(depth, names::RULE_IF5, "If5", d);
                let l_s = self.omega(then_st, l, Stmt::Skip, depth + 1);
                let r_s = self.omega(else_st, r, Stmt::Skip, depth + 1);
                let mut post = st;
                let mut written = assigned_vars(&l_s);
                written.extend(assigned_vars(&r_s));
                post.havoc(written);
                let rest = self.omega(post, t1, s2, depth + 1);
                Stmt::ite(c_s, l_s, r_s).then(rest)
            }
        }
    }

    /// Lines 19–32: loops.
    fn consolidate_while(
        &mut self,
        st: SymState,
        g1: BoolExpr,
        b1: Stmt,
        t1: Stmt,
        s2: Stmt,
        depth: usize,
    ) -> Stmt {
        let (h2, t2) = s2.split_head();
        if let Stmt::While(g2, b2) = h2 {
            let b2 = *b2;
            if self.opts.loop_fusion {
                if let Some(out) =
                    self.try_fuse_loops(&st, &g1, &b1, &t1, &g2, &b2, &t2, depth)
                {
                    return out;
                }
            }
            // Lines 29–31: no provable trip-count relation — run the loops
            // sequentially (each self-simplified), then consolidate the
            // remainders.
            self.stats.loop_seq += 1;
            let d = self.detail_bool(&g1);
            self.note_rule(depth, names::RULE_LOOP_SEQ, "LoopSeq", d);
            let (st_a, w1) = self.emit_loop_self(st, g1, b1, depth);
            let (st_b, w2) = self.emit_loop_self(st_a, g2, b2, depth);
            let rest = self.omega(st_b, t1, t2, depth + 1);
            return w1.then(w2).then(rest);
        }
        let s2 = h2.then(t2);
        if s2.is_skip() {
            // `while ⊗ skip`: self-simplify and continue (breaks the Com
            // cycle of the raw calculus).
            let d = self.detail_bool(&g1);
            self.note_rule(depth, names::RULE_LOOP1, "Loop1", d);
            let (st2, w) = self.emit_loop_self(st, g1, b1, depth);
            return w.then(self.omega(st2, t1, Stmt::Skip, depth + 1));
        }
        // Line 32: the second program does not start with a loop — commute
        // so its prefix is consumed first.
        self.note_rule(depth, names::RULE_COM, "Com", String::new());
        self.omega(st, s2, Stmt::While(g1, Box::new(b1)).then(t1), depth + 1)
    }

    /// Loop 2 / Loop 3 (Figure 7). Returns `None` when no premise can be
    /// discharged.
    #[allow(clippy::too_many_arguments)]
    fn try_fuse_loops(
        &mut self,
        st: &SymState,
        g1: &BoolExpr,
        b1: &Stmt,
        t1: &Stmt,
        g2: &BoolExpr,
        b2: &Stmt,
        t2: &Stmt,
        depth: usize,
    ) -> Option<Stmt> {
        let head = invariants::infer(self.cx, st, g1, b1, Some(g2), Some(b2), &self.opts.inv);
        let psi1 = head.state;
        // Build ¬(g1 ∧ g2) once.
        let f1 = self.cx.formula_of_bool(&psi1, g1);
        let f2 = self.cx.formula_of_bool(&psi1, g2);
        let both = self.cx.smt.and(f1, f2);
        let exit = self.cx.smt.not(both);
        let nf1 = self.cx.smt.not(f1);
        let nf2 = self.cx.smt.not(f2);

        // Loop 2 premise: Ψ₁ ∧ ¬(g1∧g2) ⊨ ¬g1 ∧ ¬g2.
        let none_left = self.cx.smt.and(nf1, nf2);
        let loop2_goal = self.cx.smt.implies(exit, none_left);
        if self.cx.entails(&psi1, loop2_goal) {
            self.stats.loop2 += 1;
            let d = self.detail_bool(g1);
            self.note_rule(depth, names::RULE_LOOP2, "Loop2", d);
            let mut body_st = psi1.clone();
            body_st.assume(self.cx, g1);
            let body = self.omega(body_st, b1.clone(), b2.clone(), depth + 1);
            let mut after = psi1;
            after.assume_not(self.cx, g1);
            let rest = self.omega(after, t1.clone(), t2.clone(), depth + 1);
            return Some(Stmt::while_do(g1.clone(), body).then(rest));
        }
        // Loop 3 premise: Ψ₁ ∧ ¬(g1∧g2) ⊨ g1 (the first loop runs longer).
        let loop3_goal = self.cx.smt.implies(exit, f1);
        if self.cx.entails(&psi1, loop3_goal) {
            self.stats.loop3 += 1;
            let d = self.detail_bool(g1);
            self.note_rule(depth, names::RULE_LOOP3, "Loop3", d);
            let mut body_st = psi1.clone();
            body_st.assume(self.cx, g2);
            let body = self.omega(body_st, b1.clone(), b2.clone(), depth + 1);
            let mut after = psi1;
            after.assume_not(self.cx, g2);
            // Remainder of program 1: one more body, the rest of the loop,
            // then its tail.
            let rem1 = b1
                .clone()
                .then(Stmt::while_do(g1.clone(), b1.clone()))
                .then(t1.clone());
            let rest = self.omega(after, rem1, t2.clone(), depth + 1);
            return Some(Stmt::while_do(g2.clone(), body).then(rest));
        }
        // Symmetric Loop 3: the second loop runs longer (uses Com).
        let loop3b_goal = self.cx.smt.implies(exit, f2);
        if self.cx.entails(&psi1, loop3b_goal) {
            self.stats.loop3 += 1;
            let d = self.detail_bool(g2);
            self.note_rule(depth, names::RULE_LOOP3, "Loop3", d);
            let mut body_st = psi1.clone();
            body_st.assume(self.cx, g1);
            let body = self.omega(body_st, b2.clone(), b1.clone(), depth + 1);
            let mut after = psi1;
            after.assume_not(self.cx, g1);
            let rem2 = b2
                .clone()
                .then(Stmt::while_do(g2.clone(), b2.clone()))
                .then(t2.clone());
            let rest = self.omega(after, rem2, t1.clone(), depth + 1);
            return Some(Stmt::while_do(g1.clone(), body).then(rest));
        }
        None
    }

    /// Emits a single loop with its body self-simplified under an inferred
    /// invariant, returning the post-loop state (havoc + ¬guard + invariant)
    /// and the emitted statement.
    fn emit_loop_self(
        &mut self,
        st: SymState,
        g: BoolExpr,
        b: Stmt,
        depth: usize,
    ) -> (SymState, Stmt) {
        let head = invariants::infer(self.cx, &st, &g, &b, None, None, &self.opts.inv);
        let mut body_st = head.state.clone();
        body_st.assume(self.cx, &g);
        let body = self.omega(body_st, b, Stmt::Skip, depth + 1);
        let mut post = head.state;
        post.assume_not(self.cx, &g);
        (post, Stmt::while_do(g, body))
    }
}
