//! Cross-simplification of expressions (paper Figure 3).
//!
//! The judgements `Ψ ⊢ᵢ e : e'` and `Ψ ⊢ᵦ e : e'` rewrite an expression to a
//! provably equivalent, *cheaper* one under the context `Ψ`:
//!
//! * **(Int)** — an integer expression may be replaced by any `e'` with
//!   `Ψ ⊨ e = e'` and `cost(e') ≤ cost(e)`. The rule is declarative; our
//!   algorithm is *model-guided*: take one model of `Ψ`, evaluate `e` and
//!   every in-scope variable under it, and propose only candidates that agree
//!   with the model (`c`, `y`, `y + c`), then confirm each candidate with a
//!   validity query. One satisfying model thus prunes almost all candidates
//!   before any expensive proof is attempted.
//! * **(Bool 1/2)** — a predicate entailed (or refuted) by `Ψ` becomes a
//!   constant.
//! * **(Bool 3)** — otherwise, comparison operands are simplified with the
//!   integer judgement.
//! * **(Bool 4/5)** — connectives simplify their operands and constant-fold
//!   (`fold`).

use crate::symbolic::{SymbolicCtx, SymState};
use udf_lang::ast::{BoolExpr, CmpOp, IntExpr, IntOp};
use udf_lang::cost::{Cost, CostModel, FnCost};
use udf_lang::intern::Symbol;

/// Tunables for the candidate search.
#[derive(Clone, Copy, Debug)]
pub struct SimplifyOptions {
    /// Maximum number of validity queries spent per expression node.
    pub max_candidate_checks: usize,
    /// Skip candidate search for expressions at or below this cost (they
    /// cannot get cheaper than a variable/constant anyway).
    pub trivial_cost: Cost,
}

impl Default for SimplifyOptions {
    fn default() -> SimplifyOptions {
        SimplifyOptions {
            max_candidate_checks: 8,
            trivial_cost: 1,
        }
    }
}

/// Structural constant folding for integer expressions (cost-monotone).
pub fn fold_int(e: IntExpr) -> IntExpr {
    match e {
        IntExpr::Bin(op, a, b) => {
            let a = fold_int(*a);
            let b = fold_int(*b);
            match (&a, &b, op) {
                (IntExpr::Const(x), IntExpr::Const(y), _) => IntExpr::Const(op.apply(*x, *y)),
                (IntExpr::Const(0), _, IntOp::Add) => b,
                (_, IntExpr::Const(0), IntOp::Add | IntOp::Sub) => a,
                (IntExpr::Const(1), _, IntOp::Mul) => b,
                (_, IntExpr::Const(1), IntOp::Mul) => a,
                (IntExpr::Const(0), _, IntOp::Mul) | (_, IntExpr::Const(0), IntOp::Mul) => {
                    IntExpr::Const(0)
                }
                _ => IntExpr::Bin(op, Box::new(a), Box::new(b)),
            }
        }
        IntExpr::Call(f, args) => IntExpr::Call(f, args.into_iter().map(fold_int).collect()),
        other => other,
    }
}

/// The `fold` operation of Figure 3: boolean constant folding.
pub fn fold_bool(e: BoolExpr) -> BoolExpr {
    match e {
        BoolExpr::Not(a) => match fold_bool(*a) {
            BoolExpr::Const(b) => BoolExpr::Const(!b),
            BoolExpr::Not(inner) => *inner,
            other => BoolExpr::not(other),
        },
        BoolExpr::Bin(op, a, b) => {
            let a = fold_bool(*a);
            let b = fold_bool(*b);
            use udf_lang::ast::BoolOp::*;
            match (op, &a, &b) {
                (And, BoolExpr::Const(false), _) | (And, _, BoolExpr::Const(false)) => {
                    BoolExpr::Const(false)
                }
                (And, BoolExpr::Const(true), _) => b,
                (And, _, BoolExpr::Const(true)) => a,
                (Or, BoolExpr::Const(true), _) | (Or, _, BoolExpr::Const(true)) => {
                    BoolExpr::Const(true)
                }
                (Or, BoolExpr::Const(false), _) => b,
                (Or, _, BoolExpr::Const(false)) => a,
                _ => BoolExpr::Bin(op, Box::new(a), Box::new(b)),
            }
        }
        BoolExpr::Cmp(op, a, b) => {
            let a = fold_int(a);
            let b = fold_int(b);
            if let (IntExpr::Const(x), IntExpr::Const(y)) = (&a, &b) {
                BoolExpr::Const(op.apply(*x, *y))
            } else {
                BoolExpr::Cmp(op, a, b)
            }
        }
        other => other,
    }
}

/// `Ψ ⊢ᵢ e : e'` — returns a provably equivalent expression whose static
/// cost never exceeds `e`'s.
pub fn simplify_int(
    cx: &mut SymbolicCtx<'_>,
    st: &SymState,
    e: &IntExpr,
    cm: &CostModel,
    fns: &dyn FnCost,
    opts: &SimplifyOptions,
) -> IntExpr {
    let e = fold_int(e.clone());
    let base_cost = cm.int_expr_cost(&e, fns);
    if base_cost <= opts.trivial_cost {
        return e;
    }
    if let Some(better) = candidate_rewrite(cx, st, &e, base_cost, cm, fns, opts) {
        return better;
    }
    // No whole-expression rewrite: recurse into subexpressions (each rewrite
    // is individually cost-non-increasing, so the rebuilt expression is too).
    match e {
        IntExpr::Call(f, args) => {
            let args = args
                .into_iter()
                .map(|a| simplify_int(cx, st, &a, cm, fns, opts))
                .collect();
            IntExpr::Call(f, args)
        }
        IntExpr::Bin(op, a, b) => {
            let a = simplify_int(cx, st, &a, cm, fns, opts);
            let b = simplify_int(cx, st, &b, cm, fns, opts);
            fold_int(IntExpr::Bin(op, Box::new(a), Box::new(b)))
        }
        other => other,
    }
}

/// Model-guided whole-expression rewrite: `e ↦ c`, `e ↦ y`, or `e ↦ y ± c`.
///
/// One solver query produces a model of `Ψ ∧ probe = e`; the probe value and
/// the variable values from that *same* model filter the candidate list, and
/// each surviving candidate is confirmed with a validity query.
fn candidate_rewrite(
    cx: &mut SymbolicCtx<'_>,
    st: &SymState,
    e: &IntExpr,
    base_cost: Cost,
    cm: &CostModel,
    _fns: &dyn FnCost,
    opts: &SimplifyOptions,
) -> Option<IntExpr> {
    let t_e = cx.term_of_int(st, e);
    let (model, e_val) = cx.model_with_probe(st, t_e)?;
    let mut checks = 0usize;
    // Rank candidate variables: those whose defining expression calls the
    // same library functions as `e` come first — they are by far the most
    // likely provable matches (the memoization pattern), and the check
    // budget is limited.
    let mut e_fns = std::collections::BTreeSet::new();
    udf_lang::analysis::int_expr_fns(e, &mut e_fns);
    let mut vars: Vec<Symbol> = st.vars().collect();
    if !e_fns.is_empty() {
        vars.sort_by_key(|&y| {
            let shares = st
                .def_fns(y)
                .is_some_and(|fs| fs.intersection(&e_fns).next().is_some());
            (!shares, y)
        });
    }

    // Candidate: replace by a constant.
    if let Ok(v) = i64::try_from(e_val) {
        if base_cost > cm.int_const && checks < opts.max_candidate_checks {
            checks += 1;
            let cand = IntExpr::Const(v);
            if proves_equal(cx, st, e, &cand) {
                cx.note_simplify_hit();
                return Some(cand);
            }
        }
    }

    // Candidate: replace by an in-scope variable with matching model value.
    if base_cost > cm.var {
        for &y in &vars {
            if checks >= opts.max_candidate_checks {
                break;
            }
            if matches!(e, IntExpr::Var(v) if *v == y) {
                continue;
            }
            if cx.model_value(st, &model, y) != e_val {
                continue;
            }
            checks += 1;
            let cand = IntExpr::Var(y);
            if proves_equal(cx, st, e, &cand) {
                cx.note_simplify_hit();
                return Some(cand);
            }
        }
    }

    // Candidate: `y + c` / `y − c` (cost var + const + arith).
    let offset_cost = cm.var + cm.int_const + cm.arith;
    if base_cost > offset_cost {
        for &y in &vars {
            if checks >= opts.max_candidate_checks {
                break;
            }
            let yv = cx.model_value(st, &model, y);
            let Some(diff) = e_val.checked_sub(yv) else {
                continue;
            };
            if diff == 0 {
                continue; // covered by the variable candidate
            }
            let Ok(c) = i64::try_from(diff.abs()) else {
                continue;
            };
            checks += 1;
            let cand = if diff > 0 {
                IntExpr::add(IntExpr::Var(y), IntExpr::Const(c))
            } else {
                IntExpr::sub(IntExpr::Var(y), IntExpr::Const(c))
            };
            if proves_equal(cx, st, e, &cand) {
                cx.note_simplify_hit();
                return Some(cand);
            }
        }
    }
    None
}

fn proves_equal(cx: &mut SymbolicCtx<'_>, st: &SymState, a: &IntExpr, b: &IntExpr) -> bool {
    let ta = cx.term_of_int(st, a);
    let tb = cx.term_of_int(st, b);
    let eq = cx.smt.eq(ta, tb);
    cx.entails(st, eq)
}

/// `Ψ ⊢ᵦ e : e'` — boolean cross-simplification (Bool 1–5).
pub fn simplify_bool(
    cx: &mut SymbolicCtx<'_>,
    st: &SymState,
    e: &BoolExpr,
    cm: &CostModel,
    fns: &dyn FnCost,
    opts: &SimplifyOptions,
) -> BoolExpr {
    let e = fold_bool(e.clone());
    if let BoolExpr::Const(_) = e {
        return e;
    }
    // Bool 1 / Bool 2.
    let f = cx.formula_of_bool(st, &e);
    if cx.entails(st, f) {
        cx.note_simplify_hit();
        return BoolExpr::Const(true);
    }
    let nf = cx.smt.not(f);
    if cx.entails(st, nf) {
        cx.note_simplify_hit();
        return BoolExpr::Const(false);
    }
    match e {
        // Bool 3.
        BoolExpr::Cmp(op, a, b) => {
            let a = simplify_int(cx, st, &a, cm, fns, opts);
            let b = simplify_int(cx, st, &b, cm, fns, opts);
            fold_bool(BoolExpr::Cmp(op, a, b))
        }
        // Bool 5.
        BoolExpr::Not(a) => {
            let a = simplify_bool(cx, st, &a, cm, fns, opts);
            fold_bool(BoolExpr::not(a))
        }
        // Bool 4. Connectives are strict, so both operands simplify under
        // the same Ψ.
        BoolExpr::Bin(op, a, b) => {
            let a = simplify_bool(cx, st, &a, cm, fns, opts);
            let b = simplify_bool(cx, st, &b, cm, fns, opts);
            fold_bool(BoolExpr::Bin(op, Box::new(a), Box::new(b)))
        }
        BoolExpr::Const(_) => unreachable!("handled above"),
    }
}

/// Returns `true` when `e` is syntactically `true`.
pub fn is_true(e: &BoolExpr) -> bool {
    matches!(e, BoolExpr::Const(true))
}

/// Returns `true` when `e` is syntactically `false`.
pub fn is_false(e: &BoolExpr) -> bool {
    matches!(e, BoolExpr::Const(false))
}

/// Negation helper used when building `Ψ ∧ ¬e` branches: pushes the negation
/// through comparisons where that is free (`¬(a < b)` ↦ `b ≤ a`).
pub fn negate(e: &BoolExpr) -> BoolExpr {
    match e {
        BoolExpr::Const(b) => BoolExpr::Const(!b),
        BoolExpr::Cmp(CmpOp::Lt, a, b) => BoolExpr::Cmp(CmpOp::Le, b.clone(), a.clone()),
        BoolExpr::Cmp(CmpOp::Le, a, b) => BoolExpr::Cmp(CmpOp::Lt, b.clone(), a.clone()),
        BoolExpr::Not(inner) => (**inner).clone(),
        other => BoolExpr::not(other.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::{initial_state, EntailmentMode};
    use udf_lang::cost::UniformFnCost;
    use udf_lang::intern::Interner;
    use udf_lang::parse::{parse_bool_expr, parse_int_expr};
    use udf_lang::pretty;

    fn setup(params: &[&str]) -> (Interner, Vec<Symbol>) {
        let mut i = Interner::new();
        let ps = params.iter().map(|p| i.intern(p)).collect();
        (i, ps)
    }

    fn simp_int(src_psi: &[&str], assigns: &[(&str, &str)], e: &str) -> String {
        let (mut i, params) = setup(&["alpha", "beta"]);
        let psi: Vec<BoolExpr> = src_psi
            .iter()
            .map(|s| parse_bool_expr(s, &mut i).unwrap())
            .collect();
        let assigns: Vec<(Symbol, IntExpr)> = assigns
            .iter()
            .map(|(x, e)| (i.intern(x), parse_int_expr(e, &mut i).unwrap()))
            .collect();
        let expr = parse_int_expr(e, &mut i).unwrap();
        let (mut cx, mut st) = initial_state(&i, EntailmentMode::Smt, &params);
        for (x, e) in &assigns {
            st.assign(&mut cx, *x, e);
        }
        for p in &psi {
            st.assume(&mut cx, p);
        }
        let cm = CostModel::default();
        let fns = UniformFnCost(10);
        let out = simplify_int(&mut cx, &st, &expr, &cm, &fns, &SimplifyOptions::default());
        pretty::int_expr(&out, &i)
    }

    fn simp_bool(src_psi: &[&str], assigns: &[(&str, &str)], e: &str) -> String {
        let (mut i, params) = setup(&["alpha", "beta"]);
        let psi: Vec<BoolExpr> = src_psi
            .iter()
            .map(|s| parse_bool_expr(s, &mut i).unwrap())
            .collect();
        let assigns: Vec<(Symbol, IntExpr)> = assigns
            .iter()
            .map(|(x, e)| (i.intern(x), parse_int_expr(e, &mut i).unwrap()))
            .collect();
        let expr = parse_bool_expr(e, &mut i).unwrap();
        let (mut cx, mut st) = initial_state(&i, EntailmentMode::Smt, &params);
        for (x, e) in &assigns {
            st.assign(&mut cx, *x, e);
        }
        for p in &psi {
            st.assume(&mut cx, p);
        }
        let cm = CostModel::default();
        let fns = UniformFnCost(10);
        let out = simplify_bool(&mut cx, &st, &expr, &cm, &fns, &SimplifyOptions::default());
        pretty::bool_expr(&out, &i)
    }

    #[test]
    fn memoization_across_programs() {
        // Ψ: x = f(alpha) — the expensive call f(alpha) becomes x.
        let out = simp_int(&[], &[("x", "f(alpha)")], "f(alpha)");
        assert_eq!(out, "x");
    }

    #[test]
    fn example4_offset_rewrite() {
        // Ψ: x = f(alpha) + 1 ⊢ f(alpha) − 1 : x − 2.
        let out = simp_int(&[], &[("x", "f(alpha) + 1")], "f(alpha) - 1");
        assert_eq!(out, "x - 2");
    }

    #[test]
    fn constant_discovery() {
        // Ψ: alpha = 4 ⊢ alpha + alpha + 1 : 9. (Nonlinear products are
        // opaque to the solver by design, so the linear form is the
        // representative case.)
        let out = simp_int(&["alpha == 4"], &[], "alpha + alpha + 1");
        assert_eq!(out, "9");
    }

    #[test]
    fn nested_call_argument_rewrite() {
        // Ψ: y = alpha + 1 ⊢ g(alpha + 1) : g(y) — subexpression rewrite.
        let out = simp_int(&[], &[("y", "alpha + 1")], "g(alpha + 1)");
        assert_eq!(out, "g(y)");
    }

    #[test]
    fn no_rewrite_without_facts() {
        let out = simp_int(&[], &[], "f(alpha) + beta");
        assert_eq!(out, "f(alpha) + beta");
    }

    #[test]
    fn bool1_and_bool2() {
        assert_eq!(simp_bool(&["alpha > 5"], &[], "alpha > 3"), "true");
        assert_eq!(simp_bool(&["alpha > 5"], &[], "alpha < 2"), "false");
        assert_eq!(simp_bool(&["alpha > 5"], &[], "alpha > 9"), "9 < alpha");
    }

    #[test]
    fn example3_shape() {
        // Ψ: α > 0 ∧ x = f(β) ∧ y = α ⊢ (y ≥ 0 ∧ f(β) ≠ 0) : x ≠ 0.
        let out = simp_bool(
            &["alpha > 0"],
            &[("x", "f(beta)"), ("y", "alpha")],
            "y >= 0 && f(beta) != 0",
        );
        assert_eq!(out, "!(x == 0)");
    }

    #[test]
    fn bool3_simplifies_operands() {
        let out = simp_bool(&[], &[("x", "f(alpha)")], "f(alpha) < beta");
        assert_eq!(out, "x < beta");
    }

    #[test]
    fn folding() {
        assert_eq!(simp_bool(&[], &[], "1 + 2 == 3"), "true");
        let out = simp_int(&[], &[], "alpha * 1 + 0");
        assert_eq!(out, "alpha");
    }

    #[test]
    fn negate_pushes_through_comparisons() {
        let mut i = Interner::new();
        let e = parse_bool_expr("x < y", &mut i).unwrap();
        assert_eq!(pretty::bool_expr(&negate(&e), &i), "y <= x");
        let e2 = parse_bool_expr("x <= y", &mut i).unwrap();
        assert_eq!(pretty::bool_expr(&negate(&e2), &i), "y < x");
        let e3 = parse_bool_expr("!(x == y)", &mut i).unwrap();
        assert_eq!(pretty::bool_expr(&negate(&e3), &i), "x == y");
    }

    #[test]
    fn unsat_context_simplifies_to_constant() {
        // Contradictory Ψ entails everything; Bool 1 fires.
        let out = simp_bool(&["alpha > 5", "alpha < 2"], &[], "beta == 77");
        assert_eq!(out, "true");
    }
}
