//! Symbolic contexts `Ψ` and strongest postconditions.
//!
//! The calculus threads a context `Ψ` — the strongest postcondition of the
//! code consumed so far — through every rule. We realize `Ψ` as an SMT
//! formula over *versioned* variables (`x@3` is the third SSA generation of
//! program variable `x`), which makes `sp(Ψ, x := e)` a matter of bumping a
//! version and conjoining one defining equality: no substitution is ever
//! performed on `Ψ` itself.
//!
//! * [`SymbolicCtx`] owns the SMT context/solver, the program-symbol →
//!   SMT-symbol mapping, and caches for entailment and model queries.
//! * [`SymState`] is the per-path state: the context formula plus the current
//!   variable versions. States are cheap to clone, which is how the engine
//!   forks at conditionals (`Ψ ∧ e` / `Ψ ∧ ¬e`).
//! * [`SymState::sp_stmt`] implements the paper's `sp(Ψ, S)` for arbitrary
//!   statements (used by the Step and Seq rules), including precise
//!   branch-merge (φ-node equalities under a disjunction) and sound
//!   havoc + negated-guard treatment of loops.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::explain::{EntailmentEvent, EntailmentVia};
use udf_lang::analysis::assigned_vars;
use udf_lang::ast::{BoolExpr, IntExpr, Stmt};
use udf_lang::intern::{Interner, Symbol};
use udf_obs::{names, RecorderCell};
use udf_smt::ctx::{FormulaId, TermId};
use udf_smt::{Context, SatResult, Solver};

/// How entailment questions `Ψ ⊨ φ` are answered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EntailmentMode {
    /// Full SMT reasoning (the paper's configuration).
    Smt,
    /// Syntactic-only: `φ` must literally occur among the conjuncts of `Ψ`
    /// (used by the "no-SMT" ablation).
    Syntactic,
}

/// A satisfying assignment, as returned by the solver.
pub type Model = HashMap<udf_smt::VarId, i128>;

/// Shared symbolic machinery for one consolidation run.
pub struct SymbolicCtx<'i> {
    /// The underlying SMT context (public for tests and extensions).
    pub smt: Context,
    solver: Solver,
    interner: &'i Interner,
    mode: EntailmentMode,
    fn_syms: HashMap<Symbol, udf_smt::FnSym>,
    valid_cache: HashMap<(FormulaId, FormulaId), bool>,
    model_cache: HashMap<FormulaId, Option<Model>>,
    probe_cache: HashMap<(FormulaId, TermId), Option<(Model, i128)>>,
    fvars_cache: HashMap<FormulaId, std::rc::Rc<BTreeSet<udf_smt::VarId>>>,
    probe_counter: u64,
    entailment_queries: u64,
    entailment_cache_hits: u64,
    budget: Option<std::sync::Arc<crate::budget::BudgetState>>,
    memo: Option<std::sync::Arc<crate::memo::EntailmentMemo>>,
    /// Notify ids of the programs this context is consolidating; memo
    /// verdicts stored or reused here are tagged with them so a runtime
    /// demotion of any of those queries can invalidate the verdicts (see
    /// [`crate::memo::EntailmentMemo::invalidate_query`]).
    memo_scope: Vec<u32>,
    memo_hits: u64,
    recorder: RecorderCell,
    /// Entailment events since the last drain, present iff explain mode is
    /// on (see [`crate::explain`]).
    explain_log: Option<Vec<EntailmentEvent>>,
}

impl<'i> std::fmt::Debug for SymbolicCtx<'i> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymbolicCtx")
            .field("mode", &self.mode)
            .field("entailment_queries", &self.entailment_queries)
            .finish_non_exhaustive()
    }
}

impl<'i> SymbolicCtx<'i> {
    /// Creates a fresh symbolic context resolving names against `interner`.
    pub fn new(interner: &'i Interner, mode: EntailmentMode) -> SymbolicCtx<'i> {
        SymbolicCtx {
            smt: Context::new(),
            solver: Solver::new(),
            interner,
            mode,
            fn_syms: HashMap::new(),
            valid_cache: HashMap::new(),
            model_cache: HashMap::new(),
            probe_cache: HashMap::new(),
            fvars_cache: HashMap::new(),
            probe_counter: 0,
            entailment_queries: 0,
            entailment_cache_hits: 0,
            budget: None,
            memo: None,
            memo_scope: Vec::new(),
            memo_hits: 0,
            recorder: RecorderCell::noop(),
            explain_log: None,
        }
    }

    /// Installs a metrics sink; every entailment query, cache/memo hit and
    /// cross-simplification rewrite is counted through it (see
    /// [`udf_obs::names`] for the emitted names).
    pub fn set_recorder(&mut self, recorder: RecorderCell) {
        self.recorder = recorder;
    }

    /// The installed metrics sink (no-op by default).
    pub fn recorder(&self) -> &RecorderCell {
        &self.recorder
    }

    /// The interner names are resolved against (for diagnostics rendering).
    pub fn interner(&self) -> &Interner {
        self.interner
    }

    /// Turns on explain mode: every subsequent [`SymbolicCtx::entails`] call
    /// appends an [`EntailmentEvent`] to an internal log that the Ω engine
    /// drains at each rule commit.
    pub fn enable_explain(&mut self) {
        self.explain_log = Some(Vec::new());
    }

    /// Whether explain mode is on.
    pub fn explain_enabled(&self) -> bool {
        self.explain_log.is_some()
    }

    /// Takes the entailment events accumulated since the previous drain
    /// (empty when explain mode is off).
    pub fn drain_explain(&mut self) -> Vec<EntailmentEvent> {
        self.explain_log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Counts one applied cross-simplification rewrite (Figure 3 hit).
    pub(crate) fn note_simplify_hit(&self) {
        self.recorder.add(names::SIMPLIFY_HITS, 1);
    }

    /// Appends an explain event for a just-answered entailment question.
    fn note_entailment(&mut self, phi: FormulaId, proved: bool, via: EntailmentVia) {
        if self.explain_log.is_some() {
            let query = self.smt.formula_to_string(phi);
            if let Some(log) = &mut self.explain_log {
                log.push(EntailmentEvent { query, proved, via });
            }
        }
    }

    /// Overrides the SMT resource limits (used by benchmarks).
    pub fn set_solver(&mut self, solver: Solver) {
        self.solver = solver;
    }

    /// Attaches shared budget accounting; every solver-backed query charges
    /// it, and an exhausted budget makes all queries answer "not proved".
    pub fn set_budget(&mut self, budget: std::sync::Arc<crate::budget::BudgetState>) {
        self.budget = Some(budget);
    }

    /// Attaches a shared entailment memo table. Verdicts proved by *any*
    /// context sharing the table (other pair threads, earlier runs) are
    /// reused without touching the solver or charging the budget.
    pub fn set_memo(&mut self, memo: std::sync::Arc<crate::memo::EntailmentMemo>) {
        self.memo = Some(memo);
    }

    /// Sets the memo scope: the notify ids of the programs under
    /// consolidation. Verdicts proved or reused while the scope is set are
    /// tagged with these ids in the shared memo, enabling per-query
    /// invalidation on runtime demotion.
    pub fn set_memo_scope(&mut self, scope: Vec<u32>) {
        self.memo_scope = scope;
    }

    /// Number of entailments answered from the shared memo table.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Cumulative statistics of the underlying SMT solver (checks performed,
    /// theory work) for this context.
    pub fn solver_stats(&self) -> udf_smt::SolverStats {
        self.solver.stats()
    }

    /// Whether the attached budget (if any) has run out.
    pub fn budget_exhausted(&self) -> bool {
        self.budget.as_ref().is_some_and(|b| b.exhausted())
    }

    /// Charges one solver query against the budget; `false` means the query
    /// must be treated as unproved without touching the solver.
    fn charge_budget(&self) -> bool {
        self.budget.as_ref().is_none_or(|b| b.charge_query())
    }

    /// Number of entailment queries asked so far (including cache hits).
    pub fn entailment_queries(&self) -> u64 {
        self.entailment_queries
    }

    fn smt_var(&mut self, var: Symbol, version: u32) -> TermId {
        let name = format!("{}@{}", self.interner.resolve(var), version);
        self.smt.int_var(&name)
    }

    fn smt_fn(&mut self, f: Symbol, arity: usize) -> udf_smt::FnSym {
        if let Some(&sym) = self.fn_syms.get(&f) {
            return sym;
        }
        let name = self.interner.resolve(f).to_owned();
        let sym = self.smt.fn_sym(&name, arity);
        self.fn_syms.insert(f, sym);
        sym
    }

    /// Translates an integer expression under the versions of `st`.
    pub fn term_of_int(&mut self, st: &SymState, e: &IntExpr) -> TermId {
        match e {
            IntExpr::Const(c) => self.smt.int(*c),
            IntExpr::Var(v) => self.smt_var(*v, st.version(*v)),
            IntExpr::Call(f, args) => {
                let ts: Vec<TermId> = args.iter().map(|a| self.term_of_int(st, a)).collect();
                let sym = self.smt_fn(*f, ts.len());
                self.smt.app(sym, ts)
            }
            IntExpr::Bin(op, a, b) => {
                let ta = self.term_of_int(st, a);
                let tb = self.term_of_int(st, b);
                match op {
                    udf_lang::ast::IntOp::Add => self.smt.add(ta, tb),
                    udf_lang::ast::IntOp::Sub => self.smt.sub(ta, tb),
                    udf_lang::ast::IntOp::Mul => self.smt.mul(ta, tb),
                }
            }
        }
    }

    /// Translates a boolean expression under the versions of `st`.
    pub fn formula_of_bool(&mut self, st: &SymState, e: &BoolExpr) -> FormulaId {
        match e {
            BoolExpr::Const(true) => self.smt.tru(),
            BoolExpr::Const(false) => self.smt.fls(),
            BoolExpr::Cmp(op, a, b) => {
                let ta = self.term_of_int(st, a);
                let tb = self.term_of_int(st, b);
                match op {
                    udf_lang::ast::CmpOp::Lt => self.smt.lt(ta, tb),
                    udf_lang::ast::CmpOp::Le => self.smt.le(ta, tb),
                    udf_lang::ast::CmpOp::Eq => self.smt.eq(ta, tb),
                }
            }
            BoolExpr::Not(a) => {
                let fa = self.formula_of_bool(st, a);
                self.smt.not(fa)
            }
            BoolExpr::Bin(op, a, b) => {
                let fa = self.formula_of_bool(st, a);
                let fb = self.formula_of_bool(st, b);
                match op {
                    udf_lang::ast::BoolOp::And => self.smt.and(fa, fb),
                    udf_lang::ast::BoolOp::Or => self.smt.or(fa, fb),
                }
            }
        }
    }

    /// Whether `Ψ ⊨ φ`. Cached; `Unknown` counts as *not entailed*.
    ///
    /// Long programs accumulate hundreds of conjuncts, most of which are
    /// irrelevant to any one query; the solver query is restricted to the
    /// *cone of influence* of `φ` (conjuncts transitively sharing variables
    /// with it). Dropping conjuncts weakens `Ψ`, which can only make the
    /// answer `false` where the full context would say `true` — a missed
    /// rewrite, never an unsound one.
    pub fn entails(&mut self, st: &SymState, phi: FormulaId) -> bool {
        self.entailment_queries += 1;
        self.recorder.add(names::ENTAIL_QUERIES, 1);
        let _span = self.recorder.span(names::ENTAIL_NS);
        match self.mode {
            EntailmentMode::Syntactic => {
                let v = st.conjuncts.contains(&phi)
                    || self.smt.formula(phi) == &udf_smt::ctx::Formula::True;
                self.note_entailment(phi, v, EntailmentVia::Syntactic);
                v
            }
            EntailmentMode::Smt => {
                // Budget exhaustion downgrades every entailment to "not
                // proved" — the same sound answer an `Unknown` from the
                // solver produces, so rewrites are lost but never wrong.
                if self.budget_exhausted() {
                    self.note_entailment(phi, false, EntailmentVia::BudgetExhausted);
                    return false;
                }
                let psi = if st.conjuncts.len() >= 24 {
                    self.cone_of_influence(st, phi)
                } else {
                    st.psi
                };
                if let Some(&v) = self.valid_cache.get(&(psi, phi)) {
                    self.entailment_cache_hits += 1;
                    self.recorder.add(names::ENTAIL_CACHE_HITS, 1);
                    self.note_entailment(phi, v, EntailmentVia::Cache);
                    return v;
                }
                // Shared memo (cross-thread, cross-run): keyed on the
                // canonical alpha-renamed form, so structurally equal
                // queries from other pair threads hit here. Hits perform no
                // solver work and therefore do not charge the budget.
                let key = self
                    .memo
                    .as_ref()
                    .map(|_| udf_smt::canon::entailment_key(&self.smt, psi, phi));
                if let (Some(memo), Some(key)) = (&self.memo, key) {
                    if let Some(v) = memo.lookup_scoped(key, &self.memo_scope) {
                        self.memo_hits += 1;
                        self.recorder.add(names::ENTAIL_MEMO_HITS, 1);
                        self.valid_cache.insert((psi, phi), v);
                        self.note_entailment(phi, v, EntailmentVia::Memo);
                        return v;
                    }
                }
                if !self.charge_budget() {
                    self.note_entailment(phi, false, EntailmentVia::BudgetExhausted);
                    return false;
                }
                let v = self.solver.is_valid(&mut self.smt, psi, phi);
                self.valid_cache.insert((psi, phi), v);
                if let (Some(memo), Some(key)) = (&self.memo, key) {
                    memo.store_scoped(key, v, &self.memo_scope);
                }
                self.note_entailment(phi, v, EntailmentVia::Solver);
                v
            }
        }
    }

    /// Conjunction of the `Ψ` conjuncts transitively sharing variables with
    /// `phi`.
    fn cone_of_influence(&mut self, st: &SymState, phi: FormulaId) -> FormulaId {
        let mut relevant: BTreeSet<udf_smt::VarId> = (*self.formula_vars(phi)).clone();
        let conj_vars: Vec<std::rc::Rc<BTreeSet<udf_smt::VarId>>> = st
            .conjuncts
            .iter()
            .map(|&c| self.formula_vars(c))
            .collect();
        let mut included = vec![false; st.conjuncts.len()];
        loop {
            let mut changed = false;
            for (k, vars) in conj_vars.iter().enumerate() {
                if included[k] {
                    continue;
                }
                if vars.iter().any(|v| relevant.contains(v)) {
                    included[k] = true;
                    relevant.extend(vars.iter().copied());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let picked: Vec<FormulaId> = st
            .conjuncts
            .iter()
            .zip(&included)
            .filter_map(|(&c, &inc)| inc.then_some(c))
            .collect();
        self.smt.and_all(picked)
    }

    /// Variable set of a formula (memoized).
    fn formula_vars(&mut self, f: FormulaId) -> std::rc::Rc<BTreeSet<udf_smt::VarId>> {
        if let Some(v) = self.fvars_cache.get(&f) {
            return v.clone();
        }
        let mut out = BTreeSet::new();
        collect_formula_vars(&self.smt, f, &mut out);
        let rc = std::rc::Rc::new(out);
        self.fvars_cache.insert(f, rc.clone());
        rc
    }

    /// A model of `Ψ` (if satisfiable and within budget). Cached per `Ψ`.
    pub fn model(&mut self, st: &SymState) -> Option<Model> {
        if self.mode == EntailmentMode::Syntactic {
            return None;
        }
        if let Some(m) = self.model_cache.get(&st.psi) {
            return m.clone();
        }
        // "No model" is the sound budget-exhausted answer: simplification
        // candidates simply aren't proposed.
        if !self.charge_budget() {
            return None;
        }
        let (r, m) = self.solver.check_with_model(&self.smt, st.psi);
        let out = if r == SatResult::Sat { m } else { None };
        self.model_cache.insert(st.psi, out.clone());
        out
    }

    /// Model of `Ψ ∧ probe = t`, returning both the model and the probed
    /// value of `t` in it. This evaluates arbitrary terms — including
    /// uninterpreted calls — under one coherent model, which drives the
    /// candidate filter of the cross-simplifier. Cached per `(Ψ, t)`.
    pub fn model_with_probe(
        &mut self,
        st: &SymState,
        t: TermId,
    ) -> Option<(Model, i128)> {
        if self.mode == EntailmentMode::Syntactic {
            return None;
        }
        if let Some(cached) = self.probe_cache.get(&(st.psi, t)) {
            return cached.clone();
        }
        if !self.charge_budget() {
            return None;
        }
        let probe_name = format!("%probe{}", self.probe_counter);
        self.probe_counter += 1;
        let probe_var = self.smt.var(&probe_name);
        let probe = self.smt.int_var(&probe_name);
        let eq = self.smt.eq(probe, t);
        // Restrict to the cone of influence of the probed term: variables
        // outside it cannot be proved equal to `t` anyway, so their model
        // values are never useful to the candidate filter.
        let psi = if st.conjuncts.len() >= 24 {
            self.cone_of_influence(st, eq)
        } else {
            st.psi
        };
        let q = self.smt.and(psi, eq);
        let (r, m) = self.solver.check_with_model(&self.smt, q);
        let out = match (r, m) {
            (SatResult::Sat, Some(m)) => {
                let v = m.get(&probe_var).copied().unwrap_or(0);
                Some((m, v))
            }
            _ => None,
        };
        self.probe_cache.insert((st.psi, t), out.clone());
        out
    }

    /// Value of a program variable in a model (missing ⇒ unconstrained ⇒ 0).
    pub fn model_value(
        &mut self,
        st: &SymState,
        model: &Model,
        var: Symbol,
    ) -> i128 {
        let t = self.smt_var(var, st.version(var));
        if let udf_smt::ctx::Term::Var(v) = self.smt.term(t) {
            model.get(v).copied().unwrap_or(0)
        } else {
            0
        }
    }
}

/// Per-path symbolic state: the context formula `Ψ` plus variable versions.
#[derive(Clone, Debug)]
pub struct SymState {
    /// The context formula.
    pub psi: FormulaId,
    /// Conjuncts of `Ψ` in assertion order (used for pruning and the
    /// syntactic ablation).
    pub conjuncts: Vec<FormulaId>,
    versions: BTreeMap<Symbol, u32>,
    next_version: BTreeMap<Symbol, u32>,
    /// Library functions called by each variable's *current* defining
    /// expression (used to rank rewrite candidates: a variable defined via
    /// `f(...)` is the likeliest replacement for another `f(...)` call).
    def_fns: BTreeMap<Symbol, BTreeSet<Symbol>>,
    /// Cap on retained conjuncts: older facts are dropped (a sound weakening
    /// of `Ψ`) to keep entailment queries tractable on very long programs.
    pub max_conjuncts: usize,
}

impl SymState {
    /// Initial state: `Ψ = ⊤`, every parameter at version 0.
    pub fn initial(cx: &mut SymbolicCtx<'_>, params: &[Symbol]) -> SymState {
        let mut st = SymState {
            psi: cx.smt.tru(),
            conjuncts: Vec::new(),
            versions: BTreeMap::new(),
            next_version: BTreeMap::new(),
            def_fns: BTreeMap::new(),
            max_conjuncts: 256,
        };
        for &p in params {
            st.versions.insert(p, 0);
            st.next_version.insert(p, 1);
        }
        st
    }

    /// Current version of `v` (0 before any assignment).
    pub fn version(&self, v: Symbol) -> u32 {
        self.versions.get(&v).copied().unwrap_or(0)
    }

    /// Variables currently tracked (parameters and every assigned local).
    pub fn vars(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.versions.keys().copied()
    }

    fn bump(&mut self, v: Symbol) {
        let next = self.next_version.entry(v).or_insert(1);
        self.versions.insert(v, *next);
        *next += 1;
    }

    /// Conjoins a formula onto `Ψ`.
    pub fn assume_formula(&mut self, cx: &mut SymbolicCtx<'_>, f: FormulaId) {
        self.conjuncts.push(f);
        if self.conjuncts.len() > self.max_conjuncts {
            // Drop the oldest facts (weakening; still sound).
            let excess = self.conjuncts.len() - self.max_conjuncts;
            self.conjuncts.drain(..excess);
            self.psi = cx.smt.and_all(self.conjuncts.iter().copied());
        } else {
            self.psi = cx.smt.and(self.psi, f);
        }
    }

    /// Conjoins a program boolean expression onto `Ψ`.
    pub fn assume(&mut self, cx: &mut SymbolicCtx<'_>, e: &BoolExpr) {
        let f = cx.formula_of_bool(self, e);
        self.assume_formula(cx, f);
    }

    /// Conjoins the negation of a program boolean expression onto `Ψ`.
    pub fn assume_not(&mut self, cx: &mut SymbolicCtx<'_>, e: &BoolExpr) {
        let f = cx.formula_of_bool(self, e);
        let nf = cx.smt.not(f);
        self.assume_formula(cx, nf);
    }

    /// `sp(Ψ, x := e)`: bumps `x` and conjoins `x@new = ⟦e⟧@old`.
    pub fn assign(&mut self, cx: &mut SymbolicCtx<'_>, x: Symbol, e: &IntExpr) {
        let t = cx.term_of_int(self, e);
        self.bump(x);
        let xv = cx.smt_var(x, self.version(x));
        let eq = cx.smt.eq(xv, t);
        self.assume_formula(cx, eq);
        let mut fns = BTreeSet::new();
        udf_lang::analysis::int_expr_fns(e, &mut fns);
        self.def_fns.insert(x, fns);
    }

    /// Library functions called by `v`'s current defining expression.
    pub fn def_fns(&self, v: Symbol) -> Option<&BTreeSet<Symbol>> {
        self.def_fns.get(&v)
    }

    /// Invalidates `vars`: each gets a fresh, unconstrained version.
    pub fn havoc<I: IntoIterator<Item = Symbol>>(&mut self, vars: I) {
        for v in vars {
            self.bump(v);
            self.def_fns.remove(&v);
        }
    }

    /// Synchronizes version *counters* with another state so that fresh
    /// versions never collide after a fork (call on the state that continues).
    pub fn absorb_counters(&mut self, other: &SymState) {
        for (&v, &n) in &other.next_version {
            let e = self.next_version.entry(v).or_insert(n);
            *e = (*e).max(n);
        }
    }

    /// `sp(Ψ, S)` for an arbitrary statement: symbolic execution with precise
    /// branch merge and havoc + negated-guard loops. Notifications are
    /// transparent (`sp(Ψ, notifyᵢ b) = Ψ`, as in the paper).
    pub fn sp_stmt(&mut self, cx: &mut SymbolicCtx<'_>, s: &Stmt) {
        match s {
            Stmt::Skip | Stmt::Notify(..) => {}
            Stmt::Assign(x, e) => self.assign(cx, *x, e),
            Stmt::Seq(a, b) => {
                self.sp_stmt(cx, a);
                self.sp_stmt(cx, b);
            }
            Stmt::If(c, a, b) => {
                let fc = cx.formula_of_bool(self, c);
                let mut then_st = self.clone();
                then_st.assume_formula(cx, fc);
                then_st.sp_stmt(cx, a);
                let mut else_st = self.clone();
                else_st.absorb_counters(&then_st);
                let nfc = cx.smt.not(fc);
                else_st.assume_formula(cx, nfc);
                else_st.sp_stmt(cx, b);
                // Merge: variables assigned on either side get a φ version.
                self.absorb_counters(&then_st);
                self.absorb_counters(&else_st);
                let merged_vars: BTreeSet<Symbol> = assigned_vars(a)
                    .into_iter()
                    .chain(assigned_vars(b))
                    .collect();
                let mut then_psi = then_st.psi;
                let mut else_psi = else_st.psi;
                for &v in &merged_vars {
                    self.bump(v);
                    self.def_fns.remove(&v);
                    let phi_var = cx.smt_var(v, self.version(v));
                    let tv = cx.smt_var(v, then_st.version(v));
                    let ev = cx.smt_var(v, else_st.version(v));
                    let eq_t = cx.smt.eq(phi_var, tv);
                    let eq_e = cx.smt.eq(phi_var, ev);
                    then_psi = cx.smt.and(then_psi, eq_t);
                    else_psi = cx.smt.and(else_psi, eq_e);
                }
                let merged = cx.smt.or(then_psi, else_psi);
                // Replace Ψ wholesale: the disjunction subsumes the previous
                // conjunct list.
                self.conjuncts.clear();
                self.conjuncts.push(merged);
                self.psi = merged;
            }
            Stmt::While(c, body) => {
                // Havoc everything the loop may write, then record that the
                // guard is false on exit.
                let assigned = assigned_vars(body);
                self.havoc(assigned);
                let fc = cx.formula_of_bool(self, c);
                let nfc = cx.smt.not(fc);
                self.assume_formula(cx, nfc);
            }
        }
    }
}

fn collect_term_vars(
    smt: &Context,
    t: TermId,
    out: &mut BTreeSet<udf_smt::VarId>,
) {
    match smt.term(t) {
        udf_smt::ctx::Term::Int(_) => {}
        udf_smt::ctx::Term::Var(v) => {
            out.insert(*v);
        }
        udf_smt::ctx::Term::App(_, args) => {
            for &a in args.clone().iter() {
                collect_term_vars(smt, a, out);
            }
        }
        udf_smt::ctx::Term::Add(a, b)
        | udf_smt::ctx::Term::Sub(a, b)
        | udf_smt::ctx::Term::Mul(a, b) => {
            let (a, b) = (*a, *b);
            collect_term_vars(smt, a, out);
            collect_term_vars(smt, b, out);
        }
    }
}

fn collect_formula_vars(
    smt: &Context,
    f: FormulaId,
    out: &mut BTreeSet<udf_smt::VarId>,
) {
    match smt.formula(f) {
        udf_smt::ctx::Formula::True | udf_smt::ctx::Formula::False => {}
        udf_smt::ctx::Formula::Le(a, b)
        | udf_smt::ctx::Formula::Lt(a, b)
        | udf_smt::ctx::Formula::Eq(a, b) => {
            let (a, b) = (*a, *b);
            collect_term_vars(smt, a, out);
            collect_term_vars(smt, b, out);
        }
        udf_smt::ctx::Formula::Not(g) => {
            let g = *g;
            collect_formula_vars(smt, g, out);
        }
        udf_smt::ctx::Formula::And(a, b) | udf_smt::ctx::Formula::Or(a, b) => {
            let (a, b) = (*a, *b);
            collect_formula_vars(smt, a, out);
            collect_formula_vars(smt, b, out);
        }
    }
}

/// Convenience: builds a [`SymbolicCtx`] and initial [`SymState`] in one call.
pub fn initial_state<'i>(
    interner: &'i Interner,
    mode: EntailmentMode,
    params: &[Symbol],
) -> (SymbolicCtx<'i>, SymState) {
    let mut cx = SymbolicCtx::new(interner, mode);
    let st = SymState::initial(&mut cx, params);
    (cx, st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use udf_lang::parse::{parse_bool_expr, parse_int_expr, parse_program};

    fn setup(src_params: &[&str]) -> (Interner, Vec<Symbol>) {
        let mut i = Interner::new();
        let params = src_params.iter().map(|p| i.intern(p)).collect();
        (i, params)
    }

    #[test]
    fn assign_then_entails_equality() {
        let (mut i, params) = setup(&["a"]);
        let x = i.intern("x");
        let e = parse_int_expr("a + 1", &mut i).unwrap();
        let q = parse_bool_expr("x == a + 1", &mut i).unwrap();
        let (mut cx, mut st) = initial_state(&i, EntailmentMode::Smt, &params);
        st.assign(&mut cx, x, &e);
        let f = cx.formula_of_bool(&st, &q);
        assert!(cx.entails(&st, f));
    }

    #[test]
    fn reassignment_shadows_old_value() {
        let (mut i, params) = setup(&["a"]);
        let x = i.intern("x");
        let e1 = parse_int_expr("1", &mut i).unwrap();
        let e2 = parse_int_expr("2", &mut i).unwrap();
        let q_old = parse_bool_expr("x == 1", &mut i).unwrap();
        let q_new = parse_bool_expr("x == 2", &mut i).unwrap();
        let (mut cx, mut st) = initial_state(&i, EntailmentMode::Smt, &params);
        st.assign(&mut cx, x, &e1);
        st.assign(&mut cx, x, &e2);
        let f_old = cx.formula_of_bool(&st, &q_old);
        let f_new = cx.formula_of_bool(&st, &q_new);
        assert!(!cx.entails(&st, f_old));
        assert!(cx.entails(&st, f_new));
    }

    #[test]
    fn x_plus_x_uses_one_version() {
        let (mut i, params) = setup(&["a"]);
        let x = i.intern("x");
        let e = parse_int_expr("a", &mut i).unwrap();
        let q = parse_bool_expr("x + x == 2 * a", &mut i).unwrap();
        let (mut cx, mut st) = initial_state(&i, EntailmentMode::Smt, &params);
        st.assign(&mut cx, x, &e);
        let f = cx.formula_of_bool(&st, &q);
        assert!(cx.entails(&st, f));
    }

    #[test]
    fn sp_if_merges_branches() {
        let (mut i, params) = setup(&["a"]);
        let prog = parse_program(
            "program p @0 (a) { if (a < 0) { y := 0 - a; } else { y := a; } }",
            &mut i,
        )
        .unwrap();
        let y_ge_0 = parse_bool_expr("y >= 0", &mut i).unwrap();
        let y_gt_5 = parse_bool_expr("y > 5", &mut i).unwrap();
        let (mut cx, mut st) = initial_state(&i, EntailmentMode::Smt, &params);
        st.sp_stmt(&mut cx, &prog.body);
        // |y| is nonnegative on both branches.
        let f = cx.formula_of_bool(&st, &y_ge_0);
        assert!(cx.entails(&st, f));
        let g = cx.formula_of_bool(&st, &y_gt_5);
        assert!(!cx.entails(&st, g));
    }

    #[test]
    fn sp_while_havocs_and_negates_guard() {
        let (mut i, params) = setup(&["a"]);
        let prog = parse_program(
            "program p @0 (a) { x := 0; while (x < a) { x := x + 1; } }",
            &mut i,
        )
        .unwrap();
        let x_ge_a = parse_bool_expr("x >= a", &mut i).unwrap();
        let x_eq_0 = parse_bool_expr("x == 0", &mut i).unwrap();
        let (mut cx, mut st) = initial_state(&i, EntailmentMode::Smt, &params);
        st.sp_stmt(&mut cx, &prog.body);
        // After the loop, ¬(x < a) holds…
        let f = cx.formula_of_bool(&st, &x_ge_a);
        assert!(cx.entails(&st, f));
        // …and the initial value of x has been havoced away.
        let g = cx.formula_of_bool(&st, &x_eq_0);
        assert!(!cx.entails(&st, g));
    }

    #[test]
    fn model_guides_constant_discovery() {
        let (mut i, params) = setup(&["a"]);
        let x = i.intern("x");
        let e = parse_int_expr("7", &mut i).unwrap();
        let (mut cx, mut st) = initial_state(&i, EntailmentMode::Smt, &params);
        st.assign(&mut cx, x, &e);
        let m = cx.model(&st).expect("Ψ is satisfiable");
        assert_eq!(cx.model_value(&st, &m, x), 7);
    }

    #[test]
    fn syntactic_mode_only_sees_literal_conjuncts() {
        let (mut i, params) = setup(&["a"]);
        let gt = parse_bool_expr("a > 3", &mut i).unwrap();
        let ge = parse_bool_expr("a >= 3", &mut i).unwrap();
        let (mut cx, mut st) = initial_state(&i, EntailmentMode::Syntactic, &params);
        st.assume(&mut cx, &gt);
        let f_gt = cx.formula_of_bool(&st, &gt);
        let f_ge = cx.formula_of_bool(&st, &ge);
        assert!(cx.entails(&st, f_gt));
        assert!(!cx.entails(&st, f_ge), "a>3 ⊨ a≥3 needs SMT");
    }

    #[test]
    fn conjunct_pruning_weakens_but_does_not_crash() {
        let (mut i, params) = setup(&["a"]);
        let x = i.intern("x");
        let exprs: Vec<_> = (0..10)
            .map(|k| parse_int_expr(&format!("{k}"), &mut i).unwrap())
            .collect();
        let q = parse_bool_expr("x == 9", &mut i).unwrap();
        let (mut cx, mut st) = initial_state(&i, EntailmentMode::Smt, &params);
        st.max_conjuncts = 4;
        for e in &exprs {
            st.assign(&mut cx, x, e);
        }
        // The last assignment is still visible.
        let f = cx.formula_of_bool(&st, &q);
        assert!(cx.entails(&st, f));
    }
}
