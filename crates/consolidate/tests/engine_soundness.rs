// Integration tests may unwrap freely; the clippy gate denies it in src/.
#![allow(clippy::unwrap_used)]

//! Executable soundness (paper Definition 1 / Theorem 1): for any input,
//! the consolidated program produces
//!
//! 1. the same notification environment `N₁ ⊎ N₂`,
//! 2. the union final environment `E₁ ∪ E₂`, and
//! 3. a cost no larger than the sum of the individual costs,
//!
//! compared against sequential execution of the source programs. Random
//! loop-free program pairs exercise the Assign/Step/If rules; structured
//! loop families (the paper's Examples 2 and 6) exercise Loop 2/Loop 3.

use consolidate::{consolidate_pair_prerenamed, Options};
use proptest::prelude::*;
use udf_lang::analysis::rename_locals;
use udf_lang::ast::{BoolExpr, CmpOp, IntExpr, IntOp, ProgId, Program, Stmt};
use udf_lang::cost::CostModel;
use udf_lang::intern::{Interner, Symbol};
use udf_lang::interp::Interp;
use udf_lang::library::FnLibrary;

/// Fixed library shared by every generated program: two pure functions with
/// distinctive costs.
fn library(interner: &mut Interner) -> FnLibrary {
    let f = interner.intern("f");
    let g = interner.intern("g");
    let mut lib = FnLibrary::new();
    lib.register(f, "f", 1, 40, |a| a[0].wrapping_mul(3).wrapping_sub(7));
    lib.register(g, "g", 2, 25, |a| a[0].wrapping_add(a[1]).wrapping_mul(2));
    lib
}

// ---------------------------------------------------------------------------
// Generators: loop-free programs over two parameters and three locals.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum GTerm {
    Const(i8),
    Param(u8),           // α0 / α1
    Local(u8),           // x0 / x1 / x2 (reads default to 0-initialized: we
                         // always pre-assign locals — see emit)
    F(Box<GTerm>),       // f(t)
    G(Box<GTerm>, Box<GTerm>),
    Bin(u8, Box<GTerm>, Box<GTerm>),
}

#[derive(Clone, Debug)]
enum GStmt {
    Assign(u8, GTerm),
    If(GCmp, Vec<GStmt>, Vec<GStmt>),
}

#[derive(Clone, Debug)]
struct GCmp {
    op: u8,
    lhs: GTerm,
    rhs: GTerm,
}

#[derive(Clone, Debug)]
struct GProg {
    body: Vec<GStmt>,
    notify_cond: GCmp,
}

fn gterm() -> impl Strategy<Value = GTerm> {
    let leaf = prop_oneof![
        (-6i8..7).prop_map(GTerm::Const),
        (0u8..2).prop_map(GTerm::Param),
        (0u8..3).prop_map(GTerm::Local),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|t| GTerm::F(Box::new(t))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GTerm::G(Box::new(a), Box::new(b))),
            (0u8..3, inner.clone(), inner)
                .prop_map(|(op, a, b)| GTerm::Bin(op, Box::new(a), Box::new(b))),
        ]
    })
}

fn gcmp() -> impl Strategy<Value = GCmp> {
    (0u8..3, gterm(), gterm()).prop_map(|(op, lhs, rhs)| GCmp { op, lhs, rhs })
}

fn gstmt(depth: u32) -> BoxedStrategy<GStmt> {
    if depth == 0 {
        (0u8..3, gterm())
            .prop_map(|(x, t)| GStmt::Assign(x, t))
            .boxed()
    } else {
        prop_oneof![
            3 => (0u8..3, gterm()).prop_map(|(x, t)| GStmt::Assign(x, t)),
            1 => (
                gcmp(),
                prop::collection::vec(gstmt(depth - 1), 1..3),
                prop::collection::vec(gstmt(depth - 1), 0..3)
            )
                .prop_map(|(c, t, e)| GStmt::If(c, t, e)),
        ]
        .boxed()
    }
}

fn gprog() -> impl Strategy<Value = GProg> {
    (prop::collection::vec(gstmt(2), 1..5), gcmp())
        .prop_map(|(body, notify_cond)| GProg { body, notify_cond })
}

// ---------------------------------------------------------------------------
// Elaboration into real programs.
// ---------------------------------------------------------------------------

struct Names {
    params: [Symbol; 2],
    locals: [Symbol; 3],
    f: Symbol,
    g: Symbol,
}

fn term(t: &GTerm, n: &Names) -> IntExpr {
    match t {
        GTerm::Const(c) => IntExpr::Const(i64::from(*c)),
        GTerm::Param(p) => IntExpr::Var(n.params[*p as usize % 2]),
        GTerm::Local(l) => IntExpr::Var(n.locals[*l as usize % 3]),
        GTerm::F(a) => IntExpr::Call(n.f, vec![term(a, n)]),
        GTerm::G(a, b) => IntExpr::Call(n.g, vec![term(a, n), term(b, n)]),
        GTerm::Bin(op, a, b) => {
            let op = match op % 3 {
                0 => IntOp::Add,
                1 => IntOp::Sub,
                _ => IntOp::Mul,
            };
            IntExpr::Bin(op, Box::new(term(a, n)), Box::new(term(b, n)))
        }
    }
}

fn cmp(c: &GCmp, n: &Names) -> BoolExpr {
    let op = match c.op % 3 {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        _ => CmpOp::Eq,
    };
    BoolExpr::Cmp(op, term(&c.lhs, n), term(&c.rhs, n))
}

fn stmt(s: &GStmt, n: &Names) -> Stmt {
    match s {
        GStmt::Assign(x, t) => Stmt::Assign(n.locals[*x as usize % 3], term(t, n)),
        GStmt::If(c, t, e) => Stmt::ite(
            cmp(c, n),
            Stmt::seq_all(t.iter().map(|s| stmt(s, n))),
            Stmt::seq_all(e.iter().map(|s| stmt(s, n))),
        ),
    }
}

fn elaborate(p: &GProg, id: u32, interner: &mut Interner) -> Program {
    let names = Names {
        params: [interner.intern("alpha0"), interner.intern("alpha1")],
        locals: [
            interner.intern("x0"),
            interner.intern("x1"),
            interner.intern("x2"),
        ],
        f: interner.intern("f"),
        g: interner.intern("g"),
    };
    // Locals are pre-initialized so reads are always defined.
    let mut body = vec![
        Stmt::Assign(names.locals[0], IntExpr::Const(0)),
        Stmt::Assign(names.locals[1], IntExpr::Const(1)),
        Stmt::Assign(names.locals[2], IntExpr::Const(2)),
    ];
    body.extend(p.body.iter().map(|s| stmt(s, &names)));
    body.push(Stmt::ite(
        cmp(&p.notify_cond, &names),
        Stmt::Notify(ProgId(id), true),
        Stmt::Notify(ProgId(id), false),
    ));
    Program::new(
        ProgId(id),
        names.params.to_vec(),
        Stmt::seq_all(body),
    )
}

/// Checks Definition 1 on a concrete input; returns a description of the
/// violation if any.
fn check_soundness_on(
    p1: &Program,
    p2: &Program,
    merged: &Program,
    lib: &FnLibrary,
    interner: &Interner,
    args: &[i64],
) -> Result<(), String> {
    let interp = Interp::new(CostModel::default(), lib).with_fuel(10_000_000);
    let r1 = interp.run(p1, args, interner).map_err(|e| e.to_string())?;
    let r2 = interp.run(p2, args, interner).map_err(|e| e.to_string())?;
    let rm = interp.run(merged, args, interner).map_err(|e| {
        format!(
            "merged program failed: {e}\n{}",
            udf_lang::pretty::program(merged, interner)
        )
    })?;
    let expected_notifications = r1
        .notifications
        .clone()
        .disjoint_union(r2.notifications.clone())
        .map_err(|e| e.to_string())?;
    if rm.notifications != expected_notifications {
        return Err(format!(
            "notification mismatch on {args:?}: expected {expected_notifications:?}, got {:?}\nmerged:\n{}",
            rm.notifications,
            udf_lang::pretty::program(merged, interner)
        ));
    }
    // E₁ ∪ E₂ ⊆ E_merged with equal values (the merged program may retain
    // φ-versions of variables, but every source variable must match).
    for (var, val) in r1.env.iter().chain(r2.env.iter()) {
        match rm.env.get(var) {
            Some(v) if v == val => {}
            other => {
                return Err(format!(
                    "env mismatch for {} on {args:?}: expected {val}, got {other:?}\nmerged:\n{}",
                    interner.resolve(*var),
                    udf_lang::pretty::program(merged, interner)
                ));
            }
        }
    }
    if rm.cost > r1.cost + r2.cost {
        return Err(format!(
            "cost regression on {args:?}: merged {} > {} + {}\nmerged:\n{}",
            rm.cost,
            r1.cost,
            r2.cost,
            udf_lang::pretty::program(merged, interner)
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn consolidation_is_sound_on_loop_free_pairs(g1 in gprog(), g2 in gprog()) {
        let mut interner = Interner::new();
        let lib = library(&mut interner);
        let p1 = elaborate(&g1, 1, &mut interner);
        let p2 = elaborate(&g2, 2, &mut interner);
        let r1 = rename_locals(&p1, &mut interner, "a$");
        let r2 = rename_locals(&p2, &mut interner, "b$");
        let merged = consolidate_pair_prerenamed(
            &r1, &r2, &interner, &CostModel::default(), &lib, &Options::default(),
        )
        .expect("compatible programs");
        for args in [[0, 0], [1, -1], [5, 3], [-7, 2], [100, -100], [13, 13]] {
            if let Err(msg) =
                check_soundness_on(&r1, &r2, &merged.program, &lib, &interner, &args)
            {
                panic!("{msg}");
            }
        }
    }
}

#[test]
fn paper_example1_flight_filters() {
    // f1: carrier is united/southwest; f2: price < 200 and carrier united.
    // Airline names are interned integers: united = 1, southwest = 2.
    let mut interner = Interner::new();
    let lower = interner.intern("toLower");
    let mut lib = FnLibrary::new();
    lib.register(lower, "toLower", 1, 30, |a| a[0] & 0xff);
    let f1 = udf_lang::parse::parse_program(
        "program f1 @1 (airline, price) {
             name := toLower(airline);
             if (name == 1) { notify true; }
             else { if (name == 2) { notify true; } else { notify false; } }
         }",
        &mut interner,
    )
    .unwrap();
    let f2 = udf_lang::parse::parse_program(
        "program f2 @2 (airline, price) {
             if (price >= 200) { notify false; }
             else { if (toLower(airline) == 1) { notify true; } else { notify false; } }
         }",
        &mut interner,
    )
    .unwrap();
    let r1 = rename_locals(&f1, &mut interner, "a$");
    let r2 = rename_locals(&f2, &mut interner, "b$");
    let merged = consolidate_pair_prerenamed(
        &r1,
        &r2,
        &interner,
        &CostModel::default(),
        &lib,
        &Options::default(),
    )
    .unwrap();
    // The expensive lookup happens once.
    let printed = udf_lang::pretty::program(&merged.program, &interner);
    assert_eq!(printed.matches("toLower").count(), 1, "{printed}");
    // Behaviour and cost.
    let interp = Interp::new(CostModel::default(), &lib);
    let mut total_orig = 0u64;
    let mut total_merged = 0u64;
    for airline in [1i64, 2, 3, 0x101] {
        for price in [100i64, 199, 200, 500] {
            let args = [airline, price];
            check_soundness_on(&r1, &r2, &merged.program, &lib, &interner, &args).unwrap();
            let c1 = interp.run(&r1, &args, &interner).unwrap().cost;
            let c2 = interp.run(&r2, &args, &interner).unwrap().cost;
            let cm = interp.run(&merged.program, &args, &interner).unwrap().cost;
            total_orig += c1 + c2;
            total_merged += cm;
        }
    }
    assert!(
        total_merged * 10 < total_orig * 9,
        "expected ≥10% saving, got {total_merged} vs {total_orig}"
    );
}

#[test]
fn paper_example6_loop_fusion() {
    let mut interner = Interner::new();
    let f = interner.intern("f");
    let mut lib = FnLibrary::new();
    lib.register(f, "f", 1, 60, |a| a[0].wrapping_mul(a[0]));
    let p1 = udf_lang::parse::parse_program(
        "program p1 @1 (alpha) {
             i := alpha; x := 0;
             while (i > 0) { i := i - 1; t1 := f(i); x := x + t1; }
             if (x > 100) { notify true; } else { notify false; }
         }",
        &mut interner,
    )
    .unwrap();
    let p2 = udf_lang::parse::parse_program(
        "program p2 @2 (alpha) {
             j := alpha - 1; y := alpha;
             while (j >= 0) { t2 := f(j); y := y + t2; j := j - 1; }
             if (y > 50) { notify true; } else { notify false; }
         }",
        &mut interner,
    )
    .unwrap();
    let r1 = rename_locals(&p1, &mut interner, "a$");
    let r2 = rename_locals(&p2, &mut interner, "b$");
    let merged = consolidate_pair_prerenamed(
        &r1,
        &r2,
        &interner,
        &CostModel::default(),
        &lib,
        &Options::default(),
    )
    .unwrap();
    assert_eq!(merged.stats.rules.loop2, 1, "Loop 2 should fire: {:?}", merged.stats);
    // The fused loop calls f once per iteration: cost(merged) must be far
    // below the sum for sizeable alpha.
    let interp = Interp::new(CostModel::default(), &lib);
    for alpha in [0i64, 1, 2, 5, 17] {
        check_soundness_on(&r1, &r2, &merged.program, &lib, &interner, &[alpha]).unwrap();
    }
    let c1 = interp.run(&r1, &[20], &interner).unwrap().cost;
    let c2 = interp.run(&r2, &[20], &interner).unwrap().cost;
    let cm = interp.run(&merged.program, &[20], &interner).unwrap().cost;
    assert!(
        cm * 3 < (c1 + c2) * 2,
        "loop fusion should save ≥1/3 of cost: {cm} vs {}",
        c1 + c2
    );
}

#[test]
fn figure6_single_test_consolidation() {
    // notify₁(x > α) ⊗ notify₂(x ≤ α) — one comparison suffices.
    let mut interner = Interner::new();
    let lib = FnLibrary::new();
    let p1 = udf_lang::parse::parse_program(
        "program p1 @1 (x, alpha) { if (x > alpha) { notify true; } else { notify false; } }",
        &mut interner,
    )
    .unwrap();
    let p2 = udf_lang::parse::parse_program(
        "program p2 @2 (x, alpha) { if (x <= alpha) { notify true; } else { notify false; } }",
        &mut interner,
    )
    .unwrap();
    let merged = consolidate_pair_prerenamed(
        &p1,
        &p2,
        &interner,
        &CostModel::default(),
        &lib,
        &Options::default(),
    )
    .unwrap();
    for args in [[1i64, 5], [5, 5], [9, 5]] {
        check_soundness_on(&p1, &p2, &merged.program, &lib, &interner, &args).unwrap();
    }
    // The merged program performs exactly one comparison.
    fn count_cmps(s: &Stmt) -> usize {
        fn cmps_in_bool(e: &BoolExpr) -> usize {
            match e {
                BoolExpr::Const(_) => 0,
                BoolExpr::Cmp(..) => 1,
                BoolExpr::Not(a) => cmps_in_bool(a),
                BoolExpr::Bin(_, a, b) => cmps_in_bool(a) + cmps_in_bool(b),
            }
        }
        match s {
            Stmt::Skip | Stmt::Assign(..) | Stmt::Notify(..) => 0,
            Stmt::Seq(a, b) => count_cmps(a) + count_cmps(b),
            Stmt::If(c, a, b) => cmps_in_bool(c) + count_cmps(a) + count_cmps(b),
            Stmt::While(c, b) => cmps_in_bool(c) + count_cmps(b),
        }
    }
    assert_eq!(count_cmps(&merged.program.body), 1);
}

#[test]
fn many_way_consolidation_is_sound() {
    // Eight parametrized threshold filters (a miniature query family).
    let mut interner = Interner::new();
    let lib = FnLibrary::new();
    let programs: Vec<Program> = (0..8)
        .map(|k| {
            udf_lang::parse::parse_program(
                &format!(
                    "program q{k} @{k} (v, w) {{
                         s := v + w;
                         if (s > {}) {{ notify true; }} else {{ notify false; }}
                     }}",
                    k * 10
                ),
                &mut interner,
            )
            .unwrap()
        })
        .collect();
    let merged = consolidate::consolidate_many(
        &programs,
        &mut interner,
        &CostModel::default(),
        &lib,
        &Options::default(),
        true,
    )
    .unwrap();
    let interp = Interp::new(CostModel::default(), &lib);
    for args in [[0i64, 0], [35, 1], [200, -1], [-50, -50]] {
        let rm = interp.run(&merged.program, &args, &interner).unwrap();
        let mut total = 0;
        for p in &programs {
            let r = interp.run(p, &args, &interner).unwrap();
            for (id, b) in r.notifications.iter() {
                assert_eq!(rm.notifications.get(id), Some(b), "args {args:?} id {id}");
            }
            total += r.cost;
        }
        assert_eq!(rm.notifications.len(), 8);
        assert!(rm.cost <= total, "{} > {total}", rm.cost);
    }
}

#[test]
fn incompatible_programs_are_rejected() {
    let mut interner = Interner::new();
    let lib = FnLibrary::new();
    let a = udf_lang::parse::parse_program("program a @1 (x) { notify true; }", &mut interner)
        .unwrap();
    let b = udf_lang::parse::parse_program("program b @1 (x) { notify false; }", &mut interner)
        .unwrap();
    let c = udf_lang::parse::parse_program("program c @2 (y) { notify false; }", &mut interner)
        .unwrap();
    let cm = CostModel::default();
    let opts = Options::default();
    assert!(matches!(
        consolidate::consolidate_pair(&a, &b, &mut interner, &cm, &lib, &opts),
        Err(consolidate::ConsolidateError::DuplicateIds)
    ));
    assert!(matches!(
        consolidate::consolidate_pair(&a, &c, &mut interner, &cm, &lib, &opts),
        Err(consolidate::ConsolidateError::ParamMismatch)
    ));
}

#[test]
fn syntactic_ablation_is_still_sound() {
    let mut interner = Interner::new();
    let lib = FnLibrary::new();
    let p1 = udf_lang::parse::parse_program(
        "program p1 @1 (v) { if (v > 10) { notify true; } else { notify false; } }",
        &mut interner,
    )
    .unwrap();
    let p2 = udf_lang::parse::parse_program(
        "program p2 @2 (v) { if (v > 20) { notify true; } else { notify false; } }",
        &mut interner,
    )
    .unwrap();
    let opts = Options {
        mode: consolidate::EntailmentMode::Syntactic,
        ..Options::default()
    };
    let merged =
        consolidate_pair_prerenamed(&p1, &p2, &interner, &CostModel::default(), &lib, &opts)
            .unwrap();
    for v in [0i64, 15, 25] {
        check_soundness_on(&p1, &p2, &merged.program, &lib, &interner, &[v]).unwrap();
    }
}
