// Integration tests may unwrap freely; the clippy gate denies it in src/.
#![allow(clippy::unwrap_used)]

//! Behavioural tests for the If 3/4/5 policies and the loop-fusion and
//! SMT ablation switches: every configuration stays sound; the policies
//! trade size for sharing exactly as §4's remark describes.

use consolidate::{consolidate_pair_prerenamed, EntailmentMode, IfPolicy, Options};
use udf_lang::analysis::rename_locals;
use udf_lang::cost::CostModel;
use udf_lang::intern::Interner;
use udf_lang::interp::Interp;
use udf_lang::library::FnLibrary;
use udf_lang::parse::parse_program;

fn correlated_pair(interner: &mut Interner) -> (udf_lang::ast::Program, udf_lang::ast::Program) {
    // Correlated predicates: p2's test is implied by p1's then-branch (the
    // shared call appears in the test predicate itself, which is what the
    // relatedness heuristic keys on).
    let p1 = parse_program(
        "program p1 @1 (v, w) {
             if (f(v) > 100) { y := w + 1; notify true; } else { y := w; notify false; }
         }",
        interner,
    )
    .unwrap();
    let p2 = parse_program(
        "program p2 @2 (v, w) {
             if (f(v) > 50) { notify true; } else { notify false; }
         }",
        interner,
    )
    .unwrap();
    (p1, p2)
}

fn run_config(opts: &Options) -> (usize, consolidate::RuleStats) {
    let mut interner = Interner::new();
    let f = interner.intern("f");
    let mut lib = FnLibrary::new();
    lib.register(f, "f", 1, 40, |a| a[0] * 3);
    let (p1, p2) = correlated_pair(&mut interner);
    let r1 = rename_locals(&p1, &mut interner, "a$");
    let r2 = rename_locals(&p2, &mut interner, "b$");
    let merged =
        consolidate_pair_prerenamed(&r1, &r2, &interner, &CostModel::default(), &lib, opts)
            .unwrap();
    // Soundness on a grid regardless of policy.
    let interp = Interp::new(CostModel::default(), &lib);
    for v in [0i64, 20, 40, 100] {
        for w in [-5i64, 5] {
            let a = interp.run(&r1, &[v, w], &interner).unwrap();
            let b = interp.run(&r2, &[v, w], &interner).unwrap();
            let m = interp.run(&merged.program, &[v, w], &interner).unwrap();
            assert_eq!(m.notifications.get(p1.id), a.notifications.get(p1.id));
            assert_eq!(m.notifications.get(p2.id), b.notifications.get(p2.id));
            assert!(m.cost <= a.cost + b.cost, "cost regressed under {opts:?}");
        }
    }
    (merged.program.size(), merged.stats.rules)
}

#[test]
fn if3_shares_most_if5_stays_smallest() {
    let if3 = run_config(&Options {
        if_policy: IfPolicy::AlwaysIf3,
        ..Options::default()
    });
    let if4 = run_config(&Options {
        if_policy: IfPolicy::AlwaysIf4,
        ..Options::default()
    });
    let if5 = run_config(&Options {
        if_policy: IfPolicy::AlwaysIf5,
        ..Options::default()
    });
    assert!(if3.1.if3 > 0, "If 3 must fire under AlwaysIf3: {:?}", if3.1);
    assert!(if4.1.if4 > 0, "If 4 must fire under AlwaysIf4: {:?}", if4.1);
    assert!(if5.1.if5 > 0, "If 5 must fire under AlwaysIf5: {:?}", if5.1);
    // The size ordering of §4: embedding duplicates code.
    assert!(
        if5.0 <= if3.0,
        "If 5 ({}) should not be larger than If 3 ({})",
        if5.0,
        if3.0
    );
}

#[test]
fn heuristic_embeds_related_code() {
    let (size, stats) = run_config(&Options::default());
    // The programs share `f` and parameter `v`, so the heuristic must choose
    // an embedding rule (If 3 or If 4), not If 5.
    assert!(
        stats.if3 + stats.if4 > 0,
        "related programs should embed: {stats:?} (size {size})"
    );
}

#[test]
fn loop_fusion_switch_controls_loop2() {
    let mut interner = Interner::new();
    let f = interner.intern("g");
    let mut lib = FnLibrary::new();
    lib.register(f, "g", 1, 50, |a| a[0] + 1);
    let src = |id: u32, acc: &str| {
        format!(
            "program p{id} @{id} (n) {{
                 s := 0; k := 0;
                 while (k < 8) {{ t := g(k); s := s {acc} t; k := k + 1; }}
                 if (s > 10) {{ notify true; }} else {{ notify false; }}
             }}"
        )
    };
    let p1 = parse_program(&src(1, "+"), &mut interner).unwrap();
    let p2 = parse_program(&src(2, "-"), &mut interner).unwrap();
    let r1 = rename_locals(&p1, &mut interner, "a$");
    let r2 = rename_locals(&p2, &mut interner, "b$");
    let cm = CostModel::default();
    let fused =
        consolidate_pair_prerenamed(&r1, &r2, &interner, &cm, &lib, &Options::default()).unwrap();
    assert_eq!(fused.stats.rules.loop2, 1, "{:?}", fused.stats);
    let unfused = consolidate_pair_prerenamed(
        &r1,
        &r2,
        &interner,
        &cm,
        &lib,
        &Options {
            loop_fusion: false,
            ..Options::default()
        },
    )
    .unwrap();
    assert_eq!(unfused.stats.rules.loop2, 0, "{:?}", unfused.stats);
    assert_eq!(unfused.stats.rules.loop_seq, 1, "{:?}", unfused.stats);
    // Both are correct; the fused one is cheaper.
    let interp = Interp::new(cm, &lib);
    let cf = interp.run(&fused.program, &[0], &interner).unwrap();
    let cu = interp.run(&unfused.program, &[0], &interner).unwrap();
    assert_eq!(cf.notifications, cu.notifications);
    assert!(cf.cost < cu.cost, "fusion should save: {} vs {}", cf.cost, cu.cost);
}

#[test]
fn syntactic_mode_shares_identical_computations_only() {
    let mut interner = Interner::new();
    let f = interner.intern("f");
    let mut lib = FnLibrary::new();
    lib.register(f, "f", 1, 40, |a| a[0] * 2);
    // p2 repeats p1's call verbatim (same parameter) — even the syntactic
    // mode should reuse it via the SSA equality of identical defining terms…
    // but syntactic entailment cannot *prove* the equality, so the call is
    // re-executed. Full SMT shares it. This is the CSE-vs-consolidation gap.
    let p1 = parse_program(
        "program p1 @1 (v) { x := f(v); if (x > 3) { notify true; } else { notify false; } }",
        &mut interner,
    )
    .unwrap();
    let p2 = parse_program(
        "program p2 @2 (v) { y := f(v); if (y > 5) { notify true; } else { notify false; } }",
        &mut interner,
    )
    .unwrap();
    let r1 = rename_locals(&p1, &mut interner, "a$");
    let r2 = rename_locals(&p2, &mut interner, "b$");
    let cm = CostModel::default();
    let smt =
        consolidate_pair_prerenamed(&r1, &r2, &interner, &cm, &lib, &Options::default()).unwrap();
    let syn = consolidate_pair_prerenamed(
        &r1,
        &r2,
        &interner,
        &cm,
        &lib,
        &Options {
            mode: EntailmentMode::Syntactic,
            ..Options::default()
        },
    )
    .unwrap();
    let interp = Interp::new(cm, &lib);
    let cs = interp.run(&smt.program, &[7], &interner).unwrap();
    let cy = interp.run(&syn.program, &[7], &interner).unwrap();
    assert_eq!(cs.notifications, cy.notifications);
    assert!(
        cs.cost <= cy.cost,
        "SMT mode must be at least as good: {} vs {}",
        cs.cost,
        cy.cost
    );
    let printed_smt = udf_lang::pretty::program(&smt.program, &interner);
    assert_eq!(
        printed_smt.matches("f(").count(),
        1,
        "SMT mode shares the call:\n{printed_smt}"
    );
}
