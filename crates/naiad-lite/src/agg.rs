//! Parallel execution of user-defined aggregations.
//!
//! [`Engine::run_agg`] evaluates a set of UDAF definitions over a shared
//! record scan. Proved-homomorphic definitions (see
//! `consolidate::homomorphism`) are folded in parallel: the input is cut
//! into fixed-size chunks — the chunk grid depends only on the record
//! count, never on the worker count — workers claim chunks from a shared
//! counter, fold each chunk from the initial state, and the partial states
//! are merged in a deterministic contiguous binary tree by chunk index.
//! Results are therefore bit-identical at every worker count. Definitions
//! whose proof failed (or was never attempted) run on a single sequential
//! shard — the sound fallback tier.
//!
//! The two [`AggMode`]s mirror `whereMany`/`whereConsolidated`:
//!
//! * [`AggMode::Separate`] scans the input once *per definition* (each scan
//!   decodes the record and runs one fold);
//! * [`AggMode::Consolidated`] scans the input once *in total*: each record
//!   is decoded once and every definition's fold runs over the shared
//!   decode — the aggregation analogue of the paper's consolidated pass.
//!
//! Both modes use identical chunking, fold order and merge trees, so their
//! outputs (states *and* quarantine reports) are bit-identical; only the
//! scan count differs.
//!
//! Failure handling preserves the engine's quarantine invariants at
//! (record, definition) granularity: a fold that faults or panics
//! quarantines that record *for that definition only* — the definition's
//! state simply does not absorb the record, other definitions fold it
//! normally. State commits are all-or-nothing per fold step: a fold that
//! dies mid-body leaves no partial mutation behind.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::compile::VmError;
use crate::engine::{
    Engine, EngineError, ErrorKind, ErrorPolicy, QuarantineEntry, QuarantineReport,
};
use crate::env::{RecordLibrary, UdfEnv};
use consolidate::budget::DegradationTier;
use udf_lang::agg::AggDef;
use udf_lang::ast::ProgId;
use udf_lang::cost::CostModel;
use udf_lang::intern::Interner;
use udf_lang::interp::{EvalError, Interp};
use udf_lang::library::{FnLibrary, LibError};
use udf_obs::{names, RecorderCell};

/// Records per fold chunk. Fixed (worker-count independent) so the chunk
/// grid — and with it every partial fold and the merge tree — is a pure
/// function of the input length.
pub const AGG_CHUNK: usize = 256;

/// Which scan strategy evaluates the definitions (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggMode {
    /// One scan per definition (the paper's `whereMany` analogue).
    Separate,
    /// One shared scan for all definitions.
    Consolidated,
}

/// A proved-and-ready set of aggregation definitions sharing one scan.
#[derive(Clone, Debug)]
pub struct AggQuerySet {
    /// The definitions, in output order.
    pub defs: Vec<AggDef>,
    /// Positional homomorphism verdicts; `false` pins the definition to the
    /// sequential fallback shard.
    pub proved: Vec<bool>,
    /// Cost model charged by the fold/merge interpreter.
    pub cost_model: CostModel,
    /// Per-fold-step budget ([`crate::DEFAULT_FUEL`] by default; overridden
    /// per job by [`crate::EngineConfig::fuel`]).
    pub fuel: u64,
    /// Wall-clock time the prover spent on this set.
    pub consolidation_time: Duration,
    /// Proof-side degradation tier (`Full` = every definition parallel).
    pub tier: DegradationTier,
    /// Cache key of the aggregation plan, when it came through a
    /// [`plan_cache::PlanCache`].
    pub plan_key: Option<plan_cache::PlanKey>,
}

impl AggQuerySet {
    /// Wraps definitions with explicit proof verdicts (lengths must match).
    pub fn new(defs: Vec<AggDef>, proved: Vec<bool>) -> AggQuerySet {
        debug_assert_eq!(defs.len(), proved.len());
        let tier = tier_of(&proved);
        AggQuerySet {
            defs,
            proved,
            cost_model: CostModel::default(),
            fuel: crate::DEFAULT_FUEL,
            consolidation_time: Duration::ZERO,
            tier,
            plan_key: None,
        }
    }

    /// Wraps definitions with every proof obligation *assumed unproved*:
    /// all of them run sequentially. The safe default.
    pub fn sequential(defs: Vec<AggDef>) -> AggQuerySet {
        let n = defs.len();
        AggQuerySet::new(defs, vec![false; n])
    }

    /// Proves the homomorphism obligations via
    /// [`consolidate::homomorphism::consolidate_aggs`] and wraps the result.
    ///
    /// # Errors
    ///
    /// Propagates [`consolidate::api::ConsolidateError`] on malformed sets.
    pub fn prove(
        defs: Vec<AggDef>,
        interner: &mut Interner,
        opts: &consolidate::Options,
    ) -> Result<AggQuerySet, consolidate::api::ConsolidateError> {
        let proof = consolidate::homomorphism::consolidate_aggs(&defs, interner, opts)?;
        let mut qs = AggQuerySet::new(defs, proof.proved_flags());
        qs.consolidation_time = proof.elapsed;
        qs.tier = proof.tier;
        Ok(qs)
    }

    /// Like [`AggQuerySet::prove`], but through a
    /// [`plan_cache::PlanCache`]: warm verdicts skip the prover (and the
    /// solver) entirely, and [`AggQuerySet::plan_key`] records the cache
    /// entry so runtime incidents can invalidate it.
    ///
    /// # Errors
    ///
    /// Propagates [`consolidate::api::ConsolidateError`] on malformed sets.
    pub fn prove_cached(
        defs: Vec<AggDef>,
        interner: &mut Interner,
        cm: CostModel,
        opts: &consolidate::Options,
        cache: &plan_cache::PlanCache,
    ) -> Result<AggQuerySet, consolidate::api::ConsolidateError> {
        let (proof, key, _outcome) =
            plan_cache::consolidate_aggs_cached(cache, &defs, interner, &cm, opts)?;
        let mut qs = AggQuerySet::new(defs, proof.proved_flags());
        qs.cost_model = cm;
        qs.consolidation_time = proof.elapsed;
        qs.tier = proof.tier;
        qs.plan_key = Some(key);
        Ok(qs)
    }

    /// Overrides the per-fold-step fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> AggQuerySet {
        self.fuel = fuel;
        self
    }

    /// Overrides the cost model.
    pub fn with_cost_model(mut self, cm: CostModel) -> AggQuerySet {
        self.cost_model = cm;
        self
    }
}

fn tier_of(proved: &[bool]) -> DegradationTier {
    match proved.iter().filter(|p| **p).count() {
        n if n == proved.len() && n > 0 => DegradationTier::Full,
        0 => DegradationTier::Sequential,
        _ => DegradationTier::Partial,
    }
}

/// Outcome of one [`Engine::run_agg`] job.
#[derive(Clone, Debug)]
pub struct AggReport {
    /// Definition ids, in output order.
    pub ids: Vec<ProgId>,
    /// Which definitions ran parallel (copied from the query set, except
    /// that a definition whose merge faulted at run time is demoted to the
    /// sequential shard and reported `false` here).
    pub proved: Vec<bool>,
    /// Per-definition final state vectors, slot declaration order.
    pub states: Vec<Vec<i64>>,
    /// What was dropped instead of failing. Entries are (record,
    /// definition) pairs — `records_quarantined` counts pair-exclusions,
    /// not distinct records — globally sorted by (record, definition
    /// position) and therefore worker-count deterministic.
    pub quarantine: QuarantineReport,
    /// Successful fold steps (surviving (record, definition) pairs).
    pub folds: u64,
    /// Partial-state merges executed (including any later discarded by a
    /// merge-fault demotion).
    pub merges: u64,
    /// Records in the input (each scan covers all of them).
    pub records: usize,
    /// Wall-clock time of the fold phase (all scans).
    pub udf_time: Duration,
    /// Wall-clock time of the merge phase.
    pub merge_time: Duration,
    /// Degradation tier of the executed set (after run-time demotions).
    pub tier: DegradationTier,
    /// Snapshot of [`crate::EngineConfig::recorder`] at job end (`None`
    /// when the recorder is the no-op default).
    pub metrics: Option<udf_obs::MetricsSnapshot>,
}

/// Worker-local accumulator for one pass.
#[derive(Default)]
struct PassCounters {
    folds: u64,
    records_retried: usize,
    retry_attempts: u64,
    records_recovered: usize,
}

impl PassCounters {
    fn absorb(&mut self, o: &PassCounters) {
        self.folds += o.folds;
        self.records_retried += o.records_retried;
        self.retry_attempts += o.retry_attempts;
        self.records_recovered += o.records_recovered;
    }
}

/// One fold-step failure, pre-classification.
enum FoldFault {
    Eval(EvalError),
    Panic(String),
}

impl FoldFault {
    fn kind(&self) -> ErrorKind {
        match self {
            FoldFault::Eval(EvalError::DuplicateNotify(_)) => ErrorKind::DuplicateNotify,
            FoldFault::Eval(EvalError::OutOfFuel) => ErrorKind::OutOfFuel,
            FoldFault::Eval(_) => ErrorKind::Lib,
            FoldFault::Panic(_) => ErrorKind::Panic,
        }
    }

    fn detail(&self) -> String {
        match self {
            FoldFault::Eval(e) => e.to_string(),
            FoldFault::Panic(m) => m.clone(),
        }
    }

    /// The [`EngineError`] this fault raises under
    /// [`ErrorPolicy::FailFast`]. Interpreter-shape errors with no
    /// [`VmError`] equivalent (unbound variable, arity mismatch) surface as
    /// library errors carrying the rendered message.
    fn fail_fast(self, record: usize) -> EngineError {
        match self {
            FoldFault::Eval(EvalError::Lib(e)) => EngineError::Record {
                record,
                error: VmError::Lib(e),
            },
            FoldFault::Eval(EvalError::OutOfFuel) => EngineError::Record {
                record,
                error: VmError::OutOfFuel,
            },
            FoldFault::Eval(e) => EngineError::Record {
                record,
                error: VmError::Lib(LibError::UnknownFunction(e.to_string())),
            },
            FoldFault::Panic(message) => EngineError::RecordPanic { record, message },
        }
    }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

impl Engine {
    /// Runs a set of user-defined aggregations over `records`.
    ///
    /// See the module docs for the execution model. The parameter list of
    /// every definition must match `env.arity()`.
    ///
    /// # Errors
    ///
    /// * [`EngineError::Record`] / [`EngineError::RecordPanic`] — first
    ///   faulting (record, definition) pair under
    ///   [`ErrorPolicy::FailFast`];
    /// * [`EngineError::TooManyErrors`] — quarantine overflow under
    ///   [`ErrorPolicy::Quarantine`];
    /// * [`EngineError::WorkerPanicked`] — a worker died outside
    ///   per-record execution.
    pub fn run_agg<E: UdfEnv>(
        &self,
        env: &E,
        records: &[E::Rec],
        queries: &AggQuerySet,
        interner: &Interner,
        mode: AggMode,
    ) -> Result<AggReport, EngineError> {
        for def in &queries.defs {
            if def.params.len() != env.arity() {
                return Err(EngineError::Record {
                    record: 0,
                    error: VmError::Lib(LibError::ArityMismatch {
                        name: "<aggregate>".to_string(),
                        expected: env.arity(),
                        got: def.params.len(),
                    }),
                });
            }
        }
        let cfg = self.config();
        let ctx = FoldCtx {
            env,
            interner,
            cm: &queries.cost_model,
            fuel: cfg.fuel.unwrap_or(queries.fuel),
            max_retries: cfg.retry.max_retries,
            fail_fast: matches!(cfg.error_policy, ErrorPolicy::FailFast),
            workers: self.workers().max(1),
            recorder: cfg.recorder.clone(),
        };

        let mut counters = PassCounters::default();
        let mut merges = 0u64;
        let n_defs = queries.defs.len();
        let mut states: Vec<Vec<i64>> = vec![Vec::new(); n_defs];
        let mut entries_by_def: Vec<Vec<QuarantineEntry>> = vec![Vec::new(); n_defs];
        let mut proved_out = queries.proved.clone();

        let fold_start = Instant::now();
        let mut merge_time = Duration::ZERO;

        let proved_idx: Vec<usize> = (0..n_defs).filter(|&i| queries.proved[i]).collect();

        // Parallel phase: proved definitions, chunked + tree-merged.
        // Separate mode runs one parallel pass per definition; consolidated
        // mode runs a single pass decoding each record once for all of them.
        let par_groups: Vec<Vec<usize>> = group_for_mode(mode, &proved_idx);
        for group in &par_groups {
            let chunks = ctx.parallel_chunks(records, queries, group)?;
            // Deterministic contiguous tree merge per definition, driver
            // side: chunk partials are reduced pairwise by chunk index, a
            // pure function of the record count.
            let mt = Instant::now();
            for (gi, &di) in group.iter().enumerate() {
                let def = &queries.defs[di];
                let mut layer: Vec<Vec<i64>> =
                    chunks.iter().map(|c| c.states[gi].clone()).collect();
                if layer.is_empty() {
                    layer.push(def.init_state());
                }
                let mut merge_ok = true;
                while layer.len() > 1 && merge_ok {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        if pair.len() == 1 {
                            next.push(pair[0].clone());
                            continue;
                        }
                        match merge_states(def, &pair[0], &pair[1], &ctx) {
                            Ok(s) => {
                                merges += 1;
                                next.push(s);
                            }
                            Err(_) => {
                                merge_ok = false;
                                break;
                            }
                        }
                    }
                    layer = next;
                }
                if merge_ok {
                    states[di] = layer.swap_remove(0);
                } else {
                    // A proved definition whose merge still faulted at run
                    // time (symbolic proofs are total, execution is not:
                    // e.g. a merge-local read before assignment). Demote to
                    // the sequential shard — slower, identical to the
                    // single-pass semantics.
                    proved_out[di] = false;
                }
            }
            merge_time += mt.elapsed();
            for c in chunks {
                counters.absorb(&c.counters);
                for (gi, ents) in c.entries.into_iter().enumerate() {
                    let di = group[gi];
                    if proved_out[di] {
                        entries_by_def[di].extend(ents);
                    }
                }
            }
        }

        // Sequential phase: unproved definitions plus run-time demotions,
        // single shard over the whole input. Consolidated mode shares one
        // scan across all of them; separate mode scans per definition.
        let seq_all: Vec<usize> = (0..n_defs).filter(|&i| !proved_out[i]).collect();
        for group in &group_for_mode(mode, &seq_all) {
            let shard = ctx.fold_span(records, 0, records.len(), queries, group)?;
            counters.absorb(&shard.counters);
            for (gi, (st, ents)) in shard.states.into_iter().zip(shard.entries).enumerate() {
                states[group[gi]] = st;
                entries_by_def[group[gi]] = ents;
            }
        }
        let udf_time = fold_start.elapsed().saturating_sub(merge_time);

        // Globally-sorted quarantine report: (record, definition position).
        let mut merged: Vec<(usize, usize, QuarantineEntry)> = Vec::new();
        for (di, ents) in entries_by_def.iter_mut().enumerate() {
            for e in std::mem::take(ents) {
                merged.push((e.record, di, e));
            }
        }
        merged.sort_by_key(|(r, d, _)| (*r, *d));
        let mut all: Vec<QuarantineEntry> = Vec::with_capacity(merged.len());
        for (i, (_, _, mut e)) in merged.into_iter().enumerate() {
            if i >= cfg.max_payload_samples {
                e.sample = None;
            }
            all.push(e);
        }

        if let ErrorPolicy::Quarantine { max_errors } = cfg.error_policy {
            if all.len() > max_errors {
                return Err(EngineError::TooManyErrors {
                    limit: max_errors,
                    observed: all.len(),
                });
            }
        }
        let quarantine = QuarantineReport {
            records_quarantined: all.len(),
            entries: all,
            shards_lost: 0,
            records_lost: 0,
            records_retried: counters.records_retried,
            retry_attempts: counters.retry_attempts,
            records_recovered: counters.records_recovered,
        };

        // Emit the metrics surface from the same counters the report
        // carries, so recorder and report agree by construction.
        cfg.recorder.add(names::AGG_FOLDS, counters.folds);
        cfg.recorder.add(names::AGG_MERGES, merges);
        cfg.recorder.add(names::ENGINE_RECORDS, records.len() as u64);

        Ok(AggReport {
            ids: queries.defs.iter().map(|d| d.id).collect(),
            tier: tier_of(&proved_out),
            proved: proved_out,
            states,
            quarantine,
            folds: counters.folds,
            merges,
            records: records.len(),
            udf_time,
            merge_time,
            metrics: cfg.recorder.snapshot(),
        })
    }
}

/// Consolidated mode folds a group of definitions over one scan; separate
/// mode gives each its own scan.
fn group_for_mode(mode: AggMode, idx: &[usize]) -> Vec<Vec<usize>> {
    match mode {
        AggMode::Separate => idx.iter().map(|&i| vec![i]).collect(),
        AggMode::Consolidated if idx.is_empty() => Vec::new(),
        AggMode::Consolidated => vec![idx.to_vec()],
    }
}

/// Immutable fold-execution context shared by workers.
struct FoldCtx<'a, E: UdfEnv> {
    env: &'a E,
    interner: &'a Interner,
    cm: &'a CostModel,
    fuel: u64,
    max_retries: u32,
    fail_fast: bool,
    workers: usize,
    recorder: RecorderCell,
}

/// One chunk's outputs for the definitions of a pass group.
struct ChunkResult {
    states: Vec<Vec<i64>>,
    entries: Vec<Vec<QuarantineEntry>>,
    counters: PassCounters,
}

impl<'a, E: UdfEnv> FoldCtx<'a, E> {
    /// Folds `[lo, hi)` sequentially for the given definitions, decoding
    /// each record once for the whole group.
    fn fold_span(
        &self,
        records: &[E::Rec],
        lo: usize,
        hi: usize,
        queries: &AggQuerySet,
        group: &[usize],
    ) -> Result<ChunkResult, EngineError> {
        let mut states: Vec<Vec<i64>> =
            group.iter().map(|&di| queries.defs[di].init_state()).collect();
        let mut entries: Vec<Vec<QuarantineEntry>> = group.iter().map(|_| Vec::new()).collect();
        let mut counters = PassCounters::default();
        let timing = self.recorder.enabled();
        let mut args: Vec<i64> = Vec::with_capacity(self.env.arity());
        for (off, rec) in records[lo..hi].iter().enumerate() {
            let ridx = lo + off;
            args.clear();
            self.env.args(rec, &mut args);
            let span = timing.then(|| self.recorder.span(names::ENGINE_FOLD_NS));
            for (gi, &di) in group.iter().enumerate() {
                let def = &queries.defs[di];
                if let Err((fault, retries)) =
                    self.fold_one(rec, &args, def, &mut states[gi], &mut counters)
                {
                    if self.fail_fast {
                        return Err(fault.fail_fast(ridx));
                    }
                    entries[gi].push(QuarantineEntry {
                        record: ridx,
                        query: Some(def.id),
                        kind: fault.kind(),
                        detail: fault.detail(),
                        sample: Some(args.clone()),
                        retries,
                    });
                }
            }
            drop(span);
        }
        Ok(ChunkResult {
            states,
            entries,
            counters,
        })
    }

    /// One fold step with scratch-copy commit and transient retry.
    ///
    /// Transient library faults are retried up to `max_retries` times;
    /// in-memory folds retry immediately, without the record path's
    /// backoff sleeps.
    fn fold_one(
        &self,
        rec: &E::Rec,
        args: &[i64],
        def: &AggDef,
        state: &mut [i64],
        counters: &mut PassCounters,
    ) -> Result<(), (FoldFault, u32)> {
        let mut retries = 0u32;
        loop {
            let mut work: BTreeMap<udf_lang::Symbol, i64> = BTreeMap::new();
            for (slot, &v) in def.state.iter().zip(state.iter()) {
                work.insert(slot.name, v);
            }
            for (&p, &a) in def.params.iter().zip(args) {
                work.insert(p, a);
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let lib = RecordLibrary::new(self.env, rec);
                let interp = Interp::new(self.cm.clone(), &lib).with_fuel(self.fuel);
                let mut w = work;
                interp.stmt_in(&mut w, &def.fold, self.interner).map(|_| w)
            }));
            match outcome {
                Ok(Ok(w)) => {
                    for (slot, v) in def.state.iter().zip(state.iter_mut()) {
                        if let Some(&nv) = w.get(&slot.name) {
                            *v = nv;
                        }
                    }
                    counters.folds += 1;
                    if retries > 0 {
                        counters.records_retried += 1;
                        counters.retry_attempts += u64::from(retries);
                        counters.records_recovered += 1;
                    }
                    return Ok(());
                }
                Ok(Err(EvalError::Lib(LibError::Transient(_)))) if retries < self.max_retries => {
                    retries += 1;
                }
                Ok(Err(e)) => {
                    if retries > 0 {
                        counters.records_retried += 1;
                        counters.retry_attempts += u64::from(retries);
                    }
                    return Err((FoldFault::Eval(e), retries));
                }
                Err(p) => {
                    if retries > 0 {
                        counters.records_retried += 1;
                        counters.retry_attempts += u64::from(retries);
                    }
                    return Err((FoldFault::Panic(panic_message(p)), retries));
                }
            }
        }
    }

    /// Chunked parallel fold of the whole input for one pass group. Chunk
    /// results are collected by chunk index, so any [`EngineError`] (e.g.
    /// fail-fast) surfaces from the lowest faulting chunk — worker-count
    /// deterministic.
    fn parallel_chunks(
        &self,
        records: &[E::Rec],
        queries: &AggQuerySet,
        group: &[usize],
    ) -> Result<Vec<ChunkResult>, EngineError> {
        let n_chunks = records.len().div_ceil(AGG_CHUNK).max(1);
        let next = AtomicUsize::new(0);
        let slots: Vec<std::sync::Mutex<Option<Result<ChunkResult, EngineError>>>> =
            (0..n_chunks).map(|_| std::sync::Mutex::new(None)).collect();
        let workers = self.workers.min(n_chunks);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let next = &next;
                let slots = &slots;
                handles.push(scope.spawn(move || loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        return;
                    }
                    let lo = c * AGG_CHUNK;
                    let hi = ((c + 1) * AGG_CHUNK).min(records.len());
                    let r = self.fold_span(records, lo, hi, queries, group);
                    if let Ok(mut slot) = slots[c].lock() {
                        *slot = Some(r);
                    }
                }));
            }
            for (shard, h) in handles.into_iter().enumerate() {
                if h.join().is_err() {
                    return Err(EngineError::WorkerPanicked {
                        shard,
                        message: "aggregation worker panicked".to_string(),
                    });
                }
            }
            Ok(())
        })?;
        let mut out = Vec::with_capacity(n_chunks);
        for slot in slots {
            match slot.into_inner() {
                Ok(Some(r)) => out.push(r?),
                _ => {
                    return Err(EngineError::WorkerPanicked {
                        shard: 0,
                        message: "aggregation chunk result missing".to_string(),
                    })
                }
            }
        }
        Ok(out)
    }
}

/// Merges two partial states through the definition's merge body. The body
/// is validated call-free, so an empty library suffices; any residual
/// evaluation error (e.g. a merge-local read before assignment) is
/// returned for the caller to demote the definition.
fn merge_states<E: UdfEnv>(
    def: &AggDef,
    left: &[i64],
    right: &[i64],
    ctx: &FoldCtx<'_, E>,
) -> Result<Vec<i64>, EvalError> {
    let lib = FnLibrary::new();
    let interp = Interp::new(ctx.cm.clone(), &lib).with_fuel(ctx.fuel);
    let mut work: BTreeMap<udf_lang::Symbol, i64> = BTreeMap::new();
    for (slot, &v) in def.state.iter().zip(left) {
        work.insert(slot.name, v);
    }
    for (slot, &v) in def.state.iter().zip(right) {
        work.insert(slot.rhs, v);
    }
    interp.stmt_in(&mut work, &def.merge, ctx.interner)?;
    Ok(def
        .state
        .iter()
        .map(|slot| work.get(&slot.name).copied().unwrap_or(0))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, RetryPolicy};
    use crate::env::ScalarEnv;
    use crate::fault::{silence_injected_panics, FaultKind, FaultPlan, FaultyEnv};
    use udf_lang::agg::parse_aggs;
    use udf_lang::library::FnLibrary;

    fn sum_count_defs(interner: &mut Interner) -> Vec<AggDef> {
        parse_aggs(
            "aggregate sum @1 (x) {
                 state s = 0;
                 fold { s := s + x; }
                 merge { s := s + rhs_s; }
             }
             aggregate count @2 (x) {
                 state c = 0;
                 fold { c := c + 1; }
                 merge { c := c + rhs_c; }
             }",
            interner,
        )
        .expect("parse")
    }

    fn scalar_records(n: usize) -> Vec<Vec<i64>> {
        (0..n).map(|i| vec![(i as i64 * 7) % 101 - 13]).collect()
    }

    fn quarantine_engine(workers: usize) -> Engine {
        Engine::new(workers).with_config(EngineConfig {
            error_policy: ErrorPolicy::Quarantine { max_errors: 1000 },
            ..EngineConfig::default()
        })
    }

    #[test]
    fn sum_count_bit_identical_across_modes_and_workers() {
        let mut interner = Interner::new();
        let defs = sum_count_defs(&mut interner);
        let records = scalar_records(1000);
        let expect_sum: i64 = records.iter().map(|r| r[0]).sum();
        let env = ScalarEnv::new(1, FnLibrary::new());
        let queries = AggQuerySet::new(defs, vec![true, true]);
        let mut seen: Option<Vec<Vec<i64>>> = None;
        for workers in [1usize, 2, 8] {
            for mode in [AggMode::Separate, AggMode::Consolidated] {
                let engine = quarantine_engine(workers);
                let rep = engine
                    .run_agg(&env, &records, &queries, &interner, mode)
                    .expect("run");
                assert_eq!(rep.states[0], vec![expect_sum]);
                assert_eq!(rep.states[1], vec![1000]);
                assert!(rep.quarantine.entries.is_empty());
                assert_eq!(rep.folds, 2000);
                assert!(rep.merges > 0, "1000 records span multiple chunks");
                assert_eq!(rep.tier, DegradationTier::Full);
                match &seen {
                    None => seen = Some(rep.states.clone()),
                    Some(s) => assert_eq!(s, &rep.states),
                }
            }
        }
    }

    #[test]
    fn unproved_defs_fold_sequentially_to_the_same_states() {
        let mut interner = Interner::new();
        let defs = sum_count_defs(&mut interner);
        let records = scalar_records(700);
        let env = ScalarEnv::new(1, FnLibrary::new());
        let proved = AggQuerySet::new(defs.clone(), vec![true, true]);
        let seq = AggQuerySet::sequential(defs);
        let engine = quarantine_engine(4);
        let a = engine
            .run_agg(&env, &records, &proved, &interner, AggMode::Consolidated)
            .expect("proved");
        let b = engine
            .run_agg(&env, &records, &seq, &interner, AggMode::Consolidated)
            .expect("sequential");
        assert_eq!(a.states, b.states);
        assert_eq!(a.tier, DegradationTier::Full);
        assert_eq!(b.tier, DegradationTier::Sequential);
        assert_eq!(b.merges, 0, "sequential shard never merges");
    }

    #[test]
    fn panic_quarantines_only_the_owning_udaf() {
        silence_injected_panics();
        let mut interner = Interner::new();
        let boom = interner.intern("boom");
        let defs = parse_aggs(
            "aggregate risky @1 (x) {
                 state b = 0;
                 fold { v := boom(x); b := b + v; }
                 merge { b := b + rhs_b; }
             }
             aggregate safe @2 (x) {
                 state s = 0;
                 fold { s := s + x; }
                 merge { s := s + rhs_s; }
             }",
            &mut interner,
        )
        .expect("parse");
        let mut lib = FnLibrary::new();
        lib.register(boom, "boom", 1, 1, |a| a[0] * 2);
        let inner = ScalarEnv::new(1, lib);
        let env = FaultyEnv::new(inner, boom, FaultPlan::single(5, FaultKind::Panic));
        let records = FaultyEnv::<ScalarEnv>::index_records(scalar_records(600));
        let queries = AggQuerySet::new(defs, vec![true, true]);
        for workers in [1usize, 2, 8] {
            for mode in [AggMode::Separate, AggMode::Consolidated] {
                let rep = quarantine_engine(workers)
                    .run_agg(&env, &records, &queries, &interner, mode)
                    .expect("run");
                let expect_risky: i64 = records
                    .iter()
                    .filter(|(i, _)| *i != 5)
                    .map(|(_, r)| r[0] * 2)
                    .sum();
                let expect_safe: i64 = records.iter().map(|(_, r)| r[0]).sum();
                assert_eq!(rep.states[0], vec![expect_risky], "record 5 excluded");
                assert_eq!(rep.states[1], vec![expect_safe], "safe def absorbs all");
                assert_eq!(rep.quarantine.entries.len(), 1);
                let e = &rep.quarantine.entries[0];
                assert_eq!(e.record, 5);
                assert_eq!(e.query, Some(udf_lang::ast::ProgId(1)));
                assert_eq!(e.kind, ErrorKind::Panic);
            }
        }
    }

    #[test]
    fn fail_fast_raises_the_first_faulting_pair() {
        silence_injected_panics();
        let mut interner = Interner::new();
        let boom = interner.intern("boom");
        let defs = parse_aggs(
            "aggregate risky @1 (x) {
                 state b = 0;
                 fold { v := boom(x); b := b + v; }
                 merge { b := b + rhs_b; }
             }",
            &mut interner,
        )
        .expect("parse");
        let mut lib = FnLibrary::new();
        lib.register(boom, "boom", 1, 1, |a| a[0]);
        let env = FaultyEnv::new(
            ScalarEnv::new(1, lib),
            boom,
            FaultPlan::single(300, FaultKind::Panic),
        );
        let records = FaultyEnv::<ScalarEnv>::index_records(scalar_records(600));
        let queries = AggQuerySet::new(defs, vec![true]);
        let err = Engine::new(4)
            .run_agg(&env, &records, &queries, &interner, AggMode::Consolidated)
            .expect_err("fail fast");
        match err {
            EngineError::RecordPanic { record, .. } => assert_eq!(record, 300),
            other => panic!("expected RecordPanic, got {other:?}"),
        }
    }

    #[test]
    fn transient_faults_retry_and_recover() {
        let mut interner = Interner::new();
        let tick = interner.intern("tick");
        let defs = parse_aggs(
            "aggregate total @1 (x) {
                 state s = 0;
                 fold { s := s + tick(x); }
                 merge { s := s + rhs_s; }
             }",
            &mut interner,
        )
        .expect("parse");
        let mut lib = FnLibrary::new();
        lib.register(tick, "tick", 1, 1, |a| a[0]);
        let env = FaultyEnv::new(
            ScalarEnv::new(1, lib),
            tick,
            FaultPlan::single(7, FaultKind::Transient(2)),
        );
        let records = FaultyEnv::<ScalarEnv>::index_records(scalar_records(50));
        let queries = AggQuerySet::new(defs, vec![true]);
        let expect: i64 = records.iter().map(|(_, r)| r[0]).sum();

        // Not enough retries: the record is quarantined.
        let rep = quarantine_engine(2)
            .run_agg(&env, &records, &queries, &interner, AggMode::Consolidated)
            .expect("run");
        assert_eq!(rep.quarantine.entries.len(), 1);
        assert_eq!(rep.states[0], vec![expect - records[7].1[0]]);

        // Enough retries: the record recovers.
        env.reset_transients();
        let cfg = EngineConfig {
            error_policy: ErrorPolicy::Quarantine { max_errors: 1000 },
            retry: RetryPolicy {
                max_retries: 2,
                ..RetryPolicy::default()
            },
            ..EngineConfig::default()
        };
        let rep = Engine::new(2)
            .with_config(cfg)
            .run_agg(&env, &records, &queries, &interner, AggMode::Consolidated)
            .expect("run");
        assert!(rep.quarantine.entries.is_empty());
        assert_eq!(rep.states[0], vec![expect]);
        assert_eq!(rep.quarantine.records_retried, 1);
        assert_eq!(rep.quarantine.records_recovered, 1);
    }

    #[test]
    fn merge_fault_demotes_to_sequential_not_wrong() {
        // A loopy merge is refused by the prover, but `AggQuerySet::new`
        // lets a caller assert anything; here the merge exhausts its fuel at
        // run time and the run-time demotion keeps execution sound anyway.
        let mut interner = Interner::new();
        let defs = parse_aggs(
            "aggregate sneaky @1 (x) {
                 state s = 0;
                 fold { s := s + x; }
                 merge {
                     i := 0;
                     while (i < 1000000) { i := i + 1; }
                     s := s + rhs_s;
                 }
             }",
            &mut interner,
        )
        .expect("parse");
        let records = scalar_records(600);
        let expect: i64 = records.iter().map(|r| r[0]).sum();
        let env = ScalarEnv::new(1, FnLibrary::new());
        let queries = AggQuerySet::new(defs, vec![true]).with_fuel(1000);
        let rep = quarantine_engine(4)
            .run_agg(&env, &records, &queries, &interner, AggMode::Consolidated)
            .expect("run");
        assert_eq!(rep.proved, vec![false], "demoted at run time");
        assert_eq!(rep.tier, DegradationTier::Sequential);
        assert_eq!(rep.states[0], vec![expect], "sequential rerun is correct");
    }

    #[test]
    fn arity_mismatch_is_rejected_up_front() {
        let mut interner = Interner::new();
        let defs = sum_count_defs(&mut interner);
        let env = ScalarEnv::new(2, FnLibrary::new());
        let queries = AggQuerySet::new(defs, vec![true, true]);
        let err = Engine::new(1)
            .run_agg(&env, &[vec![1, 2]], &queries, &interner, AggMode::Separate)
            .expect_err("arity");
        assert!(matches!(err, EngineError::Record { record: 0, .. }));
    }
}
