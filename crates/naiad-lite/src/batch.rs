//! Columnar batch execution of register bytecode.
//!
//! The per-record backend interprets one record at a time: every bytecode
//! op pays its dispatch once *per record*. This module amortizes dispatch
//! across a whole **struct-of-arrays batch**: a [`RecordBatch`] holds one
//! `i64` column per record field, and [`BatchVm`] runs each basic block of a
//! [`RegProgram`] over every lane (record) scheduled at that block — one
//! instruction dispatch per *batch*, with a tight per-lane inner loop.
//!
//! Lanes diverge at branches, so the VM repeatedly executes the block at
//! the **minimum** pc among live lanes; loop back-edges therefore
//! re-converge lanes instead of deadlocking, and every scheduled block
//! consumes fuel, so termination is inherited from the fuel bound. There is
//! no per-lane program counter: waiting lanes sit in one bucket per basic
//! block (blocks are ordered by start pc, so the lowest-indexed non-empty
//! bucket *is* the minimum pc), the drained bucket doubles as the selection
//! vector, and each block visit reports how it left its selection (jump,
//! conditional split, halt) so survivors are routed straight to their
//! successor buckets — O(1) amortized scheduling per block visit.
//!
//! # Exactness
//!
//! Observables are bit-identical to the scalar reference ([`crate::compile::Vm`]):
//!
//! * per-lane fuel/cost columns are charged from the same per-instruction
//!   `steps`/`cost` totals the scalar register VM uses (which in turn match
//!   the stack VM op-for-op, see [`crate::regcode`]);
//! * in blocks containing calls or notifies, the per-lane fuel gate runs
//!   *before* every stateful instruction, so an environment observes
//!   exactly the calls the reference would have made — even for lanes that
//!   exhaust fuel mid-block;
//! * runs of consecutive register-only instructions (and entire pure
//!   blocks) are gated **once** for their summed fuel: a lane that would
//!   have died partway through such a run dies at its start instead, which
//!   is indistinguishable from the reference because the run has no side
//!   effects to order and a faulted lane's partial state (cost,
//!   notifications) is never observed by the engine;
//! * external calls are individually wrapped in
//!   [`std::panic::catch_unwind`], so a panicking environment poisons only
//!   its own lane.

use crate::compile::VmError;
use crate::engine::panic_message;
use crate::env::UdfEnv;
use crate::regcode::{apply_bin, Block, RArg, RegProgram, ROp};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// No broadcast recorded (mirrors [`crate::compile::NOTIFY_NONE`]).
use crate::compile::NOTIFY_NONE;

/// How one lane failed.
#[derive(Debug)]
pub enum LaneFault {
    /// The VM faulted (library error, fuel exhaustion, duplicate notify).
    Vm(VmError),
    /// The environment panicked during a call on this lane.
    Panic(String),
}

/// A struct-of-arrays view of a run of records: one `i64` column per scalar
/// field, gathered once per batch through [`UdfEnv::args`].
#[derive(Debug, Default)]
pub struct RecordBatch {
    cols: Vec<i64>,
    n_fields: usize,
    len: usize,
}

impl RecordBatch {
    /// Gathers `recs` into columns. `row` is caller-provided scratch (reused
    /// across batches so steady-state gathering allocates nothing).
    pub fn gather<E: UdfEnv>(env: &E, recs: &[E::Rec], row: &mut Vec<i64>) -> RecordBatch {
        let mut batch = RecordBatch::default();
        batch.regather(env, recs, row);
        batch
    }

    /// Re-fills this batch in place from a new run of records.
    pub fn regather<E: UdfEnv>(&mut self, env: &E, recs: &[E::Rec], row: &mut Vec<i64>) {
        self.n_fields = env.arity();
        self.len = recs.len();
        self.cols.clear();
        self.cols.resize(self.n_fields * self.len, 0);
        for (lane, rec) in recs.iter().enumerate() {
            row.clear();
            env.args(rec, row);
            debug_assert_eq!(row.len(), self.n_fields);
            for (f, &v) in row.iter().enumerate() {
                self.cols[f * self.len + lane] = v;
            }
        }
    }

    /// Number of lanes (records).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of field columns.
    pub fn n_fields(&self) -> usize {
        self.n_fields
    }

    /// The column of field `f`.
    pub fn col(&self, f: usize) -> &[i64] {
        &self.cols[f * self.len..(f + 1) * self.len]
    }
}

/// How a block visit left its selection, so the scheduler can route lanes
/// to successor buckets without re-deriving control flow per lane.
enum Exit {
    /// Every lane still in the selection continues at this pc (jump target
    /// or fall-through); route the whole selection with one copy.
    Uniform(u32),
    /// A conditional branch split the selection: lanes whose `src` register
    /// is zero continue at `target`, the rest fall through to the block end.
    Branch {
        /// Condition register of the terminating `JumpIfZero`.
        src: u16,
        /// Branch target when the register is zero.
        target: u32,
    },
    /// Every lane still in the selection halted; nothing to route.
    Halted,
}

/// Index of the block starting at `pc` (every jump target is a block start
/// and blocks are ordered by start pc, so this is a plain binary search).
#[inline]
fn block_index(prog: &RegProgram, pc: u32) -> usize {
    let b = prog.blocks.partition_point(|blk| blk.start < pc);
    debug_assert_eq!(prog.blocks[b].start, pc, "jump target is a block start");
    b
}

/// Runs `f` over the selected lanes; a full selection iterates densely so
/// the optimizer sees a plain counted loop.
#[inline]
fn for_lanes(sel: &[u32], cap: usize, mut f: impl FnMut(usize)) {
    if sel.len() == cap {
        for lane in 0..cap {
            f(lane);
        }
    } else {
        for &lane in sel {
            f(lane as usize);
        }
    }
}

/// Executes one pure (register-only) instruction over the selected lanes of
/// a column-major register file.
fn exec_pure(regs: &mut [i64], cap: usize, op: &ROp, sel: &[u32]) {
    match *op {
        ROp::Const { dst, v } => {
            let bd = dst as usize * cap;
            for_lanes(sel, cap, |l| regs[bd + l] = v);
        }
        ROp::Move { dst, src } => {
            let (bd, bs) = (dst as usize * cap, src as usize * cap);
            for_lanes(sel, cap, |l| regs[bd + l] = regs[bs + l]);
        }
        ROp::Bin { op, dst, a, b } => {
            let (bd, ba, bb) = (dst as usize * cap, a as usize * cap, b as usize * cap);
            for_lanes(sel, cap, |l| regs[bd + l] = apply_bin(op, regs[ba + l], regs[bb + l]));
        }
        ROp::BinK {
            op,
            dst,
            r,
            k,
            reg_on_left,
        } => {
            let (bd, br) = (dst as usize * cap, r as usize * cap);
            if reg_on_left {
                for_lanes(sel, cap, |l| regs[bd + l] = apply_bin(op, regs[br + l], k));
            } else {
                for_lanes(sel, cap, |l| regs[bd + l] = apply_bin(op, k, regs[br + l]));
            }
        }
        ROp::Not { dst, src } => {
            let (bd, bs) = (dst as usize * cap, src as usize * cap);
            for_lanes(sel, cap, |l| regs[bd + l] = i64::from(regs[bs + l] == 0));
        }
        _ => debug_assert!(false, "stateful or control op in pure executor"),
    }
}

/// A reusable columnar evaluator: per-lane register/fuel/cost columns
/// plus selection-vector scratch, sized to the largest batch seen.
#[derive(Debug)]
pub struct BatchVm {
    fuel_budget: u64,
    regs: Vec<i64>,
    fuel: Vec<u64>,
    cost: Vec<u64>,
    fault: Vec<Option<(usize, LaneFault)>>,
    alive: Vec<u32>,
    buckets: Vec<Vec<u32>>,
    sel: Vec<u32>,
    tmp: Vec<u32>,
    args: Vec<i64>,
}

impl BatchVm {
    /// Creates a batch VM with the given per-record (per-program) fuel.
    pub fn new(fuel: u64) -> BatchVm {
        BatchVm {
            fuel_budget: fuel,
            regs: Vec::new(),
            fuel: Vec::new(),
            cost: Vec::new(),
            fault: Vec::new(),
            alive: Vec::new(),
            buckets: Vec::new(),
            sel: Vec::new(),
            tmp: Vec::new(),
            args: Vec::with_capacity(8),
        }
    }

    /// Runs `progs` in sequence over every lane of `batch`, mirroring the
    /// engine's per-record semantics: each program gets a fresh fuel budget
    /// per lane, costs accumulate per lane across programs, notifications
    /// share the lane-major `notify` buffer (`lane * n_queries + q`,
    /// pre-filled with [`NOTIFY_NONE`] by the caller), and a lane that
    /// faults in program `j` skips programs `j+1..` entirely.
    ///
    /// Afterwards, [`BatchVm::take_fault`] yields each lane's failure (if
    /// any, tagged with the faulting program index) and [`BatchVm::cost`]
    /// its accumulated cost.
    pub fn run<E: UdfEnv>(
        &mut self,
        progs: &[&RegProgram],
        batch: &RecordBatch,
        env: &E,
        recs: &[E::Rec],
        notify: &mut [i8],
        track_cost: bool,
    ) {
        self.run_masked(progs, batch, env, recs, notify, track_cost, None);
    }

    /// [`BatchVm::run`] restricted to the lanes `mask` selects (`None` runs
    /// them all). Masked-out lanes never execute: they keep cost 0, no
    /// fault, and their `notify` slots untouched — the engine's pre-filter
    /// uses this to compact skipped records out of the batch while leaving
    /// their lane indices stable for the per-record policy replay.
    #[allow(clippy::too_many_arguments)]
    pub fn run_masked<E: UdfEnv>(
        &mut self,
        progs: &[&RegProgram],
        batch: &RecordBatch,
        env: &E,
        recs: &[E::Rec],
        notify: &mut [i8],
        track_cost: bool,
        mask: Option<&[bool]>,
    ) {
        let cap = batch.len();
        debug_assert_eq!(recs.len(), cap);
        debug_assert!(mask.is_none_or(|m| m.len() == cap));
        self.fuel.resize(cap, 0);
        self.cost.resize(cap, 0);
        self.cost[..cap].fill(0);
        self.fault.resize_with(cap, || None);
        self.fault[..cap].fill_with(|| None);
        self.alive.clear();
        match mask {
            None => self
                .alive
                .extend((0..cap).map(|l| u32::try_from(l).expect("batch fits u32"))),
            Some(m) => self.alive.extend(
                (0..cap)
                    .filter(|&l| m[l])
                    .map(|l| u32::try_from(l).expect("batch fits u32")),
            ),
        }
        for (pi, prog) in progs.iter().enumerate() {
            if self.alive.is_empty() {
                break;
            }
            debug_assert_eq!(notify.len(), cap * prog.n_queries);
            self.run_program(pi, prog, batch, env, recs, notify, track_cost);
        }
    }

    /// The fault that removed `lane`, if any, tagged with the index of the
    /// program that faulted. Consumes the fault.
    pub fn take_fault(&mut self, lane: usize) -> Option<(usize, LaneFault)> {
        self.fault[lane].take()
    }

    /// Accumulated abstract cost of `lane` (0 unless cost tracking was on).
    pub fn cost(&self, lane: usize) -> u64 {
        self.cost[lane]
    }

    #[allow(clippy::too_many_arguments)]
    fn run_program<E: UdfEnv>(
        &mut self,
        pi: usize,
        prog: &RegProgram,
        batch: &RecordBatch,
        env: &E,
        recs: &[E::Rec],
        notify: &mut [i8],
        track_cost: bool,
    ) {
        let cap = batch.len();
        let n_regs = prog.n_regs as usize;
        // Register file: parameter columns copied in, variable slots zeroed
        // (reference semantics). Expression temporaries are *not* cleared —
        // stack discipline guarantees every temporary is written before it
        // is read, and the interpreter asserts the stack drains at block
        // boundaries, so stale lanes can never leak through.
        if self.regs.len() < n_regs * cap {
            self.regs.resize(n_regs * cap, 0);
        }
        // When a pre-filter mask leaves only a few lanes alive, column-wide
        // initialization would dominate the masked run (it is O(slots × cap)
        // no matter how many lanes actually execute), so gather-init just
        // the alive lanes instead. Dead lanes keep stale register values —
        // harmless, they are never scheduled. Dense runs keep the memcpy.
        if self.alive.len() * 2 < cap {
            for p in 0..prog.n_params as usize {
                let col = batch.col(p);
                let base = p * cap;
                for &l in &self.alive {
                    self.regs[base + l as usize] = col[l as usize];
                }
            }
            for s in prog.n_params as usize..prog.n_slots as usize {
                let base = s * cap;
                for &l in &self.alive {
                    self.regs[base + l as usize] = 0;
                }
            }
        } else {
            for p in 0..prog.n_params as usize {
                self.regs[p * cap..(p + 1) * cap].copy_from_slice(batch.col(p));
            }
            self.regs[prog.n_params as usize * cap..prog.n_slots as usize * cap].fill(0);
        }
        for &l in &self.alive {
            self.fuel[l as usize] = self.fuel_budget;
        }
        // Lanes wait in one bucket per basic block. Blocks are ordered by
        // start pc, so draining the lowest-indexed non-empty bucket is
        // exactly the min-pc schedule, without scanning the lanes: `cur`
        // only moves forward, except when a loop back-edge routes a lane to
        // an earlier bucket.
        let n_blocks = prog.blocks.len();
        if self.buckets.len() < n_blocks {
            self.buckets.resize_with(n_blocks, Vec::new);
        }
        for b in &mut self.buckets[..n_blocks] {
            b.clear();
        }
        let mut sel = std::mem::take(&mut self.sel);
        sel.clear();
        self.buckets[0].extend_from_slice(&self.alive);
        let mut pending = self.alive.len();
        let mut cur = 0usize;
        while pending > 0 {
            while self.buckets[cur].is_empty() {
                cur += 1;
            }
            // The drained bucket *is* the selection vector (storage swaps
            // back and forth, so steady state allocates nothing).
            std::mem::swap(&mut sel, &mut self.buckets[cur]);
            pending -= sel.len();
            let block = prog.blocks[cur];
            let exit = if block.pure {
                self.run_pure_block(pi, prog, &block, cap, track_cost, &mut sel)
            } else {
                self.run_mixed_block(
                    pi, prog, &block, cap, track_cost, &mut sel, env, recs, notify,
                )
            };
            // Route survivors to their successor buckets. The common exits
            // (jump, fall-through, halt) move the selection uniformly — one
            // block-index lookup and one copy; only a conditional branch
            // pays a per-lane lookup, memoized over its two targets.
            match exit {
                Exit::Halted => {}
                Exit::Uniform(p) => {
                    if !sel.is_empty() {
                        let b = block_index(prog, p);
                        self.buckets[b].extend_from_slice(&sel);
                        pending += sel.len();
                        if b < cur {
                            cur = b;
                        }
                    }
                }
                Exit::Branch { src, target } => {
                    let bt = block_index(prog, target);
                    let bf = block_index(prog, block.end);
                    let bs = src as usize * cap;
                    // Split buckets out of `self` so both halves of the
                    // partition can be pushed to in one pass.
                    let (lo, hi) = (bt.min(bf), bt.max(bf));
                    if lo == hi {
                        self.buckets[lo].extend_from_slice(&sel);
                    } else {
                        let (head, tail) = self.buckets.split_at_mut(hi);
                        let (taken, fallthrough) = if bt < bf {
                            (&mut head[bt], &mut tail[0])
                        } else {
                            (&mut tail[0], &mut head[bf])
                        };
                        for &l in &sel {
                            if self.regs[bs + l as usize] == 0 {
                                taken.push(l);
                            } else {
                                fallthrough.push(l);
                            }
                        }
                    }
                    pending += sel.len();
                    if lo < cur {
                        cur = lo;
                    }
                }
            }
            sel.clear();
        }
        // Lanes that faulted leave the batch for the remaining programs.
        let mut tmp = std::mem::take(&mut self.tmp);
        tmp.clear();
        tmp.extend(
            self.alive
                .iter()
                .copied()
                .filter(|&l| self.fault[l as usize].is_none()),
        );
        std::mem::swap(&mut self.alive, &mut tmp);
        self.sel = sel;
        self.tmp = tmp;
    }

    /// Charges `steps`/`cost` to every selected lane, faulting the ones
    /// whose fuel falls short. Returns whether any lane faulted (the caller
    /// then compacts `sel`, which otherwise stays untouched — the common
    /// all-lanes-pass case does no selection churn at all).
    #[inline]
    fn gate(
        &mut self,
        pi: usize,
        steps: u64,
        cost: u64,
        track_cost: bool,
        sel: &[u32],
    ) -> bool {
        let mut any_fault = false;
        for &l in sel {
            let li = l as usize;
            if self.fuel[li] < steps {
                self.fault[li] = Some((pi, LaneFault::Vm(VmError::OutOfFuel)));
                any_fault = true;
            } else {
                self.fuel[li] -= steps;
                if track_cost {
                    self.cost[li] += cost;
                }
            }
        }
        any_fault
    }

    /// Vectorized fast path: whole-block fuel gate, then per-instruction
    /// dense loops over the surviving selection. On return `sel` holds the
    /// lanes that finished the block (faulted lanes are compacted away);
    /// the returned [`Exit`] tells the scheduler where they continue.
    fn run_pure_block(
        &mut self,
        pi: usize,
        prog: &RegProgram,
        block: &Block,
        cap: usize,
        track_cost: bool,
        sel: &mut Vec<u32>,
    ) -> Exit {
        if self.gate(pi, block.steps, block.cost, track_cost, sel) {
            let fault = &self.fault;
            sel.retain(|&l| fault[l as usize].is_none());
            if sel.is_empty() {
                return Exit::Halted;
            }
        }
        let (start, end) = (block.start as usize, block.end as usize);
        for ins in &prog.code[start..end - 1] {
            exec_pure(&mut self.regs, cap, &ins.op, sel);
        }
        let last = &prog.code[end - 1];
        match last.op {
            ROp::JumpIfZero { src, target } => Exit::Branch { src, target },
            ROp::Jump { target } => Exit::Uniform(target),
            ROp::Halt => Exit::Halted,
            _ => {
                exec_pure(&mut self.regs, cap, &last.op, sel);
                Exit::Uniform(block.end)
            }
        }
    }

    /// Path for blocks with calls or notifies. Runs of consecutive
    /// register-only instructions are gated once for their summed fuel and
    /// executed vectorized; each stateful instruction keeps its own
    /// per-lane fuel gate, so the environment observes exactly the calls
    /// the scalar reference would have made. On return `sel` holds the
    /// lanes that finished the block (faulted lanes are compacted away);
    /// the returned [`Exit`] tells the scheduler where they continue.
    #[allow(clippy::too_many_arguments)]
    fn run_mixed_block<E: UdfEnv>(
        &mut self,
        pi: usize,
        prog: &RegProgram,
        block: &Block,
        cap: usize,
        track_cost: bool,
        sel: &mut Vec<u32>,
        env: &E,
        recs: &[E::Rec],
        notify: &mut [i8],
    ) -> Exit {
        let n_q = prog.n_queries;
        let (start, end) = (block.start as usize, block.end as usize);
        let mut i = start;
        while i < end {
            if sel.is_empty() {
                return Exit::Halted;
            }
            // Batch the pure run starting here (if any) under one gate.
            let mut j = i;
            let mut run_steps = 0u64;
            let mut run_cost = 0u64;
            while j < end
                && matches!(
                    prog.code[j].op,
                    ROp::Const { .. }
                        | ROp::Move { .. }
                        | ROp::Bin { .. }
                        | ROp::BinK { .. }
                        | ROp::Not { .. }
                )
            {
                run_steps += u64::from(prog.code[j].steps);
                run_cost += prog.code[j].cost;
                j += 1;
            }
            if j > i {
                if self.gate(pi, run_steps, run_cost, track_cost, sel) {
                    let fault = &self.fault;
                    sel.retain(|&l| fault[l as usize].is_none());
                    if sel.is_empty() {
                        return Exit::Halted;
                    }
                }
                for k in i..j {
                    exec_pure(&mut self.regs, cap, &prog.code[k].op, sel);
                }
                i = j;
                continue;
            }
            // Stateful or control instruction: individual fuel gate.
            let ins = prog.code[i];
            if self.gate(pi, u64::from(ins.steps), ins.cost, track_cost, sel) {
                let fault = &self.fault;
                sel.retain(|&l| fault[l as usize].is_none());
                if sel.is_empty() {
                    return Exit::Halted;
                }
            }
            match ins.op {
                ROp::Call {
                    dst,
                    f,
                    args_at,
                    argc,
                } => {
                    let bd = dst as usize * cap;
                    let at = args_at as usize;
                    let pool = &prog.arg_pool[at..at + argc as usize];
                    let mut any_fault = false;
                    for &l in sel.iter() {
                        let li = l as usize;
                        self.args.clear();
                        for a in pool {
                            self.args.push(match *a {
                                RArg::Reg(r) => self.regs[r as usize * cap + li],
                                RArg::Const(k) => k,
                            });
                        }
                        let call = catch_unwind(AssertUnwindSafe(|| {
                            env.call(&recs[li], f, &self.args)
                        }));
                        match call {
                            Ok(Ok(v)) => self.regs[bd + li] = v,
                            Ok(Err(e)) => {
                                self.fault[li] = Some((pi, LaneFault::Vm(VmError::Lib(e))));
                                any_fault = true;
                            }
                            Err(p) => {
                                self.fault[li] =
                                    Some((pi, LaneFault::Panic(panic_message(p.as_ref()))));
                                any_fault = true;
                            }
                        }
                    }
                    if any_fault {
                        let fault = &self.fault;
                        sel.retain(|&l| fault[l as usize].is_none());
                    }
                }
                ROp::Notify { query, value } => {
                    let mut any_fault = false;
                    for &l in sel.iter() {
                        let li = l as usize;
                        let slot = li * n_q + query as usize;
                        if notify[slot] != NOTIFY_NONE {
                            self.fault[li] =
                                Some((pi, LaneFault::Vm(VmError::DuplicateNotify(query))));
                            any_fault = true;
                        } else {
                            notify[slot] = i8::from(value);
                        }
                    }
                    if any_fault {
                        let fault = &self.fault;
                        sel.retain(|&l| fault[l as usize].is_none());
                    }
                }
                ROp::JumpIfZero { src, target } => return Exit::Branch { src, target },
                ROp::Jump { target } => return Exit::Uniform(target),
                ROp::Halt => return Exit::Halted,
                _ => unreachable!("pure ops are consumed by the run above"),
            }
            i += 1;
        }
        // Fell through a block that ends in a plain instruction.
        Exit::Uniform(block.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{Compiled, Vm};
    use crate::env::ScalarEnv;
    use crate::fault::{silence_injected_panics, FaultKind, FaultPlan, FaultyEnv};
    use udf_lang::ast::ProgId;
    use udf_lang::cost::CostModel;
    use udf_lang::intern::Interner;
    use udf_lang::parse::parse_program;
    use udf_lang::FnLibrary;

    fn lib(i: &mut Interner) -> FnLibrary {
        let f = i.intern("f");
        let mut lib = FnLibrary::new();
        lib.register(f, "f", 1, 10, |a| a[0] * 2 + 1);
        lib
    }

    fn compile_set(srcs: &[&str], i: &mut Interner, env_cost: &ScalarEnv) -> Vec<Compiled> {
        let programs: Vec<_> = srcs.iter().map(|s| parse_program(s, i).unwrap()).collect();
        let ids: Vec<ProgId> = programs.iter().map(|p| p.id).collect();
        let cm = CostModel::default();
        programs
            .iter()
            .map(|p| Compiled::compile(p, &ids, &cm, &|f| env_cost.fn_cost(f)).unwrap())
            .collect()
    }

    /// Batch execution over a faulty env must be lane-for-lane identical to
    /// running the scalar stack VM per record: costs, notifications, and
    /// fault classification.
    #[test]
    fn batch_matches_scalar_per_record_under_faults() {
        silence_injected_panics();
        let srcs = [
            "program a @1 (v, w) {
                 acc := 0; k := 3;
                 while (k > 0) { acc := acc + f(v); k := k - 1; }
                 if (acc > w) { notify true; } else { notify false; }
             }",
            "program b @2 (v, w) { if (w <= 5) { notify true; } else { notify false; } }",
        ];
        for fuel in [7u64, 20, 60, 200] {
            let mut i = Interner::new();
            let trigger = i.intern("f");
            let plan = FaultPlan::seeded_kinds(
                11,
                64,
                12,
                &[
                    FaultKind::LibError,
                    FaultKind::Panic,
                    FaultKind::FuelBurn,
                    FaultKind::Transient(2),
                ],
            );
            let batch_env = FaultyEnv::new(ScalarEnv::new(2, lib(&mut i)), trigger, plan.clone())
                .with_burn_value(1_000);
            let scalar_env = FaultyEnv::new(ScalarEnv::new(2, lib(&mut i)), trigger, plan)
                .with_burn_value(1_000);
            let base = ScalarEnv::new(2, lib(&mut i));
            let compiled = compile_set(&srcs, &mut i, &base);
            let regs: Vec<RegProgram> = compiled.iter().map(RegProgram::lower).collect();
            let reg_refs: Vec<&RegProgram> = regs.iter().collect();
            let n_q = 2usize;
            let recs: Vec<(usize, Vec<i64>)> =
                (0..64).map(|k| (k, vec![k as i64 % 9, k as i64 % 11])).collect();

            // Columnar pass.
            let mut row = Vec::new();
            let batch = RecordBatch::gather(&batch_env, &recs, &mut row);
            let mut bvm = BatchVm::new(fuel);
            let mut notify = vec![NOTIFY_NONE; recs.len() * n_q];
            bvm.run(&reg_refs, &batch, &batch_env, &recs, &mut notify, true);

            // Scalar reference, record at a time.
            for (lane, rec) in recs.iter().enumerate() {
                let mut vm = Vm::new().with_fuel(fuel);
                let mut s_notify = vec![NOTIFY_NONE; n_q];
                let mut s_cost = 0u64;
                let mut s_fault: Option<(usize, String)> = None;
                for (pi, c) in compiled.iter().enumerate() {
                    let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        vm.run(c, &scalar_env, rec, &mut s_notify, true)
                    }));
                    match r {
                        Ok(Ok(c)) => s_cost += c,
                        Ok(Err(e)) => {
                            s_fault = Some((pi, format!("{e:?}")));
                            break;
                        }
                        Err(p) => {
                            s_fault = Some((pi, format!("panic:{}", panic_message(p.as_ref()))));
                            vm = Vm::new().with_fuel(fuel);
                            break;
                        }
                    }
                }
                let b_fault = bvm.take_fault(lane).map(|(pi, f)| {
                    (
                        pi,
                        match f {
                            LaneFault::Vm(e) => format!("{e:?}"),
                            LaneFault::Panic(m) => format!("panic:{m}"),
                        },
                    )
                });
                assert_eq!(b_fault, s_fault, "fuel {fuel}, lane {lane}: fault diverged");
                if s_fault.is_none() {
                    assert_eq!(bvm.cost(lane), s_cost, "fuel {fuel}, lane {lane}: cost");
                    assert_eq!(
                        &notify[lane * n_q..(lane + 1) * n_q],
                        &s_notify[..],
                        "fuel {fuel}, lane {lane}: notifications"
                    );
                }
            }
        }
    }

    #[test]
    fn diverging_loop_lanes_reconverge() {
        // Lanes loop a data-dependent number of times; the min-pc scheduler
        // must drain everyone to Halt.
        let mut i = Interner::new();
        let base = ScalarEnv::new(2, lib(&mut i));
        let compiled = compile_set(
            &["program p @1 (v, w) {
                  acc := 0; k := v;
                  while (k > 0) { acc := acc + k; k := k - 1; }
                  if (acc >= w) { notify true; } else { notify false; }
              }"],
            &mut i,
            &base,
        );
        let reg = RegProgram::lower(&compiled[0]);
        let recs: Vec<Vec<i64>> = (0..50).map(|k| vec![k % 13, 10]).collect();
        let mut row = Vec::new();
        let batch = RecordBatch::gather(&base, &recs, &mut row);
        let mut bvm = BatchVm::new(100_000);
        let mut notify = vec![NOTIFY_NONE; recs.len()];
        bvm.run(&[&reg], &batch, &base, &recs, &mut notify, false);
        for (lane, rec) in recs.iter().enumerate() {
            assert!(bvm.take_fault(lane).is_none());
            let n = rec[0];
            let acc = n * (n + 1) / 2;
            assert_eq!(notify[lane], i8::from(acc >= 10), "lane {lane}");
        }
    }

    #[test]
    fn record_batch_is_columnar() {
        let mut i = Interner::new();
        let env = ScalarEnv::new(3, lib(&mut i));
        let recs: Vec<Vec<i64>> = vec![vec![1, 2, 3], vec![4, 5, 6]];
        let mut row = Vec::new();
        let b = RecordBatch::gather(&env, &recs, &mut row);
        assert_eq!(b.len(), 2);
        assert_eq!(b.n_fields(), 3);
        assert_eq!(b.col(0), &[1, 4]);
        assert_eq!(b.col(2), &[3, 6]);
    }
}
