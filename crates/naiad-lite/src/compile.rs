//! Bytecode compilation of UDF programs and the evaluation VM.
//!
//! The reference interpreter in `udf-lang` walks the AST and allocates
//! environments per run; at dataflow rates (hundreds of thousands of records
//! × dozens of queries) that dominates everything. Following the lineage the
//! paper cites (Steno compiles LINQ operators to imperative code), programs
//! are compiled once to a compact slot-addressed bytecode and each record is
//! evaluated by a reusable [`Vm`] with zero per-record allocation.
//!
//! Cost accounting mirrors Figure 2 exactly: every instruction carries the
//! abstract cost of the syntax node it came from, so `Vm::run` can return
//! the same cost the reference interpreter would compute (validated by
//! differential tests).

use crate::env::UdfEnv;
use std::collections::HashMap;
use std::fmt;
use udf_lang::ast::{BoolExpr, BoolOp, CmpOp, IntExpr, IntOp, ProgId, Program, Stmt};
use udf_lang::cost::{Cost, CostModel};
use udf_lang::intern::Symbol;
use udf_lang::library::LibError;

/// Compilation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A `notify` targets an id that is not in the query list.
    UnknownQueryId(ProgId),
    /// The program uses more than 65535 variables.
    TooManySlots,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownQueryId(id) => {
                write!(f, "notify target {id} is not a registered query id")
            }
            CompileError::TooManySlots => write!(f, "program exceeds 65535 variable slots"),
        }
    }
}

impl std::error::Error for CompileError {}

/// One bytecode instruction. The stack holds `i64`; booleans are 0/1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Push a constant.
    Const(i64),
    /// Push slot contents.
    Load(u16),
    /// Pop into a slot.
    Store(u16),
    /// Pop b, a; push `a ⊙ b`.
    Add,
    /// See [`Op::Add`].
    Sub,
    /// See [`Op::Add`].
    Mul,
    /// Pop b, a; push `a < b`.
    Lt,
    /// Pop b, a; push `a ≤ b`.
    Le,
    /// Pop b, a; push `a = b`.
    EqI,
    /// Pop a; push `¬a`.
    Not,
    /// Pop b, a; push `a ∧ b` (strict, like Figure 2).
    And,
    /// Pop b, a; push `a ∨ b`.
    Or,
    /// Pop a; jump to target when `a = 0`.
    JumpIfZero(u32),
    /// Unconditional jump.
    Jump(u32),
    /// Call external `f` with `argc` stack arguments; push the result.
    Call {
        /// Function symbol.
        f: Symbol,
        /// Argument count.
        argc: u8,
    },
    /// Record query `query`'s broadcast.
    Notify {
        /// Dense query index.
        query: u16,
        /// Broadcast value.
        value: bool,
    },
    /// End of program.
    Halt,
}

/// A compiled program: instructions, per-instruction abstract costs, and
/// slot layout.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Instruction stream.
    pub ops: Vec<Op>,
    /// Abstract cost charged when the instruction executes.
    pub costs: Vec<Cost>,
    /// Total variable slots (parameters first).
    pub n_slots: u16,
    /// Number of parameters.
    pub n_params: u16,
    /// Number of distinct query ids this program may notify.
    pub n_queries: usize,
}

struct Compiler<'a> {
    ops: Vec<Op>,
    costs: Vec<Cost>,
    slots: HashMap<Symbol, u16>,
    cm: &'a CostModel,
    fn_cost: &'a dyn Fn(Symbol) -> Cost,
    query_index: &'a HashMap<ProgId, u16>,
}

impl<'a> Compiler<'a> {
    fn emit(&mut self, op: Op, cost: Cost) -> usize {
        self.ops.push(op);
        self.costs.push(cost);
        self.ops.len() - 1
    }

    fn slot(&mut self, v: Symbol) -> Result<u16, CompileError> {
        if let Some(&s) = self.slots.get(&v) {
            return Ok(s);
        }
        let s = u16::try_from(self.slots.len()).map_err(|_| CompileError::TooManySlots)?;
        self.slots.insert(v, s);
        Ok(s)
    }

    fn int_expr(&mut self, e: &IntExpr) -> Result<(), CompileError> {
        match e {
            IntExpr::Const(c) => {
                self.emit(Op::Const(*c), self.cm.int_const);
            }
            IntExpr::Var(v) => {
                let s = self.slot(*v)?;
                self.emit(Op::Load(s), self.cm.var);
            }
            IntExpr::Call(f, args) => {
                for a in args {
                    self.int_expr(a)?;
                }
                let argc = u8::try_from(args.len()).expect("arity fits u8");
                let cost = (self.fn_cost)(*f);
                self.emit(Op::Call { f: *f, argc }, cost);
            }
            IntExpr::Bin(op, a, b) => {
                self.int_expr(a)?;
                self.int_expr(b)?;
                let o = match op {
                    IntOp::Add => Op::Add,
                    IntOp::Sub => Op::Sub,
                    IntOp::Mul => Op::Mul,
                };
                self.emit(o, self.cm.arith);
            }
        }
        Ok(())
    }

    fn bool_expr(&mut self, e: &BoolExpr) -> Result<(), CompileError> {
        match e {
            BoolExpr::Const(b) => {
                self.emit(Op::Const(i64::from(*b)), self.cm.bool_const);
            }
            BoolExpr::Cmp(op, a, b) => {
                self.int_expr(a)?;
                self.int_expr(b)?;
                let o = match op {
                    CmpOp::Lt => Op::Lt,
                    CmpOp::Le => Op::Le,
                    CmpOp::Eq => Op::EqI,
                };
                self.emit(o, self.cm.cmp);
            }
            BoolExpr::Not(a) => {
                self.bool_expr(a)?;
                self.emit(Op::Not, self.cm.not);
            }
            BoolExpr::Bin(op, a, b) => {
                self.bool_expr(a)?;
                self.bool_expr(b)?;
                let o = match op {
                    BoolOp::And => Op::And,
                    BoolOp::Or => Op::Or,
                };
                self.emit(o, self.cm.connective);
            }
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Skip => {}
            Stmt::Assign(x, e) => {
                self.int_expr(e)?;
                let slot = self.slot(*x)?;
                self.emit(Op::Store(slot), self.cm.assign);
            }
            Stmt::Seq(a, b) => {
                self.stmt(a)?;
                self.stmt(b)?;
            }
            Stmt::If(c, a, b) => {
                self.bool_expr(c)?;
                let jz = self.emit(Op::JumpIfZero(0), self.cm.branch);
                self.stmt(a)?;
                let jend = self.emit(Op::Jump(0), 0);
                let else_target = u32::try_from(self.ops.len()).expect("code fits u32");
                self.ops[jz] = Op::JumpIfZero(else_target);
                self.stmt(b)?;
                let end = u32::try_from(self.ops.len()).expect("code fits u32");
                self.ops[jend] = Op::Jump(end);
            }
            Stmt::While(c, b) => {
                let head = u32::try_from(self.ops.len()).expect("code fits u32");
                self.bool_expr(c)?;
                let jz = self.emit(Op::JumpIfZero(0), self.cm.branch);
                self.stmt(b)?;
                self.emit(Op::Jump(head), 0);
                let end = u32::try_from(self.ops.len()).expect("code fits u32");
                self.ops[jz] = Op::JumpIfZero(end);
            }
            Stmt::Notify(id, v) => {
                let &query = self
                    .query_index
                    .get(id)
                    .ok_or(CompileError::UnknownQueryId(*id))?;
                self.emit(
                    Op::Notify {
                        query,
                        value: *v,
                    },
                    self.cm.notify,
                );
            }
        }
        Ok(())
    }
}

impl Compiled {
    /// Compiles `program`. `query_ids` lists every [`ProgId`] the program may
    /// notify, in the dense order used by [`Vm::run`]'s output buffer;
    /// `fn_cost` prices external calls (usually [`UdfEnv::fn_cost`]).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] for unknown notify targets or slot overflow.
    pub fn compile(
        program: &Program,
        query_ids: &[ProgId],
        cm: &CostModel,
        fn_cost: &dyn Fn(Symbol) -> Cost,
    ) -> Result<Compiled, CompileError> {
        let query_index: HashMap<ProgId, u16> = query_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, u16::try_from(i).expect("query count fits u16")))
            .collect();
        let mut c = Compiler {
            ops: Vec::new(),
            costs: Vec::new(),
            slots: HashMap::new(),
            cm,
            fn_cost,
            query_index: &query_index,
        };
        // Parameters occupy the first slots in declaration order.
        for &p in &program.params {
            c.slot(p)?;
        }
        let n_params = u16::try_from(program.params.len()).map_err(|_| CompileError::TooManySlots)?;
        c.stmt(&program.body)?;
        c.emit(Op::Halt, 0);
        let n_slots = u16::try_from(c.slots.len()).map_err(|_| CompileError::TooManySlots)?;
        Ok(Compiled {
            ops: c.ops,
            costs: c.costs,
            n_slots,
            n_params,
            n_queries: query_ids.len(),
        })
    }
}

/// VM runtime errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Two notifications for the same query in one run.
    DuplicateNotify(u16),
    /// External call failed.
    Lib(LibError),
    /// Step budget exhausted (divergent loop guard).
    OutOfFuel,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::DuplicateNotify(q) => write!(f, "duplicate notification for query {q}"),
            VmError::Lib(e) => write!(f, "library error: {e}"),
            VmError::OutOfFuel => write!(f, "VM exceeded its step budget"),
        }
    }
}

impl std::error::Error for VmError {}

impl VmError {
    /// Whether the error is expected to clear on its own, making a retry of
    /// the same record worthwhile. Today exactly [`LibError::Transient`];
    /// every other error is deterministic, so retrying would only repeat it.
    pub fn is_transient(&self) -> bool {
        matches!(self, VmError::Lib(LibError::Transient(_)))
    }
}

impl From<LibError> for VmError {
    fn from(e: LibError) -> VmError {
        VmError::Lib(e)
    }
}

/// No broadcast recorded for a query in the output buffer.
pub const NOTIFY_NONE: i8 = -1;

/// Default per-record step budget of a fresh [`Vm`] (see [`Vm::with_fuel`]).
pub const DEFAULT_FUEL: u64 = 100_000_000;

/// A reusable evaluation machine (stack + slots + scratch argument buffer).
#[derive(Debug, Default)]
pub struct Vm {
    stack: Vec<i64>,
    slots: Vec<i64>,
    args: Vec<i64>,
    fuel: u64,
}

impl Vm {
    /// Creates a VM with the default step budget.
    pub fn new() -> Vm {
        Vm {
            stack: Vec::with_capacity(32),
            slots: Vec::new(),
            args: Vec::with_capacity(8),
            fuel: DEFAULT_FUEL,
        }
    }

    /// Replaces the per-run step budget.
    pub fn with_fuel(mut self, fuel: u64) -> Vm {
        self.fuel = fuel;
        self
    }

    /// Runs `compiled` on one record. `notify_out` must hold
    /// `compiled.n_queries` entries and is *not* cleared here (so several
    /// programs can accumulate into one buffer); entries are
    /// [`NOTIFY_NONE`], 0, or 1. Returns the abstract cost when
    /// `track_cost`, otherwise 0.
    ///
    /// # Errors
    ///
    /// Returns [`VmError`] on duplicate notifications, library failures, or
    /// fuel exhaustion.
    pub fn run<E: UdfEnv>(
        &mut self,
        compiled: &Compiled,
        env: &E,
        rec: &E::Rec,
        notify_out: &mut [i8],
        track_cost: bool,
    ) -> Result<Cost, VmError> {
        debug_assert_eq!(notify_out.len(), compiled.n_queries);
        self.stack.clear();
        self.slots.clear();
        self.slots.resize(compiled.n_slots as usize, 0);
        // Parameters.
        self.args.clear();
        env.args(rec, &mut self.args);
        debug_assert_eq!(self.args.len(), compiled.n_params as usize);
        self.slots[..compiled.n_params as usize].copy_from_slice(&self.args);

        let mut pc = 0usize;
        let mut cost: Cost = 0;
        let mut fuel = self.fuel;
        loop {
            if fuel == 0 {
                return Err(VmError::OutOfFuel);
            }
            fuel -= 1;
            if track_cost {
                cost += compiled.costs[pc];
            }
            match &compiled.ops[pc] {
                Op::Const(c) => self.stack.push(*c),
                Op::Load(s) => self.stack.push(self.slots[*s as usize]),
                Op::Store(s) => {
                    let v = self.stack.pop().expect("stack underflow");
                    self.slots[*s as usize] = v;
                }
                Op::Add => self.binop(|a, b| a.wrapping_add(b)),
                Op::Sub => self.binop(|a, b| a.wrapping_sub(b)),
                Op::Mul => self.binop(|a, b| a.wrapping_mul(b)),
                Op::Lt => self.binop(|a, b| i64::from(a < b)),
                Op::Le => self.binop(|a, b| i64::from(a <= b)),
                Op::EqI => self.binop(|a, b| i64::from(a == b)),
                Op::Not => {
                    let a = self.stack.pop().expect("stack underflow");
                    self.stack.push(i64::from(a == 0));
                }
                Op::And => self.binop(|a, b| i64::from(a != 0 && b != 0)),
                Op::Or => self.binop(|a, b| i64::from(a != 0 || b != 0)),
                Op::JumpIfZero(t) => {
                    let a = self.stack.pop().expect("stack underflow");
                    if a == 0 {
                        pc = *t as usize;
                        continue;
                    }
                }
                Op::Jump(t) => {
                    pc = *t as usize;
                    continue;
                }
                Op::Call { f, argc } => {
                    let at = self.stack.len() - *argc as usize;
                    let v = env.call(rec, *f, &self.stack[at..])?;
                    self.stack.truncate(at);
                    self.stack.push(v);
                }
                Op::Notify { query, value } => {
                    let q = *query as usize;
                    if notify_out[q] != NOTIFY_NONE {
                        return Err(VmError::DuplicateNotify(*query));
                    }
                    notify_out[q] = i8::from(*value);
                }
                Op::Halt => return Ok(cost),
            }
            pc += 1;
        }
    }

    #[inline]
    fn binop(&mut self, f: impl Fn(i64, i64) -> i64) {
        let b = self.stack.pop().expect("stack underflow");
        let a = self.stack.pop().expect("stack underflow");
        self.stack.push(f(a, b));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ScalarEnv;
    use udf_lang::intern::Interner;
    use udf_lang::interp::Interp;
    use udf_lang::parse::parse_program;
    use udf_lang::FnLibrary;

    fn scalar_env(interner: &mut Interner) -> ScalarEnv {
        let f = interner.intern("f");
        let mut lib = FnLibrary::new();
        lib.register(f, "f", 1, 10, |a| a[0] * 2 + 1);
        ScalarEnv::new(2, lib)
    }

    fn run_both(src: &str, rec: Vec<i64>) -> (Vec<i8>, Cost, Cost) {
        let mut i = Interner::new();
        let env = scalar_env(&mut i);
        let p = parse_program(src, &mut i).unwrap();
        let ids: Vec<ProgId> = udf_lang::analysis::notify_ids(&p.body).into_iter().collect();
        let cm = CostModel::default();
        let compiled =
            Compiled::compile(&p, &ids, &cm, &|f| env.fn_cost(f)).unwrap();
        let mut vm = Vm::new();
        let mut out = vec![NOTIFY_NONE; ids.len()];
        let vm_cost = vm.run(&compiled, &env, &rec, &mut out, true).unwrap();
        // Reference interpreter.
        let lib = crate::env::RecordLibrary::new(&env, &rec);
        let interp = Interp::new(cm, &lib);
        let r = interp.run(&p, &rec, &i).unwrap();
        // Compare notifications.
        for (k, &id) in ids.iter().enumerate() {
            let expected = r.notifications.get(id).map(i8::from).unwrap_or(NOTIFY_NONE);
            assert_eq!(out[k], expected, "query {id}");
        }
        (out, vm_cost, r.cost)
    }

    #[test]
    fn straight_line_matches_interpreter() {
        let (_, vc, ic) = run_both(
            "program p @0 (a, b) { x := a * 2 + b; if (x > 4) { notify true; } else { notify false; } }",
            vec![3, 1],
        );
        assert_eq!(vc, ic);
    }

    #[test]
    fn call_and_loop_match_interpreter() {
        let (_, vc, ic) = run_both(
            "program p @0 (a, b) {
                 acc := 0; k := a;
                 while (k > 0) { acc := acc + f(k); k := k - 1; }
                 if (acc >= b) { notify true; } else { notify false; }
             }",
            vec![5, 20],
        );
        assert_eq!(vc, ic);
    }

    #[test]
    fn strict_connectives_match_interpreter() {
        let (_, vc, ic) = run_both(
            "program p @0 (a, b) {
                 if (a < b && !(a == 0) || b <= 3) { notify true; } else { notify false; }
             }",
            vec![2, 7],
        );
        assert_eq!(vc, ic);
    }

    #[test]
    fn multi_query_notifications() {
        let (out, _, _) = run_both(
            "program p @0 (a, b) {
                 if (a > 0) { notify @3 true; } else { notify @3 false; }
                 if (b > 0) { notify @5 true; } else { notify @5 false; }
             }",
            vec![1, -1],
        );
        assert_eq!(out, vec![1, 0]); // ids sorted: 3 then 5
    }

    #[test]
    fn duplicate_notify_is_error() {
        let mut i = Interner::new();
        let env = scalar_env(&mut i);
        let p = parse_program(
            "program p @0 (a, b) { notify @1 true; notify @1 false; }",
            &mut i,
        )
        .unwrap();
        let cm = CostModel::default();
        let compiled =
            Compiled::compile(&p, &[ProgId(1)], &cm, &|f| env.fn_cost(f)).unwrap();
        let mut vm = Vm::new();
        let mut out = vec![NOTIFY_NONE; 1];
        assert_eq!(
            vm.run(&compiled, &env, &vec![0, 0], &mut out, false),
            Err(VmError::DuplicateNotify(0))
        );
    }

    #[test]
    fn unknown_query_id_is_compile_error() {
        let mut i = Interner::new();
        let env = scalar_env(&mut i);
        let p = parse_program("program p @0 (a, b) { notify @9 true; }", &mut i).unwrap();
        let cm = CostModel::default();
        assert_eq!(
            Compiled::compile(&p, &[ProgId(1)], &cm, &|f| env.fn_cost(f)).unwrap_err(),
            CompileError::UnknownQueryId(ProgId(9))
        );
    }

    #[test]
    fn divergent_loop_hits_fuel() {
        let mut i = Interner::new();
        let env = scalar_env(&mut i);
        let p = parse_program("program p @0 (a, b) { while (0 < 1) { skip; } }", &mut i).unwrap();
        let cm = CostModel::default();
        let compiled = Compiled::compile(&p, &[], &cm, &|f| env.fn_cost(f)).unwrap();
        let mut vm = Vm::new().with_fuel(1_000);
        let mut out = vec![];
        assert_eq!(
            vm.run(&compiled, &env, &vec![0, 0], &mut out, false),
            Err(VmError::OutOfFuel)
        );
    }
}
