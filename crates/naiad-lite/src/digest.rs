//! Streaming FNV-1a 64 output digests for engine results.
//!
//! Several layers need to certify that two runs observed *the same
//! outputs*: the bench harness compares backends, the chaos CI compares a
//! recovered service against an uncrashed reference, and the `udf-serve`
//! write-ahead journal stamps every epoch commit frame with a digest of
//! that epoch's observable effects. They all share this hasher — the same
//! FNV-1a 64 constants as [`plan_cache::framing::fnv64`], streamed one
//! word at a time instead of over a contiguous byte string.

use crate::engine::JobReport;

/// Streaming FNV-1a 64 hasher over little-endian `u64` words.
///
/// Feeding the words of a byte string one at a time produces the same
/// digest as hashing the concatenated `to_le_bytes` with
/// [`plan_cache::framing::fnv64`].
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher at the FNV-1a 64 offset basis.
    #[must_use]
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one word into the digest, little-endian byte order.
    pub fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a byte string into the digest.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// Digest of a job's observable output: per-query selected counts, missing
/// notifications, and the quarantined record set, in that order.
///
/// Two runs of the same job — at any worker count, in either execution
/// mode, with or without pre-filtering — must produce the same digest;
/// CI's cross-backend and crash-recovery gates compare it bit-for-bit.
#[must_use]
pub fn job_report_digest(report: &JobReport) -> u64 {
    let mut h = Fnv64::new();
    for &c in &report.counts {
        h.u64(c);
    }
    for &m in &report.missing {
        h.u64(m);
    }
    for r in report.quarantine.records() {
        h.u64(r as u64);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_words_match_byte_string_fnv() {
        let mut h = Fnv64::new();
        h.u64(0x0102_0304_0506_0708);
        h.u64(7);
        let mut bytes = 0x0102_0304_0506_0708u64.to_le_bytes().to_vec();
        bytes.extend_from_slice(&7u64.to_le_bytes());
        assert_eq!(h.finish(), plan_cache::framing::fnv64(&bytes));
    }

    #[test]
    fn bytes_and_word_feeds_compose() {
        let mut a = Fnv64::new();
        a.bytes(b"epoch 3");
        let mut b = Fnv64::new();
        for &c in b"epoch 3" {
            b.bytes(&[c]);
        }
        assert_eq!(a.finish(), b.finish());
    }
}
