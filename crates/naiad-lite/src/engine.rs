//! Sharded multi-worker execution of query sets: the `where_many` /
//! `where_consolidated` operators of the paper's §6.1.
//!
//! Records are split into contiguous shards, one per worker thread; each
//! worker owns a [`Vm`] and evaluates either every query's UDF per record
//! (`Many`) or the single consolidated UDF (`Consolidated`), demultiplexing
//! notifications into per-query selection counts. The report separates the
//! UDF-phase wall time from everything else, matching the paper's
//! "UDF time" vs "total time" columns.
//!
//! # Failure model
//!
//! A long-running job over millions of records should not die because one
//! record trips a library error or exhausts its step budget. The engine's
//! [`ErrorPolicy`] chooses between two behaviours:
//!
//! * [`ErrorPolicy::FailFast`] (the default) aborts the job on the first
//!   faulting record, as the original engine did;
//! * [`ErrorPolicy::Quarantine`] excludes the faulting record from *every*
//!   query's output, records it in the job's [`QuarantineReport`], and keeps
//!   going. Per-record execution is additionally wrapped in
//!   [`std::panic::catch_unwind`], so a panicking UDF environment poisons
//!   only the record that triggered it, not the worker or the process.
//!
//! Because a quarantined record is dropped from all queries in both
//! [`ExecMode::Many`] and [`ExecMode::Consolidated`], the two modes stay
//! notification-equivalent on the surviving records — the consolidation
//! correctness story (Theorem 1) is unaffected by which policy runs.

use crate::batch::{BatchVm, LaneFault, RecordBatch};
use crate::compile::{Compiled, Vm, VmError, DEFAULT_FUEL, NOTIFY_NONE};
use crate::env::UdfEnv;
use crate::guard::{GuardAction, GuardMismatch, GuardObservation, GuardPolicy, GuardReport, GuardRun};
use crate::regcode::RegProgram;
pub use plan_cache::ExecBackend;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};
use udf_lang::ast::ProgId;
use udf_obs::names;
use udf_lang::cost::{Cost, CostModel};
use udf_lang::intern::Symbol;

/// Which operator to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// `where_many`: every query's own UDF runs per record, sequentially.
    Many,
    /// `where_consolidated`: the merged UDF runs once per record.
    Consolidated,
}

/// A synthesized pre-filter compiled for execution (see
/// [`consolidate::Prefilter`]). The guard program evaluates the pre-filter
/// condition over a record's parameters and notifies a single dense query
/// (index 0) with the verdict: `false` means *no* query of the set can
/// notify `true` on this record, so the consolidated UDF may be skipped.
///
/// # Soundness of skipping
///
/// The verifier admitted the condition only after proving that, under its
/// negation, the merged program reaches no external call, no loop, and
/// notifies exactly `false` for every query on every path. A skipped record
/// therefore (a) observes the same library-call sequence as a real run —
/// none — so stateful or fault-injecting environments stay in lockstep, and
/// (b) could only have faulted on fuel. The loop-free path executes at most
/// one instruction per bytecode slot, so requiring the run's fuel budget to
/// be at least [`PrefilterExec::min_fuel`] (the consolidated instruction
/// count) rules that out too; smaller budgets disable skipping entirely
/// (fail-open). A pre-filter evaluation error likewise falls back to the
/// full run for that record.
#[derive(Debug, Clone)]
pub struct PrefilterExec {
    /// Stack-bytecode guard (notifies dense query 0 with the verdict).
    pub compiled: Compiled,
    /// Register lowering of the guard for [`ExecBackend::Columnar`].
    pub reg: RegProgram,
    /// Direct evaluator for the condition, used by both backends when the
    /// condition stays in the pure call-free fragment (synthesized
    /// conditions always do). `None` falls back to the compiled guard.
    /// See [`crate::fastpred`] for why the VM is too slow here.
    pub fast: Option<crate::fastpred::FastPred>,
    /// Minimum per-record fuel budget for which skipping is sound: the
    /// consolidated program's instruction count (its longest loop-free
    /// path).
    pub min_fuel: u64,
}

/// A compiled set of queries over one dataset.
#[derive(Debug, Clone)]
pub struct QuerySet {
    /// Dense query ids (broadcast targets), in output order.
    pub query_ids: Vec<ProgId>,
    /// Per-query compiled UDFs.
    pub many: Vec<Compiled>,
    /// The consolidated UDF, when available.
    pub consolidated: Option<Compiled>,
    /// Register-bytecode lowering of [`QuerySet::many`], in the same order.
    /// Built eagerly at compile time so [`ExecBackend::Columnar`] runs never
    /// lower on the hot path.
    pub reg_many: Vec<RegProgram>,
    /// Register-bytecode lowering of [`QuerySet::consolidated`].
    pub reg_consolidated: Option<RegProgram>,
    /// Synthesized pre-filter, executed before the consolidated UDF when the
    /// fuel budget allows (see [`PrefilterExec`]). Never applies to
    /// [`ExecMode::Many`], whose sequential semantics *is* the reference.
    pub prefilter: Option<PrefilterExec>,
    /// Time spent consolidating (reported separately, as in Figure 10).
    pub consolidation_time: Duration,
    /// Per-record VM step budget ([`DEFAULT_FUEL`] unless overridden here or
    /// by [`EngineConfig::fuel`]).
    pub fuel: u64,
    /// Cache key of the consolidated plan, when it came through a
    /// [`plan_cache::PlanCache`]. The plan guard invalidates this key on a
    /// trip so the poisoned entry is never re-served.
    pub plan_key: Option<plan_cache::PlanKey>,
}

impl QuerySet {
    /// Compiles one UDF per query. Query `k` must notify exactly
    /// `programs[k].id`.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::compile::CompileError`].
    pub fn compile_many(
        programs: &[udf_lang::ast::Program],
        cm: &CostModel,
        fn_cost: &dyn Fn(Symbol) -> Cost,
    ) -> Result<QuerySet, crate::compile::CompileError> {
        let query_ids: Vec<ProgId> = programs.iter().map(|p| p.id).collect();
        let many = programs
            .iter()
            .map(|p| Compiled::compile(p, &query_ids, cm, fn_cost))
            .collect::<Result<Vec<_>, _>>()?;
        let reg_many = many.iter().map(RegProgram::lower).collect();
        Ok(QuerySet {
            query_ids,
            many,
            consolidated: None,
            reg_many,
            reg_consolidated: None,
            prefilter: None,
            consolidation_time: Duration::ZERO,
            fuel: DEFAULT_FUEL,
            plan_key: None,
        })
    }

    /// Total nanoseconds spent lowering this set to register bytecode
    /// (reported through the `regcode.fold_ns` metric).
    pub fn fold_ns(&self) -> u64 {
        self.reg_many.iter().map(|r| r.fold_ns).sum::<u64>()
            + self.reg_consolidated.as_ref().map_or(0, |r| r.fold_ns)
    }

    /// Overrides the per-record VM step budget for this query set.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> QuerySet {
        self.fuel = fuel;
        self
    }

    /// Records the plan-cache key of the consolidated program, enabling
    /// guard-driven invalidation (set automatically by
    /// [`QuerySet::compile_consolidated_cached`]).
    #[must_use]
    pub fn with_plan_key(mut self, key: plan_cache::PlanKey) -> QuerySet {
        self.plan_key = Some(key);
        self
    }

    /// Attaches a consolidated program (it must notify exactly the ids in
    /// `query_ids`).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::compile::CompileError`].
    pub fn with_consolidated(
        mut self,
        merged: &udf_lang::ast::Program,
        cm: &CostModel,
        fn_cost: &dyn Fn(Symbol) -> Cost,
        consolidation_time: Duration,
    ) -> Result<QuerySet, crate::compile::CompileError> {
        let compiled = Compiled::compile(merged, &self.query_ids, cm, fn_cost)?;
        self.reg_consolidated = Some(RegProgram::lower(&compiled));
        self.consolidated = Some(compiled);
        self.consolidation_time = consolidation_time;
        Ok(self)
    }

    /// Attaches a verified pre-filter condition (from
    /// [`consolidate::Prefilter::cond`]). `merged` must be the same program
    /// passed to [`QuerySet::with_consolidated`], which must have been
    /// called first — the skip-soundness fuel floor is derived from its
    /// instruction count.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::compile::CompileError`]. Returns
    /// [`crate::compile::CompileError::UnknownQueryId`] never in practice
    /// (the guard notifies the one id it declares).
    pub fn with_prefilter(
        mut self,
        cond: &udf_lang::ast::BoolExpr,
        merged: &udf_lang::ast::Program,
        cm: &CostModel,
        fn_cost: &dyn Fn(Symbol) -> Cost,
    ) -> Result<QuerySet, crate::compile::CompileError> {
        debug_assert!(
            self.consolidated.is_some(),
            "with_prefilter requires with_consolidated first"
        );
        let guard = udf_lang::ast::Program::new(
            ProgId(0),
            merged.params.clone(),
            udf_lang::ast::Stmt::ite(
                cond.clone(),
                udf_lang::ast::Stmt::Notify(ProgId(0), true),
                udf_lang::ast::Stmt::Notify(ProgId(0), false),
            ),
        );
        let compiled = Compiled::compile(&guard, &[ProgId(0)], cm, fn_cost)?;
        let min_fuel = self
            .consolidated
            .as_ref()
            .map_or(u64::MAX, |c| c.ops.len() as u64);
        let reg = RegProgram::lower(&compiled);
        let fast = crate::fastpred::FastPred::build(cond, &merged.params);
        self.prefilter = Some(PrefilterExec {
            compiled,
            reg,
            fast,
            min_fuel,
        });
        Ok(self)
    }

    /// Compiles the per-query UDFs *and* a consolidated program obtained
    /// through `cache`: a stored plan is served when the tier-upgrade rule
    /// allows (skipping the Ω engine and the SMT solver entirely),
    /// otherwise the set is consolidated fresh and the cache is filled.
    ///
    /// Returns the query set, the consolidation result (cache hits carry
    /// zeroed solver statistics) and how the cache satisfied the request.
    ///
    /// # Errors
    ///
    /// Propagates compilation and consolidation failures as
    /// [`QuerySetError`].
    #[allow(clippy::too_many_arguments)]
    pub fn compile_consolidated_cached(
        programs: &[udf_lang::ast::Program],
        interner: &mut udf_lang::intern::Interner,
        cm: &CostModel,
        fns: &(dyn udf_lang::cost::FnCost + Sync),
        fn_cost: &dyn Fn(Symbol) -> Cost,
        opts: &consolidate::Options,
        parallel: bool,
        cache: &plan_cache::PlanCache,
        backend: ExecBackend,
    ) -> Result<(QuerySet, consolidate::Consolidated, plan_cache::PlanOutcome), QuerySetError>
    {
        let (merged, outcome) = plan_cache::consolidate_many_cached(
            cache, programs, interner, cm, fns, opts, parallel, backend,
        )?;
        let key = plan_cache::PlanKey::derive(programs, interner, opts, cm, backend);
        let mut qs = QuerySet::compile_many(programs, cm, fn_cost)?
            .with_consolidated(&merged.program, cm, fn_cost, merged.elapsed)?
            .with_plan_key(key);
        if let Some(pf) = &merged.prefilter {
            qs = qs.with_prefilter(&pf.cond, &merged.program, cm, fn_cost)?;
        }
        opts.recorder.observe(names::REGCODE_FOLD_NS, qs.fold_ns());
        Ok((qs, merged, outcome))
    }
}

/// Failure while building a cached consolidated query set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuerySetError {
    /// A UDF (per-query or merged) failed to compile.
    Compile(crate::compile::CompileError),
    /// The consolidation itself failed (incompatible programs, empty set).
    Consolidate(consolidate::ConsolidateError),
}

impl fmt::Display for QuerySetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuerySetError::Compile(e) => write!(f, "compile: {e}"),
            QuerySetError::Consolidate(e) => write!(f, "consolidate: {e}"),
        }
    }
}

impl std::error::Error for QuerySetError {}

impl From<crate::compile::CompileError> for QuerySetError {
    fn from(e: crate::compile::CompileError) -> QuerySetError {
        QuerySetError::Compile(e)
    }
}

impl From<consolidate::ConsolidateError> for QuerySetError {
    fn from(e: consolidate::ConsolidateError) -> QuerySetError {
        QuerySetError::Consolidate(e)
    }
}

/// How the engine reacts to per-record execution failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorPolicy {
    /// Abort the whole job on the first faulting record (original behaviour).
    FailFast,
    /// Keep running: faulting records are excluded from every query's output
    /// and recorded in the job's [`QuarantineReport`]. The job still fails
    /// with [`EngineError::TooManyErrors`] once more than `max_errors`
    /// records have been quarantined, bounding error floods.
    Quarantine {
        /// Maximum records allowed into quarantine before the job fails.
        max_errors: usize,
    },
}

/// Per-record retry behaviour for transient faults.
///
/// A [`VmError`] that classifies as transient ([`VmError::is_transient`] —
/// today exactly [`udf_lang::library::LibError::Transient`]) is retried up
/// to `max_retries` times before the record is quarantined or the job
/// fails. Between attempts the worker sleeps a capped exponential backoff
/// with deterministic jitter: attempt `k` waits in
/// `[d/2, d]` where `d = min(base_backoff·2^(k−1), max_backoff)` and the
/// point inside the interval is a pure hash of
/// `(jitter_seed, record, k)` — reproducible run to run, yet decorrelated
/// across records so a burst of transient faults does not retry in
/// lockstep.
///
/// The default disables retries (`max_retries == 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retry attempts per record before giving up (0 disables retries).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each further attempt.
    pub base_backoff: Duration,
    /// Upper bound on the per-attempt backoff.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter hash.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 0x5851_f42d_4c95_7f2d,
        }
    }
}

impl RetryPolicy {
    /// A policy retrying up to `n` times with no sleeping — the right shape
    /// for tests and for in-memory libraries whose transient faults clear
    /// on their own (e.g. a warming cache).
    pub fn immediate(n: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries: n,
            base_backoff: Duration::ZERO,
            ..RetryPolicy::default()
        }
    }

    /// The backoff before retry attempt `attempt` (1-based) of `record`.
    /// Pure in `(self, record, attempt)`.
    pub fn backoff(&self, record: usize, attempt: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let doublings = attempt.saturating_sub(1).min(16);
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << doublings)
            .min(self.max_backoff);
        let half = u64::try_from(exp.as_nanos() / 2).unwrap_or(u64::MAX / 2);
        let mut state = self
            .jitter_seed
            ^ (record as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (u64::from(attempt) << 48);
        let jitter = crate::fault::splitmix64(&mut state)
            .checked_rem(half + 1)
            .unwrap_or_default();
        Duration::from_nanos(half + jitter)
    }
}

/// Engine-wide execution configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Per-record failure handling.
    pub error_policy: ErrorPolicy,
    /// Which execution backend evaluates records: the per-record stack VM
    /// (the reference) or the columnar register-bytecode batch executor.
    /// Observables — notifications, costs, quarantine reports, guard
    /// verdicts — are bit-identical either way; only throughput differs.
    pub backend: ExecBackend,
    /// Transient-fault retry behaviour (disabled by default).
    pub retry: RetryPolicy,
    /// Differential plan validation (disabled by default). Only applies to
    /// [`ExecMode::Consolidated`] runs — the sequential path *is* the
    /// reference semantics and needs no guarding.
    pub guard: GuardPolicy,
    /// Per-record VM step budget override (`None` uses [`QuerySet::fuel`]).
    pub fuel: Option<u64>,
    /// How many quarantine entries keep a copy of the record's scalar
    /// arguments (the sample payload); later entries record only the index,
    /// query and error kind, keeping report size bounded.
    pub max_payload_samples: usize,
    /// Shared consolidated-plan cache. When present,
    /// [`QuerySet::compile_consolidated_cached`] consults it before invoking
    /// the Ω engine, and [`JobReport::plan_cache`] snapshots its counters.
    pub plan_cache: Option<std::sync::Arc<plan_cache::PlanCache>>,
    /// The entailment memo the consolidation layer proves through, when the
    /// caller shares one across runs. A guard trip then invalidates not just
    /// the cached plan but every memoized verdict derived from the demoted
    /// queries' predicates — without this, re-registering the same query set
    /// would re-prove the poisoned plan entirely from the memo, solver-free.
    pub entailment_memo: Option<std::sync::Arc<consolidate::EntailmentMemo>>,
    /// Metrics sink. No-op by default; install
    /// [`udf_obs::RecorderCell::memory`] to collect per-record latency,
    /// record/quarantine counters and (when the same cell is shared with
    /// `consolidate::Options`) the full consolidation metrics surface.
    /// [`JobReport::metrics`] snapshots it at the end of every run.
    pub recorder: udf_obs::RecorderCell,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            error_policy: ErrorPolicy::FailFast,
            backend: ExecBackend::default(),
            retry: RetryPolicy::default(),
            guard: GuardPolicy::default(),
            fuel: None,
            max_payload_samples: 8,
            plan_cache: None,
            entailment_memo: None,
            recorder: udf_obs::RecorderCell::noop(),
        }
    }
}

/// Classification of a quarantined record's failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The UDF broadcast twice for the same query.
    DuplicateNotify,
    /// An external library call failed.
    Lib,
    /// The record exceeded the VM step budget.
    OutOfFuel,
    /// The UDF environment panicked while evaluating the record.
    Panic,
}

impl ErrorKind {
    /// Classifies a [`VmError`].
    pub fn of(e: &VmError) -> ErrorKind {
        match e {
            VmError::DuplicateNotify(_) => ErrorKind::DuplicateNotify,
            VmError::Lib(_) => ErrorKind::Lib,
            VmError::OutOfFuel => ErrorKind::OutOfFuel,
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ErrorKind::DuplicateNotify => "duplicate-notify",
            ErrorKind::Lib => "lib-error",
            ErrorKind::OutOfFuel => "out-of-fuel",
            ErrorKind::Panic => "panic",
        })
    }
}

/// One quarantined record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Global index of the faulting record.
    pub record: usize,
    /// The query whose UDF faulted (`None` for the consolidated program,
    /// which evaluates all queries at once).
    pub query: Option<ProgId>,
    /// Failure classification.
    pub kind: ErrorKind,
    /// Human-readable failure detail (error display or panic message).
    pub detail: String,
    /// The record's scalar arguments, captured for the first
    /// [`EngineConfig::max_payload_samples`] entries only.
    pub sample: Option<Vec<i64>>,
    /// Retry attempts spent on this record before it was quarantined
    /// (non-zero only for transient faults under an active [`RetryPolicy`]).
    pub retries: u32,
}

/// Per-run account of everything the engine dropped instead of failing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    /// One entry per quarantined record, in record order.
    pub entries: Vec<QuarantineEntry>,
    /// Total quarantined records (equals `entries.len()`).
    pub records_quarantined: usize,
    /// Worker shards lost to a panic outside per-record execution.
    pub shards_lost: usize,
    /// Records in lost shards (not individually attributable).
    pub records_lost: usize,
    /// Records that needed at least one transient-fault retry.
    pub records_retried: usize,
    /// Total retry attempts across all records.
    pub retry_attempts: u64,
    /// Retried records that ultimately succeeded (the rest are among
    /// `entries`, each carrying its [`QuarantineEntry::retries`] count).
    pub records_recovered: usize,
}

impl QuarantineReport {
    /// `true` when nothing was dropped.
    pub fn is_clean(&self) -> bool {
        self.records_quarantined == 0 && self.shards_lost == 0
    }

    /// Sorted indices of the quarantined records.
    pub fn records(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.entries.iter().map(|e| e.record).collect();
        v.sort_unstable();
        v
    }
}

/// Job-level execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A record's UDF failed under [`ErrorPolicy::FailFast`].
    Record {
        /// Index of the offending record.
        record: usize,
        /// Underlying VM error.
        error: VmError,
    },
    /// A record's UDF panicked under [`ErrorPolicy::FailFast`].
    RecordPanic {
        /// Index of the offending record.
        record: usize,
        /// Panic payload rendered as text.
        message: String,
    },
    /// A worker thread panicked outside per-record execution.
    WorkerPanicked {
        /// Shard index of the poisoned worker.
        shard: usize,
        /// Panic payload rendered as text.
        message: String,
    },
    /// [`ErrorPolicy::Quarantine`] saw more faulting records than allowed.
    TooManyErrors {
        /// The configured `max_errors` bound.
        limit: usize,
        /// Quarantined records observed (may undercount: shards stop early).
        observed: usize,
    },
    /// `ExecMode::Consolidated` was requested on a [`QuerySet`] without a
    /// consolidated program.
    MissingConsolidated,
    /// The plan guard tripped under [`GuardAction::FailFast`]: the
    /// consolidated plan diverged from the sequential semantics on at least
    /// [`GuardPolicy::mismatch_threshold`] sampled records.
    GuardTripped {
        /// Structured account of the divergence.
        incident: crate::guard::PlanIncident,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Record { record, error } => write!(f, "record {record}: {error}"),
            EngineError::RecordPanic { record, message } => {
                write!(f, "record {record}: UDF panicked: {message}")
            }
            EngineError::WorkerPanicked { shard, message } => {
                write!(f, "worker for shard {shard} panicked: {message}")
            }
            EngineError::TooManyErrors { limit, observed } => write!(
                f,
                "quarantine overflow: {observed} faulting records exceed the limit of {limit}"
            ),
            EngineError::MissingConsolidated => write!(
                f,
                "ExecMode::Consolidated requires QuerySet::with_consolidated"
            ),
            EngineError::GuardTripped { incident } => write!(f, "{incident}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Outcome of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// Per-query number of records selected (broadcast `true`).
    pub counts: Vec<u64>,
    /// Per-query number of records with *no* broadcast (0 for well-formed
    /// UDFs; surfaced so malformed query sets are visible).
    pub missing: Vec<u64>,
    /// Wall-clock time of the UDF evaluation phase.
    pub udf_time: Duration,
    /// Total abstract cost (only when cost tracking was requested).
    /// Quarantined records contribute nothing, so Many/Consolidated cost
    /// comparisons stay apples-to-apples on the surviving records.
    pub cost: Option<u64>,
    /// Records processed (including quarantined ones).
    pub records: usize,
    /// Records the synthesized pre-filter skipped (0 when no pre-filter is
    /// attached, the mode is [`ExecMode::Many`], or the fuel budget is below
    /// [`PrefilterExec::min_fuel`]). Skipped records still count toward
    /// [`JobReport::records`] and contribute an all-`false` broadcast to
    /// every query; only their evaluation cost is saved.
    pub prefilter_skipped: u64,
    /// What was dropped instead of failing (empty under
    /// [`ErrorPolicy::FailFast`]).
    pub quarantine: QuarantineReport,
    /// Counters of the engine's [`plan_cache::PlanCache`] at job end (`None`
    /// when the engine has no cache attached).
    pub plan_cache: Option<plan_cache::CacheStats>,
    /// Snapshot of [`EngineConfig::recorder`] at job end (`None` when the
    /// recorder is the no-op default). Note the recorder accumulates across
    /// runs sharing one config, so per-run deltas require a fresh cell.
    pub metrics: Option<udf_obs::MetricsSnapshot>,
    /// Plan-guard outcome (`None` when the guard is disabled or the run was
    /// not [`ExecMode::Consolidated`]). When `demoted` is set, every other
    /// field of this report describes the sequential rerun, not the
    /// abandoned consolidated pass.
    pub guard: Option<GuardReport>,
}

/// The execution engine: a worker pool plus failure-handling configuration.
#[derive(Debug, Clone)]
pub struct Engine {
    workers: usize,
    config: EngineConfig,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

impl Engine {
    /// Creates an engine with a fixed worker count (min 1) and the default
    /// fail-fast configuration.
    pub fn new(workers: usize) -> Engine {
        Engine {
            workers: workers.max(1),
            config: EngineConfig::default(),
        }
    }

    /// Replaces the execution configuration.
    #[must_use]
    pub fn with_config(mut self, config: EngineConfig) -> Engine {
        self.config = config;
        self
    }

    /// Replaces only the error policy.
    #[must_use]
    pub fn with_error_policy(mut self, policy: ErrorPolicy) -> Engine {
        self.config.error_policy = policy;
        self
    }

    /// Selects the execution backend for all runs (default
    /// [`ExecBackend::PerRecord`]).
    #[must_use]
    pub fn with_backend(mut self, backend: ExecBackend) -> Engine {
        self.config.backend = backend;
        self
    }

    /// Overrides the per-record VM step budget for all runs.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Engine {
        self.config.fuel = Some(fuel);
        self
    }

    /// Replaces only the plan-guard policy.
    #[must_use]
    pub fn with_guard(mut self, guard: GuardPolicy) -> Engine {
        self.config.guard = guard;
        self
    }

    /// Replaces only the transient-fault retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Engine {
        self.config.retry = retry;
        self
    }

    /// Installs a metrics sink; [`JobReport::metrics`] snapshots it after
    /// every run. Pass the same cell the consolidation layer uses so engine,
    /// Ω, and solver counters land in one place.
    #[must_use]
    pub fn with_recorder(mut self, recorder: udf_obs::RecorderCell) -> Engine {
        self.config.recorder = recorder;
        self
    }

    /// Number of worker threads used per job.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The active execution configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs `queries` over `records` in the given mode.
    ///
    /// When [`EngineConfig::guard`] is active and `mode` is
    /// [`ExecMode::Consolidated`], a deterministic sample of records is
    /// shadow-executed through the sequential path; on a threshold breach
    /// the configured [`GuardAction`] applies (see [`crate::guard`]). A
    /// demotion discards the consolidated pass entirely and reruns the job
    /// in [`ExecMode::Many`], so the returned report is bit-identical to a
    /// pure-sequential run — no records are dropped by the switch.
    ///
    /// # Errors
    ///
    /// Under [`ErrorPolicy::FailFast`], returns the first failure raised by
    /// any worker (duplicate notification, library failure, fuel exhaustion,
    /// or a panicking UDF environment). Under [`ErrorPolicy::Quarantine`],
    /// per-record failures are absorbed into the report and only
    /// [`EngineError::TooManyErrors`] aborts the job. Requesting
    /// `Consolidated` without a consolidated program is
    /// [`EngineError::MissingConsolidated`] in either policy. A guard trip
    /// under [`GuardAction::FailFast`] is [`EngineError::GuardTripped`].
    pub fn run<E: UdfEnv>(
        &self,
        env: &E,
        records: &[E::Rec],
        queries: &QuerySet,
        mode: ExecMode,
        track_cost: bool,
    ) -> Result<JobReport, EngineError> {
        if mode == ExecMode::Consolidated && queries.consolidated.is_none() {
            return Err(EngineError::MissingConsolidated);
        }
        let policy = self.config.guard;
        if mode != ExecMode::Consolidated || !policy.is_active() {
            return self.run_once(env, records, queries, mode, track_cost, None);
        }
        let grun = GuardRun::new();
        let primary = self.run_once(env, records, queries, mode, track_cost, Some(&grun));
        if !grun.tripped() {
            // Healthy plan — or LogOnly, which reports without tripping.
            let mut report = primary?;
            let incident = grun
                .threshold_reached(&policy)
                .then(|| grun.incident(&policy, records.len(), false));
            report.guard = Some(GuardReport {
                shadow_runs: grun.shadow_runs(),
                mismatches: grun.mismatches(),
                demoted: false,
                incident,
            });
            return Ok(report);
        }
        // The consolidated plan diverged from the sequential semantics: its
        // results (even a nominal success) are untrustworthy. Evict the
        // plan from the cache so the divergence cannot recur on the next
        // compile, then apply the policy.
        let invalidated = self.invalidate_plan(queries);
        let incident = grun.incident(&policy, records.len(), invalidated);
        match policy.on_mismatch {
            GuardAction::FailFast => Err(EngineError::GuardTripped { incident }),
            // LogOnly never trips (see GuardRun::record_mismatch); Demote
            // self-heals by rerunning the whole job sequentially.
            GuardAction::Demote | GuardAction::LogOnly => {
                self.config.recorder.add(names::GUARD_DEMOTIONS, 1);
                let mut report =
                    self.run_once(env, records, queries, ExecMode::Many, track_cost, None)?;
                report.guard = Some(GuardReport {
                    shadow_runs: grun.shadow_runs(),
                    mismatches: grun.mismatches(),
                    demoted: true,
                    incident: Some(incident),
                });
                Ok(report)
            }
        }
    }

    /// Removes the query set's plan from the attached cache, if both exist,
    /// and drops every shared entailment-memo verdict derived from the
    /// queries' predicates (see [`EngineConfig::entailment_memo`]). Returns
    /// whether a cached plan was evicted.
    fn invalidate_plan(&self, queries: &QuerySet) -> bool {
        if let Some(memo) = &self.config.entailment_memo {
            let mut dropped = 0usize;
            for id in &queries.query_ids {
                dropped += memo.invalidate_query(id.0);
            }
            self.config
                .recorder
                .add(names::ENTAIL_MEMO_INVALIDATED, dropped as u64);
        }
        match (&self.config.plan_cache, queries.plan_key) {
            (Some(cache), Some(key)) => cache.invalidate(key),
            _ => false,
        }
    }

    /// One execution pass in one mode, with optional guard instrumentation.
    fn run_once<E: UdfEnv>(
        &self,
        env: &E,
        records: &[E::Rec],
        queries: &QuerySet,
        mode: ExecMode,
        track_cost: bool,
        guard: Option<&GuardRun>,
    ) -> Result<JobReport, EngineError> {
        let n_q = queries.query_ids.len();
        let config = &self.config;
        let shard_len = records.len().div_ceil(self.workers.max(1)).max(1);
        let start = Instant::now();
        type ShardResult = Result<Result<ShardOut, EngineError>, String>;
        let shard_results: Vec<(usize, ShardResult)> = std::thread::scope(|scope| {
            let handles: Vec<_> = records
                .chunks(shard_len)
                .enumerate()
                .map(|(k, shard)| {
                    let base = k * shard_len;
                    let h = scope.spawn(move || {
                        run_shard(env, shard, base, queries, mode, track_cost, n_q, config, guard)
                    });
                    (shard.len(), h)
                })
                .collect();
            handles
                .into_iter()
                .map(|(len, h)| (len, h.join().map_err(|p| panic_message(p.as_ref()))))
                .collect()
        });
        let udf_time = start.elapsed();
        let mut counts = vec![0u64; n_q];
        let mut missing = vec![0u64; n_q];
        let mut cost = 0u64;
        let mut prefilter_skipped = 0u64;
        let mut quarantine = QuarantineReport::default();
        for (shard_idx, (len, joined)) in shard_results.into_iter().enumerate() {
            let s = match joined {
                Ok(r) => r?,
                Err(message) => match config.error_policy {
                    // A worker panic outside per-record catch_unwind means
                    // the engine itself is poisoned for that shard.
                    ErrorPolicy::FailFast => {
                        return Err(EngineError::WorkerPanicked {
                            shard: shard_idx,
                            message,
                        });
                    }
                    ErrorPolicy::Quarantine { .. } => {
                        quarantine.shards_lost += 1;
                        quarantine.records_lost += len;
                        continue;
                    }
                },
            };
            for q in 0..n_q {
                counts[q] += s.counts[q];
                missing[q] += s.missing[q];
            }
            cost += s.cost;
            prefilter_skipped += s.prefilter_skipped;
            quarantine.entries.extend(s.quarantine);
            quarantine.records_retried += s.records_retried;
            quarantine.retry_attempts += s.retry_attempts;
            quarantine.records_recovered += s.records_recovered;
        }
        quarantine.entries.sort_by_key(|e| e.record);
        quarantine.records_quarantined = quarantine.entries.len();
        // Payload samples are captured per shard (each shard keeps up to the
        // global cap, so any entry landing in the global first-N has one);
        // strip the excess after the global sort so the report is identical
        // for every worker count.
        for e in quarantine
            .entries
            .iter_mut()
            .skip(config.max_payload_samples)
        {
            e.sample = None;
        }
        if let ErrorPolicy::Quarantine { max_errors } = config.error_policy {
            if quarantine.records_quarantined > max_errors {
                return Err(EngineError::TooManyErrors {
                    limit: max_errors,
                    observed: quarantine.records_quarantined,
                });
            }
        }
        Ok(JobReport {
            counts,
            missing,
            udf_time,
            cost: track_cost.then_some(cost),
            records: records.len(),
            prefilter_skipped,
            quarantine,
            plan_cache: self.config.plan_cache.as_ref().map(|c| c.stats()),
            metrics: self.config.recorder.snapshot(),
            guard: None,
        })
    }
}

/// Renders a caught panic payload as text.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

struct ShardOut {
    counts: Vec<u64>,
    missing: Vec<u64>,
    cost: u64,
    quarantine: Vec<QuarantineEntry>,
    records_retried: usize,
    retry_attempts: u64,
    records_recovered: usize,
    prefilter_skipped: u64,
}

/// How one record's evaluation ended.
enum RecordFault {
    Vm(VmError),
    Panic(String),
}

/// Evaluates every program the mode requires for one record, isolating
/// panics. On the first failure the whole record is abandoned: its partial
/// notifications and cost are discarded by the caller.
fn eval_record<E: UdfEnv>(
    vm: &mut Vm,
    env: &E,
    rec: &E::Rec,
    queries: &QuerySet,
    mode: ExecMode,
    track_cost: bool,
    notify: &mut [i8],
) -> Result<u64, (Option<ProgId>, RecordFault)> {
    let mut cost = 0u64;
    match mode {
        ExecMode::Many => {
            for (q, c) in queries.many.iter().enumerate() {
                let query = Some(queries.query_ids[q]);
                let r = catch_unwind(AssertUnwindSafe(|| {
                    vm.run(c, env, rec, notify, track_cost)
                }));
                match r {
                    Ok(Ok(c)) => cost += c,
                    Ok(Err(e)) => return Err((query, RecordFault::Vm(e))),
                    Err(p) => {
                        return Err((query, RecordFault::Panic(panic_message(p.as_ref()))))
                    }
                }
            }
        }
        ExecMode::Consolidated => {
            let c = queries
                .consolidated
                .as_ref()
                .expect("checked by Engine::run");
            let r = catch_unwind(AssertUnwindSafe(|| {
                vm.run(c, env, rec, notify, track_cost)
            }));
            match r {
                Ok(Ok(c)) => cost += c,
                Ok(Err(e)) => return Err((None, RecordFault::Vm(e))),
                Err(p) => return Err((None, RecordFault::Panic(panic_message(p.as_ref())))),
            }
        }
    }
    Ok(cost)
}

#[allow(clippy::too_many_arguments)]
fn run_shard<E: UdfEnv>(
    env: &E,
    shard: &[E::Rec],
    base: usize,
    queries: &QuerySet,
    mode: ExecMode,
    track_cost: bool,
    n_q: usize,
    config: &EngineConfig,
    guard: Option<&GuardRun>,
) -> Result<ShardOut, EngineError> {
    if config.backend == ExecBackend::Columnar {
        return run_shard_columnar(env, shard, base, queries, mode, track_cost, n_q, config, guard);
    }
    let fuel = config.fuel.unwrap_or(queries.fuel);
    let recorder = &config.recorder;
    let retry = &config.retry;
    let mut vm = Vm::new().with_fuel(fuel);
    // Built lazily on the first sampled record; kept separate from the
    // primary VM so shadow runs never disturb its state.
    let mut shadow_vm: Option<Vm> = None;
    // The pre-filter applies only to the consolidated operator and only
    // when the fuel budget clears its soundness floor (see PrefilterExec).
    let prefilter = queries.prefilter.as_ref().filter(|pf| {
        mode == ExecMode::Consolidated && fuel >= pf.min_fuel
    });
    // Separate machine so a skip decision never disturbs the primary VM.
    // Only materialized for the VM fallback; synthesized conditions take
    // the direct-evaluator path and never touch a second machine.
    let mut pf_vm = prefilter
        .filter(|pf| pf.fast.is_none())
        .map(|_| Vm::new().with_fuel(fuel));
    let mut pf_notify = [NOTIFY_NONE; 1];
    let mut pf_args: Vec<i64> = Vec::new();
    let mut notify = vec![NOTIFY_NONE; n_q];
    let mut counts = vec![0u64; n_q];
    let mut missing = vec![0u64; n_q];
    let mut cost = 0u64;
    let mut processed = 0u64;
    let mut prefilter_skipped = 0u64;
    let mut quarantine: Vec<QuarantineEntry> = Vec::new();
    let mut records_retried = 0usize;
    let mut retry_attempts = 0u64;
    let mut records_recovered = 0usize;
    for (k, rec) in shard.iter().enumerate() {
        if guard.is_some_and(|g| g.tripped()) {
            // Mid-stream demotion: every worker abandons the consolidated
            // pass at its next record; the engine reruns the whole job
            // sequentially, so nothing produced here is kept or dropped.
            break;
        }
        let record = base + k;
        processed += 1;
        // The span reads the clock only when the sink is enabled, so the
        // disabled-default hot path stays timer-free.
        let _record_span = recorder
            .enabled()
            .then(|| recorder.span(names::ENGINE_RECORD_NS));
        let mut retries_used = 0u32;
        // Pre-filter: a verdict of `false` proves every query broadcasts
        // `false` on this record without touching the environment, so the
        // consolidated run is replaced by its proven outcome. Evaluation
        // errors (e.g. a tiny fuel budget) fall back to the full run.
        let skipped = prefilter.is_some_and(|pf| {
            if let Some(fast) = &pf.fast {
                pf_args.clear();
                env.args(rec, &mut pf_args);
                !fast.eval(&pf_args)
            } else {
                let pvm = pf_vm.as_mut().expect("pf_vm exists with VM fallback");
                pf_notify[0] = NOTIFY_NONE;
                match pvm.run(&pf.compiled, env, rec, &mut pf_notify, false) {
                    Ok(_) => pf_notify[0] == 0,
                    Err(_) => false,
                }
            }
        });
        // Retry loop: only transient faults re-enter; everything else (and
        // transient faults past the budget) falls through to the policy
        // below. `transient` rides along in the Err so the guard can skip
        // shadowing records whose fault state is attempt-dependent.
        let outcome = if skipped {
            prefilter_skipped += 1;
            // The proven outcome: every query notified `false`, no calls
            // were made, no cost accrued.
            notify.fill(0);
            Ok(0)
        } else {
            loop {
                notify.fill(NOTIFY_NONE);
                match eval_record(&mut vm, env, rec, queries, mode, track_cost, &mut notify) {
                    Ok(c) => break Ok(c),
                    Err((query, fault)) => {
                        let transient =
                            matches!(&fault, RecordFault::Vm(e) if e.is_transient());
                        if transient && retries_used < retry.max_retries {
                            retries_used += 1;
                            recorder.add(names::ENGINE_RETRIES, 1);
                            let delay = retry.backoff(record, retries_used);
                            if !delay.is_zero() {
                                std::thread::sleep(delay);
                            }
                            continue;
                        }
                        break Err((query, fault, transient));
                    }
                }
            }
        };
        if retries_used > 0 {
            records_retried += 1;
            retry_attempts += u64::from(retries_used);
            if outcome.is_ok() {
                records_recovered += 1;
            }
        }
        if let Some(g) = guard {
            // Shadow-execute the sampled record through the sequential
            // path and compare observable behaviour: per-query broadcast
            // decisions on success, or the fact of quarantine on failure.
            // Records that exercised transient faults are skipped — their
            // outcome depends on attempt counts shared with the shadow
            // run, so a comparison would report phantom divergence.
            let transient_involved =
                retries_used > 0 || matches!(&outcome, Err((_, _, true)));
            if config.guard.samples(record) && !transient_involved {
                let _guard_span = recorder.span(names::GUARD_NS);
                g.record_shadow();
                recorder.add(names::GUARD_SHADOW_RUNS, 1);
                let mut shadow_notify = vec![NOTIFY_NONE; n_q];
                let shadow = {
                    let svm = shadow_vm.get_or_insert_with(|| Vm::new().with_fuel(fuel));
                    eval_record(svm, env, rec, queries, ExecMode::Many, false, &mut shadow_notify)
                };
                if matches!(&shadow, Err((_, RecordFault::Panic(_)))) {
                    // Unspecified VM state after an unwind; rebuild lazily.
                    shadow_vm = None;
                }
                let consolidated = match &outcome {
                    Ok(_) => GuardObservation::from_notify(&notify),
                    Err(_) => GuardObservation::Quarantined,
                };
                let sequential = match &shadow {
                    Ok(_) => GuardObservation::from_notify(&shadow_notify),
                    Err(_) => GuardObservation::Quarantined,
                };
                if consolidated != sequential {
                    recorder.add(names::GUARD_MISMATCHES, 1);
                    g.record_mismatch(
                        &config.guard,
                        GuardMismatch {
                            record,
                            consolidated,
                            sequential,
                        },
                    );
                }
            }
        }
        match outcome {
            Ok(c) => {
                cost += c;
                // A skipped record's notification vector is all-`false` by
                // construction: nothing to count, nothing missing.
                if !skipped {
                    for q in 0..n_q {
                        match notify[q] {
                            1 => counts[q] += 1,
                            0 => {}
                            _ => missing[q] += 1,
                        }
                    }
                }
            }
            Err((query, fault, _transient)) => match config.error_policy {
                ErrorPolicy::FailFast => {
                    return Err(match fault {
                        RecordFault::Vm(error) => EngineError::Record { record, error },
                        RecordFault::Panic(message) => {
                            EngineError::RecordPanic { record, message }
                        }
                    });
                }
                ErrorPolicy::Quarantine { max_errors } => {
                    let (kind, detail) = match &fault {
                        RecordFault::Vm(e) => (ErrorKind::of(e), e.to_string()),
                        RecordFault::Panic(m) => (ErrorKind::Panic, m.clone()),
                    };
                    recorder.add(names::ENGINE_QUARANTINED, 1);
                    recorder.add(
                        match kind {
                            ErrorKind::DuplicateNotify => {
                                names::ENGINE_QUARANTINED_DUPLICATE_NOTIFY
                            }
                            ErrorKind::Lib => names::ENGINE_QUARANTINED_LIB,
                            ErrorKind::OutOfFuel => names::ENGINE_QUARANTINED_OUT_OF_FUEL,
                            ErrorKind::Panic => names::ENGINE_QUARANTINED_PANIC,
                        },
                        1,
                    );
                    if matches!(fault, RecordFault::Panic(_)) {
                        // The VM's internal state is unspecified after an
                        // unwind through `run`; start from a fresh machine.
                        vm = Vm::new().with_fuel(fuel);
                    }
                    let sample = (quarantine.len() < config.max_payload_samples).then(|| {
                        let mut args = Vec::new();
                        env.args(rec, &mut args);
                        args
                    });
                    quarantine.push(QuarantineEntry {
                        record,
                        query,
                        kind,
                        detail,
                        sample,
                        retries: retries_used,
                    });
                    if quarantine.len() > max_errors {
                        // The job is doomed to TooManyErrors; stop burning
                        // CPU on this shard. (Local count lower-bounds the
                        // global one.)
                        break;
                    }
                }
            },
        }
    }
    recorder.add(names::ENGINE_RECORDS, processed);
    if prefilter.is_some() {
        // Emitted as shard totals, not per record: the counters are
        // aggregated sums either way, and a virtual-dispatch sink call per
        // record would cost a measurable slice of the skip path it meters.
        recorder.add(names::PREFILTER_RECORDS_SKIPPED, prefilter_skipped);
        recorder.add(
            names::PREFILTER_RECORDS_PASSED,
            processed - prefilter_skipped,
        );
    }
    Ok(ShardOut {
        counts,
        missing,
        cost,
        quarantine,
        records_retried,
        retry_attempts,
        records_recovered,
        prefilter_skipped,
    })
}

/// Records per [`BatchVm`] batch under [`ExecBackend::Columnar`]. Sized so a
/// typical register file (tens of registers × 8 bytes × lanes) stays
/// cache-resident.
const COLUMNAR_BATCH: usize = 256;

/// The columnar twin of [`run_shard`]: records are evaluated a batch at a
/// time through the register-bytecode executor, then every *policy* decision
/// — retries, guard shadowing, quarantine accounting, fail-fast ordering,
/// early termination — replays lane by lane in record order with exactly the
/// per-record code, so reports are bit-identical between backends. Retries
/// and guard shadows run through the scalar stack VM (the reference), which
/// also keeps stateful fault environments observing the same call sequence.
#[allow(clippy::too_many_arguments)]
fn run_shard_columnar<E: UdfEnv>(
    env: &E,
    shard: &[E::Rec],
    base: usize,
    queries: &QuerySet,
    mode: ExecMode,
    track_cost: bool,
    n_q: usize,
    config: &EngineConfig,
    guard: Option<&GuardRun>,
) -> Result<ShardOut, EngineError> {
    let fuel = config.fuel.unwrap_or(queries.fuel);
    let recorder = &config.recorder;
    let retry = &config.retry;
    let progs: Vec<&RegProgram> = match mode {
        ExecMode::Many => queries.reg_many.iter().collect(),
        ExecMode::Consolidated => vec![queries
            .reg_consolidated
            .as_ref()
            .expect("checked by Engine::run")],
    };
    let mut bvm = BatchVm::new(fuel);
    let mut batch = RecordBatch::default();
    // Scalar stack VM for retry attempts (attempt ≥ 2 re-runs the reference
    // path, as the per-record backend does on every attempt).
    let mut scalar_vm = Vm::new().with_fuel(fuel);
    let mut shadow_vm: Option<Vm> = None;
    // As in run_shard: the pre-filter applies only to the consolidated
    // operator under a sufficient fuel budget. It runs as its own batch
    // pass whose verdicts become the selection mask of the main run.
    let prefilter = queries.prefilter.as_ref().filter(|pf| {
        mode == ExecMode::Consolidated && fuel >= pf.min_fuel
    });
    // The batch guard machine is only materialized for the VM fallback;
    // synthesized conditions take the direct-evaluator path.
    let mut pf_bvm = prefilter
        .filter(|pf| pf.fast.is_none())
        .map(|_| BatchVm::new(fuel));
    let mut pf_notify: Vec<i8> = Vec::new();
    let mut pf_args: Vec<i64> = Vec::new();
    let mut pf_mask: Vec<bool> = Vec::new();
    let mut pf_skip: Vec<bool> = Vec::new();
    let mut row = Vec::new();
    let mut notify: Vec<i8> = Vec::new();
    let mut counts = vec![0u64; n_q];
    let mut missing = vec![0u64; n_q];
    let mut cost = 0u64;
    let mut processed = 0u64;
    let mut prefilter_skipped = 0u64;
    let mut quarantine: Vec<QuarantineEntry> = Vec::new();
    let mut records_retried = 0usize;
    let mut retry_attempts = 0u64;
    let mut records_recovered = 0usize;
    'outer: for (bi, chunk) in shard.chunks(COLUMNAR_BATCH).enumerate() {
        if guard.is_some_and(|g| g.tripped()) {
            break;
        }
        let chunk_base = base + bi * COLUMNAR_BATCH;
        notify.clear();
        notify.resize(chunk.len() * n_q, NOTIFY_NONE);
        {
            let _batch_span = recorder.span(names::ENGINE_BATCH_NS);
            batch.regather(env, chunk, &mut row);
            if let Some(pf) = prefilter {
                // Pre-filter pass: the guard is call-free, so this touches
                // no environment state. A lane whose verdict is `false`
                // (and that did not fault in the guard — fail-open) is
                // compacted out of the main run's selection and assigned
                // its proven outcome: all queries `false`, zero cost.
                pf_mask.clear();
                pf_skip.clear();
                if let Some(fast) = &pf.fast {
                    for rec in chunk {
                        pf_args.clear();
                        env.args(rec, &mut pf_args);
                        let skip = !fast.eval(&pf_args);
                        pf_skip.push(skip);
                        pf_mask.push(!skip);
                    }
                } else {
                    let pbvm =
                        pf_bvm.as_mut().expect("pf_bvm exists with VM fallback");
                    pf_notify.clear();
                    pf_notify.resize(chunk.len(), NOTIFY_NONE);
                    pbvm.run(&[&pf.reg], &batch, env, chunk, &mut pf_notify, false);
                    for (l, &verdict) in pf_notify.iter().enumerate().take(chunk.len()) {
                        let faulted = pbvm.take_fault(l).is_some();
                        let skip = !faulted && verdict == 0;
                        pf_skip.push(skip);
                        pf_mask.push(!skip);
                    }
                }
                bvm.run_masked(
                    &progs,
                    &batch,
                    env,
                    chunk,
                    &mut notify,
                    track_cost,
                    Some(&pf_mask),
                );
                for (l, &skip) in pf_skip.iter().enumerate() {
                    if skip {
                        notify[l * n_q..(l + 1) * n_q].fill(0);
                    }
                }
            } else {
                bvm.run(&progs, &batch, env, chunk, &mut notify, track_cost);
            }
        }
        for (k, rec) in chunk.iter().enumerate() {
            if guard.is_some_and(|g| g.tripped()) {
                // Mid-stream demotion: lanes the batch already evaluated are
                // simply not accumulated, matching the per-record backend
                // (which would not have evaluated them at all).
                break 'outer;
            }
            let record = chunk_base + k;
            processed += 1;
            let _record_span = recorder
                .enabled()
                .then(|| recorder.span(names::ENGINE_RECORD_NS));
            // Per-lane pre-filter accounting happens here, in record order,
            // so early termination (guard trip, quarantine overflow) leaves
            // counters identical to the per-record backend's. (The recorder
            // sees shard totals, emitted after the loop.)
            if prefilter.is_some() && pf_skip[k] {
                prefilter_skipped += 1;
            }
            let lane_notify = &mut notify[k * n_q..(k + 1) * n_q];
            let mut retries_used = 0u32;
            let mut cur: Result<u64, (Option<ProgId>, RecordFault)> = match bvm.take_fault(k) {
                None => Ok(bvm.cost(k)),
                Some((pi, f)) => {
                    let query = match mode {
                        ExecMode::Many => Some(queries.query_ids[pi]),
                        ExecMode::Consolidated => None,
                    };
                    Err((
                        query,
                        match f {
                            LaneFault::Vm(e) => RecordFault::Vm(e),
                            LaneFault::Panic(m) => RecordFault::Panic(m),
                        },
                    ))
                }
            };
            let outcome = loop {
                match cur {
                    Ok(c) => break Ok(c),
                    Err((query, fault)) => {
                        let transient =
                            matches!(&fault, RecordFault::Vm(e) if e.is_transient());
                        if transient && retries_used < retry.max_retries {
                            retries_used += 1;
                            recorder.add(names::ENGINE_RETRIES, 1);
                            let delay = retry.backoff(record, retries_used);
                            if !delay.is_zero() {
                                std::thread::sleep(delay);
                            }
                            lane_notify.fill(NOTIFY_NONE);
                            cur = eval_record(
                                &mut scalar_vm,
                                env,
                                rec,
                                queries,
                                mode,
                                track_cost,
                                lane_notify,
                            );
                            continue;
                        }
                        break Err((query, fault, transient));
                    }
                }
            };
            if retries_used > 0 {
                records_retried += 1;
                retry_attempts += u64::from(retries_used);
                if outcome.is_ok() {
                    records_recovered += 1;
                }
            }
            if let Some(g) = guard {
                let transient_involved =
                    retries_used > 0 || matches!(&outcome, Err((_, _, true)));
                if config.guard.samples(record) && !transient_involved {
                    let _guard_span = recorder.span(names::GUARD_NS);
                    g.record_shadow();
                    recorder.add(names::GUARD_SHADOW_RUNS, 1);
                    let mut shadow_notify = vec![NOTIFY_NONE; n_q];
                    let shadow = {
                        let svm = shadow_vm.get_or_insert_with(|| Vm::new().with_fuel(fuel));
                        eval_record(svm, env, rec, queries, ExecMode::Many, false, &mut shadow_notify)
                    };
                    if matches!(&shadow, Err((_, RecordFault::Panic(_)))) {
                        shadow_vm = None;
                    }
                    let consolidated = match &outcome {
                        Ok(_) => GuardObservation::from_notify(lane_notify),
                        Err(_) => GuardObservation::Quarantined,
                    };
                    let sequential = match &shadow {
                        Ok(_) => GuardObservation::from_notify(&shadow_notify),
                        Err(_) => GuardObservation::Quarantined,
                    };
                    if consolidated != sequential {
                        recorder.add(names::GUARD_MISMATCHES, 1);
                        g.record_mismatch(
                            &config.guard,
                            GuardMismatch {
                                record,
                                consolidated,
                                sequential,
                            },
                        );
                    }
                }
            }
            match outcome {
                Ok(c) => {
                    cost += c;
                    // Skipped lanes are all-`false` by construction.
                    if !(prefilter.is_some() && pf_skip[k]) {
                        for q in 0..n_q {
                            match lane_notify[q] {
                                1 => counts[q] += 1,
                                0 => {}
                                _ => missing[q] += 1,
                            }
                        }
                    }
                }
                Err((query, fault, _transient)) => match config.error_policy {
                    ErrorPolicy::FailFast => {
                        return Err(match fault {
                            RecordFault::Vm(error) => EngineError::Record { record, error },
                            RecordFault::Panic(message) => {
                                EngineError::RecordPanic { record, message }
                            }
                        });
                    }
                    ErrorPolicy::Quarantine { max_errors } => {
                        let (kind, detail) = match &fault {
                            RecordFault::Vm(e) => (ErrorKind::of(e), e.to_string()),
                            RecordFault::Panic(m) => (ErrorKind::Panic, m.clone()),
                        };
                        recorder.add(names::ENGINE_QUARANTINED, 1);
                        recorder.add(
                            match kind {
                                ErrorKind::DuplicateNotify => {
                                    names::ENGINE_QUARANTINED_DUPLICATE_NOTIFY
                                }
                                ErrorKind::Lib => names::ENGINE_QUARANTINED_LIB,
                                ErrorKind::OutOfFuel => names::ENGINE_QUARANTINED_OUT_OF_FUEL,
                                ErrorKind::Panic => names::ENGINE_QUARANTINED_PANIC,
                            },
                            1,
                        );
                        if matches!(fault, RecordFault::Panic(_)) {
                            // Only a scalar retry attempt can have unwound
                            // through `scalar_vm` (batch-path panics are
                            // caught per lane); rebuilding unconditionally
                            // is harmless and mirrors the reference.
                            scalar_vm = Vm::new().with_fuel(fuel);
                        }
                        let sample = (quarantine.len() < config.max_payload_samples).then(|| {
                            let mut args = Vec::new();
                            env.args(rec, &mut args);
                            args
                        });
                        quarantine.push(QuarantineEntry {
                            record,
                            query,
                            kind,
                            detail,
                            sample,
                            retries: retries_used,
                        });
                        if quarantine.len() > max_errors {
                            break 'outer;
                        }
                    }
                },
            }
        }
    }
    recorder.add(names::ENGINE_RECORDS, processed);
    if prefilter.is_some() {
        // Shard totals, mirroring run_shard's batched emission.
        recorder.add(names::PREFILTER_RECORDS_SKIPPED, prefilter_skipped);
        recorder.add(
            names::PREFILTER_RECORDS_PASSED,
            processed - prefilter_skipped,
        );
    }
    Ok(ShardOut {
        counts,
        missing,
        cost,
        quarantine,
        records_retried,
        retry_attempts,
        records_recovered,
        prefilter_skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ScalarEnv;
    use udf_lang::ast::Program;
    use udf_lang::intern::Interner;
    use udf_lang::parse::parse_program;
    use udf_lang::FnLibrary;

    fn threshold_queries(interner: &mut Interner, n: u32) -> Vec<Program> {
        (0..n)
            .map(|k| {
                parse_program(
                    &format!(
                        "program q{k} @{k} (v) {{ if (v > {}) {{ notify true; }} else {{ notify false; }} }}",
                        k * 10
                    ),
                    interner,
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn where_many_counts_are_exact() {
        let mut i = Interner::new();
        let programs = threshold_queries(&mut i, 3); // thresholds 0, 10, 20
        let env = ScalarEnv::new(1, FnLibrary::new());
        let cm = CostModel::default();
        let qs = QuerySet::compile_many(&programs, &cm, &|f| {
            udf_lang::library::Library::cost(&FnLibrary::new(), f)
        })
        .unwrap();
        let records: Vec<Vec<i64>> = (0..100).map(|v| vec![v]).collect();
        let engine = Engine::new(4);
        let r = engine.run(&env, &records, &qs, ExecMode::Many, true).unwrap();
        assert_eq!(r.counts, vec![99, 89, 79]);
        assert_eq!(r.missing, vec![0, 0, 0]);
        assert_eq!(r.records, 100);
        assert!(r.cost.unwrap() > 0);
    }

    #[test]
    fn consolidated_mode_matches_many() {
        let mut i = Interner::new();
        let programs = threshold_queries(&mut i, 4);
        let env = ScalarEnv::new(1, FnLibrary::new());
        let cm = CostModel::default();
        let lib = FnLibrary::new();
        let merged = consolidate::consolidate_many(
            &programs,
            &mut i,
            &cm,
            &lib,
            &consolidate::Options::default(),
            false,
        )
        .unwrap();
        let qs = QuerySet::compile_many(&programs, &cm, &|f| {
            udf_lang::library::Library::cost(&lib, f)
        })
        .unwrap()
        .with_consolidated(&merged.program, &cm, &|f| {
            udf_lang::library::Library::cost(&lib, f)
        }, merged.elapsed)
        .unwrap();
        let records: Vec<Vec<i64>> = (-20..120).map(|v| vec![v]).collect();
        let engine = Engine::new(3);
        let many = engine.run(&env, &records, &qs, ExecMode::Many, true).unwrap();
        let cons = engine
            .run(&env, &records, &qs, ExecMode::Consolidated, true)
            .unwrap();
        assert_eq!(many.counts, cons.counts);
        assert_eq!(cons.missing, vec![0; 4]);
        assert!(
            cons.cost.unwrap() <= many.cost.unwrap(),
            "consolidated cost {} must not exceed sequential {}",
            cons.cost.unwrap(),
            many.cost.unwrap()
        );
    }

    #[test]
    fn single_worker_and_many_workers_agree() {
        let mut i = Interner::new();
        let programs = threshold_queries(&mut i, 2);
        let env = ScalarEnv::new(1, FnLibrary::new());
        let cm = CostModel::default();
        let qs = QuerySet::compile_many(&programs, &cm, &|_| 10).unwrap();
        let records: Vec<Vec<i64>> = (0..1000).map(|v| vec![v % 37]).collect();
        let a = Engine::new(1).run(&env, &records, &qs, ExecMode::Many, false).unwrap();
        let b = Engine::new(8).run(&env, &records, &qs, ExecMode::Many, false).unwrap();
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn empty_input_is_fine() {
        let mut i = Interner::new();
        let programs = threshold_queries(&mut i, 2);
        let env = ScalarEnv::new(1, FnLibrary::new());
        let cm = CostModel::default();
        let qs = QuerySet::compile_many(&programs, &cm, &|_| 10).unwrap();
        let records: Vec<Vec<i64>> = Vec::new();
        let r = Engine::new(4)
            .run(&env, &records, &qs, ExecMode::Many, false)
            .unwrap();
        assert_eq!(r.counts, vec![0, 0]);
        assert_eq!(r.records, 0);
    }
}
