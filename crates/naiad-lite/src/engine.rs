//! Sharded multi-worker execution of query sets: the `where_many` /
//! `where_consolidated` operators of the paper's §6.1.
//!
//! Records are split into contiguous shards, one per worker thread; each
//! worker owns a [`Vm`] and evaluates either every query's UDF per record
//! (`Many`) or the single consolidated UDF (`Consolidated`), demultiplexing
//! notifications into per-query selection counts. The report separates the
//! UDF-phase wall time from everything else, matching the paper's
//! "UDF time" vs "total time" columns.

use crate::compile::{Compiled, Vm, VmError, NOTIFY_NONE};
use crate::env::UdfEnv;
use std::fmt;
use std::time::{Duration, Instant};
use udf_lang::ast::ProgId;
use udf_lang::cost::{Cost, CostModel};
use udf_lang::intern::Symbol;

/// Which operator to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// `where_many`: every query's own UDF runs per record, sequentially.
    Many,
    /// `where_consolidated`: the merged UDF runs once per record.
    Consolidated,
}

/// A compiled set of queries over one dataset.
#[derive(Debug, Clone)]
pub struct QuerySet {
    /// Dense query ids (broadcast targets), in output order.
    pub query_ids: Vec<ProgId>,
    /// Per-query compiled UDFs.
    pub many: Vec<Compiled>,
    /// The consolidated UDF, when available.
    pub consolidated: Option<Compiled>,
    /// Time spent consolidating (reported separately, as in Figure 10).
    pub consolidation_time: Duration,
}

impl QuerySet {
    /// Compiles one UDF per query. Query `k` must notify exactly
    /// `programs[k].id`.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::compile::CompileError`].
    pub fn compile_many(
        programs: &[udf_lang::ast::Program],
        cm: &CostModel,
        fn_cost: &dyn Fn(Symbol) -> Cost,
    ) -> Result<QuerySet, crate::compile::CompileError> {
        let query_ids: Vec<ProgId> = programs.iter().map(|p| p.id).collect();
        let many = programs
            .iter()
            .map(|p| Compiled::compile(p, &query_ids, cm, fn_cost))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(QuerySet {
            query_ids,
            many,
            consolidated: None,
            consolidation_time: Duration::ZERO,
        })
    }

    /// Attaches a consolidated program (it must notify exactly the ids in
    /// `query_ids`).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::compile::CompileError`].
    pub fn with_consolidated(
        mut self,
        merged: &udf_lang::ast::Program,
        cm: &CostModel,
        fn_cost: &dyn Fn(Symbol) -> Cost,
        consolidation_time: Duration,
    ) -> Result<QuerySet, crate::compile::CompileError> {
        self.consolidated = Some(Compiled::compile(merged, &self.query_ids, cm, fn_cost)?);
        self.consolidation_time = consolidation_time;
        Ok(self)
    }
}

/// Execution failure with its record index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    /// Index of the offending record.
    pub record: usize,
    /// Underlying VM error.
    pub error: VmError,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "record {}: {}", self.record, self.error)
    }
}

impl std::error::Error for EngineError {}

/// Outcome of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// Per-query number of records selected (broadcast `true`).
    pub counts: Vec<u64>,
    /// Per-query number of records with *no* broadcast (0 for well-formed
    /// UDFs; surfaced so malformed query sets are visible).
    pub missing: Vec<u64>,
    /// Wall-clock time of the UDF evaluation phase.
    pub udf_time: Duration,
    /// Total abstract cost (only when cost tracking was requested).
    pub cost: Option<u64>,
    /// Records processed.
    pub records: usize,
}

/// The execution engine: a worker pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct Engine {
    workers: usize,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

impl Engine {
    /// Creates an engine with a fixed worker count (min 1).
    pub fn new(workers: usize) -> Engine {
        Engine {
            workers: workers.max(1),
        }
    }

    /// Number of worker threads used per job.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `queries` over `records` in the given mode.
    ///
    /// # Errors
    ///
    /// Returns the first [`EngineError`] raised by any worker (duplicate
    /// notification, library failure, fuel exhaustion), or an error when
    /// `Consolidated` is requested without a consolidated program.
    pub fn run<E: UdfEnv>(
        &self,
        env: &E,
        records: &[E::Rec],
        queries: &QuerySet,
        mode: ExecMode,
        track_cost: bool,
    ) -> Result<JobReport, EngineError> {
        let n_q = queries.query_ids.len();
        if mode == ExecMode::Consolidated {
            assert!(
                queries.consolidated.is_some(),
                "ExecMode::Consolidated requires QuerySet::with_consolidated"
            );
        }
        let shard_len = records.len().div_ceil(self.workers.max(1)).max(1);
        let start = Instant::now();
        let shard_results: Vec<Result<ShardOut, EngineError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = records
                .chunks(shard_len)
                .enumerate()
                .map(|(k, shard)| {
                    let base = k * shard_len;
                    scope.spawn(move || run_shard(env, shard, base, queries, mode, track_cost, n_q))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let udf_time = start.elapsed();
        let mut counts = vec![0u64; n_q];
        let mut missing = vec![0u64; n_q];
        let mut cost = 0u64;
        for r in shard_results {
            let s = r?;
            for q in 0..n_q {
                counts[q] += s.counts[q];
                missing[q] += s.missing[q];
            }
            cost += s.cost;
        }
        Ok(JobReport {
            counts,
            missing,
            udf_time,
            cost: track_cost.then_some(cost),
            records: records.len(),
        })
    }
}

struct ShardOut {
    counts: Vec<u64>,
    missing: Vec<u64>,
    cost: u64,
}

fn run_shard<E: UdfEnv>(
    env: &E,
    shard: &[E::Rec],
    base: usize,
    queries: &QuerySet,
    mode: ExecMode,
    track_cost: bool,
    n_q: usize,
) -> Result<ShardOut, EngineError> {
    let mut vm = Vm::new();
    let mut notify = vec![NOTIFY_NONE; n_q];
    let mut counts = vec![0u64; n_q];
    let mut missing = vec![0u64; n_q];
    let mut cost = 0u64;
    for (k, rec) in shard.iter().enumerate() {
        notify.fill(NOTIFY_NONE);
        match mode {
            ExecMode::Many => {
                for c in &queries.many {
                    cost += vm
                        .run(c, env, rec, &mut notify, track_cost)
                        .map_err(|error| EngineError {
                            record: base + k,
                            error,
                        })?;
                }
            }
            ExecMode::Consolidated => {
                let c = queries
                    .consolidated
                    .as_ref()
                    .expect("checked by Engine::run");
                cost += vm
                    .run(c, env, rec, &mut notify, track_cost)
                    .map_err(|error| EngineError {
                        record: base + k,
                        error,
                    })?;
            }
        }
        for q in 0..n_q {
            match notify[q] {
                1 => counts[q] += 1,
                0 => {}
                _ => missing[q] += 1,
            }
        }
    }
    Ok(ShardOut {
        counts,
        missing,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ScalarEnv;
    use udf_lang::ast::Program;
    use udf_lang::intern::Interner;
    use udf_lang::parse::parse_program;
    use udf_lang::FnLibrary;

    fn threshold_queries(interner: &mut Interner, n: u32) -> Vec<Program> {
        (0..n)
            .map(|k| {
                parse_program(
                    &format!(
                        "program q{k} @{k} (v) {{ if (v > {}) {{ notify true; }} else {{ notify false; }} }}",
                        k * 10
                    ),
                    interner,
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn where_many_counts_are_exact() {
        let mut i = Interner::new();
        let programs = threshold_queries(&mut i, 3); // thresholds 0, 10, 20
        let env = ScalarEnv::new(1, FnLibrary::new());
        let cm = CostModel::default();
        let qs = QuerySet::compile_many(&programs, &cm, &|f| {
            udf_lang::library::Library::cost(&FnLibrary::new(), f)
        })
        .unwrap();
        let records: Vec<Vec<i64>> = (0..100).map(|v| vec![v]).collect();
        let engine = Engine::new(4);
        let r = engine.run(&env, &records, &qs, ExecMode::Many, true).unwrap();
        assert_eq!(r.counts, vec![99, 89, 79]);
        assert_eq!(r.missing, vec![0, 0, 0]);
        assert_eq!(r.records, 100);
        assert!(r.cost.unwrap() > 0);
    }

    #[test]
    fn consolidated_mode_matches_many() {
        let mut i = Interner::new();
        let programs = threshold_queries(&mut i, 4);
        let env = ScalarEnv::new(1, FnLibrary::new());
        let cm = CostModel::default();
        let lib = FnLibrary::new();
        let merged = consolidate::consolidate_many(
            &programs,
            &mut i,
            &cm,
            &lib,
            &consolidate::Options::default(),
            false,
        )
        .unwrap();
        let qs = QuerySet::compile_many(&programs, &cm, &|f| {
            udf_lang::library::Library::cost(&lib, f)
        })
        .unwrap()
        .with_consolidated(&merged.program, &cm, &|f| {
            udf_lang::library::Library::cost(&lib, f)
        }, merged.elapsed)
        .unwrap();
        let records: Vec<Vec<i64>> = (-20..120).map(|v| vec![v]).collect();
        let engine = Engine::new(3);
        let many = engine.run(&env, &records, &qs, ExecMode::Many, true).unwrap();
        let cons = engine
            .run(&env, &records, &qs, ExecMode::Consolidated, true)
            .unwrap();
        assert_eq!(many.counts, cons.counts);
        assert_eq!(cons.missing, vec![0; 4]);
        assert!(
            cons.cost.unwrap() <= many.cost.unwrap(),
            "consolidated cost {} must not exceed sequential {}",
            cons.cost.unwrap(),
            many.cost.unwrap()
        );
    }

    #[test]
    fn single_worker_and_many_workers_agree() {
        let mut i = Interner::new();
        let programs = threshold_queries(&mut i, 2);
        let env = ScalarEnv::new(1, FnLibrary::new());
        let cm = CostModel::default();
        let qs = QuerySet::compile_many(&programs, &cm, &|_| 10).unwrap();
        let records: Vec<Vec<i64>> = (0..1000).map(|v| vec![v % 37]).collect();
        let a = Engine::new(1).run(&env, &records, &qs, ExecMode::Many, false).unwrap();
        let b = Engine::new(8).run(&env, &records, &qs, ExecMode::Many, false).unwrap();
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn empty_input_is_fine() {
        let mut i = Interner::new();
        let programs = threshold_queries(&mut i, 2);
        let env = ScalarEnv::new(1, FnLibrary::new());
        let cm = CostModel::default();
        let qs = QuerySet::compile_many(&programs, &cm, &|_| 10).unwrap();
        let records: Vec<Vec<i64>> = Vec::new();
        let r = Engine::new(4)
            .run(&env, &records, &qs, ExecMode::Many, false)
            .unwrap();
        assert_eq!(r.counts, vec![0, 0]);
        assert_eq!(r.records, 0);
    }
}
