//! Binding records to the UDF language.
//!
//! A UDF sees a record through two channels (paper §3): the record's scalar
//! fields arrive as the program's arguments `ᾱ`, and richer accessors
//! (e.g. `getTempOfMonth(m)` on a weather record) are *pure external
//! functions* closed over the record. A [`UdfEnv`] packages both; the engine
//! materializes a per-record [`udf_lang::Library`] view with no allocation.

use udf_lang::cost::Cost;
use udf_lang::intern::Symbol;
use udf_lang::library::{LibError, Library};

/// A dataset binding: how records of type `Rec` feed UDFs.
pub trait UdfEnv: Send + Sync {
    /// Record type.
    type Rec: Send + Sync;

    /// Number of scalar arguments every UDF over this dataset takes.
    fn arity(&self) -> usize;

    /// Writes the record's scalar fields into `out` (len == `arity()`).
    fn args(&self, rec: &Self::Rec, out: &mut Vec<i64>);

    /// Evaluates external function `f` on this record. Must be pure.
    ///
    /// # Errors
    ///
    /// Returns [`LibError`] for unknown functions or arity mismatches.
    fn call(&self, rec: &Self::Rec, f: Symbol, args: &[i64]) -> Result<i64, LibError>;

    /// Static cost of calling `f` (record-independent).
    fn fn_cost(&self, f: Symbol) -> Cost;
}

/// A [`Library`] view of one `(env, record)` pair.
#[derive(Debug)]
pub struct RecordLibrary<'a, E: UdfEnv> {
    env: &'a E,
    rec: &'a E::Rec,
}

impl<'a, E: UdfEnv> RecordLibrary<'a, E> {
    /// Creates the view.
    pub fn new(env: &'a E, rec: &'a E::Rec) -> RecordLibrary<'a, E> {
        RecordLibrary { env, rec }
    }
}

impl<'a, E: UdfEnv> Library for RecordLibrary<'a, E> {
    fn call(&self, f: Symbol, args: &[i64]) -> Result<i64, LibError> {
        self.env.call(self.rec, f, args)
    }

    fn cost(&self, f: Symbol) -> Cost {
        self.env.fn_cost(f)
    }
}

/// The simplest dataset: each record is a plain argument vector and there
/// are no external functions beyond an optional shared [`udf_lang::FnLibrary`].
pub struct ScalarEnv {
    arity: usize,
    library: udf_lang::FnLibrary,
}

impl std::fmt::Debug for ScalarEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScalarEnv").field("arity", &self.arity).finish()
    }
}

impl ScalarEnv {
    /// Creates a scalar environment of the given arity with record-independent
    /// external functions.
    pub fn new(arity: usize, library: udf_lang::FnLibrary) -> ScalarEnv {
        ScalarEnv { arity, library }
    }
}

impl UdfEnv for ScalarEnv {
    type Rec = Vec<i64>;

    fn arity(&self) -> usize {
        self.arity
    }

    fn args(&self, rec: &Vec<i64>, out: &mut Vec<i64>) {
        out.extend_from_slice(rec);
    }

    fn call(&self, _rec: &Vec<i64>, f: Symbol, args: &[i64]) -> Result<i64, LibError> {
        self.library.call(f, args)
    }

    fn fn_cost(&self, f: Symbol) -> Cost {
        self.library.cost(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udf_lang::intern::Interner;
    use udf_lang::FnLibrary;

    #[test]
    fn scalar_env_round_trips_args_and_calls() {
        let mut i = Interner::new();
        let twice = i.intern("twice");
        let mut lib = FnLibrary::new();
        lib.register(twice, "twice", 1, 5, |a| a[0] * 2);
        let env = ScalarEnv::new(2, lib);
        let rec = vec![3, 9];
        let mut out = Vec::new();
        env.args(&rec, &mut out);
        assert_eq!(out, vec![3, 9]);
        let view = RecordLibrary::new(&env, &rec);
        assert_eq!(view.call(twice, &[21]), Ok(42));
        assert_eq!(view.cost(twice), 5);
    }
}
