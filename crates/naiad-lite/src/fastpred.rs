//! Closed-form evaluator for synthesized pre-filter conditions.
//!
//! The pre-filter synthesis pass ([`consolidate::prefilter`]) only ever
//! produces conditions built from record parameters, integer literals and
//! the wrapping arithmetic/comparison operators — never library calls and
//! never loops. Running such a condition through the stack VM costs a full
//! per-record machine setup (slot reset, argument copy, fuel bookkeeping,
//! one dispatch per instruction), which on well-consolidated cheap families
//! rivals the cost of the merged program's own fast-fail path and erases
//! the pushdown's win. This module evaluates the condition directly over
//! the record's argument vector instead: a small expression tree whose
//! leaves are pre-resolved parameter indices, evaluated in a handful of
//! nanoseconds with no fuel, no slots and no failure paths.
//!
//! # Semantic equivalence
//!
//! The evaluator is exactly the VM on the supported fragment:
//!
//! * arithmetic uses [`IntOp::apply`] — the same two's-complement wrapping
//!   semantics the VM's `Add`/`Sub`/`Mul` opcodes implement;
//! * comparisons use [`CmpOp::apply`], mirroring `Lt`/`Le`/`EqI`;
//! * `&&` / `||` are evaluated with short-circuiting, which on this pure,
//!   total fragment is observationally identical to the language's strict
//!   connectives — there are no side effects, faults or costs the skipped
//!   operand could contribute.
//!
//! Unlike the VM path the evaluator is *total*: it cannot run out of fuel.
//! That only widens the set of records that receive an exact verdict (the
//! VM path fails open on evaluation errors); the skip decision itself is
//! still licensed by the synthesis-time proof, so exactness is sound.
//!
//! [`build`](FastPred::build) returns `None` when the condition strays
//! outside the fragment (a library call, or a variable that is not a
//! parameter of the merged program) — the engine then falls back to the
//! compiled-guard VM path, preserving behaviour for hand-constructed
//! conditions.

use udf_lang::ast::{BoolExpr, BoolOp, CmpOp, IntExpr, IntOp};
use udf_lang::intern::Symbol;

#[derive(Debug, Clone)]
enum IntNode {
    Const(i64),
    /// Index into the record's argument vector.
    Param(u32),
    Bin(IntOp, Box<IntNode>, Box<IntNode>),
}

#[derive(Debug, Clone)]
enum BoolNode {
    Const(bool),
    Cmp(CmpOp, IntNode, IntNode),
    Not(Box<BoolNode>),
    Bin(BoolOp, Box<BoolNode>, Box<BoolNode>),
}

/// A pre-filter condition compiled to a direct-evaluation tree with
/// parameter references resolved to argument-vector indices.
#[derive(Debug, Clone)]
pub struct FastPred {
    root: BoolNode,
}

impl FastPred {
    /// Compiles `cond` against the merged program's parameter list.
    /// Returns `None` if the condition uses a library call or an unknown
    /// variable (the caller falls back to the compiled-guard VM).
    #[must_use]
    pub fn build(cond: &BoolExpr, params: &[Symbol]) -> Option<FastPred> {
        Some(FastPred {
            root: build_bool(cond, params)?,
        })
    }

    /// Evaluates the condition over a record's argument vector (as
    /// produced by [`crate::env::UdfEnv::args`]). Total: never faults,
    /// never consumes fuel.
    #[inline]
    #[must_use]
    pub fn eval(&self, args: &[i64]) -> bool {
        eval_bool(&self.root, args)
    }
}

fn build_int(e: &IntExpr, params: &[Symbol]) -> Option<IntNode> {
    match e {
        IntExpr::Const(c) => Some(IntNode::Const(*c)),
        IntExpr::Var(s) => {
            let idx = params.iter().position(|p| p == s)?;
            Some(IntNode::Param(u32::try_from(idx).ok()?))
        }
        IntExpr::Call(..) => None,
        IntExpr::Bin(op, a, b) => Some(IntNode::Bin(
            *op,
            Box::new(build_int(a, params)?),
            Box::new(build_int(b, params)?),
        )),
    }
}

fn build_bool(e: &BoolExpr, params: &[Symbol]) -> Option<BoolNode> {
    match e {
        BoolExpr::Const(b) => Some(BoolNode::Const(*b)),
        BoolExpr::Cmp(op, a, b) => Some(BoolNode::Cmp(
            *op,
            build_int(a, params)?,
            build_int(b, params)?,
        )),
        BoolExpr::Not(a) => Some(BoolNode::Not(Box::new(build_bool(a, params)?))),
        BoolExpr::Bin(op, a, b) => Some(BoolNode::Bin(
            *op,
            Box::new(build_bool(a, params)?),
            Box::new(build_bool(b, params)?),
        )),
    }
}

fn eval_int(n: &IntNode, args: &[i64]) -> i64 {
    match n {
        IntNode::Const(c) => *c,
        IntNode::Param(i) => args[*i as usize],
        IntNode::Bin(op, a, b) => op.apply(eval_int(a, args), eval_int(b, args)),
    }
}

fn eval_bool(n: &BoolNode, args: &[i64]) -> bool {
    match n {
        BoolNode::Const(b) => *b,
        BoolNode::Cmp(op, a, b) => op.apply(eval_int(a, args), eval_int(b, args)),
        BoolNode::Not(a) => !eval_bool(a, args),
        // Short-circuiting is sound here: the fragment is pure and total,
        // so the strict connectives of the language are indistinguishable.
        BoolNode::Bin(BoolOp::And, a, b) => eval_bool(a, args) && eval_bool(b, args),
        BoolNode::Bin(BoolOp::Or, a, b) => eval_bool(a, args) || eval_bool(b, args),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{Compiled, Vm, NOTIFY_NONE};
    use crate::env::{ScalarEnv, UdfEnv};
    use udf_lang::ast::{ProgId, Program, Stmt};
    use udf_lang::cost::CostModel;
    use udf_lang::intern::Interner;

    /// The direct evaluator must agree with the VM on the compiled guard
    /// program for every record — including wrapping overflow operands.
    #[test]
    fn matches_vm_on_guard_program() {
        let mut interner = Interner::default();
        let a = interner.intern("a");
        let b = interner.intern("b");
        let params = vec![a, b];
        let cond = BoolExpr::or(
            BoolExpr::Cmp(
                CmpOp::Le,
                IntExpr::Const(40),
                IntExpr::add(
                    IntExpr::Var(a),
                    IntExpr::mul(IntExpr::Var(b), IntExpr::Const(3)),
                ),
            ),
            BoolExpr::and(
                BoolExpr::Cmp(CmpOp::Lt, IntExpr::Var(b), IntExpr::Const(-5)),
                BoolExpr::not(BoolExpr::Cmp(
                    CmpOp::Eq,
                    IntExpr::Var(a),
                    IntExpr::Const(0),
                )),
            ),
        );
        let fast = FastPred::build(&cond, &params).expect("fragment supported");

        let guard = Program::new(
            ProgId(0),
            params.clone(),
            Stmt::ite(
                cond,
                Stmt::Notify(ProgId(0), true),
                Stmt::Notify(ProgId(0), false),
            ),
        );
        let cm = CostModel::default();
        let compiled =
            Compiled::compile(&guard, &[ProgId(0)], &cm, &|_| 1).expect("compiles");
        let env = ScalarEnv::new(2, udf_lang::FnLibrary::default());
        let mut vm = Vm::new();
        let mut notify = [NOTIFY_NONE; 1];
        let mut args = Vec::new();
        for rec in [
            vec![0i64, 0],
            vec![41, 0],
            vec![10, 10],
            vec![1, -6],
            vec![0, -6],
            vec![i64::MAX, 1],
            vec![i64::MIN, i64::MAX],
        ] {
            notify[0] = NOTIFY_NONE;
            vm.run(&compiled, &env, &rec, &mut notify, false)
                .expect("guard is total");
            args.clear();
            env.args(&rec, &mut args);
            assert_eq!(
                fast.eval(&args),
                notify[0] == 1,
                "fast/VM divergence on {rec:?}"
            );
        }
    }

    /// Conditions outside the pure fragment refuse to build.
    #[test]
    fn rejects_calls_and_unknown_vars() {
        let mut interner = Interner::default();
        let a = interner.intern("a");
        let f = interner.intern("f");
        let call = BoolExpr::Cmp(
            CmpOp::Lt,
            IntExpr::Call(f, vec![IntExpr::Var(a)]),
            IntExpr::Const(0),
        );
        assert!(FastPred::build(&call, &[a]).is_none());
        let unknown = BoolExpr::Cmp(CmpOp::Lt, IntExpr::Var(f), IntExpr::Const(0));
        assert!(FastPred::build(&unknown, &[a]).is_none());
    }
}
