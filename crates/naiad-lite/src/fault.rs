//! Deterministic fault injection for exercising the engine's failure model.
//!
//! A [`FaultPlan`] maps record indices to [`FaultKind`]s; wrapping any
//! [`UdfEnv`] in a [`FaultyEnv`] makes a designated *trigger function*
//! misbehave on exactly the planned records:
//!
//! * [`FaultKind::LibError`] — the trigger call returns a library error,
//!   which the VM surfaces as [`crate::compile::VmError::Lib`];
//! * [`FaultKind::Panic`] — the trigger call panics (message prefixed with
//!   [`INJECTED_PANIC_MARKER`]), exercising the engine's per-record
//!   `catch_unwind` isolation;
//! * [`FaultKind::FuelBurn`] — the trigger call returns
//!   [`FaultyEnv::burn_value`] instead of the healthy value; a UDF that
//!   loops on the result then exhausts a suitably small step budget,
//!   producing [`crate::compile::VmError::OutOfFuel`];
//! * [`FaultKind::Transient`] — the trigger call fails with
//!   [`LibError::Transient`] for the first `k` calls on that record and
//!   succeeds afterwards, exercising the engine's retry-with-backoff path
//!   (see [`crate::engine::RetryPolicy`]).
//!
//! Faults key on the *record index*, not on execution order, so `Many` and
//! `Consolidated` runs over the same records fault identically — the
//! property the quarantine parity tests rely on.

use crate::env::UdfEnv;
use std::collections::BTreeMap;
use udf_lang::cost::Cost;
use udf_lang::intern::Symbol;
use udf_lang::library::LibError;

/// What the trigger function does on a faulted record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Return a [`LibError`] from the trigger call.
    LibError,
    /// Panic inside the trigger call.
    Panic,
    /// Return the environment's burn value (a huge loop bound) so the UDF
    /// exhausts its fuel.
    FuelBurn,
    /// Fail the first `k` trigger calls for the record with
    /// [`LibError::Transient`], then succeed. While a record keeps failing,
    /// each evaluation attempt consumes exactly one trigger call (the first
    /// failing call aborts the attempt), so `Transient(k)` models a fault
    /// that clears after `k` retries: an engine retrying at least `k` times
    /// recovers the record, fewer retries quarantine it.
    Transient(u32),
}

/// Prefix of every injected panic message; panic hooks installed by
/// [`silence_injected_panics`] use it to tell injected panics from real ones.
pub const INJECTED_PANIC_MARKER: &str = "injected fault:";

/// A deterministic record-index → fault mapping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<usize, FaultKind>,
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan faulting exactly one record.
    pub fn single(record: usize, kind: FaultKind) -> FaultPlan {
        let mut p = FaultPlan::default();
        p.insert(record, kind);
        p
    }

    /// A seeded plan faulting `count` distinct records out of `n_records`,
    /// cycling through the three permanent fault kinds. The same `(seed,
    /// n_records, count)` always yields the same plan.
    pub fn seeded(seed: u64, n_records: usize, count: usize) -> FaultPlan {
        FaultPlan::seeded_kinds(
            seed,
            n_records,
            count,
            &[FaultKind::LibError, FaultKind::Panic, FaultKind::FuelBurn],
        )
    }

    /// Like [`FaultPlan::seeded`] but cycling through an explicit kind list
    /// (e.g. a mix of [`FaultKind::Transient`] depths for retry tests).
    /// Record placement depends only on `(seed, n_records, count)`, so two
    /// plans over the same population fault the same records regardless of
    /// which kinds they assign.
    pub fn seeded_kinds(
        seed: u64,
        n_records: usize,
        count: usize,
        kinds: &[FaultKind],
    ) -> FaultPlan {
        let mut plan = FaultPlan::default();
        if n_records == 0 || kinds.is_empty() {
            return plan;
        }
        let mut state = seed ^ 0xa076_1d64_78bd_642f;
        let mut k = 0usize;
        while plan.faults.len() < count.min(n_records) {
            let record = (splitmix64(&mut state) % n_records as u64) as usize;
            if plan.faults.contains_key(&record) {
                continue;
            }
            plan.faults.insert(record, kinds[k % kinds.len()]);
            k += 1;
        }
        plan
    }

    /// Adds one fault.
    pub fn insert(&mut self, record: usize, kind: FaultKind) {
        self.faults.insert(record, kind);
    }

    /// The planned fault for `record`, if any.
    pub fn kind(&self, record: usize) -> Option<FaultKind> {
        self.faults.get(&record).copied()
    }

    /// Sorted indices of all planned records.
    pub fn records(&self) -> Vec<usize> {
        self.faults.keys().copied().collect()
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Wraps an environment so a designated trigger function misbehaves on the
/// planned records. Records carry their global index: the wrapped record
/// type is `(usize, E::Rec)`.
#[derive(Debug)]
pub struct FaultyEnv<E: UdfEnv> {
    inner: E,
    plan: FaultPlan,
    trigger: Symbol,
    burn_value: i64,
    /// Per-record count of trigger calls already failed with
    /// [`FaultKind::Transient`]; once a record's count reaches its planned
    /// depth the fault has "cleared" and calls pass through.
    transient_failures: std::sync::Mutex<BTreeMap<usize, u32>>,
}

impl<E: UdfEnv> FaultyEnv<E> {
    /// Creates the wrapper. `trigger` is the external function the plan
    /// intercepts; all other functions pass through untouched.
    pub fn new(inner: E, trigger: Symbol, plan: FaultPlan) -> FaultyEnv<E> {
        FaultyEnv {
            inner,
            plan,
            trigger,
            burn_value: 1_000_000_000,
            transient_failures: std::sync::Mutex::new(BTreeMap::new()),
        }
    }

    /// Forgets all transient-failure progress, as if every planned
    /// [`FaultKind::Transient`] fault were fresh again. Call between engine
    /// runs that reuse one environment so each run sees the same faults.
    pub fn reset_transients(&self) {
        self.transient_failures
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    /// Overrides the value returned on [`FaultKind::FuelBurn`] faults.
    #[must_use]
    pub fn with_burn_value(mut self, v: i64) -> FaultyEnv<E> {
        self.burn_value = v;
        self
    }

    /// The loop bound returned on fuel-burn faults.
    pub fn burn_value(&self) -> i64 {
        self.burn_value
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Pairs each record with its global index, producing the record type
    /// this environment evaluates.
    pub fn index_records<I: IntoIterator<Item = E::Rec>>(records: I) -> Vec<(usize, E::Rec)> {
        records.into_iter().enumerate().collect()
    }
}

impl<E: UdfEnv> UdfEnv for FaultyEnv<E> {
    type Rec = (usize, E::Rec);

    fn arity(&self) -> usize {
        self.inner.arity()
    }

    fn args(&self, rec: &Self::Rec, out: &mut Vec<i64>) {
        self.inner.args(&rec.1, out);
    }

    fn call(&self, rec: &Self::Rec, f: Symbol, args: &[i64]) -> Result<i64, LibError> {
        if f == self.trigger {
            match self.plan.kind(rec.0) {
                Some(FaultKind::LibError) => {
                    return Err(LibError::UnknownFunction(format!(
                        "injected lib fault on record {}",
                        rec.0
                    )));
                }
                Some(FaultKind::Panic) => {
                    panic!("{INJECTED_PANIC_MARKER} record {}", rec.0);
                }
                Some(FaultKind::FuelBurn) => return Ok(self.burn_value),
                Some(FaultKind::Transient(depth)) => {
                    let mut failed = self
                        .transient_failures
                        .lock()
                        .unwrap_or_else(|e| e.into_inner());
                    let count = failed.entry(rec.0).or_insert(0);
                    if *count < depth {
                        *count += 1;
                        return Err(LibError::Transient(format!(
                            "injected transient fault on record {} ({}/{depth})",
                            rec.0, *count
                        )));
                    }
                }
                None => {}
            }
        }
        self.inner.call(&rec.1, f, args)
    }

    fn fn_cost(&self, f: Symbol) -> Cost {
        self.inner.fn_cost(f)
    }
}

/// Installs (once per process) a panic hook that suppresses the output of
/// injected panics — those whose message starts with
/// [`INJECTED_PANIC_MARKER`] — and forwards everything else to the previous
/// hook. Call from tests that exercise [`FaultKind::Panic`] so expected
/// unwinds don't spam stderr.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with(INJECTED_PANIC_MARKER))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|m| m.starts_with(INJECTED_PANIC_MARKER));
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_distinct() {
        let a = FaultPlan::seeded(7, 1000, 10);
        let b = FaultPlan::seeded(7, 1000, 10);
        let c = FaultPlan::seeded(8, 1000, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 10);
        assert!(a.records().iter().all(|&r| r < 1000));
    }

    #[test]
    fn seeded_plan_caps_at_population() {
        let p = FaultPlan::seeded(1, 3, 10);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn seeded_kinds_places_records_independently_of_kinds() {
        let a = FaultPlan::seeded(9, 500, 8);
        let b = FaultPlan::seeded_kinds(9, 500, 8, &[FaultKind::Transient(2)]);
        assert_eq!(a.records(), b.records());
        assert!(b
            .records()
            .iter()
            .all(|&r| b.kind(r) == Some(FaultKind::Transient(2))));
    }

    #[test]
    fn transient_faults_clear_after_depth_failures() {
        use crate::env::{ScalarEnv, UdfEnv};
        let mut i = udf_lang::intern::Interner::new();
        let probe = i.intern("probe");
        let mut lib = udf_lang::FnLibrary::new();
        lib.register(probe, "probe", 1, 10, |a| a[0]);
        let env = FaultyEnv::new(
            ScalarEnv::new(1, lib),
            probe,
            FaultPlan::single(4, FaultKind::Transient(2)),
        );
        let rec = (4usize, vec![7i64]);
        for _ in 0..2 {
            assert!(matches!(
                env.call(&rec, probe, &[7]),
                Err(LibError::Transient(_))
            ));
        }
        assert_eq!(env.call(&rec, probe, &[7]), Ok(7));
        // Other records are untouched, and a reset re-arms the fault.
        assert_eq!(env.call(&(5, vec![1]), probe, &[1]), Ok(1));
        env.reset_transients();
        assert!(matches!(
            env.call(&rec, probe, &[7]),
            Err(LibError::Transient(_))
        ));
    }
}
