//! Differential plan validation: runtime cross-checking of the consolidated
//! plan against the sequential semantics.
//!
//! Consolidation is proved observationally equivalent on paper (Theorem 1),
//! but a deployed engine also faces hazards the proof does not cover: a
//! plan-cache entry rotted on disk, a miscompiled merged program, or a
//! library whose behaviour drifted between consolidation time and run time.
//! The *plan guard* defends against all of them by shadow-executing a
//! deterministic sample of records through the sequential `Many` path while
//! a `Consolidated` job runs, comparing both the per-query notifications and
//! the quarantine decision:
//!
//! * agree → nothing happens beyond a `guard.shadow_runs` tick;
//! * diverge → the mismatch is counted and an example captured; when the
//!   count reaches [`GuardPolicy::mismatch_threshold`] the job *trips* and
//!   the configured [`GuardAction`] decides what happens next.
//!
//! On a trip with [`GuardAction::Demote`], the engine discards the
//! consolidated results mid-stream (workers abort at the next record), runs
//! the whole job again through the sequential path — so no record is
//! dropped and the output is bit-identical to a pure-`Many` run — and
//! invalidates the plan's entry in the attached plan cache so the next
//! compile re-consolidates instead of re-serving the poisoned plan. The
//! structured [`PlanIncident`] lands in [`crate::engine::JobReport::guard`]
//! (or in [`crate::engine::EngineError::GuardTripped`] under
//! [`GuardAction::FailFast`]).
//!
//! Sampling is keyed on the *record index* with a splitmix64 hash, so which
//! records are shadowed is independent of worker count and scheduling — the
//! same job shape always audits the same records.

use crate::compile::NOTIFY_NONE;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// What the engine does when the guard's mismatch threshold is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuardAction {
    /// Discard the consolidated results, rerun the job through the
    /// sequential `Many` path, and invalidate the plan in the cache. The
    /// job still succeeds, with outputs identical to a pure-sequential run.
    #[default]
    Demote,
    /// Abort the job with [`crate::engine::EngineError::GuardTripped`]
    /// (still invalidating the cached plan).
    FailFast,
    /// Record the incident in the report but keep the consolidated results
    /// and the cached plan. For observation in environments where the
    /// sequential rerun is too expensive.
    LogOnly,
}

impl GuardAction {
    /// Short lowercase label for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            GuardAction::Demote => "demote",
            GuardAction::FailFast => "fail-fast",
            GuardAction::LogOnly => "log-only",
        }
    }
}

/// Configuration of the plan guard (see the module docs).
///
/// The default is disabled (`sample_rate == 0.0`): no shadow runs, no
/// comparisons, no overhead beyond one predicate per job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardPolicy {
    /// Fraction of records shadow-executed through the sequential path,
    /// in `[0.0, 1.0]`. `0.0` disables the guard; `1.0` audits every
    /// record.
    pub sample_rate: f64,
    /// Number of divergent records that trips the job (min 1). Values
    /// above 1 tolerate isolated glitches before reacting.
    pub mismatch_threshold: usize,
    /// Reaction to a trip.
    pub on_mismatch: GuardAction,
    /// Seed of the deterministic sampling hash. Two jobs with the same
    /// seed, rate, and record count audit the same record indices
    /// regardless of worker count.
    pub sample_seed: u64,
}

impl Default for GuardPolicy {
    fn default() -> GuardPolicy {
        GuardPolicy {
            sample_rate: 0.0,
            mismatch_threshold: 1,
            on_mismatch: GuardAction::Demote,
            sample_seed: 0x9b1d_eb4d_b743_fa2c,
        }
    }
}

impl GuardPolicy {
    /// A guard auditing every record and demoting on the first divergence —
    /// the strictest setting, used by the validation tests.
    pub fn audit_all() -> GuardPolicy {
        GuardPolicy {
            sample_rate: 1.0,
            ..GuardPolicy::default()
        }
    }

    /// Whether the policy performs any shadow runs at all.
    pub fn is_active(&self) -> bool {
        self.sample_rate > 0.0
    }

    /// Deterministically decides whether `record` is shadow-executed.
    /// Depends only on `(sample_seed, record, sample_rate)` — never on
    /// worker count or scheduling.
    pub fn samples(&self, record: usize) -> bool {
        if self.sample_rate >= 1.0 {
            return true;
        }
        if self.sample_rate <= 0.0 {
            return false;
        }
        let mut state = self.sample_seed ^ (record as u64).wrapping_mul(0xff51_afd7_ed55_8ccd);
        let hash = crate::fault::splitmix64(&mut state);
        // Map the rate to a threshold over the full u64 range; the hash is
        // uniform, so P(hash < threshold) == sample_rate up to rounding.
        let threshold = (self.sample_rate * (u64::MAX as f64)) as u64;
        hash < threshold
    }
}

/// One side of a divergence: what a path decided for a sampled record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardObservation {
    /// The path evaluated the record; per-query broadcast decisions, in
    /// query order (`None` = no broadcast).
    Notified(Vec<Option<bool>>),
    /// The path faulted on the record (it would be quarantined).
    Quarantined,
}

impl GuardObservation {
    /// Builds the `Notified` observation from a raw VM notify buffer.
    pub(crate) fn from_notify(notify: &[i8]) -> GuardObservation {
        GuardObservation::Notified(
            notify
                .iter()
                .map(|&v| match v {
                    0 => Some(false),
                    1 => Some(true),
                    _ => {
                        debug_assert_eq!(v, NOTIFY_NONE);
                        None
                    }
                })
                .collect(),
        )
    }
}

/// A captured example of one record where the two paths disagreed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardMismatch {
    /// Global index of the divergent record.
    pub record: usize,
    /// What the consolidated plan produced.
    pub consolidated: GuardObservation,
    /// What the sequential shadow run produced.
    pub sequential: GuardObservation,
}

/// Structured account of a tripped guard, attached to the job report (or
/// the [`crate::engine::EngineError::GuardTripped`] error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanIncident {
    /// Records in the job.
    pub records: usize,
    /// Shadow runs performed before the verdict.
    pub shadow_runs: u64,
    /// Divergent records observed.
    pub mismatches: u64,
    /// The threshold that was reached.
    pub threshold: usize,
    /// The action the policy prescribed.
    pub action: GuardAction,
    /// Up to [`MAX_MISMATCH_EXAMPLES`] captured divergences.
    pub examples: Vec<GuardMismatch>,
    /// Whether a cached plan entry was invalidated in response.
    pub plan_invalidated: bool,
}

impl std::fmt::Display for PlanIncident {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "plan guard tripped: {}/{} shadowed records diverged \
             (threshold {}, action {})",
            self.mismatches,
            self.shadow_runs,
            self.threshold,
            self.action.as_str()
        )
    }
}

/// Guard outcome attached to every guarded job's report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardReport {
    /// Records shadow-executed through the sequential path.
    pub shadow_runs: u64,
    /// Divergent records observed.
    pub mismatches: u64,
    /// Whether the job was demoted to sequential execution.
    pub demoted: bool,
    /// The structured incident, when the threshold was reached.
    pub incident: Option<PlanIncident>,
}

/// Examples kept per incident; later divergences are counted but not
/// captured, bounding report size on pathological plans.
pub const MAX_MISMATCH_EXAMPLES: usize = 8;

/// Shared per-job guard state, updated lock-free by every worker (examples
/// take a mutex, but only on the cold mismatch path).
#[derive(Debug, Default)]
pub(crate) struct GuardRun {
    shadow_runs: AtomicU64,
    mismatches: AtomicU64,
    tripped: AtomicBool,
    examples: Mutex<Vec<GuardMismatch>>,
}

impl GuardRun {
    pub(crate) fn new() -> GuardRun {
        GuardRun::default()
    }

    /// Counts one shadow run.
    pub(crate) fn record_shadow(&self) {
        self.shadow_runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one divergence and captures it (up to the example cap). Trips
    /// the run when the threshold is reached and the action aborts the
    /// consolidated pass ([`GuardAction::LogOnly`] never trips, so workers
    /// run to completion and outputs are untouched).
    pub(crate) fn record_mismatch(&self, policy: &GuardPolicy, mismatch: GuardMismatch) {
        let seen = self.mismatches.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut ex = self.examples.lock().unwrap_or_else(|e| e.into_inner());
            if ex.len() < MAX_MISMATCH_EXAMPLES {
                ex.push(mismatch);
            }
        }
        if seen >= policy.mismatch_threshold.max(1) as u64
            && policy.on_mismatch != GuardAction::LogOnly
        {
            self.tripped.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the run has tripped; workers poll this to abort early.
    pub(crate) fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }

    pub(crate) fn shadow_runs(&self) -> u64 {
        self.shadow_runs.load(Ordering::Relaxed)
    }

    pub(crate) fn mismatches(&self) -> u64 {
        self.mismatches.load(Ordering::Relaxed)
    }

    /// Whether the mismatch count reached the policy threshold (also true
    /// for [`GuardAction::LogOnly`], which reports without tripping).
    pub(crate) fn threshold_reached(&self, policy: &GuardPolicy) -> bool {
        self.mismatches() >= policy.mismatch_threshold.max(1) as u64
    }

    /// Assembles the structured incident. Examples are sorted by record so
    /// the report is deterministic across worker counts.
    pub(crate) fn incident(
        &self,
        policy: &GuardPolicy,
        records: usize,
        plan_invalidated: bool,
    ) -> PlanIncident {
        let mut examples = self
            .examples
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        examples.sort_by_key(|m| m.record);
        PlanIncident {
            records,
            shadow_runs: self.shadow_runs(),
            mismatches: self.mismatches(),
            threshold: policy.mismatch_threshold.max(1),
            action: policy.on_mismatch,
            examples,
            plan_invalidated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_disabled() {
        let p = GuardPolicy::default();
        assert!(!p.is_active());
        assert!((0..10_000).all(|r| !p.samples(r)));
    }

    #[test]
    fn full_rate_samples_everything() {
        let p = GuardPolicy::audit_all();
        assert!(p.is_active());
        assert!((0..10_000).all(|r| p.samples(r)));
    }

    #[test]
    fn sampling_tracks_the_rate_and_is_deterministic() {
        let p = GuardPolicy {
            sample_rate: 0.25,
            ..GuardPolicy::default()
        };
        let picked: Vec<usize> = (0..100_000).filter(|&r| p.samples(r)).collect();
        let again: Vec<usize> = (0..100_000).filter(|&r| p.samples(r)).collect();
        assert_eq!(picked, again, "sampling must be a pure function of the index");
        let rate = picked.len() as f64 / 100_000.0;
        assert!(
            (rate - 0.25).abs() < 0.02,
            "observed rate {rate} too far from 0.25"
        );
        // A different seed audits a different subset.
        let q = GuardPolicy {
            sample_seed: 1,
            ..p
        };
        let other: Vec<usize> = (0..100_000).filter(|&r| q.samples(r)).collect();
        assert_ne!(picked, other);
    }

    #[test]
    fn threshold_trips_exactly_at_the_bound() {
        let policy = GuardPolicy {
            sample_rate: 1.0,
            mismatch_threshold: 3,
            ..GuardPolicy::default()
        };
        let run = GuardRun::new();
        let diverge = |r| GuardMismatch {
            record: r,
            consolidated: GuardObservation::Quarantined,
            sequential: GuardObservation::Notified(vec![Some(true)]),
        };
        for r in 0..2 {
            run.record_mismatch(&policy, diverge(r));
            assert!(!run.tripped(), "below threshold after {} mismatches", r + 1);
        }
        run.record_mismatch(&policy, diverge(2));
        assert!(run.tripped());
        let incident = run.incident(&policy, 100, true);
        assert_eq!(incident.mismatches, 3);
        assert_eq!(incident.examples.len(), 3);
        assert!(incident.plan_invalidated);
    }

    #[test]
    fn log_only_reaches_threshold_without_tripping() {
        let policy = GuardPolicy {
            sample_rate: 1.0,
            on_mismatch: GuardAction::LogOnly,
            ..GuardPolicy::default()
        };
        let run = GuardRun::new();
        run.record_mismatch(
            &policy,
            GuardMismatch {
                record: 0,
                consolidated: GuardObservation::Quarantined,
                sequential: GuardObservation::Quarantined,
            },
        );
        assert!(!run.tripped());
        assert!(run.threshold_reached(&policy));
    }

    #[test]
    fn example_capture_is_capped() {
        let policy = GuardPolicy {
            sample_rate: 1.0,
            mismatch_threshold: usize::MAX,
            on_mismatch: GuardAction::LogOnly,
            ..GuardPolicy::default()
        };
        let run = GuardRun::new();
        for r in 0..MAX_MISMATCH_EXAMPLES + 5 {
            run.record_mismatch(
                &policy,
                GuardMismatch {
                    record: r,
                    consolidated: GuardObservation::Quarantined,
                    sequential: GuardObservation::Notified(vec![]),
                },
            );
        }
        let incident = run.incident(&policy, 0, false);
        assert_eq!(incident.mismatches as usize, MAX_MISMATCH_EXAMPLES + 5);
        assert_eq!(incident.examples.len(), MAX_MISMATCH_EXAMPLES);
    }

    #[test]
    fn observation_from_notify_decodes_all_states() {
        assert_eq!(
            GuardObservation::from_notify(&[1, 0, NOTIFY_NONE]),
            GuardObservation::Notified(vec![Some(true), Some(false), None])
        );
    }
}
