//! A single-machine, multi-worker dataflow substrate modeled on the role
//! Naiad plays in *Consolidation of Queries with UDFs* (PLDI 2014, §6.1).
//!
//! The paper extends Naiad with two operators over a shared input
//! collection:
//!
//! * `whereMany`  — evaluates every query's UDF sequentially per record
//!   (the fair baseline: data is read once, so the comparison isolates UDF
//!   execution cost);
//! * `whereConsolidated` — evaluates the single consolidated UDF and
//!   demultiplexes its notifications back into per-query outputs.
//!
//! This crate provides the same pair:
//!
//! * [`mod@env`] — the binding between records and the UDF language: a
//!   [`env::UdfEnv`] exposes each record's scalar fields as UDF arguments and
//!   its accessor methods as pure external functions;
//! * [`compile`] — a register-slot bytecode compiler and VM for UDF programs
//!   (the engine's fast path; the tree-walking interpreter in `udf-lang`
//!   remains the semantic reference and the VM is differentially tested
//!   against it);
//! * [`regcode`] / [`batch`] — the columnar backend: stack bytecode is
//!   lowered once per plan into basic-block register bytecode (constant
//!   folding + copy propagation, exact cost/fuel accounting), and a
//!   struct-of-arrays [`batch::RecordBatch`] executor runs each basic block
//!   across a whole batch of records; selected per job by
//!   [`engine::ExecBackend`] with bit-identical observables either way;
//! * [`engine`] — sharded parallel execution across worker threads with the
//!   `where_many` / `where_consolidated` operators and the timing breakdown
//!   (UDF time vs total time) the paper's Figures 9 and 10 report. The
//!   engine is fail-soft: under [`engine::ErrorPolicy::Quarantine`],
//!   faulting or panicking records are excluded from every query's output
//!   and accounted in a [`engine::QuarantineReport`] instead of aborting
//!   the job;
//! * [`agg`] — user-defined aggregations: homomorphism-proved UDAFs fold
//!   in parallel over a fixed chunk grid and merge in a deterministic tree
//!   (bit-identical at every worker count); unproved definitions fall back
//!   to a sequential shard, and consolidated mode shares one scan and one
//!   record decode across every UDAF;
//! * [`fault`] — deterministic fault injection ([`fault::FaultPlan`] /
//!   [`fault::FaultyEnv`]) for exercising the failure model in tests;
//! * [`guard`] — differential plan validation: a [`guard::GuardPolicy`]
//!   shadow-executes a deterministic sample of records through the
//!   sequential path during consolidated runs, and on divergence demotes
//!   the job to sequential execution (self-healing) and invalidates the
//!   cached plan. Transient library faults are additionally retried with
//!   capped, deterministically-jittered backoff under an
//!   [`engine::RetryPolicy`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Production code must justify fallibility; tests may unwrap freely.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod agg;
pub mod batch;
pub mod compile;
pub mod digest;
pub mod engine;
pub mod env;
pub mod fastpred;
pub mod fault;
pub mod guard;
pub mod regcode;

pub use agg::{AggMode, AggQuerySet, AggReport, AGG_CHUNK};
pub use batch::{BatchVm, RecordBatch};
pub use compile::{CompileError, Compiled, Vm, DEFAULT_FUEL};
pub use engine::{
    Engine, EngineConfig, EngineError, ErrorKind, ErrorPolicy, ExecBackend, ExecMode, JobReport,
    QuarantineEntry, QuarantineReport, QuerySet, QuerySetError, RetryPolicy,
};
pub use regcode::{RegProgram, RegVm};
pub use env::{ScalarEnv, UdfEnv};
pub use fault::{FaultKind, FaultPlan, FaultyEnv};
pub use guard::{
    GuardAction, GuardMismatch, GuardObservation, GuardPolicy, GuardReport, PlanIncident,
};
