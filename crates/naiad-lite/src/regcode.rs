//! Register bytecode: basic-block lowering of the stack bytecode.
//!
//! The stack VM of [`crate::compile`] pays a dispatch + push/pop per syntax
//! node. Following the Froid direction (compile the imperative UDF wholesale
//! into an analyzable form), this module lowers a [`Compiled`] stack program
//! once per consolidated plan into three-address **register bytecode** over
//! a fixed slot file: variable slots keep their stack-code indices, operands
//! are named registers instead of stack positions, constants fold, and loads
//! propagate into operand positions (copy propagation), so the per-record
//! work drops to one dispatch per *expression* instead of one per *node*.
//! Programs are arena-backed — one instruction vector plus one shared
//! argument pool — and evaluation allocates nothing per record.
//!
//! # Exactness
//!
//! The engine treats the stack VM as the reference semantics: notifications,
//! abstract costs, fuel accounting, and fault behavior (which external calls
//! ran before a failure) must be bit-identical. Folding several stack ops
//! into one register instruction is made observation-preserving by two
//! invariants:
//!
//! 1. every instruction carries the summed `cost` and the count (`steps`) of
//!    the stack ops it absorbs, and the VM charges fuel per *steps*, so a
//!    run fails with [`VmError::OutOfFuel`] exactly when the stack VM would;
//! 2. a stateful op ([`ROp::Call`], [`ROp::Notify`]) is always the **last**
//!    stack op charged to its instruction — when a call executes here, the
//!    fuel spent so far equals the stack ops preceding the call, so a
//!    faulting environment (e.g. [`crate::fault::FaultyEnv`]) observes the
//!    identical call sequence even when fuel runs out mid-expression.
//!
//! Branches on constant conditions are deliberately *not* folded away: the
//! reference charges the branch dispatch one step, so the condition is
//! materialized and the jump kept, preserving divergent-loop step counts.

use crate::compile::{Compiled, Op, VmError, DEFAULT_FUEL, NOTIFY_NONE};
use crate::env::UdfEnv;
use udf_lang::cost::Cost;
use udf_lang::intern::Symbol;

/// Binary operators of the register machine (strict, like Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RBin {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// `a < b` as 0/1.
    Lt,
    /// `a ≤ b` as 0/1.
    Le,
    /// `a = b` as 0/1.
    EqI,
    /// Strict conjunction.
    And,
    /// Strict disjunction.
    Or,
}

/// Applies a binary operator with the stack VM's exact semantics.
#[inline]
pub fn apply_bin(op: RBin, a: i64, b: i64) -> i64 {
    match op {
        RBin::Add => a.wrapping_add(b),
        RBin::Sub => a.wrapping_sub(b),
        RBin::Mul => a.wrapping_mul(b),
        RBin::Lt => i64::from(a < b),
        RBin::Le => i64::from(a <= b),
        RBin::EqI => i64::from(a == b),
        RBin::And => i64::from(a != 0 && b != 0),
        RBin::Or => i64::from(a != 0 || b != 0),
    }
}

/// One argument of an external call, resolved from the shared pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RArg {
    /// Read a register.
    Reg(u16),
    /// A folded constant.
    Const(i64),
}

/// One register instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ROp {
    /// `dst ← v`.
    Const {
        /// Destination register.
        dst: u16,
        /// Constant value.
        v: i64,
    },
    /// `dst ← src`.
    Move {
        /// Destination register.
        dst: u16,
        /// Source register.
        src: u16,
    },
    /// `dst ← a ⊙ b`.
    Bin {
        /// Operator.
        op: RBin,
        /// Destination register.
        dst: u16,
        /// Left operand register.
        a: u16,
        /// Right operand register.
        b: u16,
    },
    /// `dst ← r ⊙ k` (or `k ⊙ r` when `reg_on_left` is false): one operand
    /// folded to a constant.
    BinK {
        /// Operator.
        op: RBin,
        /// Destination register.
        dst: u16,
        /// Register operand.
        r: u16,
        /// Constant operand.
        k: i64,
        /// Whether the register is the left operand.
        reg_on_left: bool,
    },
    /// `dst ← ¬src` (0/1).
    Not {
        /// Destination register.
        dst: u16,
        /// Source register.
        src: u16,
    },
    /// `dst ← f(args)` with `argc` arguments at `args_at` in the pool.
    Call {
        /// Destination register.
        dst: u16,
        /// Function symbol.
        f: Symbol,
        /// Offset into [`RegProgram::arg_pool`].
        args_at: u32,
        /// Argument count.
        argc: u8,
    },
    /// Record query `query`'s broadcast.
    Notify {
        /// Dense query index.
        query: u16,
        /// Broadcast value.
        value: bool,
    },
    /// Jump to `target` when `src` is 0.
    JumpIfZero {
        /// Condition register.
        src: u16,
        /// Register-code target (block start).
        target: u32,
    },
    /// Unconditional jump.
    Jump {
        /// Register-code target (block start).
        target: u32,
    },
    /// End of program.
    Halt,
}

/// One instruction plus the reference accounting it absorbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RInstr {
    /// The operation.
    pub op: ROp,
    /// Summed abstract cost of the folded stack ops.
    pub cost: Cost,
    /// Number of stack ops folded in (fuel charged per instruction).
    pub steps: u32,
}

/// One basic block: a half-open register-pc range plus batch metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// First instruction (inclusive).
    pub start: u32,
    /// One past the last instruction.
    pub end: u32,
    /// Total steps of the block (fuel cost of running it to the end).
    pub steps: u64,
    /// Total abstract cost of the block.
    pub cost: Cost,
    /// Whether the block is free of stateful ops (calls, notifies); pure
    /// blocks take the vectorized fast path in the batch executor.
    pub pure: bool,
}

/// A lowered program: instructions, shared argument pool, and basic blocks.
#[derive(Debug, Clone)]
pub struct RegProgram {
    /// Instruction stream.
    pub code: Vec<RInstr>,
    /// Arena of call arguments referenced by [`ROp::Call`].
    pub arg_pool: Vec<RArg>,
    /// Basic blocks ordered by start pc; every jump target and fall-through
    /// pc after a terminator is a block start.
    pub blocks: Vec<Block>,
    /// Total registers: variable slots first, then expression temporaries.
    pub n_regs: u16,
    /// Variable slots (parameters first), identical to the stack layout.
    pub n_slots: u16,
    /// Number of parameters.
    pub n_params: u16,
    /// Number of distinct query ids this program may notify.
    pub n_queries: usize,
    /// Wall time spent lowering (constant folding + copy propagation),
    /// reported through the `regcode.fold_ns` metric.
    pub fold_ns: u64,
}

/// Abstract value tracked per stack position during lowering; `cost`/`steps`
/// are the producing ops' accounting not yet charged to any instruction.
#[derive(Clone, Copy)]
struct AVal {
    v: Av,
    cost: Cost,
    steps: u32,
}

#[derive(Clone, Copy)]
enum Av {
    Const(i64),
    Reg(u16),
}

/// The destination register of a pure (side-effect-free) instruction, used
/// by the store peephole; stateful ops return `None` so a store after a call
/// becomes an explicit [`ROp::Move`] (keeping the call last in its group).
fn pure_dst(op: &ROp) -> Option<u16> {
    match op {
        ROp::Const { dst, .. }
        | ROp::Move { dst, .. }
        | ROp::Bin { dst, .. }
        | ROp::BinK { dst, .. }
        | ROp::Not { dst, .. } => Some(*dst),
        _ => None,
    }
}

fn set_dst(op: &mut ROp, new_dst: u16) {
    match op {
        ROp::Const { dst, .. }
        | ROp::Move { dst, .. }
        | ROp::Bin { dst, .. }
        | ROp::BinK { dst, .. }
        | ROp::Not { dst, .. } => *dst = new_dst,
        _ => {}
    }
}

fn rbin_of(op: &Op) -> Option<RBin> {
    match op {
        Op::Add => Some(RBin::Add),
        Op::Sub => Some(RBin::Sub),
        Op::Mul => Some(RBin::Mul),
        Op::Lt => Some(RBin::Lt),
        Op::Le => Some(RBin::Le),
        Op::EqI => Some(RBin::EqI),
        Op::And => Some(RBin::And),
        Op::Or => Some(RBin::Or),
        _ => None,
    }
}

impl RegProgram {
    /// Lowers a compiled stack program. Infallible: every well-formed stack
    /// program (as produced by [`Compiled::compile`]) lowers.
    pub fn lower(c: &Compiled) -> RegProgram {
        let t0 = std::time::Instant::now();
        let n = c.ops.len();
        // Leaders: entry, every jump target, every fall-through after a jump.
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (pc, op) in c.ops.iter().enumerate() {
            if let Op::Jump(t) | Op::JumpIfZero(t) = op {
                leader[*t as usize] = true;
                if pc + 1 < n {
                    leader[pc + 1] = true;
                }
            }
        }

        let mut code: Vec<RInstr> = Vec::with_capacity(n);
        let mut arg_pool: Vec<RArg> = Vec::new();
        let mut pc_map = vec![0u32; n];
        let mut fixups: Vec<usize> = Vec::new();
        let mut stack: Vec<AVal> = Vec::new();
        let mut slot_const: Vec<Option<i64>> = vec![None; c.n_slots as usize];
        let mut max_regs = c.n_slots as usize;
        let mut block_start = 0usize;

        let temp = |depth: usize, max_regs: &mut usize| -> u16 {
            let r = c.n_slots as usize + depth;
            *max_regs = (*max_regs).max(r + 1);
            u16::try_from(r).expect("register file fits u16")
        };

        for pc in 0..n {
            if leader[pc] {
                debug_assert!(stack.is_empty(), "stack non-empty at block boundary");
                pc_map[pc] = u32::try_from(code.len()).expect("code fits u32");
                slot_const.iter_mut().for_each(|s| *s = None);
                block_start = code.len();
            }
            let opcost = c.costs[pc];
            match &c.ops[pc] {
                Op::Const(v) => stack.push(AVal {
                    v: Av::Const(*v),
                    cost: opcost,
                    steps: 1,
                }),
                Op::Load(s) => {
                    let v = match slot_const[*s as usize] {
                        Some(k) => Av::Const(k),
                        None => Av::Reg(*s),
                    };
                    stack.push(AVal {
                        v,
                        cost: opcost,
                        steps: 1,
                    });
                }
                Op::Store(s) => {
                    let top = stack.pop().expect("store on empty abstract stack");
                    let cost = top.cost + opcost;
                    let steps = top.steps + 1;
                    match top.v {
                        Av::Const(k) => {
                            code.push(RInstr {
                                op: ROp::Const { dst: *s, v: k },
                                cost,
                                steps,
                            });
                            slot_const[*s as usize] = Some(k);
                        }
                        Av::Reg(r) => {
                            // Peephole: the value was just produced by a pure
                            // instruction into a temporary — retarget it.
                            let patch = r >= c.n_slots
                                && code.len() > block_start
                                && code.last().and_then(|i| pure_dst(&i.op)) == Some(r);
                            if patch {
                                let last = code.last_mut().expect("non-empty code");
                                set_dst(&mut last.op, *s);
                                last.cost += cost;
                                last.steps += steps;
                            } else {
                                code.push(RInstr {
                                    op: ROp::Move { dst: *s, src: r },
                                    cost,
                                    steps,
                                });
                            }
                            slot_const[*s as usize] = None;
                        }
                    }
                }
                op @ (Op::Add
                | Op::Sub
                | Op::Mul
                | Op::Lt
                | Op::Le
                | Op::EqI
                | Op::And
                | Op::Or) => {
                    let rb = rbin_of(op).expect("binary op maps to RBin");
                    let b = stack.pop().expect("binop rhs");
                    let a = stack.pop().expect("binop lhs");
                    let cost = a.cost + b.cost + opcost;
                    let steps = a.steps + b.steps + 1;
                    let rop = match (a.v, b.v) {
                        (Av::Const(x), Av::Const(y)) => {
                            stack.push(AVal {
                                v: Av::Const(apply_bin(rb, x, y)),
                                cost,
                                steps,
                            });
                            continue;
                        }
                        (Av::Reg(ra), Av::Reg(rbr)) => ROp::Bin {
                            op: rb,
                            dst: temp(stack.len(), &mut max_regs),
                            a: ra,
                            b: rbr,
                        },
                        (Av::Reg(ra), Av::Const(kb)) => ROp::BinK {
                            op: rb,
                            dst: temp(stack.len(), &mut max_regs),
                            r: ra,
                            k: kb,
                            reg_on_left: true,
                        },
                        (Av::Const(ka), Av::Reg(rbr)) => ROp::BinK {
                            op: rb,
                            dst: temp(stack.len(), &mut max_regs),
                            r: rbr,
                            k: ka,
                            reg_on_left: false,
                        },
                    };
                    code.push(RInstr {
                        op: rop,
                        cost,
                        steps,
                    });
                    let dst = pure_dst(&rop).expect("bin has a destination");
                    stack.push(AVal {
                        v: Av::Reg(dst),
                        cost: 0,
                        steps: 0,
                    });
                }
                Op::Not => {
                    let a = stack.pop().expect("not operand");
                    let cost = a.cost + opcost;
                    let steps = a.steps + 1;
                    match a.v {
                        Av::Const(x) => stack.push(AVal {
                            v: Av::Const(i64::from(x == 0)),
                            cost,
                            steps,
                        }),
                        Av::Reg(r) => {
                            let dst = temp(stack.len(), &mut max_regs);
                            code.push(RInstr {
                                op: ROp::Not { dst, src: r },
                                cost,
                                steps,
                            });
                            stack.push(AVal {
                                v: Av::Reg(dst),
                                cost: 0,
                                steps: 0,
                            });
                        }
                    }
                }
                Op::JumpIfZero(t) => {
                    let cond = stack.pop().expect("branch condition");
                    let (src, cost, steps) = match cond.v {
                        Av::Reg(r) => (r, cond.cost + opcost, cond.steps + 1),
                        Av::Const(k) => {
                            // Materialize rather than fold the branch: the
                            // reference charges the dispatch, and divergent
                            // loops must consume fuel at the same rate.
                            let dst = temp(stack.len(), &mut max_regs);
                            code.push(RInstr {
                                op: ROp::Const { dst, v: k },
                                cost: cond.cost,
                                steps: cond.steps,
                            });
                            (dst, opcost, 1)
                        }
                    };
                    fixups.push(code.len());
                    code.push(RInstr {
                        op: ROp::JumpIfZero { src, target: *t },
                        cost,
                        steps,
                    });
                }
                Op::Jump(t) => {
                    debug_assert!(stack.is_empty());
                    fixups.push(code.len());
                    code.push(RInstr {
                        op: ROp::Jump { target: *t },
                        cost: opcost,
                        steps: 1,
                    });
                }
                Op::Call { f, argc } => {
                    let at = stack.len() - *argc as usize;
                    let mut cost = opcost;
                    let mut steps = 1u32;
                    // Sweep every pending op on the stack — not just the
                    // arguments — into the call's group: all of them precede
                    // the call in stack order, so "fuel spent when the call
                    // runs" stays equal to the reference's op count.
                    for v in stack.iter_mut().take(at) {
                        cost += v.cost;
                        steps += v.steps;
                        v.cost = 0;
                        v.steps = 0;
                    }
                    let args_at = u32::try_from(arg_pool.len()).expect("arg pool fits u32");
                    for v in stack.drain(at..) {
                        cost += v.cost;
                        steps += v.steps;
                        arg_pool.push(match v.v {
                            Av::Const(k) => RArg::Const(k),
                            Av::Reg(r) => RArg::Reg(r),
                        });
                    }
                    let dst = temp(stack.len(), &mut max_regs);
                    code.push(RInstr {
                        op: ROp::Call {
                            dst,
                            f: *f,
                            args_at,
                            argc: *argc,
                        },
                        cost,
                        steps,
                    });
                    stack.push(AVal {
                        v: Av::Reg(dst),
                        cost: 0,
                        steps: 0,
                    });
                }
                Op::Notify { query, value } => {
                    debug_assert!(stack.is_empty(), "notify with pending values");
                    code.push(RInstr {
                        op: ROp::Notify {
                            query: *query,
                            value: *value,
                        },
                        cost: opcost,
                        steps: 1,
                    });
                }
                Op::Halt => {
                    debug_assert!(stack.is_empty(), "halt with pending values");
                    code.push(RInstr {
                        op: ROp::Halt,
                        cost: opcost,
                        steps: 1,
                    });
                }
            }
        }

        for i in fixups {
            if let ROp::Jump { target } | ROp::JumpIfZero { target, .. } = &mut code[i].op {
                *target = pc_map[*target as usize];
            }
        }

        // Basic blocks from the (deduplicated) leader positions.
        let mut starts: Vec<u32> = (0..n).filter(|&pc| leader[pc]).map(|pc| pc_map[pc]).collect();
        starts.push(u32::try_from(code.len()).expect("code fits u32"));
        starts.sort_unstable();
        starts.dedup();
        let mut blocks = Vec::with_capacity(starts.len());
        for w in starts.windows(2) {
            let (start, end) = (w[0], w[1]);
            if start == end {
                continue;
            }
            let range = &code[start as usize..end as usize];
            blocks.push(Block {
                start,
                end,
                steps: range.iter().map(|i| u64::from(i.steps)).sum(),
                cost: range.iter().map(|i| i.cost).sum(),
                pure: range
                    .iter()
                    .all(|i| !matches!(i.op, ROp::Call { .. } | ROp::Notify { .. })),
            });
        }

        RegProgram {
            code,
            arg_pool,
            blocks,
            n_regs: u16::try_from(max_regs).expect("register file fits u16"),
            n_slots: c.n_slots,
            n_params: c.n_params,
            n_queries: c.n_queries,
            fold_ns: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        }
    }

    /// The block starting at register-pc `pc`. Every reachable control
    /// transfer lands on a block start, so the lookup is a binary search.
    pub fn block_at(&self, pc: u32) -> &Block {
        let idx = self
            .blocks
            .binary_search_by_key(&pc, |b| b.start)
            .expect("control transfers land on block starts");
        &self.blocks[idx]
    }
}

/// A reusable scalar evaluator for [`RegProgram`]s; same contract as
/// [`crate::compile::Vm::run`], bit-identical observables.
#[derive(Debug, Default)]
pub struct RegVm {
    regs: Vec<i64>,
    args: Vec<i64>,
    fuel: u64,
}

impl RegVm {
    /// Creates a VM with the default step budget.
    pub fn new() -> RegVm {
        RegVm {
            regs: Vec::new(),
            args: Vec::with_capacity(8),
            fuel: DEFAULT_FUEL,
        }
    }

    /// Replaces the per-run step budget.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> RegVm {
        self.fuel = fuel;
        self
    }

    /// Runs `prog` on one record; see [`crate::compile::Vm::run`] for the
    /// `notify_out` and cost contract, which this mirrors exactly.
    ///
    /// # Errors
    ///
    /// Returns [`VmError`] on duplicate notifications, library failures, or
    /// fuel exhaustion — on the same records, with the same external-call
    /// sequence, as the stack VM.
    pub fn run<E: UdfEnv>(
        &mut self,
        prog: &RegProgram,
        env: &E,
        rec: &E::Rec,
        notify_out: &mut [i8],
        track_cost: bool,
    ) -> Result<Cost, VmError> {
        debug_assert_eq!(notify_out.len(), prog.n_queries);
        self.regs.clear();
        self.regs.resize(prog.n_regs as usize, 0);
        self.args.clear();
        env.args(rec, &mut self.args);
        debug_assert_eq!(self.args.len(), prog.n_params as usize);
        self.regs[..prog.n_params as usize].copy_from_slice(&self.args);

        let mut pc = 0usize;
        let mut cost: Cost = 0;
        let mut fuel = self.fuel;
        loop {
            let ins = &prog.code[pc];
            if fuel < u64::from(ins.steps) {
                return Err(VmError::OutOfFuel);
            }
            fuel -= u64::from(ins.steps);
            if track_cost {
                cost += ins.cost;
            }
            match ins.op {
                ROp::Const { dst, v } => self.regs[dst as usize] = v,
                ROp::Move { dst, src } => self.regs[dst as usize] = self.regs[src as usize],
                ROp::Bin { op, dst, a, b } => {
                    self.regs[dst as usize] =
                        apply_bin(op, self.regs[a as usize], self.regs[b as usize]);
                }
                ROp::BinK {
                    op,
                    dst,
                    r,
                    k,
                    reg_on_left,
                } => {
                    let rv = self.regs[r as usize];
                    let (x, y) = if reg_on_left { (rv, k) } else { (k, rv) };
                    self.regs[dst as usize] = apply_bin(op, x, y);
                }
                ROp::Not { dst, src } => {
                    self.regs[dst as usize] = i64::from(self.regs[src as usize] == 0);
                }
                ROp::Call {
                    dst,
                    f,
                    args_at,
                    argc,
                } => {
                    self.args.clear();
                    let at = args_at as usize;
                    for a in &prog.arg_pool[at..at + argc as usize] {
                        self.args.push(match *a {
                            RArg::Reg(r) => self.regs[r as usize],
                            RArg::Const(k) => k,
                        });
                    }
                    let v = env.call(rec, f, &self.args)?;
                    self.regs[dst as usize] = v;
                }
                ROp::Notify { query, value } => {
                    let q = query as usize;
                    if notify_out[q] != NOTIFY_NONE {
                        return Err(VmError::DuplicateNotify(query));
                    }
                    notify_out[q] = i8::from(value);
                }
                ROp::JumpIfZero { src, target } => {
                    if self.regs[src as usize] == 0 {
                        pc = target as usize;
                        continue;
                    }
                }
                ROp::Jump { target } => {
                    pc = target as usize;
                    continue;
                }
                ROp::Halt => return Ok(cost),
            }
            pc += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Vm;
    use crate::env::ScalarEnv;
    use crate::fault::{silence_injected_panics, FaultKind, FaultPlan, FaultyEnv};
    use udf_lang::ast::ProgId;
    use udf_lang::cost::CostModel;
    use udf_lang::intern::Interner;
    use udf_lang::parse::parse_program;
    use udf_lang::FnLibrary;

    fn scalar_env(interner: &mut Interner) -> ScalarEnv {
        let f = interner.intern("f");
        let mut lib = FnLibrary::new();
        lib.register(f, "f", 1, 10, |a| a[0] * 2 + 1);
        ScalarEnv::new(2, lib)
    }

    fn compile(src: &str) -> (Compiled, RegProgram, ScalarEnv) {
        let mut i = Interner::new();
        let env = scalar_env(&mut i);
        let p = parse_program(src, &mut i).unwrap();
        let ids: Vec<ProgId> = udf_lang::analysis::notify_ids(&p.body).into_iter().collect();
        let cm = CostModel::default();
        let compiled = Compiled::compile(&p, &ids, &cm, &|f| env.fn_cost(f)).unwrap();
        let reg = RegProgram::lower(&compiled);
        (compiled, reg, env)
    }

    /// Runs both VMs at the given fuel and asserts identical observables:
    /// result (cost or error) and notification buffer.
    fn assert_parity(src: &str, rec: &Vec<i64>, fuel: u64) {
        let (compiled, reg, env) = compile(src);
        let mut svm = Vm::new().with_fuel(fuel);
        let mut rvm = RegVm::new().with_fuel(fuel);
        let mut s_out = vec![NOTIFY_NONE; compiled.n_queries];
        let mut r_out = vec![NOTIFY_NONE; reg.n_queries];
        let s = svm.run(&compiled, &env, rec, &mut s_out, true);
        let r = rvm.run(&reg, &env, rec, &mut r_out, true);
        assert_eq!(s, r, "fuel {fuel}: result diverged");
        if s.is_ok() {
            assert_eq!(s_out, r_out, "fuel {fuel}: notifications diverged");
        }
    }

    fn assert_parity_all_fuels(src: &str, rec: Vec<i64>) {
        for fuel in 0..400 {
            assert_parity(src, &rec, fuel);
        }
        assert_parity(src, &rec, DEFAULT_FUEL);
    }

    #[test]
    fn straight_line_parity() {
        assert_parity_all_fuels(
            "program p @0 (a, b) { x := a * 2 + b; if (x > 4) { notify true; } else { notify false; } }",
            vec![3, 1],
        );
    }

    #[test]
    fn call_and_loop_parity() {
        assert_parity_all_fuels(
            "program p @0 (a, b) {
                 acc := 0; k := a;
                 while (k > 0) { acc := acc + f(k); k := k - 1; }
                 if (acc >= b) { notify true; } else { notify false; }
             }",
            vec![5, 20],
        );
    }

    #[test]
    fn strict_connectives_parity() {
        assert_parity_all_fuels(
            "program p @0 (a, b) {
                 if (a < b && !(a == 0) || b <= 3) { notify true; } else { notify false; }
             }",
            vec![2, 7],
        );
        assert_parity_all_fuels(
            "program p @0 (a, b) {
                 if (a < b && !(a == 0) || b <= 3) { notify true; } else { notify false; }
             }",
            vec![0, 0],
        );
    }

    #[test]
    fn constant_folding_shrinks_code_and_matches() {
        let (compiled, reg, _) = compile(
            "program p @0 (a, b) { x := 2 * 3 + 4; y := x + a; if (y > 10) { notify true; } else { notify false; } }",
        );
        assert!(
            reg.code.len() < compiled.ops.len(),
            "folding should shrink {} stack ops below {} reg instrs",
            compiled.ops.len(),
            reg.code.len()
        );
        // `x` is block-locally constant: `y := x + a` must fold the load.
        assert!(
            !reg.code.iter().any(|i| matches!(i.op, ROp::Bin { .. })),
            "x+a should use the folded constant, not two registers: {:?}",
            reg.code
        );
        assert_parity_all_fuels(
            "program p @0 (a, b) { x := 2 * 3 + 4; y := x + a; if (y > 10) { notify true; } else { notify false; } }",
            vec![5, 0],
        );
    }

    #[test]
    fn divergent_loop_parity_hits_fuel_at_same_budget() {
        assert_parity_all_fuels("program p @0 (a, b) { while (0 < 1) { skip; } }", vec![0, 0]);
    }

    #[test]
    fn duplicate_notify_parity() {
        assert_parity_all_fuels(
            "program p @0 (a, b) { notify @1 true; notify @1 false; }",
            vec![0, 0],
        );
    }

    #[test]
    fn multi_query_parity() {
        assert_parity_all_fuels(
            "program p @0 (a, b) {
                 if (a > 0) { notify @3 true; } else { notify @3 false; }
                 if (b > 0) { notify @5 true; } else { notify @5 false; }
             }",
            vec![1, -1],
        );
    }

    #[test]
    fn block_accounting_totals_match_reference() {
        let (compiled, reg, _) = compile(
            "program p @0 (a, b) {
                 acc := 0; k := a;
                 while (k > 0) { acc := acc + f(k); k := k - 1; }
                 if (acc >= b) { notify true; } else { notify false; }
             }",
        );
        let reg_steps: u64 = reg.code.iter().map(|i| u64::from(i.steps)).sum();
        assert_eq!(reg_steps, compiled.ops.len() as u64, "every stack op charged once");
        let reg_cost: Cost = reg.code.iter().map(|i| i.cost).sum();
        let stack_cost: Cost = compiled.costs.iter().sum();
        assert_eq!(reg_cost, stack_cost, "every stack cost charged once");
        let block_steps: u64 = reg.blocks.iter().map(|b| b.steps).sum();
        assert_eq!(block_steps, reg_steps, "blocks partition the code");
    }

    /// The critical exactness property: with a *stateful* environment, the
    /// sequence of external calls must be identical at every fuel level —
    /// transient-fault counters advance only when the reference would have
    /// advanced them.
    #[test]
    fn transient_call_counts_identical_at_every_fuel() {
        silence_injected_panics();
        let src = "program p @0 (a, b) {
            acc := f(a) + f(b);
            if (acc > 10) { notify true; } else { notify false; }
        }";
        for fuel in 0..60 {
            let mut i = Interner::new();
            let f = i.intern("f");
            let mut lib = FnLibrary::new();
            lib.register(f, "f", 1, 10, |a| a[0] * 2 + 1);
            let mk_env = |lib: FnLibrary| {
                FaultyEnv::new(
                    ScalarEnv::new(2, lib),
                    f,
                    FaultPlan::single(0, FaultKind::Transient(3)),
                )
            };
            let p = parse_program(src, &mut i).unwrap();
            let ids: Vec<ProgId> =
                udf_lang::analysis::notify_ids(&p.body).into_iter().collect();
            let cm = CostModel::default();
            let mut lib2 = FnLibrary::new();
            lib2.register(f, "f", 1, 10, |a| a[0] * 2 + 1);
            let s_env = mk_env(lib);
            let r_env = mk_env(lib2);
            let compiled = Compiled::compile(&p, &ids, &cm, &|f| s_env.fn_cost(f)).unwrap();
            let reg = RegProgram::lower(&compiled);
            let rec = (0usize, vec![4i64, 9]);
            // Drive each VM to completion at this fuel, twice, comparing the
            // full result sequence — the transient counter is the state.
            for _round in 0..4 {
                let mut s_out = vec![NOTIFY_NONE; compiled.n_queries];
                let mut r_out = vec![NOTIFY_NONE; reg.n_queries];
                let s = Vm::new().with_fuel(fuel).run(&compiled, &s_env, &rec, &mut s_out, true);
                let r = RegVm::new().with_fuel(fuel).run(&reg, &r_env, &rec, &mut r_out, true);
                assert_eq!(s, r, "fuel {fuel}: stateful result diverged");
                if s.is_ok() {
                    assert_eq!(s_out, r_out);
                }
            }
        }
    }

    #[test]
    fn stores_after_calls_stay_separate_instructions() {
        let (_, reg, _) = compile(
            "program p @0 (a, b) { x := f(a); if (x > 0) { notify true; } else { notify false; } }",
        );
        // The store into `x` must not fold into the call group: a move (or
        // later instruction) follows the call.
        let call_idx = reg
            .code
            .iter()
            .position(|i| matches!(i.op, ROp::Call { .. }))
            .expect("program has a call");
        assert!(matches!(reg.code[call_idx + 1].op, ROp::Move { .. }));
        assert_eq!(reg.code[call_idx + 1].steps, 1, "store charges its own step");
    }

    #[test]
    fn blocks_are_well_formed() {
        let (_, reg, _) = compile(
            "program p @0 (a, b) {
                 k := a;
                 while (k > 0) { k := k - f(1); }
                 notify true;
             }",
        );
        assert!(!reg.blocks.is_empty());
        for w in reg.blocks.windows(2) {
            assert_eq!(w[0].end, w[1].start, "blocks tile the code");
        }
        assert_eq!(reg.blocks[0].start, 0);
        assert_eq!(
            reg.blocks.last().unwrap().end as usize,
            reg.code.len(),
            "last block ends at code end"
        );
        // Every jump target is a block start.
        for i in &reg.code {
            if let ROp::Jump { target } | ROp::JumpIfZero { target, .. } = i.op {
                assert!(reg.blocks.iter().any(|b| b.start == target));
            }
        }
        // The loop body contains the call: that block must not be pure.
        assert!(reg.blocks.iter().any(|b| !b.pure));
    }
}
