// Integration tests may unwrap freely; the clippy gate denies it in src/.
#![allow(clippy::unwrap_used)]

//! The pushdown matrix: a synthesized pre-filter must be *unobservable*.
//!
//! For random query mixes (param-only guards, guarded library calls, and
//! unguarded calls that force the verifier to reject), random records, and a
//! seeded fault plan, executing with pushdown on must reproduce pushdown-off
//! bit-for-bit on every observable — per-query counts, missing totals, the
//! quarantine report, and the plan-guard verdict (a full `audit_all` shadow
//! audit with zero mismatches) — across both execution backends and worker
//! counts 1, 2, and 8. Only `prefilter_skipped` and the saved cost may
//! differ.
//!
//! Also here: the unsound-candidate regression (a family whose notify-true
//! paths sit under *negated* guards must either get a correctly negated
//! pre-filter or none at all — never the naive one), and the cache
//! round-trip (a plan-cache hit rehydrates the pre-filter bit-for-bit).

use std::sync::Arc;

use proptest::prelude::*;
use udf_lang::cost::CostModel;
use udf_lang::intern::Interner;
use udf_lang::parse::parse_program;
use udf_lang::FnLibrary;

use naiad_lite::engine::{Engine, EngineConfig, ExecBackend, ExecMode, JobReport, QuerySet};
use naiad_lite::fault::{FaultKind, FaultPlan, FaultyEnv};
use naiad_lite::{ErrorPolicy, GuardAction, GuardPolicy, RetryPolicy, ScalarEnv};

/// One query of the mix. `a` and `b` are the two record fields.
#[derive(Clone, Debug)]
enum Shape {
    /// `a >= k` — param-only, always skippable.
    ParamOnly { k: i64 },
    /// `a >= k` nesting `probe(b) > t` — the PLDI shape: the guard keeps the
    /// call unreachable, so the verifier can prove the skip sound.
    GuardedCall { k: i64, t: i64 },
    /// `probe(a) > t` with no guard — every path reaches the call, so the
    /// record-wide candidate collapses to `true` and synthesis must reject
    /// (fail open: no pre-filter, zero behavior change).
    UnguardedCall { t: i64 },
}

fn shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (-30i64..30).prop_map(|k| Shape::ParamOnly { k }),
        (-30i64..30, -50i64..50).prop_map(|(k, t)| Shape::GuardedCall { k, t }),
        (-50i64..50).prop_map(|t| Shape::UnguardedCall { t }),
    ]
}

fn source(id: usize, s: &Shape) -> String {
    match s {
        Shape::ParamOnly { k } => format!(
            "program p{id} @{id} (a, b) {{
                 if (a >= {k}) {{ notify true; }} else {{ notify false; }}
             }}"
        ),
        Shape::GuardedCall { k, t } => format!(
            "program p{id} @{id} (a, b) {{
                 if (a >= {k}) {{
                     if (probe(b) > {t}) {{ notify true; }} else {{ notify false; }}
                 }} else {{ notify false; }}
             }}"
        ),
        Shape::UnguardedCall { t } => format!(
            "program p{id} @{id} (a, b) {{
                 if (probe(a) > {t}) {{ notify true; }} else {{ notify false; }}
             }}"
        ),
    }
}

fn library(interner: &mut Interner) -> FnLibrary {
    let probe = interner.intern("probe");
    let mut lib = FnLibrary::new();
    lib.register(probe, "probe", 1, 20, |a| a[0].wrapping_mul(3).wrapping_sub(7));
    lib
}

/// Compiles the mix (pushdown on or off) and runs it under the fault plan.
/// Returns the report plus whether a pre-filter was attached.
#[allow(clippy::too_many_arguments)]
fn run(
    shapes: &[Shape],
    records: &[(usize, Vec<i64>)],
    faults: &[(usize, FaultKind)],
    prefilter: bool,
    backend: ExecBackend,
    workers: usize,
) -> (JobReport, bool) {
    let mut interner = Interner::new();
    let lib = library(&mut interner);
    let probe = interner.intern("probe");
    let programs: Vec<udf_lang::ast::Program> = shapes
        .iter()
        .enumerate()
        .map(|(id, s)| parse_program(&source(id, s), &mut interner).unwrap())
        .collect();
    let cm = CostModel::default();
    let opts = consolidate::Options {
        prefilter,
        ..consolidate::Options::default()
    };
    let cache = plan_cache::PlanCache::default();
    let (qs, _, _) = QuerySet::compile_consolidated_cached(
        &programs,
        &mut interner,
        &cm,
        &lib,
        &|f| udf_lang::library::Library::cost(&lib, f),
        &opts,
        false,
        &cache,
        backend,
    )
    .unwrap();
    let attached = qs.prefilter.is_some();

    let mut plan = FaultPlan::none();
    for &(r, kind) in faults {
        plan.insert(r, kind);
    }
    let env = FaultyEnv::new(ScalarEnv::new(2, lib), probe, plan);
    let report = Engine::new(workers)
        .with_config(EngineConfig {
            error_policy: ErrorPolicy::Quarantine { max_errors: 1024 },
            // Full shadow audit: every record is differentially validated
            // against the sequential path; a pre-filter that changed any
            // verdict would surface here as a mismatch.
            guard: GuardPolicy {
                on_mismatch: GuardAction::LogOnly,
                ..GuardPolicy::audit_all()
            },
            retry: RetryPolicy::immediate(3),
            backend,
            ..EngineConfig::default()
        })
        .run(&env, records, &qs, ExecMode::Consolidated, true)
        .unwrap();
    (report, attached)
}

/// The observables that must be bit-identical between pushdown off and on.
fn observables(r: &JobReport) -> (Vec<u64>, Vec<u64>, usize, Vec<usize>, u64, u64, bool) {
    (
        r.counts.clone(),
        r.missing.clone(),
        r.records,
        r.quarantine.entries.iter().map(|e| e.record).collect(),
        r.guard.as_ref().map_or(0, |g| g.shadow_runs),
        r.guard.as_ref().map_or(0, |g| g.mismatches),
        r.guard.as_ref().is_some_and(|g| g.demoted),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pushdown_is_unobservable(
        shapes in prop::collection::vec(shape(), 2..6),
        recs in prop::collection::vec((-40i64..40, -40i64..40), 30..80),
        fault_at in prop::collection::vec((0usize..80, 0u8..4), 0..4),
        workers in prop_oneof![Just(1usize), Just(2), Just(8)],
    ) {
        let records = FaultyEnv::<ScalarEnv>::index_records(
            recs.iter().map(|&(a, b)| vec![a, b]),
        );
        let faults: Vec<(usize, FaultKind)> = fault_at
            .iter()
            .filter(|&&(r, _)| r < recs.len())
            .map(|&(r, kind)| {
                (r, match kind {
                    0 => FaultKind::LibError,
                    1 => FaultKind::Panic,
                    2 => FaultKind::FuelBurn,
                    _ => FaultKind::Transient(2),
                })
            })
            .collect();
        let skippable = shapes
            .iter()
            .all(|s| !matches!(s, Shape::UnguardedCall { .. }));
        for backend in [ExecBackend::PerRecord, ExecBackend::Columnar] {
            let (off, off_attached) = run(&shapes, &records, &faults, false, backend, workers);
            let (on, on_attached) = run(&shapes, &records, &faults, true, backend, workers);
            prop_assert!(!off_attached, "pushdown off must not attach a pre-filter");
            prop_assert_eq!(off.prefilter_skipped, 0);
            prop_assert_eq!(
                observables(&off),
                observables(&on),
                "backend {:?} workers {}",
                backend,
                workers
            );
            // Every mix containing an unguarded call must fail open; a
            // pure guarded mix gets a pre-filter (it may still skip zero
            // records if every record passes some guard).
            if !skippable {
                prop_assert!(!on_attached, "unguarded call must reject the candidate");
                prop_assert_eq!(on.prefilter_skipped, 0);
            } else {
                prop_assert!(on_attached, "guarded mix must synthesize a pre-filter");
            }
        }
    }
}

/// Unsound-candidate regression: notify-true under a *negated* guard. The
/// naive pre-filter `a >= 25` would skip exactly the records this query
/// selects; polarity-aware extraction must produce the complement instead,
/// and the verifier must agree — pushdown stays unobservable.
#[test]
fn negated_guard_is_not_skipped_wrongly() {
    let mut interner = Interner::new();
    let lib = library(&mut interner);
    let programs = vec![parse_program(
        "program neg @0 (a, b) {
             if (a >= 25) { notify false; } else { notify true; }
         }",
        &mut interner,
    )
    .unwrap()];
    let cm = CostModel::default();
    let opts = consolidate::Options {
        prefilter: true,
        ..consolidate::Options::default()
    };
    let cache = plan_cache::PlanCache::default();
    let (qs, merged, _) = QuerySet::compile_consolidated_cached(
        &programs,
        &mut interner,
        &cm,
        &lib,
        &|f| udf_lang::library::Library::cost(&lib, f),
        &opts,
        false,
        &cache,
        ExecBackend::PerRecord,
    )
    .unwrap();
    let records: Vec<Vec<i64>> = (0..60).map(|a| vec![a, 0]).collect();
    let env = ScalarEnv::new(2, library(&mut Interner::new()));
    let report = Engine::new(2)
        .run(&env, &records, &qs, ExecMode::Consolidated, false)
        .unwrap();
    // Records 0..25 notify true; a wrongly-polarized pre-filter would have
    // skipped them (skips broadcast all-false) and counted 0 here.
    assert_eq!(report.counts, vec![25]);
    if merged.prefilter.is_some() {
        // If a pre-filter verified, it may only have skipped records with
        // a >= 25 — i.e. at most 35 of the 60.
        assert!(report.prefilter_skipped <= 35, "{}", report.prefilter_skipped);
    } else {
        assert_eq!(report.prefilter_skipped, 0);
    }
}

/// A plan-cache hit must rehydrate the pre-filter: the second compile is
/// served from the cache (zero solver work) yet still attaches a guard
/// program that skips the same records.
#[test]
fn cache_hit_rehydrates_prefilter() {
    let shapes = [
        Shape::GuardedCall { k: 10, t: 0 },
        Shape::GuardedCall { k: 20, t: 5 },
        Shape::ParamOnly { k: 15 },
    ];
    let mut interner = Interner::new();
    let lib = library(&mut interner);
    let programs: Vec<udf_lang::ast::Program> = shapes
        .iter()
        .enumerate()
        .map(|(id, s)| parse_program(&source(id, s), &mut interner).unwrap())
        .collect();
    let cm = CostModel::default();
    let opts = consolidate::Options {
        prefilter: true,
        ..consolidate::Options::default()
    };
    let cache = Arc::new(plan_cache::PlanCache::default());
    let compile = |interner: &mut Interner| {
        QuerySet::compile_consolidated_cached(
            &programs,
            interner,
            &cm,
            &lib,
            &|f| udf_lang::library::Library::cost(&lib, f),
            &opts,
            false,
            &cache,
            ExecBackend::PerRecord,
        )
        .unwrap()
    };
    let (qs_cold, merged_cold, outcome_cold) = compile(&mut interner);
    assert_eq!(outcome_cold, plan_cache::PlanOutcome::Miss);
    assert!(qs_cold.prefilter.is_some(), "cold compile synthesizes");
    let (qs_warm, merged_warm, outcome_warm) = compile(&mut interner);
    assert_eq!(outcome_warm, plan_cache::PlanOutcome::Hit);
    assert!(qs_warm.prefilter.is_some(), "cache hit rehydrates the pre-filter");
    assert_eq!(merged_warm.stats.solver.checks, 0, "hit does no solver work");
    assert_eq!(
        merged_cold.prefilter.as_ref().map(|p| &p.cond),
        merged_warm.prefilter.as_ref().map(|p| &p.cond),
        "rehydrated condition is bit-identical"
    );

    // And the rehydrated guard behaves identically to the fresh one.
    let records: Vec<Vec<i64>> = (-40..40).map(|a| vec![a, a]).collect();
    let env = ScalarEnv::new(2, library(&mut Interner::new()));
    let run = |qs: &QuerySet| {
        Engine::new(2)
            .run(&env, &records, qs, ExecMode::Consolidated, false)
            .unwrap()
    };
    let cold = run(&qs_cold);
    let warm = run(&qs_warm);
    assert_eq!(cold.counts, warm.counts);
    assert_eq!(cold.prefilter_skipped, warm.prefilter_skipped);
    assert!(cold.prefilter_skipped > 0, "records below every guard are skipped");
}
