// Integration tests may unwrap freely; the clippy gate denies it in src/.
#![allow(clippy::unwrap_used)]

//! Differential property: the bytecode VM agrees with the reference
//! interpreter on values, notifications, and the *exact* abstract cost, for
//! random programs including bounded loops.

use proptest::prelude::*;
use udf_lang::ast::{BoolExpr, CmpOp, IntExpr, IntOp, ProgId, Program, Stmt};
use udf_lang::cost::CostModel;
use udf_lang::intern::Interner;
use udf_lang::interp::Interp;
use udf_lang::library::FnLibrary;

use naiad_lite::compile::{Compiled, Vm, NOTIFY_NONE};
use naiad_lite::env::{RecordLibrary, ScalarEnv};

#[derive(Clone, Debug)]
enum GTerm {
    Const(i8),
    Var(u8),
    Call(Box<GTerm>),
    Bin(u8, Box<GTerm>, Box<GTerm>),
}

#[derive(Clone, Debug)]
enum GStmt {
    Assign(u8, GTerm),
    If(u8, GTerm, GTerm, Vec<GStmt>, Vec<GStmt>),
    Loop(GTerm, Vec<GStmt>),
    Notify(u8, bool),
}

fn gterm() -> impl Strategy<Value = GTerm> {
    let leaf = prop_oneof![
        (-20i8..21).prop_map(GTerm::Const),
        (0u8..4).prop_map(GTerm::Var),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|t| GTerm::Call(Box::new(t))),
            (0u8..3, inner.clone(), inner)
                .prop_map(|(op, a, b)| GTerm::Bin(op, Box::new(a), Box::new(b))),
        ]
    })
}

fn gstmt(depth: u32) -> BoxedStrategy<GStmt> {
    let base = prop_oneof![
        (0u8..4, gterm()).prop_map(|(x, t)| GStmt::Assign(x, t)),
        (0u8..3, any::<bool>()).prop_map(|(q, b)| GStmt::Notify(q, b)),
    ];
    if depth == 0 {
        base.boxed()
    } else {
        prop_oneof![
            2 => base,
            1 => (
                0u8..3,
                gterm(),
                gterm(),
                prop::collection::vec(gstmt(depth - 1), 0..3),
                prop::collection::vec(gstmt(depth - 1), 0..3)
            )
                .prop_map(|(op, a, b, t, e)| GStmt::If(op, a, b, t, e)),
            1 => (gterm(), prop::collection::vec(gstmt(depth - 1), 0..2))
                .prop_map(|(n, body)| GStmt::Loop(n, body)),
        ]
        .boxed()
    }
}

struct Builder {
    vars: Vec<udf_lang::intern::Symbol>,
    f: udf_lang::intern::Symbol,
    counter: udf_lang::intern::Symbol,
}

impl Builder {
    fn term(&self, t: &GTerm) -> IntExpr {
        match t {
            GTerm::Const(c) => IntExpr::Const(i64::from(*c)),
            GTerm::Var(v) => IntExpr::Var(self.vars[*v as usize % self.vars.len()]),
            GTerm::Call(a) => IntExpr::Call(self.f, vec![self.term(a)]),
            GTerm::Bin(op, a, b) => IntExpr::Bin(
                match op % 3 {
                    0 => IntOp::Add,
                    1 => IntOp::Sub,
                    _ => IntOp::Mul,
                },
                Box::new(self.term(a)),
                Box::new(self.term(b)),
            ),
        }
    }

    fn stmt(&self, s: &GStmt, loop_id: &mut u32) -> Stmt {
        match s {
            GStmt::Assign(x, t) => {
                Stmt::Assign(self.vars[*x as usize % self.vars.len()], self.term(t))
            }
            GStmt::If(op, a, b, t, e) => Stmt::ite(
                BoolExpr::Cmp(
                    match op % 3 {
                        0 => CmpOp::Lt,
                        1 => CmpOp::Le,
                        _ => CmpOp::Eq,
                    },
                    self.term(a),
                    self.term(b),
                ),
                Stmt::seq_all(t.iter().map(|s| self.stmt(s, loop_id))),
                Stmt::seq_all(e.iter().map(|s| self.stmt(s, loop_id))),
            ),
            GStmt::Loop(n, body) => {
                // Dedicated counter per loop keeps nested loops terminating.
                *loop_id += 1;
                let kv = self.counter;
                let init = Stmt::Assign(kv, self.term(n));
                let clamp = Stmt::ite(
                    BoolExpr::Cmp(CmpOp::Lt, IntExpr::Const(5), IntExpr::Var(kv)),
                    Stmt::Assign(kv, IntExpr::Const(5)),
                    Stmt::Skip,
                );
                let dec = Stmt::Assign(kv, IntExpr::sub(IntExpr::Var(kv), IntExpr::Const(1)));
                // Inner statements must not touch the counter: the generator
                // can only assign vars[0..4], and `counter` is separate.
                let body = Stmt::seq_all(body.iter().map(|s| self.stmt(s, loop_id)).chain([dec]));
                init.then(clamp).then(Stmt::while_do(
                    BoolExpr::Cmp(CmpOp::Lt, IntExpr::Const(0), IntExpr::Var(kv)),
                    body,
                ))
            }
            GStmt::Notify(q, b) => Stmt::Notify(ProgId(u32::from(*q % 3)), *b),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn vm_matches_interpreter(
        stmts in prop::collection::vec(gstmt(2), 0..6),
        a0 in -50i64..50,
        a1 in -50i64..50,
    ) {
        let mut interner = Interner::new();
        let f = interner.intern("f");
        let builder = Builder {
            vars: (0..4).map(|k| interner.intern(&format!("w{k}"))).collect(),
            f,
            counter: interner.intern("loopk"),
        };
        let params = vec![interner.intern("p0"), interner.intern("p1")];
        let mut body: Vec<Stmt> = builder
            .vars
            .iter()
            .enumerate()
            .map(|(k, &v)| Stmt::Assign(v, IntExpr::Const(k as i64)))
            .collect();
        let mut loop_id = 0;
        body.extend(stmts.iter().map(|s| builder.stmt(s, &mut loop_id)));
        let program = Program::new(ProgId(0), params, Stmt::seq_all(body));

        let mut lib = FnLibrary::new();
        lib.register(f, "f", 1, 13, |a| a[0].wrapping_mul(7).wrapping_sub(11));
        let env = ScalarEnv::new(2, lib.clone());
        let cm = CostModel::default();
        let ids = [ProgId(0), ProgId(1), ProgId(2)];
        let compiled = Compiled::compile(&program, &ids, &cm, &|s| {
            udf_lang::library::Library::cost(&lib, s)
        })
        .expect("compiles");

        let rec = vec![a0, a1];
        let mut vm = Vm::new().with_fuel(5_000_000);
        let mut out = vec![NOTIFY_NONE; 3];
        let vm_result = vm.run(&compiled, &env, &rec, &mut out, true);

        let view = RecordLibrary::new(&env, &rec);
        let interp = Interp::new(cm, &view).with_fuel(5_000_000);
        let ref_result = interp.run(&program, &rec, &interner);

        match (vm_result, ref_result) {
            (Ok(vm_cost), Ok(r)) => {
                prop_assert_eq!(vm_cost, r.cost, "cost mismatch");
                for (k, &id) in ids.iter().enumerate() {
                    let expected = r.notifications.get(id).map(i8::from).unwrap_or(NOTIFY_NONE);
                    prop_assert_eq!(out[k], expected, "query {}", k);
                }
            }
            (Err(_), Err(_)) => {} // both reject (duplicate notify), fine
            (vm_r, ref_r) => {
                return Err(TestCaseError::fail(format!(
                    "divergence: vm {vm_r:?} vs interp {ref_r:?}"
                )));
            }
        }
    }
}
