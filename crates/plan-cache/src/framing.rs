//! The shared checksummed record framing used by every durable artifact in
//! the workspace.
//!
//! Two subsystems persist state to disk: the plan-cache snapshot
//! (`crate::snapshot`, format v2) and the `udf-serve` write-ahead epoch
//! journal. Both face the same crash model — a write can be torn at any
//! byte, a sector can rot — and both answer it the same way, with this
//! module's primitives:
//!
//! - **Length-framed, checksummed records.** Every record is one header
//!   line carrying the payload's byte length and an FNV-1a 64 checksum,
//!   followed by the payload and an `end` terminator:
//!
//!   ```text
//!   <keyword> <field>... <payload-bytes> <fnv1a64-hex>
//!   <payload lines...>
//!   end
//!   ```
//!
//!   A reader verifies length, terminator, checksum, and UTF-8 before
//!   trusting a single payload byte, so torn tails and bit flips are
//!   detected — never silently parsed.
//!
//! - **Atomic publication.** Whole-file artifacts (snapshots, checkpoints,
//!   journal truncations) go through [`atomic_write`]: write a sibling temp
//!   file, fsync, rename. A crash at any point leaves either the old file
//!   or the complete new one at the target path.
//!
//! - **One incident shape.** Salvage passes in both subsystems report
//!   skipped records through [`RecoveryIncident`], so operators see one
//!   format whether a plan snapshot or a service journal was damaged.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// FNV-1a 64 over a byte string — the workspace's durable-record checksum
/// (the same constants as the bench output digests).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Returns the line starting at `pos` (without its newline) and the offset
/// just past it. Operates on raw bytes: corruption may have destroyed UTF-8
/// validity, which must not abort a salvage pass.
pub fn byte_line(bytes: &[u8], pos: usize) -> (&[u8], usize) {
    let end = bytes[pos..]
        .iter()
        .position(|&b| b == b'\n')
        .map_or(bytes.len(), |k| pos + k);
    let next = if end < bytes.len() { end + 1 } else { end };
    (&bytes[pos..end], next)
}

/// Sibling temp path for an atomic write (same directory, so the final
/// `rename` never crosses a filesystem).
pub fn temp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(format!(".tmp.{}", std::process::id()));
    PathBuf::from(os)
}

/// Atomically publishes `bytes` at `path`: write a sibling temp file,
/// fsync, rename over the target. Readers see either the old file or the
/// complete new one — never a partial write — and an error on any step
/// leaves the target untouched (the temp file is cleaned up).
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = temp_path(path);
    let write_all = || -> io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    };
    write_all().inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// One salvaged-over record, in the shape every recovery path shares.
///
/// Both [`crate::SnapshotRecovery`] and the `udf-serve` journal's
/// `RecoveryReport` carry these, so a damaged plan snapshot and a damaged
/// service journal read the same way in logs and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryIncident {
    /// Which durable artifact was damaged (e.g. `"plan-cache"`,
    /// `"journal"`, `"checkpoint"`).
    pub subsystem: &'static str,
    /// What was skipped and why, human-readable.
    pub detail: String,
}

impl RecoveryIncident {
    /// Creates an incident.
    pub fn new(subsystem: &'static str, detail: impl Into<String>) -> RecoveryIncident {
        RecoveryIncident {
            subsystem,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for RecoveryIncident {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.subsystem, self.detail)
    }
}

/// Renders one framed record: header line (keyword, caller fields, payload
/// byte length, checksum), payload, `end` terminator.
pub fn render_frame(keyword: &str, fields: &[String], payload: &str) -> String {
    let mut out = String::with_capacity(payload.len() + 64);
    out.push_str(keyword);
    for f in fields {
        out.push(' ');
        out.push_str(f);
    }
    out.push_str(&format!(
        " {} {:016x}\n",
        payload.len(),
        fnv64(payload.as_bytes())
    ));
    out.push_str(payload);
    out.push_str("end\n");
    out
}

/// A parsed frame header: the caller's fields plus the declared payload
/// length and checksum (the last two tokens of the header line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameHeader {
    /// The caller fields between the keyword and the length.
    pub fields: Vec<String>,
    /// Declared payload byte length.
    pub len: usize,
    /// Declared FNV-1a 64 checksum of the payload.
    pub crc: u64,
}

/// Parses one frame header line that must begin with `keyword`.
///
/// # Errors
///
/// A human-readable reason when the line is not UTF-8, does not start with
/// `keyword`, or its length/checksum tokens do not parse.
pub fn parse_frame_header(line: &[u8], keyword: &str) -> Result<FrameHeader, String> {
    let text =
        std::str::from_utf8(line).map_err(|_| format!("{keyword} header is not UTF-8"))?;
    let mut words: Vec<&str> = text.split_ascii_whitespace().collect();
    if words.first() != Some(&keyword) {
        return Err(format!("not a {keyword} header"));
    }
    if words.len() < 3 {
        return Err(format!("{keyword} header is missing length/checksum"));
    }
    let crc_word = words.pop().expect("len checked");
    let len_word = words.pop().expect("len checked");
    let crc = u64::from_str_radix(crc_word, 16).map_err(|_| "bad checksum hex".to_owned())?;
    let len: usize = len_word.parse().map_err(|_| "bad payload length".to_owned())?;
    Ok(FrameHeader {
        fields: words[1..].iter().map(|w| (*w).to_owned()).collect(),
        len,
        crc,
    })
}

/// Verifies one frame's payload against its parsed header: length bound,
/// `end` terminator, checksum, UTF-8 — in that order.
///
/// On success returns the payload and the offset just past the `end`
/// terminator. On failure returns the best resume offset for a salvage
/// scan (the payload start when the declared length itself is suspect, the
/// payload end otherwise) plus the reason.
///
/// # Errors
///
/// `(resume_offset, reason)` as described above.
pub fn check_frame<'a>(
    bytes: &'a [u8],
    header: &FrameHeader,
    payload_start: usize,
) -> Result<(&'a str, usize), (usize, String)> {
    let payload_end = payload_start.saturating_add(header.len);
    if payload_end > bytes.len() {
        return Err((payload_start, "payload truncated".to_owned()));
    }
    let payload = &bytes[payload_start..payload_end];
    // The `end` terminator must follow immediately; its absence means the
    // declared length itself is corrupt — resume from the payload start so
    // a shifted header inside it can still be found.
    let after = &bytes[payload_end..];
    if !(after.starts_with(b"end\n") || after == b"end") {
        return Err((payload_start, "missing end terminator".to_owned()));
    }
    if fnv64(payload) != header.crc {
        return Err((payload_end, "checksum mismatch".to_owned()));
    }
    let payload = std::str::from_utf8(payload)
        .map_err(|_| (payload_end, "payload is not UTF-8".to_owned()))?;
    Ok((payload, payload_end + after.len().min(4)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let frame = render_frame("frame", &["7".to_owned(), "sub".to_owned()], "a b c\n");
        let bytes = frame.as_bytes();
        let (line, pos) = byte_line(bytes, 0);
        let header = parse_frame_header(line, "frame").unwrap();
        assert_eq!(header.fields, vec!["7".to_owned(), "sub".to_owned()]);
        let (payload, next) = check_frame(bytes, &header, pos).unwrap();
        assert_eq!(payload, "a b c\n");
        assert_eq!(next, bytes.len());
    }

    #[test]
    fn torn_and_flipped_frames_are_rejected() {
        let frame = render_frame("frame", &["1".to_owned()], "payload line\n");
        let bytes = frame.as_bytes();
        let (line, pos) = byte_line(bytes, 0);
        let header = parse_frame_header(line, "frame").unwrap();
        // Truncation inside the payload.
        let torn = &bytes[..bytes.len() - 6];
        let err = check_frame(torn, &header, pos).unwrap_err();
        assert!(err.1.contains("truncated") || err.1.contains("end terminator"));
        // A single flipped payload bit breaks the checksum.
        let mut flipped = bytes.to_vec();
        flipped[pos] ^= 0x40;
        let err = check_frame(&flipped, &header, pos).unwrap_err();
        assert_eq!(err.1, "checksum mismatch");
    }

    #[test]
    fn wrong_keyword_is_not_a_header() {
        assert!(parse_frame_header(b"entry 2a 5 0000000000000000", "frame").is_err());
        assert!(parse_frame_header(b"frame", "frame").is_err());
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join("framing-test-atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact");
        atomic_write(&path, b"one").unwrap();
        atomic_write(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        assert!(!temp_path(&path).exists());
        std::fs::remove_file(&path).ok();
    }
}
