//! A concurrent cache of consolidated query plans.
//!
//! Consolidation (the Ω engine of PLDI'14 Figure 8) is pure static analysis:
//! the same ordered UDF set under the same options always produces the same
//! merged program. The paper's deployment amortizes that cost by
//! consolidating once and streaming millions of records; this crate extends
//! the amortization *across runs and processes*:
//!
//! * [`PlanKey`] — a stable 128-bit key: the canonical (alpha-renamed)
//!   structural hash of the ordered program set ([`udf_lang::canon`]) folded
//!   with a fingerprint of the plan-relevant options and cost model.
//! * [`PlanCache`] — a sharded LRU (`RwLock` per shard, capacity + byte
//!   budget, hit/miss/insert/eviction counters) storing
//!   [`PortableProgram`]s — interner-independent, so one cache serves many
//!   engines — together with their [`ConsolidationStats`] and
//!   [`DegradationTier`].
//! * [`PlanCache::save`] / [`PlanCache::load`] — a hand-rolled textual
//!   snapshot for warm starts across processes.
//! * [`consolidate_many_cached`] — the drop-in consolidation entry point:
//!   serve a cached plan when one is usable, otherwise consolidate and fill
//!   the cache.
//!
//! # Tier-upgrade rule
//!
//! A budgeted run can degrade ([`DegradationTier::Partial`] /
//! [`DegradationTier::Sequential`]); caching must never *freeze* that
//! degradation. A hit is served as-is only when the stored plan is `Full`
//! or the current budget is already exhausted; otherwise the set is
//! re-consolidated and the stored plan is replaced only if the fresh tier is
//! at least as good. Callers therefore never observe a cached plan worse
//! than what a fresh run under their budget would produce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod framing;
pub mod portable;
mod snapshot;

use consolidate::{
    BudgetState, Consolidated, ConsolidateError, ConsolidationStats, DegradationTier, Options,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;
use udf_lang::ast::Program;
use udf_lang::canon::Fnv128;
use udf_lang::cost::{CostModel, FnCost};
use udf_lang::intern::Interner;

pub use framing::RecoveryIncident;
pub use portable::{PortableAggDef, PortableAggPlan, PortablePlan, PortableProgram};
pub use snapshot::SnapshotRecovery;

/// Which execution backend a consolidated plan is compiled for.
///
/// The engine can run a merged plan either through the per-record stack VM
/// or through the columnar batch executor (register bytecode over
/// struct-of-arrays record batches). The backend is part of the plan
/// fingerprint — see [`PlanKey::derive`] — so a cache hit never serves a
/// plan compiled for the other backend: backend-specific lowering artifacts
/// (register programs, batch layouts) must never alias across backends as
/// the lowering pipelines evolve independently.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ExecBackend {
    /// Reference path: the stack VM interprets each record individually.
    #[default]
    PerRecord,
    /// Register bytecode executed block-at-a-time over record batches.
    Columnar,
}

impl ExecBackend {
    /// Short lowercase label for reports and `--backend` flags.
    pub fn as_str(&self) -> &'static str {
        match self {
            ExecBackend::PerRecord => "per-record",
            ExecBackend::Columnar => "columnar",
        }
    }

    /// Parses the labels produced by [`ExecBackend::as_str`].
    pub fn parse(s: &str) -> Option<ExecBackend> {
        match s {
            "per-record" => Some(ExecBackend::PerRecord),
            "columnar" => Some(ExecBackend::Columnar),
            _ => None,
        }
    }
}

/// Stable cache key: canonical program-set hash × plan-relevant options.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PlanKey(pub u128);

impl std::fmt::Display for PlanKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl PlanKey {
    /// Derives the key for consolidating `programs` (in order) under `opts`
    /// and `cm`, compiled for `backend`.
    ///
    /// The fingerprint covers everything that shapes the *output plan*:
    /// program structure (alpha-renamed), entailment mode, rule policies and
    /// structural limits, solver resource limits (they decide which
    /// entailments prove), the cost model, and the execution backend the
    /// plan is lowered for. It deliberately excludes the
    /// [`consolidate::ConsolidationBudget`]: budgets bound *work*, not the
    /// target plan, and the tier-upgrade rule handles budget-degraded
    /// entries. The external `FnCost` oracle cannot be fingerprinted;
    /// callers using per-function costs beyond [`CostModel`] should keep
    /// separate caches per cost assignment.
    pub fn derive(
        programs: &[Program],
        interner: &Interner,
        opts: &Options,
        cm: &CostModel,
        backend: ExecBackend,
    ) -> PlanKey {
        let mut h = Fnv128::new();
        h.u128(udf_lang::canon::set_key(programs, interner));
        h.byte(match backend {
            ExecBackend::PerRecord => 1,
            ExecBackend::Columnar => 2,
        });
        h.byte(match opts.mode {
            consolidate::EntailmentMode::Smt => 1,
            consolidate::EntailmentMode::Syntactic => 2,
        });
        h.byte(match opts.if_policy {
            consolidate::IfPolicy::Heuristic => 1,
            consolidate::IfPolicy::AlwaysIf3 => 2,
            consolidate::IfPolicy::AlwaysIf4 => 3,
            consolidate::IfPolicy::AlwaysIf5 => 4,
        });
        h.byte(u8::from(opts.loop_fusion));
        // Pushdown shapes the stored plan (a `Prefilter` section), so
        // prefilter-on and prefilter-off occupy distinct entries.
        h.byte(u8::from(opts.prefilter));
        h.u64(opts.if3_size_limit as u64);
        h.u64(opts.max_depth as u64);
        h.u64(opts.max_pair_queries);
        h.u64(opts.simplify.max_candidate_checks as u64);
        h.u64(opts.simplify.trivial_cost);
        h.u64(opts.inv.max_candidates as u64);
        h.u64(opts.inv.max_rounds as u64);
        h.u64(opts.solver.max_conflicts);
        h.u64(opts.solver.max_final_checks);
        h.u64(opts.solver.theory_limits.lia_budget);
        h.u64(opts.solver.theory_limits.max_probe_pairs as u64);
        h.u64(opts.solver.theory_limits.max_rounds as u64);
        h.u64(opts.solver.minimize_up_to as u64);
        for cost in cm.components() {
            h.u64(cost);
        }
        PlanKey(h.finish())
    }

    /// Derives the key for proving the aggregation set `defs` (in order)
    /// under `opts` and `cm`.
    ///
    /// Aggregation plans occupy a key space disjoint from program plans: the
    /// fingerprint starts from [`udf_lang::agg::agg_set_key`] (its own
    /// domain tag) and folds an additional `aggplan` discriminant byte, so a
    /// UDAF set and a program set can never collide. The covered options are
    /// the ones that decide homomorphism verdicts — entailment mode and
    /// solver resource limits — plus the cost model charged by fold/merge
    /// execution; rule policies that only shape Ω's program output are
    /// deliberately excluded.
    pub fn derive_agg(
        defs: &[udf_lang::AggDef],
        interner: &Interner,
        opts: &Options,
        cm: &CostModel,
    ) -> PlanKey {
        let mut h = Fnv128::new();
        h.byte(0xA9);
        h.u128(udf_lang::agg_set_key(defs, interner));
        h.byte(match opts.mode {
            consolidate::EntailmentMode::Smt => 1,
            consolidate::EntailmentMode::Syntactic => 2,
        });
        h.u64(opts.solver.max_conflicts);
        h.u64(opts.solver.max_final_checks);
        h.u64(opts.solver.theory_limits.lia_budget);
        h.u64(opts.solver.theory_limits.max_probe_pairs as u64);
        h.u64(opts.solver.theory_limits.max_rounds as u64);
        h.u64(opts.solver.minimize_up_to as u64);
        for cost in cm.components() {
            h.u64(cost);
        }
        PlanKey(h.finish())
    }
}

/// One cached consolidated plan.
#[derive(Clone, Debug)]
pub struct CachedPlan {
    /// The stored plan — a merged program or a proved aggregation set —
    /// interner-independent either way.
    pub plan: PortablePlan,
    /// Statistics of the run that produced it.
    pub stats: ConsolidationStats,
    /// Degradation tier of the stored plan (drives the upgrade rule).
    pub tier: DegradationTier,
    /// Approximate footprint, charged against the byte budget.
    pub bytes: usize,
}

impl CachedPlan {
    /// Packages a program consolidation result for caching.
    pub fn new(program: PortableProgram, stats: ConsolidationStats) -> CachedPlan {
        CachedPlan::from_plan(PortablePlan::Program(Box::new(program)), stats)
    }

    /// Packages a proved aggregation set for caching.
    pub fn new_agg(plan: PortableAggPlan, stats: ConsolidationStats) -> CachedPlan {
        CachedPlan::from_plan(PortablePlan::Agg(plan), stats)
    }

    fn from_plan(plan: PortablePlan, stats: ConsolidationStats) -> CachedPlan {
        let bytes = plan.approx_bytes() + std::mem::size_of::<CachedPlan>();
        CachedPlan {
            plan,
            tier: stats.tier,
            stats,
            bytes,
        }
    }

    /// The stored program, when this entry holds a program plan.
    pub fn program(&self) -> Option<&PortableProgram> {
        match &self.plan {
            PortablePlan::Program(p) => Some(p),
            PortablePlan::Agg(_) => None,
        }
    }

    /// The stored aggregation plan, when this entry holds one.
    pub fn agg(&self) -> Option<&PortableAggPlan> {
        match &self.plan {
            PortablePlan::Program(_) => None,
            PortablePlan::Agg(a) => Some(a),
        }
    }
}

/// Cache shape parameters.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Maximum number of entries (across all shards).
    pub capacity: usize,
    /// Maximum total approximate bytes (across all shards).
    pub max_bytes: usize,
    /// Number of lock shards (rounded up to at least 1).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            capacity: 1024,
            max_bytes: 64 << 20,
            shards: 16,
        }
    }
}

/// Point-in-time counters of a [`PlanCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a usable entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries evicted by the capacity or byte budget.
    pub evictions: u64,
    /// Entries removed by [`PlanCache::invalidate`] (e.g. a plan guard
    /// evicting a key whose stored plan diverged at runtime).
    pub invalidations: u64,
    /// Current entry count.
    pub entries: usize,
    /// Current approximate byte footprint.
    pub bytes: usize,
}

struct Entry {
    plan: Arc<CachedPlan>,
    /// Global tick of the last touch; loaded/stored relaxed (gets take only
    /// the shard read lock).
    last_used: AtomicU64,
    /// Opaque caller-chosen labels (e.g. tenant ids) for scoped
    /// invalidation; sorted. Runtime-only — snapshots do not persist tags,
    /// so a warm-started cache holds untagged entries (a conservative
    /// caller re-tags on its first insert).
    tags: Vec<u64>,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u128, Entry>,
    bytes: usize,
}

/// Sharded, thread-safe LRU plan cache.
pub struct PlanCache {
    shards: Vec<RwLock<Shard>>,
    per_shard_cap: usize,
    per_shard_bytes: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::new(CacheConfig::default())
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache").field("stats", &self.stats()).finish()
    }
}

impl PlanCache {
    /// Creates an empty cache. Capacity and byte budgets are divided evenly
    /// across shards (each shard gets at least one slot).
    pub fn new(config: CacheConfig) -> PlanCache {
        let n = config.shards.max(1);
        PlanCache {
            shards: (0..n).map(|_| RwLock::new(Shard::default())).collect(),
            per_shard_cap: (config.capacity / n).max(1),
            per_shard_bytes: (config.max_bytes / n).max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: PlanKey) -> &RwLock<Shard> {
        &self.shards[(key.0 as usize) % self.shards.len()]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Looks up a plan, refreshing its LRU position. Counts a hit or miss.
    pub fn get(&self, key: PlanKey) -> Option<Arc<CachedPlan>> {
        let shard = self.shard(key).read().unwrap_or_else(|e| e.into_inner());
        match shard.map.get(&key.0) {
            Some(e) => {
                e.last_used.store(self.next_tick(), Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.plan))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) a plan, evicting least-recently-used entries
    /// while the shard is over its capacity or byte budget.
    pub fn insert(&self, key: PlanKey, plan: CachedPlan) {
        self.insert_tagged(key, plan, &[]);
    }

    /// Like [`PlanCache::insert`], labeling the entry with `tags` — opaque
    /// caller-chosen scopes (e.g. one tag per tenant whose queries the plan
    /// merges) that [`PlanCache::invalidate_tag`] can later evict by.
    pub fn insert_tagged(&self, key: PlanKey, plan: CachedPlan, tags: &[u64]) {
        let tick = self.next_tick();
        let mut shard = self.shard(key).write().unwrap_or_else(|e| e.into_inner());
        let bytes = plan.bytes;
        let mut sorted = tags.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if let Some(old) = shard.map.insert(
            key.0,
            Entry {
                plan: Arc::new(plan),
                last_used: AtomicU64::new(tick),
                tags: sorted,
            },
        ) {
            shard.bytes -= old.plan.bytes;
        }
        shard.bytes += bytes;
        self.inserts.fetch_add(1, Ordering::Relaxed);
        while shard.map.len() > self.per_shard_cap
            || (shard.bytes > self.per_shard_bytes && shard.map.len() > 1)
        {
            // O(n) min scan: shards are small (capacity / shard count) and
            // eviction is rare next to gets, so this beats maintaining an
            // ordered structure under the write lock.
            let victim = shard
                .map
                .iter()
                .filter(|(&k, _)| k != key.0 || shard.map.len() == 1)
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(&k, _)| k);
            match victim {
                Some(k) => {
                    if let Some(e) = shard.map.remove(&k) {
                        shard.bytes -= e.plan.bytes;
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => break,
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let (mut entries, mut bytes) = (0, 0);
        for s in &self.shards {
            let s = s.read().unwrap_or_else(|e| e.into_inner());
            entries += s.map.len();
            bytes += s.bytes;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }

    /// Removes a plan outright, returning whether it was present. Unlike an
    /// LRU eviction this is a *correctness* removal: the plan guard calls it
    /// when a stored plan's runtime behaviour diverged from the sequential
    /// semantics, so the next compile of the same query set re-consolidates
    /// instead of re-serving the poisoned entry.
    pub fn invalidate(&self, key: PlanKey) -> bool {
        let mut shard = self.shard(key).write().unwrap_or_else(|e| e.into_inner());
        match shard.map.remove(&key.0) {
            Some(e) => {
                shard.bytes -= e.plan.bytes;
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Removes every entry labeled with `tag` (see
    /// [`PlanCache::insert_tagged`]), returning how many were evicted. Like
    /// [`PlanCache::invalidate`] this is a correctness removal: a tenant
    /// demotion calls it so no surviving cached plan still merges the
    /// demoted tenant's queries.
    pub fn invalidate_tag(&self, tag: u64) -> usize {
        let mut removed = 0;
        for s in &self.shards {
            let mut shard = s.write().unwrap_or_else(|e| e.into_inner());
            let victims: Vec<u128> = shard
                .map
                .iter()
                .filter(|(_, e)| e.tags.binary_search(&tag).is_ok())
                .map(|(&k, _)| k)
                .collect();
            for k in victims {
                if let Some(e) = shard.map.remove(&k) {
                    shard.bytes -= e.plan.bytes;
                    removed += 1;
                }
            }
        }
        self.invalidations.fetch_add(removed as u64, Ordering::Relaxed);
        removed
    }

    /// Inserts `plan` under `key` only if it does not make the cached tier
    /// worse — the tier-upgrade rule applied at insertion time. Returns
    /// whether the entry was stored. Tags behave as in
    /// [`PlanCache::insert_tagged`].
    pub fn insert_upgrading(&self, key: PlanKey, plan: CachedPlan, tags: &[u64]) -> bool {
        if let Some(old) = self.get_untouched(key) {
            // `DegradationTier`'s derived order is Full < Partial <
            // Sequential, so "worse" is "greater".
            if plan.tier > old.tier {
                return false;
            }
        }
        self.insert_tagged(key, plan, tags);
        true
    }

    /// Looks up a plan without refreshing its LRU position or counting a
    /// hit/miss (internal: tier comparison shouldn't skew cache telemetry).
    fn get_untouched(&self, key: PlanKey) -> Option<Arc<CachedPlan>> {
        let shard = self.shard(key).read().unwrap_or_else(|e| e.into_inner());
        shard.map.get(&key.0).map(|e| Arc::clone(&e.plan))
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.stats().entries
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All entries, keyed (used by snapshots and tests).
    pub fn entries(&self) -> Vec<(PlanKey, Arc<CachedPlan>)> {
        let mut out = Vec::new();
        for s in &self.shards {
            let s = s.read().unwrap_or_else(|e| e.into_inner());
            for (&k, e) in &s.map {
                out.push((PlanKey(k), Arc::clone(&e.plan)));
            }
        }
        out.sort_by_key(|(k, _)| k.0);
        out
    }

    /// Writes a textual snapshot of every entry to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        snapshot::save(self, path.as_ref())
    }

    /// Loads a snapshot written by [`PlanCache::save`] into a fresh cache
    /// with the given configuration, failing on the first malformed entry.
    ///
    /// For crash recovery prefer [`PlanCache::load_recovering`], which
    /// salvages around corrupt entries instead of erroring the whole file.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed snapshots and propagates I/O
    /// errors.
    pub fn load(
        path: impl AsRef<std::path::Path>,
        config: CacheConfig,
    ) -> std::io::Result<PlanCache> {
        snapshot::load(path.as_ref(), config)
    }

    /// Loads a snapshot leniently: entries whose checksum, length, or shape
    /// does not verify are skipped and accounted in the returned
    /// [`SnapshotRecovery`] instead of failing the load. Every recognized
    /// entry ends up either loaded or salvaged-around
    /// (`loaded + salvaged == total`), so a crash-truncated or bit-rotted
    /// snapshot still warm-starts with whatever survives. Each skipped entry
    /// increments the `cache.snapshot_salvaged` counter on `recorder`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (e.g. a missing file) only; corruption is never
    /// an error here.
    pub fn load_recovering(
        path: impl AsRef<std::path::Path>,
        config: CacheConfig,
        recorder: &udf_obs::RecorderCell,
    ) -> std::io::Result<(PlanCache, SnapshotRecovery)> {
        let (cache, recovery) = snapshot::load_recovering(path.as_ref(), config)?;
        recorder.add(
            udf_obs::names::CACHE_SNAPSHOT_SALVAGED,
            recovery.salvaged as u64,
        );
        Ok((cache, recovery))
    }
}

/// How [`consolidate_many_cached`] satisfied a request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlanOutcome {
    /// Served from the cache; no solver work performed.
    Hit,
    /// Consolidated fresh and inserted.
    Miss,
    /// A degraded entry was found and re-consolidation was attempted under
    /// the current (unexhausted) budget; the better of the two plans was
    /// served and stored.
    Upgrade,
}

impl PlanOutcome {
    /// Short lowercase label for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            PlanOutcome::Hit => "hit",
            PlanOutcome::Miss => "miss",
            PlanOutcome::Upgrade => "upgrade",
        }
    }
}

/// Consolidates `programs` through `cache`: serves a stored plan when the
/// tier-upgrade rule allows it, otherwise runs
/// [`consolidate::consolidate_many`] and stores the result.
///
/// On a [`PlanOutcome::Hit`] the returned [`ConsolidationStats`] carry the
/// *stored* rule/query counters (they describe the plan) but zeroed
/// [`udf_smt::SolverStats`]: a hit performs no solver work, which is what
/// lets callers assert "the second run made zero SMT checks".
///
/// `backend` names the execution backend the plan will be lowered for; it
/// is folded into the cache key, so the same program set requested for
/// [`ExecBackend::PerRecord`] and [`ExecBackend::Columnar`] occupies two
/// independent entries and a hit never crosses backends.
///
/// # Errors
///
/// Propagates [`ConsolidateError`] from the underlying consolidation.
#[allow(clippy::too_many_arguments)]
pub fn consolidate_many_cached(
    cache: &PlanCache,
    programs: &[Program],
    interner: &mut Interner,
    cm: &CostModel,
    fns: &(dyn FnCost + Sync),
    opts: &Options,
    parallel: bool,
    backend: ExecBackend,
) -> Result<(Consolidated, PlanOutcome), ConsolidateError> {
    if programs.is_empty() {
        return Err(ConsolidateError::Empty);
    }
    let start = Instant::now();
    let key = PlanKey::derive(programs, interner, opts, cm, backend);
    // Rebuilds the stored pre-filter (if any) against the caller's interner;
    // synthesis counters are zero on a reload — no proving was done.
    let rehydrate = |pp: &PortableProgram, interner: &mut Interner| {
        pp.prefilter.as_ref().map(|pb| consolidate::Prefilter {
            cond: pb.to_bool(interner),
            queries: u32::try_from(programs.len()).unwrap_or(u32::MAX),
            paths_checked: 0,
            entailment_queries: 0,
        })
    };
    // Defensive: the agg key space is disjoint by construction, but an
    // entry of the wrong shape is treated as a miss rather than served.
    let cached = cache.get(key).filter(|p| p.program().is_some());
    if let Some(plan) = &cached {
        let budget_spent = BudgetState::new(&opts.budget).exhausted();
        if plan.tier == DegradationTier::Full || budget_spent {
            if let Some(pp) = plan.program() {
                let mut stats = plan.stats;
                stats.solver = udf_smt::SolverStats::default();
                opts.recorder.add(udf_obs::names::PLAN_CACHE_HIT, 1);
                return Ok((
                    Consolidated {
                        program: pp.to_program(interner),
                        stats,
                        elapsed: start.elapsed(),
                        explain: None,
                        prefilter: rehydrate(pp, interner),
                    },
                    PlanOutcome::Hit,
                ));
            }
        }
    }
    // Miss, or a degraded entry under a live budget: consolidate fresh.
    let fresh = consolidate::consolidate_many(programs, interner, cm, fns, opts, parallel)?;
    // Upgrade attempt: keep whichever plan sits higher on the tier lattice
    // (`Full < Partial < Sequential` in the derived order), so a cached
    // Partial is never displaced by a fresh Sequential.
    let stored_better = match &cached {
        Some(old) if fresh.stats.tier > old.tier => old.program().map(|pp| (old, pp)),
        _ => None,
    };
    match stored_better {
        Some((old, pp)) => {
            let mut stats = old.stats;
            stats.solver = fresh.stats.solver;
            stats.memo_hits += fresh.stats.memo_hits;
            opts.recorder.add(udf_obs::names::PLAN_CACHE_UPGRADE, 1);
            Ok((
                Consolidated {
                    program: pp.to_program(interner),
                    stats,
                    elapsed: start.elapsed(),
                    explain: None,
                    prefilter: rehydrate(pp, interner),
                },
                PlanOutcome::Upgrade,
            ))
        }
        None => {
            let mut portable = PortableProgram::from_program(&fresh.program, interner);
            portable.prefilter = fresh
                .prefilter
                .as_ref()
                .map(|pf| portable::PBool::from_bool(&pf.cond, interner));
            cache.insert(key, CachedPlan::new(portable, fresh.stats));
            if cached.is_some() {
                opts.recorder.add(udf_obs::names::PLAN_CACHE_UPGRADE, 1);
                Ok((fresh, PlanOutcome::Upgrade))
            } else {
                opts.recorder.add(udf_obs::names::PLAN_CACHE_MISS, 1);
                Ok((fresh, PlanOutcome::Miss))
            }
        }
    }
}

/// Proves the homomorphism obligations of `defs` through `cache`: serves
/// stored verdicts when the tier-upgrade rule allows it, otherwise runs
/// [`consolidate::consolidate_aggs`] and stores the result.
///
/// On a [`PlanOutcome::Hit`] the returned
/// [`consolidate::AggConsolidation`] reports every definition as
/// [`consolidate::ProofOutcome::Memo`] — answered without proving — with
/// zeroed solver statistics, so callers can assert "the warm run made zero
/// SMT checks". The same tier-upgrade rule as
/// [`consolidate_many_cached`] applies: a degraded verdict set is
/// re-proved under a live budget and only replaced by an outcome at least
/// as good.
///
/// # Errors
///
/// Propagates [`ConsolidateError`] from the underlying prover.
pub fn consolidate_aggs_cached(
    cache: &PlanCache,
    defs: &[udf_lang::AggDef],
    interner: &mut Interner,
    cm: &CostModel,
    opts: &Options,
) -> Result<(consolidate::AggConsolidation, PlanKey, PlanOutcome), ConsolidateError> {
    if defs.is_empty() {
        return Err(ConsolidateError::Empty);
    }
    let start = Instant::now();
    let key = PlanKey::derive_agg(defs, interner, opts, cm);
    // Shape check mirrors `consolidate_many_cached`; a count mismatch means
    // a stale or foreign entry and is treated as a miss.
    let cached = cache
        .get(key)
        .filter(|p| p.agg().is_some_and(|a| a.defs.len() == defs.len()));
    let from_flags = |flags: &[bool], tier: DegradationTier| consolidate::AggConsolidation {
        outcomes: flags.iter().map(|&p| consolidate::ProofOutcome::Memo(p)).collect(),
        tier,
        stats: consolidate::AggProofStats::default(),
        elapsed: start.elapsed(),
    };
    if let Some(plan) = &cached {
        let budget_spent = BudgetState::new(&opts.budget).exhausted();
        if plan.tier == DegradationTier::Full || budget_spent {
            if let Some(agg) = plan.agg() {
                opts.recorder.add(udf_obs::names::PLAN_CACHE_HIT, 1);
                return Ok((from_flags(&agg.proved, plan.tier), key, PlanOutcome::Hit));
            }
        }
    }
    let fresh = consolidate::consolidate_aggs(defs, interner, opts)?;
    let stored_better = match &cached {
        Some(old) if fresh.tier > old.tier => old.agg().map(|a| (old.tier, a.proved.clone())),
        _ => None,
    };
    match stored_better {
        Some((tier, proved)) => {
            opts.recorder.add(udf_obs::names::PLAN_CACHE_UPGRADE, 1);
            Ok((from_flags(&proved, tier), key, PlanOutcome::Upgrade))
        }
        None => {
            let portable = PortableAggPlan::from_defs(defs, &fresh.proved_flags(), interner);
            let stats = ConsolidationStats {
                entailment_queries: fresh.stats.entailment_queries,
                memo_hits: fresh.stats.proof_memo_hits,
                solver: fresh.stats.solver,
                tier: fresh.tier,
                ..ConsolidationStats::default()
            };
            cache.insert(key, CachedPlan::new_agg(portable, stats));
            if cached.is_some() {
                opts.recorder.add(udf_obs::names::PLAN_CACHE_UPGRADE, 1);
                Ok((fresh, key, PlanOutcome::Upgrade))
            } else {
                opts.recorder.add(udf_obs::names::PLAN_CACHE_MISS, 1);
                Ok((fresh, key, PlanOutcome::Miss))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udf_lang::cost::UniformFnCost;
    use udf_lang::parse::parse_programs;
    use udf_lang::pretty;

    fn family(i: &mut Interner) -> Vec<Program> {
        parse_programs(
            "program f1 @1 (airline, price) {
                 name := toLower(airline);
                 if (name == 7) { notify true; } else { notify false; }
             }
             program f2 @2 (airline, price) {
                 if (price >= 200) { notify false; }
                 else { if (toLower(airline) == 7) { notify true; } else { notify false; } }
             }",
            i,
        )
        .expect("test programs parse")
    }

    #[test]
    fn second_run_is_a_hit_with_zero_solver_checks() {
        let mut i = Interner::new();
        let programs = family(&mut i);
        let cm = CostModel::default();
        let fns = UniformFnCost(50);
        let opts = Options::default();
        let cache = PlanCache::default();

        let (cold, o1) =
            consolidate_many_cached(&cache, &programs, &mut i, &cm, &fns, &opts, false, ExecBackend::PerRecord)
                .expect("cold run succeeds");
        assert_eq!(o1, PlanOutcome::Miss);
        assert!(cold.stats.solver.checks > 0, "cold run must hit the solver");

        let (warm, o2) =
            consolidate_many_cached(&cache, &programs, &mut i, &cm, &fns, &opts, false, ExecBackend::PerRecord)
                .expect("warm run succeeds");
        assert_eq!(o2, PlanOutcome::Hit);
        assert_eq!(warm.stats.solver.checks, 0, "a hit must skip the solver");
        assert_eq!(
            pretty::program(&cold.program, &i),
            pretty::program(&warm.program, &i),
            "hit must reproduce the consolidated program exactly"
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.inserts), (1, 1));
    }

    #[test]
    fn agg_verdict_warm_hit_skips_the_solver() {
        let mut i = Interner::new();
        let defs = udf_lang::parse_aggs(
            "aggregate sum @1 (x) {
                 state s = 0;
                 fold { s := s + x; }
                 merge { s := s + rhs_s; }
             }
             aggregate count @2 (x) {
                 state c = 0;
                 fold { c := c + 1; }
                 merge { c := c + rhs_c; }
             }",
            &mut i,
        )
        .expect("test aggs parse");
        let cache = PlanCache::default();
        let opts = Options::default();
        let cm = CostModel::default();

        let (cold, k1, o1) =
            consolidate_aggs_cached(&cache, &defs, &mut i, &cm, &opts).expect("cold run succeeds");
        assert_eq!(o1, PlanOutcome::Miss);
        assert_eq!(cold.proved_flags(), vec![true, true]);
        assert!(cold.stats.checks > 0, "cold run must discharge proofs");

        let (warm, k2, o2) =
            consolidate_aggs_cached(&cache, &defs, &mut i, &cm, &opts).expect("warm run succeeds");
        assert_eq!(o2, PlanOutcome::Hit);
        assert_eq!(k1, k2);
        assert_eq!(warm.proved_flags(), cold.proved_flags());
        assert_eq!(warm.stats.solver.checks, 0, "a hit must skip the solver");
        assert_eq!(warm.tier, DegradationTier::Full);

        // The cached entry survives a snapshot round trip.
        let dir = std::env::temp_dir().join("plan-cache-test-aggsnap");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.txt");
        cache.save(&path).unwrap();
        let loaded = PlanCache::load(&path, CacheConfig::default()).unwrap();
        std::fs::remove_file(&path).ok();
        let (thawed, k3, o3) =
            consolidate_aggs_cached(&loaded, &defs, &mut i, &cm, &opts).expect("thawed run");
        assert_eq!((k3, o3), (k1, PlanOutcome::Hit));
        assert_eq!(thawed.proved_flags(), vec![true, true]);
    }

    #[test]
    fn alpha_renamed_sets_share_a_plan() {
        let mut i = Interner::new();
        let a = parse_programs(
            "program f @1 (x) { y := inc(x); notify true; }
             program g @2 (x) { z := inc(x); notify false; }",
            &mut i,
        )
        .expect("test programs parse");
        let b = parse_programs(
            "program f @1 (x) { q := inc(x); notify true; }
             program g @2 (x) { r := inc(x); notify false; }",
            &mut i,
        )
        .expect("test programs parse");
        let cm = CostModel::default();
        let opts = Options::default();
        assert_eq!(
            PlanKey::derive(&a, &i, &opts, &cm, ExecBackend::PerRecord),
            PlanKey::derive(&b, &i, &opts, &cm, ExecBackend::PerRecord)
        );
    }

    #[test]
    fn options_partition_the_key_space() {
        let mut i = Interner::new();
        let programs = family(&mut i);
        let cm = CostModel::default();
        let smt = Options::default();
        let syn = Options {
            mode: consolidate::EntailmentMode::Syntactic,
            ..Options::default()
        };
        assert_ne!(
            PlanKey::derive(&programs, &i, &smt, &cm, ExecBackend::PerRecord),
            PlanKey::derive(&programs, &i, &syn, &cm, ExecBackend::PerRecord)
        );
    }

    #[test]
    fn backends_partition_the_key_space() {
        let mut i = Interner::new();
        let programs = family(&mut i);
        let cm = CostModel::default();
        let opts = Options::default();
        assert_ne!(
            PlanKey::derive(&programs, &i, &opts, &cm, ExecBackend::PerRecord),
            PlanKey::derive(&programs, &i, &opts, &cm, ExecBackend::Columnar),
            "backend must partition the key space"
        );
    }

    #[test]
    fn cache_hits_never_cross_backends() {
        let mut i = Interner::new();
        let programs = family(&mut i);
        let cm = CostModel::default();
        let fns = UniformFnCost(50);
        let opts = Options::default();
        let cache = PlanCache::default();

        // Fill for the per-record backend…
        let (_, o1) = consolidate_many_cached(
            &cache, &programs, &mut i, &cm, &fns, &opts, false, ExecBackend::PerRecord,
        )
        .expect("per-record run succeeds");
        assert_eq!(o1, PlanOutcome::Miss);

        // …a columnar request for the same set must NOT be served from it.
        let (_, o2) = consolidate_many_cached(
            &cache, &programs, &mut i, &cm, &fns, &opts, false, ExecBackend::Columnar,
        )
        .expect("columnar run succeeds");
        assert_eq!(
            o2,
            PlanOutcome::Miss,
            "a plan cached for one backend must never satisfy the other"
        );

        // Same-backend resubmissions hit their own entries.
        for backend in [ExecBackend::PerRecord, ExecBackend::Columnar] {
            let (_, o) = consolidate_many_cached(
                &cache, &programs, &mut i, &cm, &fns, &opts, false, backend,
            )
            .expect("warm run succeeds");
            assert_eq!(o, PlanOutcome::Hit);
        }
        assert_eq!(cache.len(), 2, "one entry per backend");
    }

    #[test]
    fn degraded_entries_upgrade_under_fresh_budget() {
        let mut i = Interner::new();
        let programs = family(&mut i);
        let cm = CostModel::default();
        let fns = UniformFnCost(50);
        let cache = PlanCache::default();
        // Exhaust immediately: query ceiling 0 degrades to Sequential.
        let starved = Options {
            budget: consolidate::ConsolidationBudget::default().with_max_solver_queries(0),
            ..Options::default()
        };
        let (degraded, o1) =
            consolidate_many_cached(&cache, &programs, &mut i, &cm, &fns, &starved, false, ExecBackend::PerRecord)
                .expect("starved run succeeds");
        assert_eq!(o1, PlanOutcome::Miss);
        assert!(degraded.stats.tier > DegradationTier::Full);

        // Same options, same key: a second starved run may reuse the entry…
        let state = BudgetState::new(&starved.budget);
        assert!(
            !state.exhausted(),
            "query ceilings are charged, not pre-exhausted; upgrade path must run"
        );
        // …but since the budget is not *pre*-exhausted, the rule demands a
        // re-consolidation attempt, which under the same ceiling cannot be
        // worse, and under an unlimited one reaches Full.
        let unlimited = Options::default();
        let key_starved = PlanKey::derive(&programs, &i, &starved, &cm, ExecBackend::PerRecord);
        let key_unlimited = PlanKey::derive(&programs, &i, &unlimited, &cm, ExecBackend::PerRecord);
        assert_eq!(
            key_starved, key_unlimited,
            "budget must not partition the key space"
        );
        let (upgraded, o2) =
            consolidate_many_cached(&cache, &programs, &mut i, &cm, &fns, &unlimited, false, ExecBackend::PerRecord)
                .expect("upgrade run succeeds");
        assert_eq!(o2, PlanOutcome::Upgrade);
        assert_eq!(upgraded.stats.tier, DegradationTier::Full);

        // The upgraded plan is now served on hits.
        let (served, o3) =
            consolidate_many_cached(&cache, &programs, &mut i, &cm, &fns, &unlimited, false, ExecBackend::PerRecord)
                .expect("warm run succeeds");
        assert_eq!(o3, PlanOutcome::Hit);
        assert_eq!(served.stats.tier, DegradationTier::Full);
    }

    #[test]
    fn lru_evicts_by_capacity() {
        let cache = PlanCache::new(CacheConfig {
            capacity: 2,
            max_bytes: usize::MAX,
            shards: 1,
        });
        let plan = |id: u32| {
            CachedPlan::new(
                PortableProgram {
                    id,
                    params: vec!["x".to_owned()],
                    body: portable::PStmt::Skip,
                    prefilter: None,
                },
                ConsolidationStats::default(),
            )
        };
        cache.insert(PlanKey(1), plan(1));
        cache.insert(PlanKey(2), plan(2));
        assert!(cache.get(PlanKey(1)).is_some(), "touch 1 so 2 is the LRU");
        cache.insert(PlanKey(3), plan(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(PlanKey(2)).is_none(), "2 was least recently used");
        assert!(cache.get(PlanKey(1)).is_some());
        assert!(cache.get(PlanKey(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn tag_invalidation_evicts_exactly_the_labeled_entries() {
        let cache = PlanCache::new(CacheConfig {
            capacity: 16,
            max_bytes: usize::MAX,
            shards: 2,
        });
        let plan = |id: u32| {
            CachedPlan::new(
                PortableProgram {
                    id,
                    params: vec![],
                    body: portable::PStmt::Skip,
                    prefilter: None,
                },
                ConsolidationStats::default(),
            )
        };
        cache.insert_tagged(PlanKey(1), plan(1), &[100, 200]);
        cache.insert_tagged(PlanKey(2), plan(2), &[200]);
        cache.insert_tagged(PlanKey(3), plan(3), &[300]);
        cache.insert(PlanKey(4), plan(4)); // untagged: survives everything
        assert_eq!(cache.invalidate_tag(200), 2);
        assert!(cache.get(PlanKey(1)).is_none());
        assert!(cache.get(PlanKey(2)).is_none());
        assert!(cache.get(PlanKey(3)).is_some());
        assert!(cache.get(PlanKey(4)).is_some());
        assert_eq!(cache.invalidate_tag(200), 0);
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn insert_upgrading_never_stores_a_worse_tier() {
        let cache = PlanCache::new(CacheConfig {
            capacity: 16,
            max_bytes: usize::MAX,
            shards: 1,
        });
        let plan = |tier: DegradationTier| {
            let mut p = CachedPlan::new(
                PortableProgram {
                    id: 1,
                    params: vec![],
                    body: portable::PStmt::Skip,
                    prefilter: None,
                },
                ConsolidationStats::default(),
            );
            p.tier = tier;
            p
        };
        assert!(cache.insert_upgrading(PlanKey(9), plan(DegradationTier::Partial), &[7]));
        // A Sequential plan is worse: refused, the Partial entry survives.
        assert!(!cache.insert_upgrading(PlanKey(9), plan(DegradationTier::Sequential), &[7]));
        assert_eq!(
            cache.get(PlanKey(9)).map(|p| p.tier),
            Some(DegradationTier::Partial)
        );
        // A Full plan upgrades.
        assert!(cache.insert_upgrading(PlanKey(9), plan(DegradationTier::Full), &[7]));
        assert_eq!(
            cache.get(PlanKey(9)).map(|p| p.tier),
            Some(DegradationTier::Full)
        );
        assert_eq!(cache.invalidate_tag(7), 1);
    }

    #[test]
    fn byte_budget_evicts() {
        let cache = PlanCache::new(CacheConfig {
            capacity: 1024,
            max_bytes: 1,
            shards: 1,
        });
        let plan = |id: u32| {
            CachedPlan::new(
                PortableProgram {
                    id,
                    params: vec![],
                    body: portable::PStmt::Skip,
                    prefilter: None,
                },
                ConsolidationStats::default(),
            )
        };
        cache.insert(PlanKey(1), plan(1));
        cache.insert(PlanKey(2), plan(2));
        // Over budget with >1 entry: evict down to a single entry.
        assert_eq!(cache.len(), 1);
        assert!(cache.stats().evictions >= 1);
    }
}
