//! Interner-independent program representation.
//!
//! A consolidated [`Program`] is built over [`udf_lang::intern::Symbol`]s —
//! indices into the
//! interner of the process (and run) that produced it. Consolidation also
//! manufactures local names like `u0$x%3` (via `rename_locals` and
//! `Interner::fresh`) that the concrete syntax cannot express, so neither
//! raw symbols nor pretty-printed text survive a process boundary. A
//! [`PortableProgram`] stores names as owned strings and converts back
//! against any interner, which is what lets cached plans be shared across
//! engines and snapshotted to disk.
//!
//! The wire form is a single-line S-expression; tokens are runs of
//! characters other than whitespace and parentheses, so `$`/`%`/`@` in
//! generated names need no escaping.

use std::fmt::Write as _;
use udf_lang::agg::{AggDef, StateSlot};
use udf_lang::ast::{BoolExpr, BoolOp, CmpOp, IntExpr, IntOp, ProgId, Program, Stmt};
use udf_lang::intern::Interner;

/// An integer expression over string names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PInt {
    /// Integer constant.
    Const(i64),
    /// Variable reference by name.
    Var(String),
    /// Library-function call by name.
    Call(String, Vec<PInt>),
    /// Binary arithmetic.
    Bin(IntOp, Box<PInt>, Box<PInt>),
}

/// A boolean expression over string names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PBool {
    /// Boolean constant.
    Const(bool),
    /// Integer comparison.
    Cmp(CmpOp, PInt, PInt),
    /// Negation.
    Not(Box<PBool>),
    /// Connective.
    Bin(BoolOp, Box<PBool>, Box<PBool>),
}

/// A statement over string names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PStmt {
    /// No-op.
    Skip,
    /// Assignment.
    Assign(String, PInt),
    /// Sequencing.
    Seq(Box<PStmt>, Box<PStmt>),
    /// Conditional.
    If(PBool, Box<PStmt>, Box<PStmt>),
    /// Loop.
    While(PBool, Box<PStmt>),
    /// Notification broadcast.
    Notify(u32, bool),
}

/// A [`Program`] with every [`udf_lang::intern::Symbol`] resolved to its
/// name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortableProgram {
    /// Program id.
    pub id: u32,
    /// Parameter names in declaration order.
    pub params: Vec<String>,
    /// Body.
    pub body: PStmt,
    /// The plan's verified cross-query pre-filter condition, when one was
    /// synthesized (see `consolidate::prefilter`). Parameter-only and
    /// call-free by construction; round-trips through the wire form as an
    /// optional `(prefilter …)` section so cached and snapshotted plans
    /// keep their pushdown acceleration.
    pub prefilter: Option<PBool>,
}

fn p_int(e: &IntExpr, i: &Interner) -> PInt {
    match e {
        IntExpr::Const(c) => PInt::Const(*c),
        IntExpr::Var(v) => PInt::Var(i.resolve(*v).to_owned()),
        IntExpr::Call(f, args) => PInt::Call(
            i.resolve(*f).to_owned(),
            args.iter().map(|a| p_int(a, i)).collect(),
        ),
        IntExpr::Bin(op, a, b) => PInt::Bin(*op, Box::new(p_int(a, i)), Box::new(p_int(b, i))),
    }
}

fn p_bool(e: &BoolExpr, i: &Interner) -> PBool {
    match e {
        BoolExpr::Const(b) => PBool::Const(*b),
        BoolExpr::Cmp(op, a, b) => PBool::Cmp(*op, p_int(a, i), p_int(b, i)),
        BoolExpr::Not(a) => PBool::Not(Box::new(p_bool(a, i))),
        BoolExpr::Bin(op, a, b) => PBool::Bin(*op, Box::new(p_bool(a, i)), Box::new(p_bool(b, i))),
    }
}

fn p_stmt(s: &Stmt, i: &Interner) -> PStmt {
    match s {
        Stmt::Skip => PStmt::Skip,
        Stmt::Assign(x, e) => PStmt::Assign(i.resolve(*x).to_owned(), p_int(e, i)),
        Stmt::Seq(a, b) => PStmt::Seq(Box::new(p_stmt(a, i)), Box::new(p_stmt(b, i))),
        Stmt::If(c, a, b) => PStmt::If(p_bool(c, i), Box::new(p_stmt(a, i)), Box::new(p_stmt(b, i))),
        Stmt::While(c, b) => PStmt::While(p_bool(c, i), Box::new(p_stmt(b, i))),
        Stmt::Notify(id, b) => PStmt::Notify(id.0, *b),
    }
}

fn r_int(e: &PInt, i: &mut Interner) -> IntExpr {
    match e {
        PInt::Const(c) => IntExpr::Const(*c),
        PInt::Var(v) => IntExpr::Var(i.intern(v)),
        PInt::Call(f, args) => {
            IntExpr::Call(i.intern(f), args.iter().map(|a| r_int(a, i)).collect())
        }
        PInt::Bin(op, a, b) => IntExpr::Bin(*op, Box::new(r_int(a, i)), Box::new(r_int(b, i))),
    }
}

fn r_bool(e: &PBool, i: &mut Interner) -> BoolExpr {
    match e {
        PBool::Const(b) => BoolExpr::Const(*b),
        PBool::Cmp(op, a, b) => BoolExpr::Cmp(*op, r_int(a, i), r_int(b, i)),
        PBool::Not(a) => BoolExpr::Not(Box::new(r_bool(a, i))),
        PBool::Bin(op, a, b) => BoolExpr::Bin(*op, Box::new(r_bool(a, i)), Box::new(r_bool(b, i))),
    }
}

fn r_stmt(s: &PStmt, i: &mut Interner) -> Stmt {
    match s {
        PStmt::Skip => Stmt::Skip,
        PStmt::Assign(x, e) => Stmt::Assign(i.intern(x), r_int(e, i)),
        PStmt::Seq(a, b) => Stmt::Seq(Box::new(r_stmt(a, i)), Box::new(r_stmt(b, i))),
        PStmt::If(c, a, b) => Stmt::If(r_bool(c, i), Box::new(r_stmt(a, i)), Box::new(r_stmt(b, i))),
        PStmt::While(c, b) => Stmt::While(r_bool(c, i), Box::new(r_stmt(b, i))),
        PStmt::Notify(id, b) => Stmt::Notify(ProgId(*id), *b),
    }
}

impl PBool {
    /// Resolves every symbol of `e` against `interner`.
    pub fn from_bool(e: &BoolExpr, interner: &Interner) -> PBool {
        p_bool(e, interner)
    }

    /// Re-interns every name into `interner`, rebuilding the AST.
    pub fn to_bool(&self, interner: &mut Interner) -> BoolExpr {
        r_bool(self, interner)
    }
}

impl PortableProgram {
    /// Resolves every symbol of `p` against `interner`.
    pub fn from_program(p: &Program, interner: &Interner) -> PortableProgram {
        PortableProgram {
            id: p.id.0,
            params: p.params.iter().map(|&s| interner.resolve(s).to_owned()).collect(),
            body: p_stmt(&p.body, interner),
            prefilter: None,
        }
    }

    /// Re-interns every name into `interner`, rebuilding the AST.
    pub fn to_program(&self, interner: &mut Interner) -> Program {
        Program::new(
            ProgId(self.id),
            self.params.iter().map(|p| interner.intern(p)).collect(),
            r_stmt(&self.body, interner),
        )
    }

    /// Approximate heap footprint in bytes (for the cache byte budget).
    pub fn approx_bytes(&self) -> usize {
        fn int_bytes(e: &PInt) -> usize {
            16 + match e {
                PInt::Const(_) => 0,
                PInt::Var(v) => v.len(),
                PInt::Call(f, args) => f.len() + args.iter().map(int_bytes).sum::<usize>(),
                PInt::Bin(_, a, b) => int_bytes(a) + int_bytes(b),
            }
        }
        fn bool_bytes(e: &PBool) -> usize {
            16 + match e {
                PBool::Const(_) => 0,
                PBool::Cmp(_, a, b) => int_bytes(a) + int_bytes(b),
                PBool::Not(a) => bool_bytes(a),
                PBool::Bin(_, a, b) => bool_bytes(a) + bool_bytes(b),
            }
        }
        fn stmt_bytes(s: &PStmt) -> usize {
            16 + match s {
                PStmt::Skip | PStmt::Notify(..) => 0,
                PStmt::Assign(x, e) => x.len() + int_bytes(e),
                PStmt::Seq(a, b) => stmt_bytes(a) + stmt_bytes(b),
                PStmt::If(c, a, b) => bool_bytes(c) + stmt_bytes(a) + stmt_bytes(b),
                PStmt::While(c, b) => bool_bytes(c) + stmt_bytes(b),
            }
        }
        32 + self.params.iter().map(|p| p.len() + 8).sum::<usize>()
            + stmt_bytes(&self.body)
            + self.prefilter.as_ref().map_or(0, bool_bytes)
    }

    /// Renders the single-line S-expression wire form. The pre-filter, when
    /// present, is appended as an optional trailing `(prefilter …)` section.
    pub fn to_sexpr(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "(program {} (params", self.id);
        for p in &self.params {
            let _ = write!(out, " {p}");
        }
        out.push(')');
        out.push(' ');
        w_stmt(&self.body, &mut out);
        if let Some(pf) = &self.prefilter {
            out.push_str(" (prefilter ");
            w_bool(pf, &mut out);
            out.push(')');
        }
        out.push(')');
        out
    }

    /// Parses the wire form produced by [`PortableProgram::to_sexpr`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error.
    pub fn parse_sexpr(src: &str) -> Result<PortableProgram, String> {
        let mut toks = tokenize(src);
        let p = parse_program(&mut toks)?;
        match toks.next() {
            None => Ok(p),
            Some(t) => Err(format!("trailing input: {t:?}")),
        }
    }
}

/// One state slot of a portable UDAF: declared name, initial value, and the
/// alias under which `merge` reads the right-hand partial state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PSlot {
    /// Declared state-variable name.
    pub name: String,
    /// Initial value (the `init` element of the homomorphism).
    pub init: i64,
    /// Alias naming the right-hand copy of this slot inside `merge`.
    pub rhs: String,
}

/// An [`AggDef`] with every symbol resolved to its name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortableAggDef {
    /// Definition id.
    pub id: u32,
    /// Parameter names in declaration order.
    pub params: Vec<String>,
    /// State slots in declaration order.
    pub state: Vec<PSlot>,
    /// Per-record fold body.
    pub fold: PStmt,
    /// Partial-state merge body.
    pub merge: PStmt,
}

/// A cached aggregation plan: the definitions of one consolidated UDAF set
/// together with their positional homomorphism verdicts, so a warm start
/// skips re-proving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortableAggPlan {
    /// The definitions, in output order.
    pub defs: Vec<PortableAggDef>,
    /// Positional verdicts (`true` = merge-correctness proved; the engine
    /// may fold the definition in parallel).
    pub proved: Vec<bool>,
}

/// What a cache entry stores: a merged program plan (the Ω engine's output)
/// or an aggregation plan (proved UDAF set). The two key spaces are
/// disjoint — [`crate::PlanKey::derive`] and [`crate::PlanKey::derive_agg`]
/// fold distinct domain tags — so a lookup never sees the other variant,
/// but accessors stay total for defensive callers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PortablePlan {
    /// A consolidated program (boxed: the inline struct dwarfs the `Agg`
    /// variant, and cache entries hold these by the thousand).
    Program(Box<PortableProgram>),
    /// A proved aggregation set.
    Agg(PortableAggPlan),
}

impl PortablePlan {
    /// Approximate heap footprint in bytes (for the cache byte budget).
    pub fn approx_bytes(&self) -> usize {
        match self {
            PortablePlan::Program(p) => p.approx_bytes(),
            PortablePlan::Agg(a) => a.approx_bytes(),
        }
    }
}

impl PortableAggDef {
    /// Resolves every symbol of `def` against `interner`.
    pub fn from_def(def: &AggDef, interner: &Interner) -> PortableAggDef {
        PortableAggDef {
            id: def.id.0,
            params: def.params.iter().map(|&s| interner.resolve(s).to_owned()).collect(),
            state: def
                .state
                .iter()
                .map(|s| PSlot {
                    name: interner.resolve(s.name).to_owned(),
                    init: s.init,
                    rhs: interner.resolve(s.rhs).to_owned(),
                })
                .collect(),
            fold: p_stmt(&def.fold, interner),
            merge: p_stmt(&def.merge, interner),
        }
    }

    /// Re-interns every name into `interner`, rebuilding (and re-validating)
    /// the definition.
    ///
    /// # Errors
    ///
    /// Returns the validation error if the stored definition no longer
    /// satisfies the [`AggDef`] scope rules (possible only for hand-edited
    /// snapshots).
    pub fn to_def(&self, interner: &mut Interner) -> Result<AggDef, String> {
        let params = self.params.iter().map(|p| interner.intern(p)).collect();
        let state: Vec<StateSlot> = self
            .state
            .iter()
            .map(|s| StateSlot {
                name: interner.intern(&s.name),
                init: s.init,
                rhs: interner.intern(&s.rhs),
            })
            .collect();
        let fold = r_stmt(&self.fold, interner);
        let merge = r_stmt(&self.merge, interner);
        AggDef::new(ProgId(self.id), params, state, fold, merge, interner)
            .map_err(|e| e.to_string())
    }
}

impl PortableAggPlan {
    /// Packages `defs` and their positional proof verdicts.
    pub fn from_defs(defs: &[AggDef], proved: &[bool], interner: &Interner) -> PortableAggPlan {
        PortableAggPlan {
            defs: defs.iter().map(|d| PortableAggDef::from_def(d, interner)).collect(),
            proved: proved.to_vec(),
        }
    }

    /// Rebuilds the definitions against `interner`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`PortableAggDef::to_def`] failure.
    pub fn to_defs(&self, interner: &mut Interner) -> Result<Vec<AggDef>, String> {
        self.defs.iter().map(|d| d.to_def(interner)).collect()
    }

    /// Approximate heap footprint in bytes (for the cache byte budget).
    pub fn approx_bytes(&self) -> usize {
        32 + self.proved.len()
            + self
                .defs
                .iter()
                .map(|d| {
                    // Reuse the program estimator over both bodies by
                    // viewing each as a parameterless portable program.
                    let fold = PortableProgram {
                        id: d.id,
                        params: d.params.clone(),
                        body: d.fold.clone(),
                        prefilter: None,
                    };
                    let merge = PortableProgram {
                        id: d.id,
                        params: Vec::new(),
                        body: d.merge.clone(),
                        prefilter: None,
                    };
                    fold.approx_bytes()
                        + merge.approx_bytes()
                        + d.state.iter().map(|s| s.name.len() + s.rhs.len() + 16).sum::<usize>()
                })
                .sum::<usize>()
    }

    /// Renders the single-line S-expression wire form:
    ///
    /// ```text
    /// (aggplan (proved true false)
    ///   (aggregate 3 (params x) (state (slot s 0 rhs_s)) (fold S) (merge S)) …)
    /// ```
    pub fn to_sexpr(&self) -> String {
        let mut out = String::new();
        out.push_str("(aggplan (proved");
        for p in &self.proved {
            let _ = write!(out, " {p}");
        }
        out.push(')');
        for d in &self.defs {
            let _ = write!(out, " (aggregate {} (params", d.id);
            for p in &d.params {
                let _ = write!(out, " {p}");
            }
            out.push_str(") (state");
            for s in &d.state {
                let _ = write!(out, " (slot {} {} {})", s.name, s.init, s.rhs);
            }
            out.push_str(") (fold ");
            w_stmt(&d.fold, &mut out);
            out.push_str(") (merge ");
            w_stmt(&d.merge, &mut out);
            out.push_str("))");
        }
        out.push(')');
        out
    }

    /// Parses the wire form produced by [`PortableAggPlan::to_sexpr`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error, including a
    /// verdict/definition count mismatch.
    pub fn parse_sexpr(src: &str) -> Result<PortableAggPlan, String> {
        let mut toks = tokenize(src);
        let h = head(&mut toks)?;
        if h != "aggplan" {
            return Err(format!("expected `aggplan`, found {h:?}"));
        }
        let ph = head(&mut toks)?;
        if ph != "proved" {
            return Err(format!("expected `proved`, found {ph:?}"));
        }
        let mut proved = Vec::new();
        loop {
            match toks.next() {
                Some(Tok::Atom(a)) => match a.as_str() {
                    "true" => proved.push(true),
                    "false" => proved.push(false),
                    other => return Err(format!("bad proved flag {other:?}")),
                },
                Some(Tok::Close) => break,
                other => return Err(format!("expected proved flag or `)`, found {other:?}")),
            }
        }
        let mut defs = Vec::new();
        loop {
            match toks.next() {
                Some(Tok::Open) => defs.push(parse_agg_def(&mut toks)?),
                Some(Tok::Close) => break,
                other => return Err(format!("expected `(aggregate` or `)`, found {other:?}")),
            }
        }
        if defs.len() != proved.len() {
            return Err(format!(
                "{} definitions but {} proved flags",
                defs.len(),
                proved.len()
            ));
        }
        match toks.next() {
            None => Ok(PortableAggPlan { defs, proved }),
            Some(t) => Err(format!("trailing input: {t:?}")),
        }
    }
}

/// Parses one `(aggregate …)` body, its opening paren already consumed.
fn parse_agg_def(toks: &mut Toks) -> Result<PortableAggDef, String> {
    let h = atom(toks)?;
    if h != "aggregate" {
        return Err(format!("expected `aggregate`, found {h:?}"));
    }
    let id = num(toks)?;
    let ph = head(toks)?;
    if ph != "params" {
        return Err(format!("expected `params`, found {ph:?}"));
    }
    let mut params = Vec::new();
    loop {
        match toks.next() {
            Some(Tok::Atom(a)) => params.push(a),
            Some(Tok::Close) => break,
            other => return Err(format!("expected parameter name or `)`, found {other:?}")),
        }
    }
    let sh = head(toks)?;
    if sh != "state" {
        return Err(format!("expected `state`, found {sh:?}"));
    }
    let mut state = Vec::new();
    loop {
        match toks.next() {
            Some(Tok::Open) => {
                let slot = atom(toks)?;
                if slot != "slot" {
                    return Err(format!("expected `slot`, found {slot:?}"));
                }
                let name = atom(toks)?;
                let init = num(toks)?;
                let rhs = atom(toks)?;
                expect_close(toks)?;
                state.push(PSlot { name, init, rhs });
            }
            Some(Tok::Close) => break,
            other => return Err(format!("expected `(slot` or `)`, found {other:?}")),
        }
    }
    let fh = head(toks)?;
    if fh != "fold" {
        return Err(format!("expected `fold`, found {fh:?}"));
    }
    let fold = parse_stmt(toks)?;
    expect_close(toks)?;
    let mh = head(toks)?;
    if mh != "merge" {
        return Err(format!("expected `merge`, found {mh:?}"));
    }
    let merge = parse_stmt(toks)?;
    expect_close(toks)?;
    finish(
        toks,
        PortableAggDef {
            id,
            params,
            state,
            fold,
            merge,
        },
    )
}

fn w_int(e: &PInt, out: &mut String) {
    match e {
        PInt::Const(c) => {
            let _ = write!(out, "(int {c})");
        }
        PInt::Var(v) => {
            let _ = write!(out, "(var {v})");
        }
        PInt::Call(f, args) => {
            let _ = write!(out, "(call {f}");
            for a in args {
                out.push(' ');
                w_int(a, out);
            }
            out.push(')');
        }
        PInt::Bin(op, a, b) => {
            let tag = match op {
                IntOp::Add => "add",
                IntOp::Sub => "sub",
                IntOp::Mul => "mul",
            };
            let _ = write!(out, "({tag} ");
            w_int(a, out);
            out.push(' ');
            w_int(b, out);
            out.push(')');
        }
    }
}

fn w_bool(e: &PBool, out: &mut String) {
    match e {
        PBool::Const(b) => {
            let _ = write!(out, "({b})");
        }
        PBool::Cmp(op, a, b) => {
            let tag = match op {
                CmpOp::Lt => "lt",
                CmpOp::Le => "le",
                CmpOp::Eq => "eq",
            };
            let _ = write!(out, "({tag} ");
            w_int(a, out);
            out.push(' ');
            w_int(b, out);
            out.push(')');
        }
        PBool::Not(a) => {
            out.push_str("(not ");
            w_bool(a, out);
            out.push(')');
        }
        PBool::Bin(op, a, b) => {
            let tag = match op {
                BoolOp::And => "and",
                BoolOp::Or => "or",
            };
            let _ = write!(out, "({tag} ");
            w_bool(a, out);
            out.push(' ');
            w_bool(b, out);
            out.push(')');
        }
    }
}

fn w_stmt(s: &PStmt, out: &mut String) {
    match s {
        PStmt::Skip => out.push_str("(skip)"),
        PStmt::Assign(x, e) => {
            let _ = write!(out, "(assign {x} ");
            w_int(e, out);
            out.push(')');
        }
        PStmt::Seq(a, b) => {
            out.push_str("(seq ");
            w_stmt(a, out);
            out.push(' ');
            w_stmt(b, out);
            out.push(')');
        }
        PStmt::If(c, a, b) => {
            out.push_str("(if ");
            w_bool(c, out);
            out.push(' ');
            w_stmt(a, out);
            out.push(' ');
            w_stmt(b, out);
            out.push(')');
        }
        PStmt::While(c, b) => {
            out.push_str("(while ");
            w_bool(c, out);
            out.push(' ');
            w_stmt(b, out);
            out.push(')');
        }
        PStmt::Notify(id, b) => {
            let _ = write!(out, "(notify {id} {b})");
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
enum Tok {
    Open,
    Close,
    Atom(String),
}

fn tokenize(src: &str) -> std::vec::IntoIter<Tok> {
    let mut toks = Vec::new();
    let mut atom = String::new();
    for ch in src.chars() {
        if ch == '(' || ch == ')' || ch.is_whitespace() {
            if !atom.is_empty() {
                toks.push(Tok::Atom(std::mem::take(&mut atom)));
            }
            match ch {
                '(' => toks.push(Tok::Open),
                ')' => toks.push(Tok::Close),
                _ => {}
            }
        } else {
            atom.push(ch);
        }
    }
    if !atom.is_empty() {
        toks.push(Tok::Atom(atom));
    }
    toks.into_iter()
}

type Toks = std::vec::IntoIter<Tok>;

fn expect_open(toks: &mut Toks) -> Result<(), String> {
    match toks.next() {
        Some(Tok::Open) => Ok(()),
        other => Err(format!("expected `(`, found {other:?}")),
    }
}

fn expect_close(toks: &mut Toks) -> Result<(), String> {
    match toks.next() {
        Some(Tok::Close) => Ok(()),
        other => Err(format!("expected `)`, found {other:?}")),
    }
}

fn atom(toks: &mut Toks) -> Result<String, String> {
    match toks.next() {
        Some(Tok::Atom(a)) => Ok(a),
        other => Err(format!("expected atom, found {other:?}")),
    }
}

fn head(toks: &mut Toks) -> Result<String, String> {
    expect_open(toks)?;
    atom(toks)
}

fn num<T: std::str::FromStr>(toks: &mut Toks) -> Result<T, String> {
    let a = atom(toks)?;
    a.parse().map_err(|_| format!("bad number {a:?}"))
}

fn parse_int(toks: &mut Toks) -> Result<PInt, String> {
    let h = head(toks)?;
    let e = match h.as_str() {
        "int" => PInt::Const(num(toks)?),
        "var" => PInt::Var(atom(toks)?),
        "call" => {
            let f = atom(toks)?;
            let mut args = Vec::new();
            // Arguments run until the closing paren.
            loop {
                match toks.as_slice().first() {
                    Some(Tok::Close) => break,
                    _ => args.push(parse_int(toks)?),
                }
            }
            return finish(toks, PInt::Call(f, args));
        }
        "add" | "sub" | "mul" => {
            let op = match h.as_str() {
                "add" => IntOp::Add,
                "sub" => IntOp::Sub,
                _ => IntOp::Mul,
            };
            let a = parse_int(toks)?;
            let b = parse_int(toks)?;
            PInt::Bin(op, Box::new(a), Box::new(b))
        }
        other => return Err(format!("unknown int form {other:?}")),
    };
    finish(toks, e)
}

fn finish<T>(toks: &mut Toks, v: T) -> Result<T, String> {
    expect_close(toks)?;
    Ok(v)
}

fn parse_bool(toks: &mut Toks) -> Result<PBool, String> {
    let h = head(toks)?;
    let e = match h.as_str() {
        "true" => PBool::Const(true),
        "false" => PBool::Const(false),
        "lt" | "le" | "eq" => {
            let op = match h.as_str() {
                "lt" => CmpOp::Lt,
                "le" => CmpOp::Le,
                _ => CmpOp::Eq,
            };
            let a = parse_int(toks)?;
            let b = parse_int(toks)?;
            PBool::Cmp(op, a, b)
        }
        "not" => PBool::Not(Box::new(parse_bool(toks)?)),
        "and" | "or" => {
            let op = if h == "and" { BoolOp::And } else { BoolOp::Or };
            let a = parse_bool(toks)?;
            let b = parse_bool(toks)?;
            PBool::Bin(op, Box::new(a), Box::new(b))
        }
        other => return Err(format!("unknown bool form {other:?}")),
    };
    finish(toks, e)
}

fn parse_stmt(toks: &mut Toks) -> Result<PStmt, String> {
    let h = head(toks)?;
    let s = match h.as_str() {
        "skip" => PStmt::Skip,
        "assign" => {
            let x = atom(toks)?;
            let e = parse_int(toks)?;
            PStmt::Assign(x, e)
        }
        "seq" => {
            let a = parse_stmt(toks)?;
            let b = parse_stmt(toks)?;
            PStmt::Seq(Box::new(a), Box::new(b))
        }
        "if" => {
            let c = parse_bool(toks)?;
            let a = parse_stmt(toks)?;
            let b = parse_stmt(toks)?;
            PStmt::If(c, Box::new(a), Box::new(b))
        }
        "while" => {
            let c = parse_bool(toks)?;
            let b = parse_stmt(toks)?;
            PStmt::While(c, Box::new(b))
        }
        "notify" => {
            let id = num(toks)?;
            let b = match atom(toks)?.as_str() {
                "true" => true,
                "false" => false,
                other => return Err(format!("bad notify flag {other:?}")),
            };
            PStmt::Notify(id, b)
        }
        other => return Err(format!("unknown stmt form {other:?}")),
    };
    finish(toks, s)
}

fn parse_program(toks: &mut Toks) -> Result<PortableProgram, String> {
    let h = head(toks)?;
    if h != "program" {
        return Err(format!("expected `program`, found {h:?}"));
    }
    let id = num(toks)?;
    let ph = head(toks)?;
    if ph != "params" {
        return Err(format!("expected `params`, found {ph:?}"));
    }
    let mut params = Vec::new();
    loop {
        match toks.next() {
            Some(Tok::Atom(a)) => params.push(a),
            Some(Tok::Close) => break,
            other => return Err(format!("expected parameter name or `)`, found {other:?}")),
        }
    }
    let body = parse_stmt(toks)?;
    // Optional trailing `(prefilter …)` section (absent in plans written
    // before pushdown existed — those still parse).
    let prefilter = match toks.as_slice().first() {
        Some(Tok::Open) => {
            let ph = head(toks)?;
            if ph != "prefilter" {
                return Err(format!("expected `prefilter`, found {ph:?}"));
            }
            let pf = parse_bool(toks)?;
            expect_close(toks)?;
            Some(pf)
        }
        _ => None,
    };
    finish(
        toks,
        PortableProgram {
            id,
            params,
            body,
            prefilter,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use udf_lang::parse::parse_program as parse_src;
    use udf_lang::pretty;

    #[test]
    fn program_roundtrip_through_portable() {
        let mut i = Interner::new();
        let p = parse_src(
            "program f @3 (price, city) {
                 x := lookup(city) + 1;
                 if (x < 10 && price < 200) { notify true; } else { notify @4 false; }
                 while (x > 0) { x := x - 1; }
             }",
            &mut i,
        )
        .expect("test source parses");
        let portable = PortableProgram::from_program(&p, &i);
        let back = portable.to_program(&mut i);
        assert_eq!(pretty::program(&p, &i), pretty::program(&back, &i));
    }

    #[test]
    fn sexpr_roundtrip_preserves_generated_names() {
        let body = PStmt::Seq(
            Box::new(PStmt::Assign(
                "u0$x%3".to_owned(),
                PInt::Bin(
                    IntOp::Add,
                    Box::new(PInt::Call("toLower".to_owned(), vec![PInt::Var("a".to_owned())])),
                    Box::new(PInt::Const(-7)),
                ),
            )),
            Box::new(PStmt::If(
                PBool::Bin(
                    BoolOp::Or,
                    Box::new(PBool::Cmp(
                        CmpOp::Le,
                        PInt::Var("u0$x%3".to_owned()),
                        PInt::Const(0),
                    )),
                    Box::new(PBool::Not(Box::new(PBool::Const(false)))),
                ),
                Box::new(PStmt::Notify(5, true)),
                Box::new(PStmt::Skip),
            )),
        );
        let p = PortableProgram {
            id: 9,
            params: vec!["a".to_owned(), "b".to_owned()],
            body,
            prefilter: Some(PBool::Cmp(
                CmpOp::Le,
                PInt::Const(1),
                PInt::Var("b".to_owned()),
            )),
        };
        let wire = p.to_sexpr();
        assert!(!wire.contains('\n'));
        let q = PortableProgram::parse_sexpr(&wire).expect("wire form parses");
        assert_eq!(p, q);
    }

    #[test]
    fn sexpr_without_prefilter_section_still_parses() {
        // Plans snapshotted before pushdown existed carry no section.
        let p = PortableProgram::parse_sexpr("(program 1 (params x) (notify 1 false))")
            .expect("legacy wire form parses");
        assert_eq!(p.prefilter, None);
        assert!(!p.to_sexpr().contains("prefilter"));
    }

    #[test]
    fn rehydration_into_fresh_interner_prints_identically() {
        let mut i1 = Interner::new();
        let p = parse_src("program f @1 (x) { y := x * 3; notify true; }", &mut i1)
            .expect("test source parses");
        let portable = PortableProgram::from_program(&p, &i1);
        let mut i2 = Interner::new();
        let q = portable.to_program(&mut i2);
        assert_eq!(pretty::program(&p, &i1), pretty::program(&q, &i2));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(PortableProgram::parse_sexpr("(program 1 (params) (skip)").is_err());
        assert!(PortableProgram::parse_sexpr("(program 1 (params) (frob))").is_err());
        assert!(PortableProgram::parse_sexpr("(program 1 (params) (skip)))").is_err());
    }

    #[test]
    fn agg_plan_roundtrip_through_portable_and_wire() {
        let mut i = Interner::new();
        let defs = udf_lang::agg::parse_aggs(
            "aggregate sumsq @7 (x, y) {
                 state s = 0;
                 state n = -3;
                 fold { s := s + x * x; n := n + 1; }
                 merge { s := s + rhs_s; n := n + rhs_n + 3; }
             }
             aggregate hits @8 (x, y) {
                 state h = 0;
                 fold { if (y < 10) { h := h + 1; } else { skip; } }
                 merge { h := h + rhs_h; }
             }",
            &mut i,
        )
        .expect("test aggs parse");
        let plan = PortableAggPlan::from_defs(&defs, &[true, false], &i);
        let wire = plan.to_sexpr();
        assert!(!wire.contains('\n'));
        let parsed = PortableAggPlan::parse_sexpr(&wire).expect("wire form parses");
        assert_eq!(plan, parsed);

        // Rehydrating into a fresh interner reproduces the definitions.
        let mut i2 = Interner::new();
        let back = parsed.to_defs(&mut i2).expect("stored defs validate");
        assert_eq!(back.len(), 2);
        for (orig, got) in defs.iter().zip(&back) {
            assert_eq!(orig.id, got.id);
            assert_eq!(orig.state.len(), got.state.len());
            assert_eq!(
                udf_lang::agg::agg_hash(orig, &i),
                udf_lang::agg::agg_hash(got, &i2),
                "alpha-invariant hash must survive the round trip"
            );
        }
    }

    #[test]
    fn agg_plan_parse_rejects_garbage() {
        assert!(PortableAggPlan::parse_sexpr("(aggplan (proved true))").is_err());
        assert!(PortableAggPlan::parse_sexpr(
            "(aggplan (proved yes) (aggregate 1 (params) (state) (fold (skip)) (merge (skip))))"
        )
        .is_err());
        assert!(PortableAggPlan::parse_sexpr(
            "(aggplan (proved true) (aggregate 1 (params) (state) (fold (skip))))"
        )
        .is_err());
    }
}
