//! Textual cache snapshots for warm starts across processes.
//!
//! The format is line-oriented and hand-rolled (the build is offline; no
//! serde). Keys are canonical hashes — stable across processes by
//! construction — and programs are the single-line S-expressions of
//! [`crate::portable`], so a snapshot written by one run primes the next.
//!
//! Format **v2** makes snapshots crash-safe: every entry header carries the
//! byte length of its payload and an FNV-1a 64 checksum over it, writes go
//! through a temp file renamed into place (a crash mid-write never leaves a
//! half-written snapshot at the target path), and
//! [`load_recovering`] salvages around corrupt or truncated entries instead
//! of erroring the whole file:
//!
//! ```text
//! plan-cache-snapshot v2
//! entry 00f3…9a 113 a1b2c3d4e5f60718   # key, payload bytes, FNV-1a 64
//! tier full                            # payload: tier | stat | program
//! stat entailment_queries 131          # unknown stat names are skipped on
//! stat rules.if3 2                     # load (forward compatibility)
//! program (program 1 (params a) (skip))
//! end
//! ```
//!
//! Strict loading ([`load`]) still accepts the checksum-free **v1** format
//! written by earlier releases; [`save`] always writes v2.

use crate::framing::{self, byte_line, RecoveryIncident};
use crate::portable::PortablePlan;
use crate::{CacheConfig, CachedPlan, PlanCache, PlanKey, PortableAggPlan, PortableProgram};
use consolidate::{ConsolidationStats, DegradationTier};
use std::io;
use std::path::Path;

const HEADER_V1: &str = "plan-cache-snapshot v1";
const HEADER_V2: &str = "plan-cache-snapshot v2";

/// Incident source tag for the shared [`RecoveryIncident`] shape.
const SUBSYSTEM: &str = "plan-cache";

fn stat_fields(s: &ConsolidationStats) -> Vec<(&'static str, u64)> {
    vec![
        ("entailment_queries", s.entailment_queries),
        ("memo_hits", s.memo_hits),
        ("pairs_consolidated", s.pairs_consolidated),
        ("pairs_degraded", s.pairs_degraded),
        ("rules.if_eliminated", s.rules.if_eliminated),
        ("rules.if3", s.rules.if3),
        ("rules.if4", s.rules.if4),
        ("rules.if5", s.rules.if5),
        ("rules.loop2", s.rules.loop2),
        ("rules.loop3", s.rules.loop3),
        ("rules.loop_seq", s.rules.loop_seq),
        ("rules.depth_fallbacks", s.rules.depth_fallbacks),
        ("rules.budget_fallbacks", s.rules.budget_fallbacks),
        ("solver.checks", s.solver.checks),
        ("solver.theory_checks", s.solver.theory_checks),
        ("solver.theory_conflicts", s.solver.theory_conflicts),
        ("solver.minimized_literals", s.solver.minimized_literals),
        ("solver.sat_decisions", s.solver.sat_decisions),
        ("solver.sat_conflicts", s.solver.sat_conflicts),
        ("solver.sat_propagations", s.solver.sat_propagations),
        ("solver.simplex_pivots", s.solver.simplex_pivots),
        ("solver.theory_rounds", s.solver.theory_rounds),
    ]
}

fn set_stat(s: &mut ConsolidationStats, name: &str, v: u64) {
    match name {
        "entailment_queries" => s.entailment_queries = v,
        "memo_hits" => s.memo_hits = v,
        "pairs_consolidated" => s.pairs_consolidated = v,
        "pairs_degraded" => s.pairs_degraded = v,
        "rules.if_eliminated" => s.rules.if_eliminated = v,
        "rules.if3" => s.rules.if3 = v,
        "rules.if4" => s.rules.if4 = v,
        "rules.if5" => s.rules.if5 = v,
        "rules.loop2" => s.rules.loop2 = v,
        "rules.loop3" => s.rules.loop3 = v,
        "rules.loop_seq" => s.rules.loop_seq = v,
        "rules.depth_fallbacks" => s.rules.depth_fallbacks = v,
        "rules.budget_fallbacks" => s.rules.budget_fallbacks = v,
        "solver.checks" => s.solver.checks = v,
        "solver.theory_checks" => s.solver.theory_checks = v,
        "solver.theory_conflicts" => s.solver.theory_conflicts = v,
        "solver.minimized_literals" => s.solver.minimized_literals = v,
        "solver.sat_decisions" => s.solver.sat_decisions = v,
        "solver.sat_conflicts" => s.solver.sat_conflicts = v,
        "solver.sat_propagations" => s.solver.sat_propagations = v,
        "solver.simplex_pivots" => s.solver.simplex_pivots = v,
        "solver.theory_rounds" => s.solver.theory_rounds = v,
        // Unknown stat names come from newer writers; skip them.
        _ => {}
    }
}

/// Renders one entry's payload — the `tier`/`stat`/`program` lines the
/// header's length and checksum cover.
fn render_payload(plan: &CachedPlan) -> String {
    let mut payload = String::new();
    payload.push_str(&format!("tier {}\n", plan.tier.as_str()));
    for (name, v) in stat_fields(&plan.stats) {
        payload.push_str(&format!("stat {name} {v}\n"));
    }
    match &plan.plan {
        PortablePlan::Program(p) => payload.push_str(&format!("program {}\n", p.to_sexpr())),
        PortablePlan::Agg(a) => payload.push_str(&format!("aggplan {}\n", a.to_sexpr())),
    }
    payload
}

pub(crate) fn save(cache: &PlanCache, path: &Path) -> io::Result<()> {
    let mut out = String::new();
    out.push_str(HEADER_V2);
    out.push('\n');
    for (key, plan) in cache.entries() {
        let payload = render_payload(&plan);
        out.push_str(&framing::render_frame("entry", &[key.to_string()], &payload));
    }
    // Atomic publish (shared [`framing::atomic_write`] idiom): readers see
    // either the old snapshot or the complete new one — never a half-written
    // file — and an I/O error on any step leaves the target untouched.
    framing::atomic_write(path, out.as_bytes())
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn parse_tier(s: &str) -> Result<DegradationTier, String> {
    match s {
        "full" => Ok(DegradationTier::Full),
        "partial" => Ok(DegradationTier::Partial),
        "sequential" => Ok(DegradationTier::Sequential),
        other => Err(format!("unknown tier {other:?}")),
    }
}

/// Parses one v2 payload (the `tier`/`stat`/`program` lines) into a cached
/// plan. Any malformed line is an error — in salvage mode the caller skips
/// the entry, in strict mode it fails the load.
fn parse_payload(payload: &str) -> Result<CachedPlan, String> {
    let mut tier = None;
    let mut stats = ConsolidationStats::default();
    let mut plan: Option<PortablePlan> = None;
    for line in payload.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let (word, rest) = line.split_once(' ').unwrap_or((line, ""));
        match word {
            "tier" => tier = Some(parse_tier(rest)?),
            "stat" => {
                let (name, val) = rest
                    .split_once(' ')
                    .ok_or("stat needs a name and a value")?;
                let v: u64 = val.parse().map_err(|_| "bad stat value".to_owned())?;
                set_stat(&mut stats, name, v);
            }
            "program" => {
                if plan.is_some() {
                    return Err("entry carries two plans".to_owned());
                }
                plan = Some(PortablePlan::Program(Box::new(
                    PortableProgram::parse_sexpr(rest).map_err(|e| format!("bad program: {e}"))?,
                )));
            }
            "aggplan" => {
                if plan.is_some() {
                    return Err("entry carries two plans".to_owned());
                }
                plan = Some(PortablePlan::Agg(
                    PortableAggPlan::parse_sexpr(rest).map_err(|e| format!("bad aggplan: {e}"))?,
                ));
            }
            other => return Err(format!("unknown payload directive {other:?}")),
        }
    }
    stats.tier = tier.ok_or("entry missing tier")?;
    match plan.ok_or("entry missing program")? {
        PortablePlan::Program(p) => Ok(CachedPlan::new(*p, stats)),
        PortablePlan::Agg(a) => Ok(CachedPlan::new_agg(a, stats)),
    }
}

/// Account of a lenient snapshot load (see [`PlanCache::load_recovering`]).
///
/// Every entry header the loader recognizes is counted in `total` and lands
/// in exactly one of `loaded` (verified and inserted) or `salvaged` (skipped
/// because its payload failed the length, checksum, or shape checks), so
/// `loaded + salvaged == total` always holds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotRecovery {
    /// Entry headers recognized in the file.
    pub total: usize,
    /// Entries that verified and were inserted into the cache.
    pub loaded: usize,
    /// Entries skipped because they were corrupt or truncated.
    pub salvaged: usize,
    /// One incident per skipped entry (or rejected header), in the
    /// [`RecoveryIncident`] shape shared with the `udf-serve` journal.
    pub incidents: Vec<RecoveryIncident>,
}

impl SnapshotRecovery {
    /// `true` when nothing was skipped.
    pub fn is_clean(&self) -> bool {
        self.salvaged == 0 && self.incidents.is_empty()
    }
}

/// Parses one v2 entry header via the shared framing, extracting the key.
fn parse_entry_header(line: &[u8]) -> Result<(u128, framing::FrameHeader), String> {
    let header = framing::parse_frame_header(line, "entry")?;
    if header.fields.len() != 1 {
        return Err("entry header needs exactly one key field".to_owned());
    }
    let key = u128::from_str_radix(&header.fields[0], 16).map_err(|_| "bad key hex".to_owned())?;
    Ok((key, header))
}

/// The shared v2 parser. In lenient mode every malformed entry is skipped
/// and accounted; in strict mode (`load`) the first incident fails the load.
fn parse_v2(bytes: &[u8], cache: &PlanCache) -> SnapshotRecovery {
    let mut recovery = SnapshotRecovery::default();
    // Skip the header line (the caller verified it).
    let (_, mut pos) = byte_line(bytes, 0);
    while pos < bytes.len() {
        let (line, next) = byte_line(bytes, pos);
        if !line.starts_with(b"entry ") {
            // Blank separators, the `end` of a salvaged-over entry, or
            // corrupt debris between entries: not an entry, not counted.
            pos = next;
            continue;
        }
        recovery.total += 1;
        // Verify the entry in stages; the first failure salvages it: the
        // incident is recorded, the scan resumes at `resume`, and the outer
        // loop hunts for the next `entry ` line from there.
        match verify_entry(bytes, line, next, cache) {
            Ok(resume) => {
                recovery.loaded += 1;
                pos = resume;
            }
            Err((resume, msg)) => {
                recovery.salvaged += 1;
                recovery.incidents.push(RecoveryIncident::new(SUBSYSTEM, msg));
                pos = resume;
            }
        }
    }
    recovery
}

/// Checks one entry (header at `line`, payload starting at `payload_start`)
/// and inserts it on success. Returns the offset to continue scanning from —
/// past the `end` terminator on success, at the best guess for the next
/// header on failure (with the incident message).
fn verify_entry(
    bytes: &[u8],
    line: &[u8],
    payload_start: usize,
    cache: &PlanCache,
) -> Result<usize, (usize, String)> {
    let (key, header) =
        parse_entry_header(line).map_err(|e| (payload_start, format!("entry skipped: {e}")))?;
    let key_text = format!("{key:032x}");
    let (payload, resume) = framing::check_frame(bytes, &header, payload_start)
        .map_err(|(resume, e)| (resume, format!("entry {key_text} skipped: {e}")))?;
    let plan = parse_payload(payload).map_err(|e| {
        let payload_end = payload_start + header.len;
        (payload_end, format!("entry {key_text} skipped: {e}"))
    })?;
    cache.insert(PlanKey(key), plan);
    Ok(resume)
}

/// Strict legacy parser for the checksum-free v1 format.
fn load_v1(text: &str, cache: &PlanCache) -> io::Result<()> {
    let mut lines = text.lines();
    let _header = lines.next();
    let mut pending: Option<(
        PlanKey,
        Option<DegradationTier>,
        ConsolidationStats,
        Option<PortableProgram>,
    )> = None;
    for (n, line) in lines.enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let (word, rest) = line.split_once(' ').unwrap_or((line, ""));
        let at = |msg: &str| bad(format!("line {}: {msg}", n + 2));
        match word {
            "entry" => {
                if pending.is_some() {
                    return Err(at("entry begins before previous `end`"));
                }
                let raw = u128::from_str_radix(rest, 16).map_err(|_| at("bad key hex"))?;
                pending = Some((PlanKey(raw), None, ConsolidationStats::default(), None));
            }
            "tier" => {
                let p = pending.as_mut().ok_or_else(|| at("tier outside entry"))?;
                p.1 = Some(parse_tier(rest).map_err(|e| at(&e))?);
            }
            "stat" => {
                let p = pending.as_mut().ok_or_else(|| at("stat outside entry"))?;
                let (name, val) = rest
                    .split_once(' ')
                    .ok_or_else(|| at("stat needs a name and a value"))?;
                let v: u64 = val.parse().map_err(|_| at("bad stat value"))?;
                set_stat(&mut p.2, name, v);
            }
            "program" => {
                let p = pending.as_mut().ok_or_else(|| at("program outside entry"))?;
                let prog = PortableProgram::parse_sexpr(rest)
                    .map_err(|e| at(&format!("bad program: {e}")))?;
                p.3 = Some(prog);
            }
            "end" => {
                let (key, tier, mut stats, program) =
                    pending.take().ok_or_else(|| at("end outside entry"))?;
                let tier = tier.ok_or_else(|| at("entry missing tier"))?;
                let program = program.ok_or_else(|| at("entry missing program"))?;
                stats.tier = tier;
                cache.insert(key, CachedPlan::new(program, stats));
            }
            other => return Err(at(&format!("unknown directive {other:?}"))),
        }
    }
    if pending.is_some() {
        return Err(bad("snapshot truncated inside an entry"));
    }
    Ok(())
}

fn header_of(bytes: &[u8]) -> &[u8] {
    byte_line(bytes, 0).0
}

pub(crate) fn load(path: &Path, config: CacheConfig) -> io::Result<PlanCache> {
    let bytes = std::fs::read(path)?;
    let cache = PlanCache::new(config);
    match header_of(&bytes) {
        h if h == HEADER_V2.as_bytes() => {
            let recovery = parse_v2(&bytes, &cache);
            match recovery.incidents.first() {
                None => Ok(cache),
                Some(first) => Err(bad(first.detail.clone())),
            }
        }
        h if h == HEADER_V1.as_bytes() => {
            let text = std::str::from_utf8(&bytes)
                .map_err(|_| bad("v1 snapshot is not valid UTF-8"))?;
            load_v1(text, &cache)?;
            Ok(cache)
        }
        _ => Err(bad("missing snapshot header")),
    }
}

pub(crate) fn load_recovering(
    path: &Path,
    config: CacheConfig,
) -> io::Result<(PlanCache, SnapshotRecovery)> {
    let bytes = std::fs::read(path)?;
    let cache = PlanCache::new(config);
    match header_of(&bytes) {
        h if h == HEADER_V2.as_bytes() => {
            let recovery = parse_v2(&bytes, &cache);
            Ok((cache, recovery))
        }
        h if h == HEADER_V1.as_bytes() => {
            // Legacy snapshots have no per-entry checksums to salvage with;
            // parse strictly and degrade to an empty cache on failure.
            let strict = std::str::from_utf8(&bytes)
                .map_err(|_| "v1 snapshot is not valid UTF-8".to_owned())
                .and_then(|text| load_v1(text, &cache).map_err(|e| e.to_string()));
            match strict {
                Ok(()) => {
                    let n = cache.len();
                    Ok((
                        cache,
                        SnapshotRecovery {
                            total: n,
                            loaded: n,
                            ..SnapshotRecovery::default()
                        },
                    ))
                }
                Err(e) => Ok((
                    PlanCache::new(config),
                    SnapshotRecovery {
                        incidents: vec![RecoveryIncident::new(
                            SUBSYSTEM,
                            format!("v1 snapshot unreadable, starting cold: {e}"),
                        )],
                        ..SnapshotRecovery::default()
                    },
                )),
            }
        }
        _ => Ok((
            cache,
            SnapshotRecovery {
                incidents: vec![RecoveryIncident::new(
                    SUBSYSTEM,
                    "unrecognized snapshot header, starting cold",
                )],
                ..SnapshotRecovery::default()
            },
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::fnv64;
    use crate::portable::{PInt, PStmt};

    fn sample_cache() -> PlanCache {
        let cache = PlanCache::default();
        let mut stats = ConsolidationStats {
            entailment_queries: 41,
            memo_hits: 3,
            pairs_consolidated: 2,
            ..ConsolidationStats::default()
        };
        stats.rules.if3 = 1;
        stats.solver.checks = 17;
        stats.tier = DegradationTier::Partial;
        let plan = CachedPlan::new(
            PortableProgram {
                id: 4,
                params: vec!["price".to_owned()],
                body: PStmt::Seq(
                    Box::new(PStmt::Assign(
                        "u0$x%2".to_owned(),
                        PInt::Bin(
                            udf_lang::ast::IntOp::Mul,
                            Box::new(PInt::Var("price".to_owned())),
                            Box::new(PInt::Const(3)),
                        ),
                    )),
                    Box::new(PStmt::Notify(4, true)),
                ),
                prefilter: Some(crate::portable::PBool::Cmp(
                    udf_lang::ast::CmpOp::Le,
                    PInt::Const(10),
                    PInt::Var("price".to_owned()),
                )),
            },
            stats,
        );
        cache.insert(PlanKey(0xdead_beef_0000_0001), plan);
        cache
    }

    fn assert_same_entries(a: &PlanCache, b: &PlanCache) {
        let a = a.entries();
        let b = b.entries();
        assert_eq!(a.len(), b.len());
        for ((ka, pa), (kb, pb)) in a.iter().zip(&b) {
            assert_eq!(ka, kb);
            assert_eq!(pa.plan, pb.plan);
            assert_eq!(pa.stats, pb.stats);
            assert_eq!(pa.tier, pb.tier);
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("plan-cache-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.txt");
        let cache = sample_cache();
        cache.save(&path).unwrap();
        let loaded = PlanCache::load(&path, CacheConfig::default()).unwrap();
        assert_same_entries(&cache, &loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_leaves_no_temp_file_behind() {
        let dir = std::env::temp_dir().join("plan-cache-test-atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.txt");
        sample_cache().save(&path).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be renamed away");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_to_unwritable_path_errors_without_touching_target() {
        let dir = std::env::temp_dir().join("plan-cache-test-nodir");
        std::fs::remove_dir_all(&dir).ok();
        // Parent directory does not exist: create/rename must fail and no
        // partial file may appear anywhere under it.
        let path = dir.join("snap.txt");
        assert!(sample_cache().save(&path).is_err());
        assert!(!path.exists());
    }

    #[test]
    fn load_accepts_legacy_v1_snapshots() {
        let dir = std::env::temp_dir().join("plan-cache-test-v1");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.txt");
        std::fs::write(
            &path,
            "plan-cache-snapshot v1\n\
             entry 2a\n\
             tier full\n\
             stat rules.if3 5\n\
             program (program 1 (params a) (skip))\n\
             end\n",
        )
        .unwrap();
        let loaded = PlanCache::load(&path, CacheConfig::default()).unwrap();
        assert_eq!(loaded.len(), 1);
        let (cache, recovery) = PlanCache::load_recovering(
            &path,
            CacheConfig::default(),
            &udf_obs::RecorderCell::noop(),
        )
        .unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!((recovery.total, recovery.loaded, recovery.salvaged), (1, 1, 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_malformed_snapshots() {
        let dir = std::env::temp_dir().join("plan-cache-test-malformed");
        std::fs::create_dir_all(&dir).unwrap();
        let cases = [
            ("bad-header", "nope\n"),
            ("bad-key", "plan-cache-snapshot v1\nentry zz\nend\n"),
            (
                "missing-tier",
                "plan-cache-snapshot v1\nentry 00\nprogram (program 1 (params) (skip))\nend\n",
            ),
            ("truncated", "plan-cache-snapshot v1\nentry 00\ntier full\n"),
            (
                "v2-bad-crc",
                "plan-cache-snapshot v2\nentry 2a 34 0000000000000000\ntier full\nprogram (program 1 (params) (skip))\nend\n",
            ),
        ];
        for (name, text) in cases {
            let path = dir.join(name);
            std::fs::write(&path, text).unwrap();
            assert!(
                PlanCache::load(&path, CacheConfig::default()).is_err(),
                "case {name} must be rejected"
            );
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn unknown_stats_are_skipped() {
        let dir = std::env::temp_dir().join("plan-cache-test-forward");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.txt");
        let payload = "tier full\n\
                       stat rules.if3 5\n\
                       stat some.future.counter 9\n\
                       program (program 1 (params a) (skip))\n";
        std::fs::write(
            &path,
            format!(
                "plan-cache-snapshot v2\nentry 2a {} {:016x}\n{payload}end\n",
                payload.len(),
                fnv64(payload.as_bytes())
            ),
        )
        .unwrap();
        let loaded = PlanCache::load(&path, CacheConfig::default()).unwrap();
        let entries = loaded.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, PlanKey(0x2a));
        assert_eq!(entries[0].1.stats.rules.if3, 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn salvage_skips_corrupt_entries_and_keeps_the_rest() {
        let dir = std::env::temp_dir().join("plan-cache-test-salvage");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.txt");
        let cache = PlanCache::default();
        for id in 0..4u32 {
            cache.insert(
                PlanKey(u128::from(id) + 1),
                CachedPlan::new(
                    PortableProgram {
                        id,
                        params: vec!["x".to_owned()],
                        body: PStmt::Notify(id, true),
                        prefilter: None,
                    },
                    ConsolidationStats::default(),
                ),
            );
        }
        cache.save(&path).unwrap();
        // Flip one payload byte of the second entry: its checksum breaks,
        // the other three must still load.
        let mut bytes = std::fs::read(&path).unwrap();
        let needle = b"(program 1 ";
        let at = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .expect("second entry present");
        bytes[at + 9] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();

        let recorder = udf_obs::RecorderCell::memory();
        let (loaded, recovery) =
            PlanCache::load_recovering(&path, CacheConfig::default(), &recorder).unwrap();
        assert_eq!((recovery.total, recovery.loaded, recovery.salvaged), (4, 3, 1));
        assert_eq!(loaded.len(), 3);
        assert!(
            recovery.incidents[0].detail.contains("checksum mismatch"),
            "{recovery:?}"
        );
        assert_eq!(recovery.incidents[0].subsystem, "plan-cache");
        assert_eq!(
            recorder
                .snapshot()
                .unwrap()
                .counter(udf_obs::names::CACHE_SNAPSHOT_SALVAGED),
            1
        );
        // Strict load refuses the same file.
        assert!(PlanCache::load(&path, CacheConfig::default()).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn salvage_tolerates_truncation() {
        let dir = std::env::temp_dir().join("plan-cache-test-truncate");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.txt");
        let cache = sample_cache();
        cache.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut the file mid-payload: the sole entry is unloadable, but the
        // load still succeeds with an accounted salvage.
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let (loaded, recovery) = PlanCache::load_recovering(
            &path,
            CacheConfig::default(),
            &udf_obs::RecorderCell::noop(),
        )
        .unwrap();
        assert_eq!(loaded.len(), 0);
        assert_eq!((recovery.total, recovery.loaded, recovery.salvaged), (1, 0, 1));
        std::fs::remove_file(&path).ok();
    }
}
