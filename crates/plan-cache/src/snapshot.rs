//! Textual cache snapshots for warm starts across processes.
//!
//! The format is line-oriented and hand-rolled (the build is offline; no
//! serde). Keys are canonical hashes — stable across processes by
//! construction — and programs are the single-line S-expressions of
//! [`crate::portable`], so a snapshot written by one run primes the next.
//!
//! ```text
//! plan-cache-snapshot v1
//! entry 00f3…9a                  # 32 hex digits: the PlanKey
//! tier full                      # full | partial | sequential
//! stat entailment_queries 131    # `stat <name> <u64>`; unknown names are
//! stat rules.if3 2               # skipped on load (forward compatibility)
//! program (program 1 (params a) (skip))
//! end
//! ```
//!
//! Loading is strict about shape (missing `tier`/`program` lines, bad hex,
//! or a malformed S-expression fail with `InvalidData`) but lenient about
//! stat names, so adding counters never invalidates old snapshots.

use crate::{CacheConfig, CachedPlan, PlanCache, PlanKey, PortableProgram};
use consolidate::{ConsolidationStats, DegradationTier};
use std::io::{self, Write as _};
use std::path::Path;

const HEADER: &str = "plan-cache-snapshot v1";

fn stat_fields(s: &ConsolidationStats) -> Vec<(&'static str, u64)> {
    vec![
        ("entailment_queries", s.entailment_queries),
        ("memo_hits", s.memo_hits),
        ("pairs_consolidated", s.pairs_consolidated),
        ("pairs_degraded", s.pairs_degraded),
        ("rules.if_eliminated", s.rules.if_eliminated),
        ("rules.if3", s.rules.if3),
        ("rules.if4", s.rules.if4),
        ("rules.if5", s.rules.if5),
        ("rules.loop2", s.rules.loop2),
        ("rules.loop3", s.rules.loop3),
        ("rules.loop_seq", s.rules.loop_seq),
        ("rules.depth_fallbacks", s.rules.depth_fallbacks),
        ("rules.budget_fallbacks", s.rules.budget_fallbacks),
        ("solver.checks", s.solver.checks),
        ("solver.theory_checks", s.solver.theory_checks),
        ("solver.theory_conflicts", s.solver.theory_conflicts),
        ("solver.minimized_literals", s.solver.minimized_literals),
        ("solver.sat_decisions", s.solver.sat_decisions),
        ("solver.sat_conflicts", s.solver.sat_conflicts),
        ("solver.sat_propagations", s.solver.sat_propagations),
        ("solver.simplex_pivots", s.solver.simplex_pivots),
        ("solver.theory_rounds", s.solver.theory_rounds),
    ]
}

fn set_stat(s: &mut ConsolidationStats, name: &str, v: u64) {
    match name {
        "entailment_queries" => s.entailment_queries = v,
        "memo_hits" => s.memo_hits = v,
        "pairs_consolidated" => s.pairs_consolidated = v,
        "pairs_degraded" => s.pairs_degraded = v,
        "rules.if_eliminated" => s.rules.if_eliminated = v,
        "rules.if3" => s.rules.if3 = v,
        "rules.if4" => s.rules.if4 = v,
        "rules.if5" => s.rules.if5 = v,
        "rules.loop2" => s.rules.loop2 = v,
        "rules.loop3" => s.rules.loop3 = v,
        "rules.loop_seq" => s.rules.loop_seq = v,
        "rules.depth_fallbacks" => s.rules.depth_fallbacks = v,
        "rules.budget_fallbacks" => s.rules.budget_fallbacks = v,
        "solver.checks" => s.solver.checks = v,
        "solver.theory_checks" => s.solver.theory_checks = v,
        "solver.theory_conflicts" => s.solver.theory_conflicts = v,
        "solver.minimized_literals" => s.solver.minimized_literals = v,
        "solver.sat_decisions" => s.solver.sat_decisions = v,
        "solver.sat_conflicts" => s.solver.sat_conflicts = v,
        "solver.sat_propagations" => s.solver.sat_propagations = v,
        "solver.simplex_pivots" => s.solver.simplex_pivots = v,
        "solver.theory_rounds" => s.solver.theory_rounds = v,
        // Unknown stat names come from newer writers; skip them.
        _ => {}
    }
}

pub(crate) fn save(cache: &PlanCache, path: &Path) -> io::Result<()> {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for (key, plan) in cache.entries() {
        out.push_str(&format!("entry {key}\n"));
        out.push_str(&format!("tier {}\n", plan.tier.as_str()));
        for (name, v) in stat_fields(&plan.stats) {
            out.push_str(&format!("stat {name} {v}\n"));
        }
        out.push_str(&format!("program {}\n", plan.program.to_sexpr()));
        out.push_str("end\n");
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())?;
    Ok(())
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn parse_tier(s: &str) -> io::Result<DegradationTier> {
    match s {
        "full" => Ok(DegradationTier::Full),
        "partial" => Ok(DegradationTier::Partial),
        "sequential" => Ok(DegradationTier::Sequential),
        other => Err(bad(format!("unknown tier {other:?}"))),
    }
}

pub(crate) fn load(path: &Path, config: CacheConfig) -> io::Result<PlanCache> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines();
    if lines.next() != Some(HEADER) {
        return Err(bad("missing snapshot header"));
    }
    let cache = PlanCache::new(config);
    let mut pending: Option<(PlanKey, Option<DegradationTier>, ConsolidationStats, Option<PortableProgram>)> =
        None;
    for (n, line) in lines.enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let (word, rest) = line.split_once(' ').unwrap_or((line, ""));
        let at = |msg: &str| bad(format!("line {}: {msg}", n + 2));
        match word {
            "entry" => {
                if pending.is_some() {
                    return Err(at("entry begins before previous `end`"));
                }
                let raw = u128::from_str_radix(rest, 16).map_err(|_| at("bad key hex"))?;
                pending = Some((PlanKey(raw), None, ConsolidationStats::default(), None));
            }
            "tier" => {
                let p = pending.as_mut().ok_or_else(|| at("tier outside entry"))?;
                p.1 = Some(parse_tier(rest)?);
            }
            "stat" => {
                let p = pending.as_mut().ok_or_else(|| at("stat outside entry"))?;
                let (name, val) = rest
                    .split_once(' ')
                    .ok_or_else(|| at("stat needs a name and a value"))?;
                let v: u64 = val.parse().map_err(|_| at("bad stat value"))?;
                set_stat(&mut p.2, name, v);
            }
            "program" => {
                let p = pending.as_mut().ok_or_else(|| at("program outside entry"))?;
                let prog = PortableProgram::parse_sexpr(rest)
                    .map_err(|e| at(&format!("bad program: {e}")))?;
                p.3 = Some(prog);
            }
            "end" => {
                let (key, tier, mut stats, program) =
                    pending.take().ok_or_else(|| at("end outside entry"))?;
                let tier = tier.ok_or_else(|| at("entry missing tier"))?;
                let program = program.ok_or_else(|| at("entry missing program"))?;
                stats.tier = tier;
                cache.insert(key, CachedPlan::new(program, stats));
            }
            other => return Err(at(&format!("unknown directive {other:?}"))),
        }
    }
    if pending.is_some() {
        return Err(bad("snapshot truncated inside an entry"));
    }
    Ok(cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portable::{PInt, PStmt};

    fn sample_cache() -> PlanCache {
        let cache = PlanCache::default();
        let mut stats = ConsolidationStats {
            entailment_queries: 41,
            memo_hits: 3,
            pairs_consolidated: 2,
            ..ConsolidationStats::default()
        };
        stats.rules.if3 = 1;
        stats.solver.checks = 17;
        stats.tier = DegradationTier::Partial;
        let plan = CachedPlan::new(
            PortableProgram {
                id: 4,
                params: vec!["price".to_owned()],
                body: PStmt::Seq(
                    Box::new(PStmt::Assign(
                        "u0$x%2".to_owned(),
                        PInt::Bin(
                            udf_lang::ast::IntOp::Mul,
                            Box::new(PInt::Var("price".to_owned())),
                            Box::new(PInt::Const(3)),
                        ),
                    )),
                    Box::new(PStmt::Notify(4, true)),
                ),
            },
            stats,
        );
        cache.insert(PlanKey(0xdead_beef_0000_0001), plan);
        cache
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("plan-cache-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.txt");
        let cache = sample_cache();
        cache.save(&path).unwrap();
        let loaded = PlanCache::load(&path, CacheConfig::default()).unwrap();
        let a = cache.entries();
        let b = loaded.entries();
        assert_eq!(a.len(), b.len());
        for ((ka, pa), (kb, pb)) in a.iter().zip(&b) {
            assert_eq!(ka, kb);
            assert_eq!(pa.program, pb.program);
            assert_eq!(pa.stats, pb.stats);
            assert_eq!(pa.tier, pb.tier);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_malformed_snapshots() {
        let dir = std::env::temp_dir().join("plan-cache-test-malformed");
        std::fs::create_dir_all(&dir).unwrap();
        let cases = [
            ("bad-header", "nope\n"),
            ("bad-key", "plan-cache-snapshot v1\nentry zz\nend\n"),
            (
                "missing-tier",
                "plan-cache-snapshot v1\nentry 00\nprogram (program 1 (params) (skip))\nend\n",
            ),
            ("truncated", "plan-cache-snapshot v1\nentry 00\ntier full\n"),
        ];
        for (name, text) in cases {
            let path = dir.join(name);
            std::fs::write(&path, text).unwrap();
            assert!(
                PlanCache::load(&path, CacheConfig::default()).is_err(),
                "case {name} must be rejected"
            );
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn unknown_stats_are_skipped() {
        let dir = std::env::temp_dir().join("plan-cache-test-forward");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.txt");
        std::fs::write(
            &path,
            "plan-cache-snapshot v1\n\
             entry 2a\n\
             tier full\n\
             stat rules.if3 5\n\
             stat some.future.counter 9\n\
             program (program 1 (params a) (skip))\n\
             end\n",
        )
        .unwrap();
        let loaded = PlanCache::load(&path, CacheConfig::default()).unwrap();
        let entries = loaded.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, PlanKey(0x2a));
        assert_eq!(entries[0].1.stats.rules.if3, 5);
        std::fs::remove_file(&path).ok();
    }
}
