//! Property: snapshots round-trip. `save` followed by `load` reproduces
//! every entry — key, tier, statistics, and program — bit-for-bit, for
//! arbitrary portable programs (including the `$`/`%` names consolidation
//! manufactures, which the concrete syntax cannot express).

use plan_cache::portable::{PBool, PInt, PStmt};
use plan_cache::{CacheConfig, CachedPlan, PlanCache, PlanKey, PortableProgram};
use consolidate::{ConsolidationStats, DegradationTier};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use udf_lang::ast::{BoolOp, CmpOp, IntOp};

/// Names exercise the full token alphabet: anything but whitespace and
/// parentheses, in particular the reserved `$`/`%` of fresh local names.
fn name() -> impl Strategy<Value = String> {
    const CHARS: &[u8] = b"abcxyz0189$%@_.";
    prop::collection::vec(0usize..CHARS.len(), 0..8).prop_map(|ix| {
        let mut s = String::from("n");
        for i in ix {
            s.push(CHARS[i] as char);
        }
        s
    })
}

/// The vendored proptest has no `Arbitrary` for `u128`; glue two `u64`s.
fn key() -> impl Strategy<Value = u128> {
    (any::<u64>(), any::<u64>()).prop_map(|(h, l)| (u128::from(h) << 64) | u128::from(l))
}

fn pint() -> impl Strategy<Value = PInt> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(PInt::Const),
        name().prop_map(PInt::Var),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (name(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(f, args)| PInt::Call(f, args)),
            (
                prop_oneof![Just(IntOp::Add), Just(IntOp::Sub), Just(IntOp::Mul)],
                inner.clone(),
                inner
            )
                .prop_map(|(op, a, b)| PInt::Bin(op, Box::new(a), Box::new(b))),
        ]
    })
}

fn pbool() -> impl Strategy<Value = PBool> {
    let atom = prop_oneof![
        any::<bool>().prop_map(PBool::Const),
        (
            prop_oneof![Just(CmpOp::Lt), Just(CmpOp::Le), Just(CmpOp::Eq)],
            pint(),
            pint()
        )
            .prop_map(|(op, a, b)| PBool::Cmp(op, a, b)),
    ];
    atom.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|b| PBool::Not(Box::new(b))),
            (
                prop_oneof![Just(BoolOp::And), Just(BoolOp::Or)],
                inner.clone(),
                inner
            )
                .prop_map(|(op, a, b)| PBool::Bin(op, Box::new(a), Box::new(b))),
        ]
    })
}

fn pstmt(depth: u32) -> BoxedStrategy<PStmt> {
    if depth == 0 {
        prop_oneof![
            Just(PStmt::Skip),
            (name(), pint()).prop_map(|(x, t)| PStmt::Assign(x, t)),
            (any::<u32>(), any::<bool>()).prop_map(|(id, b)| PStmt::Notify(id, b)),
        ]
        .boxed()
    } else {
        prop_oneof![
            2 => (name(), pint()).prop_map(|(x, t)| PStmt::Assign(x, t)),
            1 => (pstmt(depth - 1), pstmt(depth - 1))
                .prop_map(|(a, b)| PStmt::Seq(Box::new(a), Box::new(b))),
            1 => (pbool(), pstmt(depth - 1), pstmt(depth - 1))
                .prop_map(|(c, a, b)| PStmt::If(c, Box::new(a), Box::new(b))),
            1 => (pbool(), pstmt(depth - 1))
                .prop_map(|(c, body)| PStmt::While(c, Box::new(body))),
        ]
        .boxed()
    }
}

fn program() -> impl Strategy<Value = PortableProgram> {
    (
        any::<u32>(),
        prop::collection::vec(name(), 0..4),
        pstmt(3),
    )
        .prop_map(|(id, params, body)| PortableProgram { id, params, body })
}

fn stats() -> impl Strategy<Value = ConsolidationStats> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        prop_oneof![
            Just(DegradationTier::Full),
            Just(DegradationTier::Partial),
            Just(DegradationTier::Sequential)
        ],
    )
        .prop_map(|(q, m, pc, sc, tier)| {
            let mut s = ConsolidationStats {
                entailment_queries: q,
                memo_hits: m,
                pairs_consolidated: pc,
                ..ConsolidationStats::default()
            };
            s.rules.if3 = q.rotate_left(7);
            s.solver.checks = sc;
            s.tier = tier;
            s
        })
}

static CASE: AtomicU64 = AtomicU64::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snapshot_round_trips(
        entries in prop::collection::vec((key(), program(), stats()), 0..5),
    ) {
        let dir = std::env::temp_dir().join("plan-cache-prop-snapshot");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("snap-{}.txt", CASE.fetch_add(1, Ordering::Relaxed)));

        let cache = PlanCache::default();
        for (key, prog, st) in &entries {
            cache.insert(PlanKey(*key), CachedPlan::new(prog.clone(), *st));
        }
        cache.save(&path).expect("save");
        let loaded = PlanCache::load(&path, CacheConfig::default()).expect("load");
        std::fs::remove_file(&path).ok();

        let a = cache.entries();
        let b = loaded.entries();
        prop_assert_eq!(a.len(), b.len());
        for ((ka, pa), (kb, pb)) in a.iter().zip(&b) {
            prop_assert_eq!(ka, kb);
            prop_assert_eq!(&pa.program, &pb.program);
            prop_assert_eq!(pa.stats, pb.stats);
            prop_assert_eq!(pa.tier, pb.tier);
        }
    }
}
