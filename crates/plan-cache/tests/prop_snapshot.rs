//! Properties of the snapshot codec:
//!
//! * round-trip — `save` followed by `load` reproduces every entry (key,
//!   tier, statistics, program) bit-for-bit, for arbitrary portable
//!   programs (including the `$`/`%` names consolidation manufactures,
//!   which the concrete syntax cannot express);
//! * crash safety — a snapshot put through arbitrary truncation and
//!   bit-flip corruption still loads via `load_recovering` without panics
//!   or errors, and the recovery accounting always satisfies
//!   `loaded + salvaged == total`.

use plan_cache::portable::{PBool, PInt, PSlot, PStmt};
use plan_cache::{
    CacheConfig, CachedPlan, PlanCache, PlanKey, PortableAggDef, PortableAggPlan, PortableProgram,
};
use consolidate::{ConsolidationStats, DegradationTier};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use udf_lang::ast::{BoolOp, CmpOp, IntOp};

/// Names exercise the full token alphabet: anything but whitespace and
/// parentheses, in particular the reserved `$`/`%` of fresh local names.
fn name() -> impl Strategy<Value = String> {
    const CHARS: &[u8] = b"abcxyz0189$%@_.";
    prop::collection::vec(0usize..CHARS.len(), 0..8).prop_map(|ix| {
        let mut s = String::from("n");
        for i in ix {
            s.push(CHARS[i] as char);
        }
        s
    })
}

/// The vendored proptest has no `Arbitrary` for `u128`; glue two `u64`s.
fn key() -> impl Strategy<Value = u128> {
    (any::<u64>(), any::<u64>()).prop_map(|(h, l)| (u128::from(h) << 64) | u128::from(l))
}

fn pint() -> impl Strategy<Value = PInt> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(PInt::Const),
        name().prop_map(PInt::Var),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (name(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(f, args)| PInt::Call(f, args)),
            (
                prop_oneof![Just(IntOp::Add), Just(IntOp::Sub), Just(IntOp::Mul)],
                inner.clone(),
                inner
            )
                .prop_map(|(op, a, b)| PInt::Bin(op, Box::new(a), Box::new(b))),
        ]
    })
}

fn pbool() -> impl Strategy<Value = PBool> {
    let atom = prop_oneof![
        any::<bool>().prop_map(PBool::Const),
        (
            prop_oneof![Just(CmpOp::Lt), Just(CmpOp::Le), Just(CmpOp::Eq)],
            pint(),
            pint()
        )
            .prop_map(|(op, a, b)| PBool::Cmp(op, a, b)),
    ];
    atom.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|b| PBool::Not(Box::new(b))),
            (
                prop_oneof![Just(BoolOp::And), Just(BoolOp::Or)],
                inner.clone(),
                inner
            )
                .prop_map(|(op, a, b)| PBool::Bin(op, Box::new(a), Box::new(b))),
        ]
    })
}

fn pstmt(depth: u32) -> BoxedStrategy<PStmt> {
    if depth == 0 {
        prop_oneof![
            Just(PStmt::Skip),
            (name(), pint()).prop_map(|(x, t)| PStmt::Assign(x, t)),
            (any::<u32>(), any::<bool>()).prop_map(|(id, b)| PStmt::Notify(id, b)),
        ]
        .boxed()
    } else {
        prop_oneof![
            2 => (name(), pint()).prop_map(|(x, t)| PStmt::Assign(x, t)),
            1 => (pstmt(depth - 1), pstmt(depth - 1))
                .prop_map(|(a, b)| PStmt::Seq(Box::new(a), Box::new(b))),
            1 => (pbool(), pstmt(depth - 1), pstmt(depth - 1))
                .prop_map(|(c, a, b)| PStmt::If(c, Box::new(a), Box::new(b))),
            1 => (pbool(), pstmt(depth - 1))
                .prop_map(|(c, body)| PStmt::While(c, Box::new(body))),
        ]
        .boxed()
    }
}

fn program() -> impl Strategy<Value = PortableProgram> {
    (
        any::<u32>(),
        prop::collection::vec(name(), 0..4),
        pstmt(3),
        prop_oneof![Just(None), pbool().prop_map(Some)],
    )
        .prop_map(|(id, params, body, prefilter)| PortableProgram {
            id,
            params,
            body,
            prefilter,
        })
}

fn stats() -> impl Strategy<Value = ConsolidationStats> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        prop_oneof![
            Just(DegradationTier::Full),
            Just(DegradationTier::Partial),
            Just(DegradationTier::Sequential)
        ],
    )
        .prop_map(|(q, m, pc, sc, tier)| {
            let mut s = ConsolidationStats {
                entailment_queries: q,
                memo_hits: m,
                pairs_consolidated: pc,
                ..ConsolidationStats::default()
            };
            s.rules.if3 = q.rotate_left(7);
            s.solver.checks = sc;
            s.tier = tier;
            s
        })
}

fn agg_def() -> impl Strategy<Value = PortableAggDef> {
    (
        any::<u32>(),
        prop::collection::vec(name(), 0..3),
        prop::collection::vec(
            (name(), any::<i64>(), name()).prop_map(|(n, init, rhs)| PSlot { name: n, init, rhs }),
            0..3,
        ),
        pstmt(2),
        pstmt(2),
    )
        .prop_map(|(id, params, state, fold, merge)| PortableAggDef {
            id,
            params,
            state,
            fold,
            merge,
        })
}

fn agg_plan() -> impl Strategy<Value = PortableAggPlan> {
    prop::collection::vec((agg_def(), any::<bool>()), 0..3).prop_map(|pairs| {
        let (defs, proved) = pairs.into_iter().unzip();
        PortableAggPlan { defs, proved }
    })
}

static CASE: AtomicU64 = AtomicU64::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snapshot_round_trips(
        entries in prop::collection::vec((key(), program(), stats()), 0..5),
    ) {
        let dir = std::env::temp_dir().join("plan-cache-prop-snapshot");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("snap-{}.txt", CASE.fetch_add(1, Ordering::Relaxed)));

        let cache = PlanCache::default();
        for (key, prog, st) in &entries {
            cache.insert(PlanKey(*key), CachedPlan::new(prog.clone(), *st));
        }
        cache.save(&path).expect("save");
        let loaded = PlanCache::load(&path, CacheConfig::default()).expect("load");
        std::fs::remove_file(&path).ok();

        let a = cache.entries();
        let b = loaded.entries();
        prop_assert_eq!(a.len(), b.len());
        for ((ka, pa), (kb, pb)) in a.iter().zip(&b) {
            prop_assert_eq!(ka, kb);
            prop_assert_eq!(&pa.plan, &pb.plan);
            prop_assert_eq!(pa.stats, pb.stats);
            prop_assert_eq!(pa.tier, pb.tier);
        }
    }

    #[test]
    fn agg_snapshot_round_trips(
        progs in prop::collection::vec((key(), program(), stats()), 0..3),
        aggs in prop::collection::vec((key(), agg_plan(), stats()), 0..3),
    ) {
        let dir = std::env::temp_dir().join("plan-cache-prop-agg-snapshot");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("snap-{}.txt", CASE.fetch_add(1, Ordering::Relaxed)));

        // Program and aggregation entries share one snapshot file.
        let cache = PlanCache::default();
        for (key, prog, st) in &progs {
            cache.insert(PlanKey(*key), CachedPlan::new(prog.clone(), *st));
        }
        for (key, agg, st) in &aggs {
            cache.insert(PlanKey(*key), CachedPlan::new_agg(agg.clone(), *st));
        }
        cache.save(&path).expect("save");
        let loaded = PlanCache::load(&path, CacheConfig::default()).expect("load");
        std::fs::remove_file(&path).ok();

        let a = cache.entries();
        let b = loaded.entries();
        prop_assert_eq!(a.len(), b.len());
        for ((ka, pa), (kb, pb)) in a.iter().zip(&b) {
            prop_assert_eq!(ka, kb);
            prop_assert_eq!(&pa.plan, &pb.plan);
            prop_assert_eq!(pa.stats, pb.stats);
            prop_assert_eq!(pa.tier, pb.tier);
        }
    }

    #[test]
    fn corrupted_snapshots_always_salvage(
        entries in prop::collection::vec((key(), program(), stats()), 0..5),
        truncate in (any::<bool>(), any::<u64>()),
        flips in prop::collection::vec((any::<u64>(), 0u32..8), 0..6),
    ) {
        let dir = std::env::temp_dir().join("plan-cache-prop-corrupt");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("snap-{}.txt", CASE.fetch_add(1, Ordering::Relaxed)));

        let cache = PlanCache::default();
        for (key, prog, st) in &entries {
            cache.insert(PlanKey(*key), CachedPlan::new(prog.clone(), *st));
        }
        cache.save(&path).expect("save");

        // Simulate a crash (truncation at an arbitrary point) and/or bit
        // rot (flips at arbitrary offsets) over the raw snapshot bytes.
        let mut bytes = std::fs::read(&path).expect("read snapshot");
        let pristine_len = bytes.len();
        if truncate.0 {
            bytes.truncate((truncate.1 as usize) % (pristine_len + 1));
        }
        for (off, bit) in &flips {
            if !bytes.is_empty() {
                let i = (*off as usize) % bytes.len();
                bytes[i] ^= 1u8 << bit;
            }
        }
        let untouched = bytes.len() == pristine_len && flips.is_empty();
        std::fs::write(&path, &bytes).expect("rewrite corrupted snapshot");

        let recorder = udf_obs::RecorderCell::memory();
        let loaded = PlanCache::load_recovering(&path, CacheConfig::default(), &recorder);
        std::fs::remove_file(&path).ok();

        // Corruption is never an I/O error, never a panic.
        let (salvaged_cache, recovery) = loaded.expect("lenient load always succeeds");
        prop_assert_eq!(recovery.loaded + recovery.salvaged, recovery.total);
        // One incident per skipped entry, plus possibly one for a rejected
        // file header (which is not an entry and salvages nothing).
        prop_assert!(recovery.incidents.len() >= recovery.salvaged);
        prop_assert!(recovery.incidents.len() <= recovery.salvaged + 1);
        prop_assert_eq!(
            recorder
                .snapshot()
                .expect("memory recorder snapshots")
                .counter(udf_obs::names::CACHE_SNAPSHOT_SALVAGED),
            recovery.salvaged as u64
        );
        // Inserts can collapse duplicate keys but never exceed the loads.
        prop_assert!(salvaged_cache.len() <= recovery.loaded);
        // And when the corruption happened to be a no-op, nothing may be
        // lost: the salvage path must not reject healthy data.
        if untouched {
            prop_assert_eq!(recovery.salvaged, 0);
            prop_assert_eq!(salvaged_cache.len(), cache.len());
        }
    }
}
