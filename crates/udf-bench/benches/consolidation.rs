//! Consolidation-time benchmarks: the cost of `Π₁ ⊗ Π₂` and of the n-way
//! divide-and-conquer merge, per workload shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use udf_lang::cost::UniformFnCost;
use udf_lang::intern::Interner;

fn pair_straight_line(c: &mut Criterion) {
    c.bench_function("consolidate_pair_example1", |b| {
        b.iter(|| {
            let mut interner = Interner::new();
            let f1 = udf_lang::parse::parse_program(
                "program f1 @1 (airline, price) {
                     name := toLower(airline);
                     if (name == 1) { notify true; }
                     else { if (name == 2) { notify true; } else { notify false; } }
                 }",
                &mut interner,
            )
            .unwrap();
            let f2 = udf_lang::parse::parse_program(
                "program f2 @2 (airline, price) {
                     if (price >= 200) { notify false; }
                     else { if (toLower(airline) == 1) { notify true; } else { notify false; } }
                 }",
                &mut interner,
            )
            .unwrap();
            consolidate::consolidate_pair(
                &f1,
                &f2,
                &mut interner,
                &udf_lang::CostModel::default(),
                &UniformFnCost(30),
                &consolidate::Options::default(),
            )
            .unwrap()
        });
    });
}

fn pair_loops(c: &mut Criterion) {
    c.bench_function("consolidate_pair_example6_loops", |b| {
        b.iter(|| {
            let mut interner = Interner::new();
            let p1 = udf_lang::parse::parse_program(
                "program p1 @1 (alpha) {
                     i := alpha; x := 0;
                     while (i > 0) { i := i - 1; t1 := f(i); x := x + t1; }
                     if (x > 40) { notify true; } else { notify false; }
                 }",
                &mut interner,
            )
            .unwrap();
            let p2 = udf_lang::parse::parse_program(
                "program p2 @2 (alpha) {
                     j := alpha - 1; y := alpha;
                     while (j >= 0) { t2 := f(j); y := y + t2; j := j - 1; }
                     if (y > 40) { notify true; } else { notify false; }
                 }",
                &mut interner,
            )
            .unwrap();
            consolidate::consolidate_pair(
                &p1,
                &p2,
                &mut interner,
                &udf_lang::CostModel::default(),
                &UniformFnCost(60),
                &consolidate::Options::default(),
            )
            .unwrap()
        });
    });
}

fn many_way(c: &mut Criterion) {
    let mut group = c.benchmark_group("consolidate_many_weather_q1");
    group.sample_size(10);
    for &n in &[4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut interner = Interner::new();
                let _env = udf_data::weather::WeatherEnv::new(&mut interner);
                let fams = udf_data::weather::families();
                let programs = (fams[0].build)(n, 42, &mut interner);
                consolidate::consolidate_many(
                    &programs,
                    &mut interner,
                    &udf_lang::CostModel::default(),
                    &UniformFnCost(udf_data::weather::ACCESSOR_COST),
                    &consolidate::Options::default(),
                    false,
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, pair_straight_line, pair_loops, many_way);
criterion_main!(benches);
