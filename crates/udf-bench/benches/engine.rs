//! Execution-engine benchmarks: VM throughput in `where_many` versus
//! `where_consolidated` on a fixed workload — the steady-state gap the
//! paper's Figure 9 reports per family.

use criterion::{criterion_group, criterion_main, Criterion};
use naiad_lite::engine::{Engine, ExecMode, QuerySet};
use naiad_lite::env::UdfEnv;
use udf_lang::cost::UniformFnCost;
use udf_lang::intern::Interner;

struct Fixture {
    env: udf_data::weather::WeatherEnv,
    records: Vec<udf_data::weather::CityRecord>,
    qs: QuerySet,
}

fn fixture() -> Fixture {
    let mut interner = Interner::new();
    let env = udf_data::weather::WeatherEnv::new(&mut interner);
    let records = udf_data::weather::dataset_sized(100, 42);
    let fams = udf_data::weather::families();
    let programs = (fams[0].build)(16, 42, &mut interner); // Q1 × 16
    let cm = udf_lang::CostModel::default();
    let merged = consolidate::consolidate_many(
        &programs,
        &mut interner,
        &cm,
        &UniformFnCost(udf_data::weather::ACCESSOR_COST),
        &consolidate::Options::default(),
        false,
    )
    .unwrap();
    let qs = QuerySet::compile_many(&programs, &cm, &|f| env.fn_cost(f))
        .unwrap()
        .with_consolidated(&merged.program, &cm, &|f| env.fn_cost(f), merged.elapsed)
        .unwrap();
    Fixture { env, records, qs }
}

fn where_many(c: &mut Criterion) {
    let fx = fixture();
    let engine = Engine::new(1);
    c.bench_function("engine_where_many_weather_q1x16", |b| {
        b.iter(|| {
            engine
                .run(&fx.env, &fx.records, &fx.qs, ExecMode::Many, false)
                .unwrap()
        });
    });
}

fn where_consolidated(c: &mut Criterion) {
    let fx = fixture();
    let engine = Engine::new(1);
    c.bench_function("engine_where_consolidated_weather_q1x16", |b| {
        b.iter(|| {
            engine
                .run(&fx.env, &fx.records, &fx.qs, ExecMode::Consolidated, false)
                .unwrap()
        });
    });
}

criterion_group!(benches, where_many, where_consolidated);
criterion_main!(benches);
