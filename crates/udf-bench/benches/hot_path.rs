//! Hot-path ladder: the four evaluation strategies for one merged program,
//! from the tree-walking reference to the columnar batch executor.
//!
//! Each rung removes one source of per-record overhead:
//!
//! 1. **interp** — the AST interpreter (`udf_lang::interp`), the semantic
//!    reference. Walks the tree, hashes variable environments.
//! 2. **stack_vm** — the flattened stack bytecode (`naiad_lite::compile`),
//!    the engine's per-record backend.
//! 3. **reg_vm** — register bytecode (`naiad_lite::regcode`): basic blocks,
//!    constant folding, copy propagation; still one record at a time.
//! 4. **batch_vm** — the columnar backend (`naiad_lite::batch`): the same
//!    register bytecode over a struct-of-arrays batch, amortizing dispatch
//!    across lanes (includes the gather, as the engine pays it too).
//!
//! Sweeping the merged width (1/4/12/21 source queries) shows where the
//! columnar win comes from: wider merged programs have more straight-line
//! arithmetic per record for the batch loop to amortize.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use naiad_lite::batch::{BatchVm, RecordBatch};
use naiad_lite::compile::{Compiled, Vm, NOTIFY_NONE};
use naiad_lite::env::UdfEnv;
use naiad_lite::regcode::{RegProgram, RegVm};
use naiad_lite::DEFAULT_FUEL;
use udf_lang::cost::UniformFnCost;
use udf_lang::intern::Interner;

struct Fixture {
    interner: Interner,
    env: udf_data::weather::WeatherEnv,
    records: Vec<udf_data::weather::CityRecord>,
    merged: udf_lang::ast::Program,
    compiled: Compiled,
    reg: RegProgram,
}

fn fixture(n_queries: usize) -> Fixture {
    let mut interner = Interner::new();
    let env = udf_data::weather::WeatherEnv::new(&mut interner);
    let records = udf_data::weather::dataset_sized(256, 42);
    let fams = udf_data::weather::families();
    let programs = (fams[0].build)(n_queries, 42, &mut interner);
    let cm = udf_lang::CostModel::default();
    let merged = consolidate::consolidate_many(
        &programs,
        &mut interner,
        &cm,
        &UniformFnCost(udf_data::weather::ACCESSOR_COST),
        &consolidate::Options::default(),
        false,
    )
    .expect("bench queries consolidate");
    let query_ids: Vec<udf_lang::ast::ProgId> = programs.iter().map(|p| p.id).collect();
    let compiled = Compiled::compile(&merged.program, &query_ids, &cm, &|f| env.fn_cost(f))
        .expect("merged compiles");
    let reg = RegProgram::lower(&compiled);
    Fixture {
        interner,
        env,
        records,
        merged: merged.program,
        compiled,
        reg,
    }
}

fn bench_width(c: &mut Criterion, n_queries: usize) {
    let fx = fixture(n_queries);
    let n_q = fx.compiled.n_queries;
    let mut args = Vec::new();

    c.bench_function(&format!("hot_path/interp/q{n_queries}"), |b| {
        let mut arg_buf = Vec::new();
        b.iter(|| {
            let mut notified = 0usize;
            for rec in &fx.records {
                arg_buf.clear();
                fx.env.args(rec, &mut arg_buf);
                let lib = naiad_lite::env::RecordLibrary::new(&fx.env, rec);
                let interp =
                    udf_lang::interp::Interp::new(udf_lang::CostModel::default(), &lib);
                let out = interp
                    .run(&fx.merged, &arg_buf, &fx.interner)
                    .expect("interp runs");
                notified += out.notifications.len();
            }
            black_box(notified)
        });
    });

    c.bench_function(&format!("hot_path/stack_vm/q{n_queries}"), |b| {
        let mut vm = Vm::new();
        let mut notify = vec![NOTIFY_NONE; n_q];
        b.iter(|| {
            let mut selected = 0u64;
            for rec in &fx.records {
                notify.fill(NOTIFY_NONE);
                vm.run(&fx.compiled, &fx.env, rec, &mut notify, false)
                    .expect("stack vm runs");
                selected += notify.iter().filter(|&&v| v == 1).count() as u64;
            }
            black_box(selected)
        });
    });

    c.bench_function(&format!("hot_path/reg_vm/q{n_queries}"), |b| {
        let mut vm = RegVm::new();
        let mut notify = vec![NOTIFY_NONE; n_q];
        b.iter(|| {
            let mut selected = 0u64;
            for rec in &fx.records {
                notify.fill(NOTIFY_NONE);
                vm.run(&fx.reg, &fx.env, rec, &mut notify, false)
                    .expect("reg vm runs");
                selected += notify.iter().filter(|&&v| v == 1).count() as u64;
            }
            black_box(selected)
        });
    });

    c.bench_function(&format!("hot_path/batch_vm/q{n_queries}"), |b| {
        let mut vm = BatchVm::new(DEFAULT_FUEL);
        let mut batch = RecordBatch::default();
        let mut notify = vec![NOTIFY_NONE; fx.records.len() * n_q];
        let progs = [&fx.reg];
        b.iter(|| {
            notify.fill(NOTIFY_NONE);
            batch.regather(&fx.env, &fx.records, &mut args);
            vm.run(&progs, &batch, &fx.env, &fx.records, &mut notify, false);
            black_box(notify.iter().filter(|&&v| v == 1).count())
        });
    });
}

fn hot_path(c: &mut Criterion) {
    for n in [1usize, 4, 12, 21] {
        bench_width(c, n);
    }
}

criterion_group!(benches, hot_path);
criterion_main!(benches);
