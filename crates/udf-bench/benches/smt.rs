//! Microbenchmarks for the SMT substrate: the entailment queries that
//! dominate consolidation time.

use criterion::{criterion_group, criterion_main, Criterion};
use udf_smt::{Context, Solver};

fn lia_chain(c: &mut Criterion) {
    c.bench_function("smt_lia_chain_entailment", |b| {
        b.iter(|| {
            let mut ctx = Context::new();
            let mut solver = Solver::new();
            // x0 < x1 < … < x9 ⊨ x0 < x9.
            let xs: Vec<_> = (0..10)
                .map(|k| ctx.int_var(&format!("x{k}")))
                .collect();
            let mut h = ctx.tru();
            for w in xs.windows(2) {
                let lt = ctx.lt(w[0], w[1]);
                h = ctx.and(h, lt);
            }
            let goal = ctx.lt(xs[0], xs[9]);
            assert!(solver.is_valid(&mut ctx, h, goal));
        });
    });
}

fn euf_congruence(c: &mut Criterion) {
    c.bench_function("smt_euf_congruence_entailment", |b| {
        b.iter(|| {
            let mut ctx = Context::new();
            let mut solver = Solver::new();
            let f = ctx.fn_sym("f", 1);
            // x = y ∧ chained applications ⊨ f⁵(x) = f⁵(y).
            let x = ctx.int_var("x");
            let y = ctx.int_var("y");
            let mut fx = x;
            let mut fy = y;
            for _ in 0..5 {
                fx = ctx.app(f, vec![fx]);
                fy = ctx.app(f, vec![fy]);
            }
            let h = ctx.eq(x, y);
            let goal = ctx.eq(fx, fy);
            assert!(solver.is_valid(&mut ctx, h, goal));
        });
    });
}

fn combined_theory(c: &mut Criterion) {
    c.bench_function("smt_combined_nelson_oppen", |b| {
        b.iter(|| {
            let mut ctx = Context::new();
            let mut solver = Solver::new();
            // j = i − 1 ∧ i' = i − 1 ⊨ f(j) = f(i') — the Example 6 query.
            let f = ctx.fn_sym("f", 1);
            let i = ctx.int_var("i");
            let j = ctx.int_var("j");
            let i2 = ctx.int_var("i2");
            let one = ctx.int(1);
            let im1 = ctx.sub(i, one);
            let h1 = ctx.eq(j, im1);
            let h2 = ctx.eq(i2, im1);
            let h = ctx.and(h1, h2);
            let fj = ctx.app(f, vec![j]);
            let fi2 = ctx.app(f, vec![i2]);
            let goal = ctx.eq(fj, fi2);
            assert!(solver.is_valid(&mut ctx, h, goal));
        });
    });
}

fn boolean_structure(c: &mut Criterion) {
    c.bench_function("smt_boolean_sat_structure", |b| {
        b.iter(|| {
            let mut ctx = Context::new();
            let mut solver = Solver::new();
            // (x ≤ k ∨ x ≥ k+10) for k = 0..6 — small CDCL workout over
            // theory atoms; the instance is satisfiable.
            let x = ctx.int_var("x");
            let mut h = ctx.tru();
            for k in 0..6i64 {
                let ck = ctx.int(k);
                let ck2 = ctx.int(k + 10);
                let a = ctx.le(x, ck);
                let b2 = ctx.le(ck2, x);
                let disj = ctx.or(a, b2);
                h = ctx.and(h, disj);
            }
            assert_ne!(solver.check(&ctx, h), udf_smt::SatResult::Unknown);
        });
    });
}

criterion_group!(benches, lia_chain, euf_congruence, combined_theory, boolean_structure);
criterion_main!(benches);
