//! Aggregation benchmark cells: consolidated-vs-separate UDAF execution.
//!
//! [`run_agg_family`] is the aggregation analogue of
//! [`crate::run_family`]: prove the homomorphism obligations for one
//! family of [`AggDef`]s (timed), run the set once per definition
//! ([`AggMode::Separate`]) and once as a shared-scan multi-state pass
//! ([`AggMode::Consolidated`]) on the multi-worker engine, re-run the
//! consolidated pass across a worker sweep for the scaling column, and
//! digest every run's observable output (final states + quarantine pairs).
//! All digests must agree bit-for-bit — with each other *and* with a
//! sequential single-shard reference fold — which is the determinism gate
//! CI leans on.

use consolidate::homomorphism::AggProofStats;
use consolidate::{DegradationTier, Options};
use naiad_lite::digest::Fnv64;
use naiad_lite::env::UdfEnv;
use naiad_lite::{AggMode, AggQuerySet, AggReport, Engine, ErrorPolicy};
use std::time::Duration;
use udf_data::DomainKind;
use udf_lang::agg::AggDef;
use udf_lang::intern::Interner;

/// Result of one (domain, aggregation family) cell.
#[derive(Debug, Clone)]
pub struct AggFamilyRun {
    /// Domain name.
    pub domain: String,
    /// Family label (SUM, CNT, VAR, MIX).
    pub family: String,
    /// Number of aggregation definitions sharing the scan.
    pub n_defs: usize,
    /// Records scanned per pass.
    pub n_records: usize,
    /// Worker count of the headline separate/consolidated comparison.
    pub workers: usize,
    /// Definitions whose merge proved to be a homomorphism.
    pub proved: usize,
    /// Proof-side degradation tier.
    pub tier: DegradationTier,
    /// Wall-clock time the homomorphism prover spent on the set.
    pub consolidation: Duration,
    /// Prover statistics (checks, memo hits, solver counters).
    pub proof_stats: AggProofStats,
    /// [`AggMode::Separate`] fold-phase wall time (one scan per def).
    pub sep_udf: Duration,
    /// [`AggMode::Consolidated`] fold-phase wall time (one shared scan).
    pub cons_udf: Duration,
    /// Fold steps of the consolidated run.
    pub folds: u64,
    /// Partial-state merges of the consolidated run.
    pub merges: u64,
    /// Fold steps summed over *every* run in the cell (reference, separate,
    /// consolidated, worker sweep) — the figure's `--metrics` coherence
    /// check compares this against the shared recorder.
    pub total_folds: u64,
    /// Merges summed over every run in the cell.
    pub total_merges: u64,
    /// Quarantined (record, definition) pairs in the consolidated run.
    pub quarantined: usize,
    /// Consolidated fold-phase wall time per worker count, in sweep order.
    pub scaling: Vec<(usize, Duration)>,
    /// Whether every run (both modes, every worker count, and the
    /// sequential reference) produced the same output digest.
    pub digests_agree: bool,
    /// FNV-64 digest of final states + quarantine pairs, shared by all
    /// agreeing runs.
    pub output_digest: u64,
}

impl AggFamilyRun {
    /// Fold-phase speedup of the shared scan over one-scan-per-definition.
    pub fn speedup(&self) -> f64 {
        self.sep_udf.as_secs_f64() / self.cons_udf.as_secs_f64().max(1e-9)
    }
}

/// Order-sensitive digest of an aggregation run's observable output: every
/// definition's final state vector plus the sorted quarantined
/// (record, definition) pairs. Two runs of the same cell — at any worker
/// count, in either mode — must digest identically.
pub fn agg_output_digest(report: &AggReport) -> u64 {
    let mut h = Fnv64::new();
    for (id, state) in report.ids.iter().zip(&report.states) {
        h.u64(u64::from(id.0));
        h.u64(state.len() as u64);
        for &v in state {
            h.u64(v as u64);
        }
    }
    for e in &report.quarantine.entries {
        h.u64(e.record as u64);
        h.u64(e.query.map_or(u64::MAX, |q| u64::from(q.0)));
    }
    h.finish()
}

/// Executes one aggregation family cell over an arbitrary dataset binding.
///
/// `workers` is the scaling sweep; the *last* entry is the headline worker
/// count used for the separate-vs-consolidated comparison.
#[allow(clippy::too_many_arguments)]
pub fn run_agg_family<E: UdfEnv>(
    domain: &str,
    family: &str,
    env: &E,
    records: &[E::Rec],
    defs: Vec<AggDef>,
    interner: &mut Interner,
    workers: &[usize],
    opts: &Options,
) -> AggFamilyRun {
    let n_defs = defs.len();
    let headline = workers.last().copied().unwrap_or(1).max(1);

    // Prove the homomorphism obligations (timed; stats kept for the
    // --metrics cross-check).
    let proof = consolidate::homomorphism::consolidate_aggs(&defs, interner, opts)
        .expect("aggregation families validate");
    let proved_flags = proof.proved_flags();
    let mut queries = AggQuerySet::new(defs.clone(), proved_flags.clone());
    queries.consolidation_time = proof.elapsed;
    queries.tier = proof.tier;

    let engine = |w: usize| {
        Engine::new(w)
            .with_error_policy(ErrorPolicy::Quarantine {
                max_errors: usize::MAX,
            })
            .with_recorder(opts.recorder.clone())
    };
    let mut total_folds = 0u64;
    let mut total_merges = 0u64;
    let mut absorb = |r: &AggReport| {
        total_folds += r.folds;
        total_merges += r.merges;
    };

    // Sequential single-shard reference: every definition pinned to the
    // fallback shard of a one-worker engine. This is the semantics the
    // parallel merge tree must reproduce bit-for-bit.
    let reference = engine(1)
        .run_agg(
            env,
            records,
            &AggQuerySet::sequential(defs),
            interner,
            AggMode::Consolidated,
        )
        .expect("reference fold runs");
    absorb(&reference);
    let ref_digest = agg_output_digest(&reference);

    let sep = engine(headline)
        .run_agg(env, records, &queries, interner, AggMode::Separate)
        .expect("separate scans run");
    absorb(&sep);
    let cons = engine(headline)
        .run_agg(env, records, &queries, interner, AggMode::Consolidated)
        .expect("consolidated scan runs");
    absorb(&cons);

    let mut digests_agree =
        agg_output_digest(&sep) == ref_digest && agg_output_digest(&cons) == ref_digest;

    // Worker sweep over the consolidated pass: the scaling column, and more
    // determinism evidence (every worker count must digest identically).
    let mut scaling = Vec::with_capacity(workers.len());
    for &w in workers {
        let r = engine(w.max(1))
            .run_agg(env, records, &queries, interner, AggMode::Consolidated)
            .expect("scaling run");
        absorb(&r);
        digests_agree &= agg_output_digest(&r) == ref_digest;
        scaling.push((w.max(1), r.udf_time));
    }

    AggFamilyRun {
        domain: domain.to_owned(),
        family: family.to_owned(),
        n_defs,
        n_records: records.len(),
        workers: headline,
        proved: proved_flags.iter().filter(|p| **p).count(),
        tier: proof.tier,
        consolidation: proof.elapsed,
        proof_stats: proof.stats,
        sep_udf: sep.udf_time,
        cons_udf: cons.udf_time,
        folds: cons.folds,
        merges: cons.merges,
        total_folds,
        total_merges,
        quarantined: cons.quarantine.records_quarantined,
        scaling,
        digests_agree,
        output_digest: ref_digest,
    }
}

/// Dataset scale for the aggregation figure.
#[derive(Debug, Clone, Copy)]
pub struct AggScale {
    /// Fraction of paper-sized record counts.
    pub records: f64,
    /// Aggregation definitions per family.
    pub defs: usize,
}

impl AggScale {
    /// Full-sized run.
    pub fn full() -> AggScale {
        AggScale {
            records: 1.0,
            defs: 20,
        }
    }

    /// Reduced run for smoke tests / CI.
    pub fn fast() -> AggScale {
        AggScale {
            records: 0.08,
            defs: 6,
        }
    }

    fn n(&self, full: usize) -> usize {
        ((full as f64 * self.records) as usize).max(4)
    }
}

/// Runs every aggregation family of `domain` at the given scale.
pub fn run_agg_domain(
    domain: DomainKind,
    scale: AggScale,
    seed: u64,
    workers: &[usize],
    opts: &Options,
) -> Vec<AggFamilyRun> {
    let mut out = Vec::new();
    let mut interner = Interner::new();
    let fams = udf_data::agg::families(domain);
    match domain {
        DomainKind::Weather => {
            let env = udf_data::weather::WeatherEnv::new(&mut interner);
            let records =
                udf_data::weather::dataset_sized(scale.n(udf_data::weather::DEFAULT_CITIES), seed);
            for f in fams {
                let defs = (f.build)(scale.defs, seed, &mut interner);
                out.push(run_agg_family(
                    "weather", f.label, &env, &records, defs, &mut interner, workers, opts,
                ));
            }
        }
        DomainKind::Flight => {
            let per_pair = if scale.records >= 0.99 { 12 } else { 2 };
            let (env, records) = udf_data::flight::dataset_sized(per_pair, &mut interner, seed);
            for f in fams {
                let defs = (f.build)(scale.defs, seed, &mut interner);
                out.push(run_agg_family(
                    "flight", f.label, &env, &records, defs, &mut interner, workers, opts,
                ));
            }
        }
        DomainKind::News => {
            let env = udf_data::news::NewsEnv::new(&mut interner);
            let records =
                udf_data::news::dataset_sized(scale.n(udf_data::news::DEFAULT_ARTICLES), seed);
            for f in fams {
                let defs = (f.build)(scale.defs, seed, &mut interner);
                out.push(run_agg_family(
                    "news", f.label, &env, &records, defs, &mut interner, workers, opts,
                ));
            }
        }
        DomainKind::Twitter => {
            let env = udf_data::twitter::TwitterEnv::new(&mut interner);
            let records =
                udf_data::twitter::dataset_sized(scale.n(udf_data::twitter::DEFAULT_TWEETS), seed);
            for f in fams {
                let defs = (f.build)(scale.defs, seed, &mut interner);
                out.push(run_agg_family(
                    "twitter", f.label, &env, &records, defs, &mut interner, workers, opts,
                ));
            }
        }
        DomainKind::Stock => {
            let env = udf_data::stock::StockEnv::new(&mut interner);
            let days = if scale.records >= 0.99 {
                udf_data::stock::DAYS
            } else {
                600
            };
            let records = udf_data::stock::dataset_sized(
                scale.n(udf_data::stock::DEFAULT_TICKERS),
                days,
                seed,
            );
            for f in fams {
                let defs = (f.build)(scale.defs, seed, &mut interner);
                out.push(run_agg_family(
                    "stock", f.label, &env, &records, defs, &mut interner, workers, opts,
                ));
            }
        }
    }
    out
}

/// Formats an [`AggFamilyRun`] table row.
pub fn format_agg_row(r: &AggFamilyRun) -> String {
    let scaling: Vec<String> = r
        .scaling
        .iter()
        .map(|(w, t)| format!("w{w}={:.3}s", t.as_secs_f64()))
        .collect();
    format!(
        "{:<8} {:<4} {:>4} {:>8} {:>5}/{:<4} {:>10.2}x {:>11.3}s {:>8} {:>7} {:>8} {:>7} {:>6}  {}",
        r.domain,
        r.family,
        r.n_defs,
        r.n_records,
        r.proved,
        r.n_defs,
        r.speedup(),
        r.consolidation.as_secs_f64(),
        r.tier.as_str(),
        if r.digests_agree { "ok" } else { "DIVERGE" },
        r.folds,
        r.merges,
        r.quarantined,
        scaling.join(" "),
    )
}

/// Table header matching [`format_agg_row`].
pub fn agg_header() -> String {
    format!(
        "{:<8} {:<4} {:>4} {:>8} {:>10} {:>11} {:>12} {:>8} {:>7} {:>8} {:>7} {:>6}  {}",
        "domain", "fam", "n", "records", "proved", "spdup", "proof", "tier", "digest", "folds",
        "merges", "q'tine", "scaling"
    )
}

/// Serializes aggregation rows as a JSON array (hand-rolled, like
/// [`crate::family_runs_json`]); the schema backs the committed
/// `BENCH_agg.json` artifact. Scaling columns are `cons_udf_w{N}_s`.
pub fn agg_runs_json(runs: &[AggFamilyRun]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("[\n");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let scaling: Vec<String> = r
            .scaling
            .iter()
            .map(|(w, t)| format!("\"cons_udf_w{w}_s\":{:.6}", t.as_secs_f64()))
            .collect();
        out.push_str(&format!(
            concat!(
                "  {{\"domain\":\"{}\",\"family\":\"{}\",\"n_defs\":{},\"n_records\":{},",
                "\"workers\":{},\"proved\":{},\"tier\":\"{}\",\"consolidation_s\":{:.6},",
                "\"homomorphism_checks\":{},\"proof_memo_hits\":{},\"smt_checks\":{},",
                "\"sep_udf_s\":{:.6},\"cons_udf_s\":{:.6},\"speedup\":{:.4},",
                "\"folds\":{},\"merges\":{},\"quarantined\":{},",
                "\"digests_agree\":{},\"output_digest\":\"{:016x}\",{}}}"
            ),
            esc(&r.domain),
            esc(&r.family),
            r.n_defs,
            r.n_records,
            r.workers,
            r.proved,
            r.tier.as_str(),
            r.consolidation.as_secs_f64(),
            r.proof_stats.checks,
            r.proof_stats.proof_memo_hits,
            r.proof_stats.solver.checks,
            r.sep_udf.as_secs_f64(),
            r.cons_udf.as_secs_f64(),
            r.speedup(),
            r.folds,
            r.merges,
            r.quarantined,
            r.digests_agree,
            r.output_digest,
            scaling.join(","),
        ));
    }
    out.push_str("\n]\n");
    out
}
