//! Ablation study over the design choices called out in `DESIGN.md`:
//!
//! * **If policy** — the paper's related-heuristic dispatch between If 3/4/5
//!   versus forcing one rule everywhere (sharing vs code-size trade-off,
//!   §4's remark on derived rules);
//! * **Loop fusion** — Loop 2/Loop 3 enabled vs sequential loops only;
//! * **Entailment** — full SMT reasoning vs the syntactic-only baseline
//!   (what a conventional compiler's CSE could justify).
//!
//! ```text
//! cargo run -p udf-bench --release --bin ablation -- [--fast] [--seed S]
//! ```

use consolidate::{EntailmentMode, IfPolicy, Options};
use udf_bench::{run_domain, Scale};
use udf_data::DomainKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale {
        records: 0.2,
        queries: 24,
        passes: 5,
    };
    let mut seed = 42u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => scale = Scale::fast(),
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let configs: Vec<(&str, Options)> = vec![
        ("heuristic (paper)", Options::default()),
        ("always-if3", Options {
            if_policy: IfPolicy::AlwaysIf3,
            ..Options::default()
        }),
        ("always-if4", Options {
            if_policy: IfPolicy::AlwaysIf4,
            ..Options::default()
        }),
        ("always-if5", Options {
            if_policy: IfPolicy::AlwaysIf5,
            ..Options::default()
        }),
        ("no-loop-fusion", Options {
            loop_fusion: false,
            ..Options::default()
        }),
        ("syntactic-only", Options {
            mode: EntailmentMode::Syntactic,
            ..Options::default()
        }),
    ];

    println!("Ablations — weather Mix + news BC + stock Q1 (queries: {}, seed {seed})", scale.queries);
    println!(
        "{:<18} {:<8} {:<4} {:>10} {:>10} {:>12} {:>8} {:>7}",
        "config", "domain", "fam", "udf-spdup", "tot-spdup", "consolid.(s)", "size", "agree"
    );
    for (name, opts) in &configs {
        for domain in [DomainKind::Weather, DomainKind::News, DomainKind::Stock] {
            for r in run_domain(domain, scale, seed, opts) {
                let keep = matches!(
                    (r.domain.as_str(), r.family.as_str()),
                    ("weather", "Mix") | ("news", "BC") | ("stock", "Q1")
                );
                if !keep {
                    continue;
                }
                println!(
                    "{:<18} {:<8} {:<4} {:>9.2}x {:>9.2}x {:>12.3} {:>8} {:>7}",
                    name,
                    r.domain,
                    r.family,
                    r.udf_speedup(),
                    r.total_speedup(),
                    r.consolidation.as_secs_f64(),
                    r.merged_size,
                    if r.outputs_agree { "ok" } else { "FAIL" },
                );
            }
        }
    }
}
