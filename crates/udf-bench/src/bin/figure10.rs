//! Regenerates **Figure 10**: scalability with the number of UDFs.
//!
//! ```text
//! cargo run -p udf-bench --release --bin figure10 -- [--fast] [--warm-cache] [--seed S] [--metrics] [--prefilter] [--backend B] [--json PATH]
//! ```
//!
//! `--prefilter` switches the sweep to the PF family (token-count guards
//! nesting the text statistic — the shape pushdown synthesis targets), runs
//! every point twice (pushdown off then on), gates the two digests on
//! bit-identity, and reports records skipped, selectivity, and the
//! consolidated-total speedup at each sweep point.
//!
//! `--metrics` installs a shared in-memory [`udf_obs`] recorder and prints
//! its JSON snapshot after the sweep; combined with `--warm-cache` the
//! snapshot includes the `plan_cache.*` hit/miss/upgrade counters.
//!
//! The paper sweeps the number of News-domain mixed queries from 10 to 300
//! and plots (log-scale): `whereMany` UDF & total time growing linearly,
//! `whereConsolidated` UDF & total time staying roughly constant, and
//! consolidation time staying under a second. This binary prints the same
//! series as a table.
//!
//! With `--warm-cache` every sweep point runs twice against one shared
//! [`plan_cache::PlanCache`]: a cold submission that consolidates and fills
//! the cache, then a warm resubmission that must be served from it. The
//! table then reports both consolidation times and asserts the cached plan
//! pretty-prints identically to the freshly consolidated one.

use consolidate::Options;
use naiad_lite::engine::ExecBackend;
use plan_cache::PlanCache;
use udf_bench::{run_family_cached, run_family_guarded, Scale};
use udf_lang::intern::Interner;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::full();
    let mut seed = 42u64;
    let mut warm_cache = false;
    let mut metrics = false;
    let mut prefilter = false;
    let mut json: Option<String> = None;
    let mut backend = ExecBackend::PerRecord;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => scale = Scale::fast(),
            "--warm-cache" => warm_cache = true,
            "--metrics" => metrics = true,
            "--prefilter" => prefilter = true,
            "--json" => {
                json = Some(it.next().expect("--json PATH").clone());
            }
            "--backend" => {
                let v = it.next().expect("--backend per-record|columnar");
                backend = ExecBackend::parse(v).unwrap_or_else(|| {
                    eprintln!("unknown backend `{v}`; use per-record or columnar");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let sweep: &[usize] = if scale.records >= 0.99 {
        &[10, 50, 100, 150, 200, 250, 300]
    } else {
        &[5, 10, 20, 40]
    };
    // The scalability claim is about the *slope* of per-pass execution time;
    // two passes suffice and keep the 300-query sweep tractable. The
    // pre-filter sweep instead compares UDF-phase times between two runs of
    // the same point, which need enough passes to clear the noise floor —
    // especially on the small `--fast` datasets, whose per-pass times are
    // single-digit milliseconds.
    scale.passes = if prefilter {
        scale.passes.max(if scale.records >= 0.99 { 20 } else { 100 })
    } else {
        scale.passes.min(2)
    };

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut opts = Options::default();
    if metrics {
        opts.recorder = udf_obs::RecorderCell::memory();
    }
    let mut interner = Interner::new();
    let env = udf_data::news::NewsEnv::new(&mut interner);
    let n_articles = ((udf_data::news::DEFAULT_ARTICLES as f64) * scale.records) as usize;
    let records = udf_data::news::dataset_sized(n_articles.max(100), seed);

    println!("Figure 10 — scalability with the number of UDFs (news domain, BC mix)");
    println!("records: {}, workers: {workers}, seed {seed}", records.len());
    if warm_cache {
        run_warm(sweep, scale, seed, workers, &opts, &mut interner, &env, &records);
        dump_metrics(&opts);
        return;
    }
    if prefilter {
        run_prefilter(
            sweep, scale, seed, workers, &mut opts, &mut interner, &env, &records, backend, &json,
        );
        dump_metrics(&opts);
        return;
    }
    let mut runs = Vec::new();
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14} {:>14} {:>10} {:>6}",
        "nUDFs", "many-udf(s)", "many-total(s)", "cons-udf(s)", "cons-total(s)", "consolid.(s)",
        "tier", "q'tine"
    );
    for &n in sweep {
        // The paper's scalability benchmark uses mixes of News query
        // families; BC is the mixed family.
        let programs = (bc_family().build)(n, seed, &mut interner);
        let r = run_family_guarded(
            "news",
            "BC",
            &env,
            &records,
            programs,
            &mut interner,
            workers,
            &opts,
            scale.passes,
            None,
            naiad_lite::GuardPolicy::default(),
            naiad_lite::RetryPolicy::default(),
            backend,
        );
        println!(
            "{:>6} {:>14.4} {:>14.4} {:>14.4} {:>14.4} {:>14.4} {:>10} {:>6}{}",
            n,
            r.many_udf.as_secs_f64(),
            r.many_total.as_secs_f64(),
            r.cons_udf.as_secs_f64(),
            r.cons_total.as_secs_f64(),
            r.consolidation.as_secs_f64(),
            r.stats.tier.as_str(),
            r.quarantined,
            if r.outputs_agree { "" } else { "  OUTPUT MISMATCH" },
        );
        runs.push(r);
    }
    if let Some(path) = &json {
        std::fs::write(path, udf_bench::family_runs_json(&runs)).expect("write --json file");
        println!("wrote {} rows to {path}", runs.len());
    }
    println!("---");
    println!("expected shape (paper): many-* grows linearly with nUDFs; cons-udf stays");
    println!("roughly flat; consolidation time grows but remains far below execution.");
    dump_metrics(&opts);
}

/// Prints the shared recorder's JSON snapshot when `--metrics` enabled one.
fn dump_metrics(opts: &Options) {
    if let Some(snap) = opts.recorder.snapshot() {
        println!("--- metrics snapshot (udf-obs) ---");
        println!("{}", snap.to_json());
    }
}

fn bc_family() -> udf_data::Family {
    news_family("BC")
}

fn news_family(label: &str) -> udf_data::Family {
    udf_data::news::families()
        .into_iter()
        .find(|f| f.label == label)
        .unwrap_or_else(|| panic!("news has a {label} family"))
}

/// Pre-filter sweep: the PF family (cheap token-count guards nesting the
/// expensive text statistic) at every sweep point, pushdown off then on.
/// The two runs must produce bit-identical output digests; the printed
/// speedup is what skipping guard-failing articles bought.
#[allow(clippy::too_many_arguments)]
fn run_prefilter(
    sweep: &[usize],
    scale: Scale,
    seed: u64,
    workers: usize,
    opts: &mut Options,
    interner: &mut Interner,
    env: &udf_data::news::NewsEnv,
    records: &[udf_data::news::Article],
    backend: ExecBackend,
    json: &Option<String>,
) {
    println!("prefilter mode: PF family, every point runs pushdown-off then pushdown-on");
    // UDF-phase times: the skip accelerates per-record execution, while
    // consolidation + synthesis are one-off costs the standing query
    // amortizes away.
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>9} {:>9} {:>8}",
        "nUDFs", "off-udf(s)", "on-udf(s)", "skipped", "select.", "udf-spdup", "digest"
    );
    let mut runs = Vec::new();
    let mut diverged = 0usize;
    for &n in sweep {
        let mut pair = Vec::with_capacity(2);
        for pf in [false, true] {
            opts.prefilter = pf;
            let programs = (news_family("PF").build)(n, seed, interner);
            pair.push(run_family_guarded(
                "news",
                "PF",
                env,
                records,
                programs,
                interner,
                workers,
                opts,
                scale.passes,
                None,
                naiad_lite::GuardPolicy::default(),
                naiad_lite::RetryPolicy::default(),
                backend,
            ));
        }
        let on = pair.pop().expect("on run");
        let off = pair.pop().expect("off run");
        let same = off.output_digest == on.output_digest;
        diverged += usize::from(!same);
        println!(
            "{:>6} {:>12.4} {:>12.4} {:>10} {:>8.1}% {:>8.2}x {:>8}",
            n,
            off.cons_udf.as_secs_f64(),
            on.cons_udf.as_secs_f64(),
            on.prefilter_skipped,
            on.prefilter_skip_rate() * 100.0,
            off.cons_udf.as_secs_f64() / on.cons_udf.as_secs_f64().max(1e-9),
            if same { "ok" } else { "MISMATCH" },
        );
        runs.push(off);
        runs.push(on);
    }
    if let Some(path) = json {
        std::fs::write(path, udf_bench::family_runs_json(&runs)).expect("write --json file");
        println!("wrote {} rows to {path}", runs.len());
    }
    println!("---");
    if diverged > 0 {
        println!("pushdown-on runs diverged from pushdown-off — the pre-filter was observable");
        std::process::exit(1);
    }
    println!("every pushdown-on run reproduced the pushdown-off digest bit-for-bit");
}

/// Warm-cache sweep: each point is submitted twice against one shared plan
/// cache — cold (consolidates, fills) then warm (served from the cache).
#[allow(clippy::too_many_arguments)]
fn run_warm(
    sweep: &[usize],
    scale: Scale,
    seed: u64,
    workers: usize,
    opts: &Options,
    interner: &mut Interner,
    env: &udf_data::news::NewsEnv,
    records: &[udf_data::news::Article],
) {
    let cache = PlanCache::default();
    println!("warm-cache mode: every point runs cold, then again from the shared cache");
    println!(
        "{:>6} {:>14} {:>14} {:>9} {:>9} {:>10} {:>6}",
        "nUDFs", "cold-cons.(s)", "warm-cons.(s)", "speedup", "outcome", "same-plan", "q'tine"
    );
    let mut all_same = true;
    for &n in sweep {
        let programs = (bc_family().build)(n, seed, interner);
        let cold = run_family_cached(
            "news", "BC", env, records, programs.clone(), interner, workers, opts,
            scale.passes, Some(&cache),
        );
        let warm = run_family_cached(
            "news", "BC", env, records, programs, interner, workers, opts,
            scale.passes, Some(&cache),
        );
        let same_plan = cold.merged_text == warm.merged_text && cold.outputs_agree
            && warm.outputs_agree;
        all_same &= same_plan
            && warm.plan_outcome == Some(plan_cache::PlanOutcome::Hit)
            && warm.stats.solver.checks == 0;
        println!(
            "{:>6} {:>14.4} {:>14.4} {:>8.1}x {:>9} {:>10} {:>6}",
            n,
            cold.consolidation.as_secs_f64(),
            warm.consolidation.as_secs_f64(),
            cold.consolidation.as_secs_f64() / warm.consolidation.as_secs_f64().max(1e-9),
            warm.plan_outcome.map_or("-", |o| o.as_str()),
            if same_plan { "ok" } else { "MISMATCH" },
            cold.quarantined + warm.quarantined,
        );
    }
    let stats = cache.stats();
    println!("---");
    println!(
        "cache: {} hits, {} misses, {} inserts, {} entries, {} bytes",
        stats.hits, stats.misses, stats.inserts, stats.entries, stats.bytes
    );
    if !all_same {
        println!("warm runs did not reproduce the cold plans");
        std::process::exit(1);
    }
    println!("every warm run was a cache hit with zero SMT checks and an identical plan");
}
