//! Regenerates **Figure 10**: scalability with the number of UDFs.
//!
//! ```text
//! cargo run -p udf-bench --release --bin figure10 -- [--fast] [--seed S]
//! ```
//!
//! The paper sweeps the number of News-domain mixed queries from 10 to 300
//! and plots (log-scale): `whereMany` UDF & total time growing linearly,
//! `whereConsolidated` UDF & total time staying roughly constant, and
//! consolidation time staying under a second. This binary prints the same
//! series as a table.

use consolidate::Options;
use udf_bench::{run_family_passes, Scale};
use udf_lang::intern::Interner;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::full();
    let mut seed = 42u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => scale = Scale::fast(),
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let sweep: &[usize] = if scale.records >= 0.99 {
        &[10, 50, 100, 150, 200, 250, 300]
    } else {
        &[5, 10, 20, 40]
    };
    // The scalability claim is about the *slope* of per-pass execution time;
    // two passes suffice and keep the 300-query sweep tractable.
    scale.passes = scale.passes.min(2);

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let opts = Options::default();
    let mut interner = Interner::new();
    let env = udf_data::news::NewsEnv::new(&mut interner);
    let n_articles = ((udf_data::news::DEFAULT_ARTICLES as f64) * scale.records) as usize;
    let records = udf_data::news::dataset_sized(n_articles.max(100), seed);

    println!("Figure 10 — scalability with the number of UDFs (news domain, BC mix)");
    println!("records: {}, workers: {workers}, seed {seed}", records.len());
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14} {:>14} {:>10} {:>6}",
        "nUDFs", "many-udf(s)", "many-total(s)", "cons-udf(s)", "cons-total(s)", "consolid.(s)",
        "tier", "q'tine"
    );
    for &n in sweep {
        // The paper's scalability benchmark uses mixes of News query
        // families; BC is the mixed family.
        let fam = udf_data::news::families()
            .into_iter()
            .find(|f| f.label == "BC")
            .expect("news has a BC family");
        let programs = (fam.build)(n, seed, &mut interner);
        let r = run_family_passes(
            "news",
            "BC",
            &env,
            &records,
            programs,
            &mut interner,
            workers,
            &opts,
            scale.passes,
        );
        println!(
            "{:>6} {:>14.4} {:>14.4} {:>14.4} {:>14.4} {:>14.4} {:>10} {:>6}{}",
            n,
            r.many_udf.as_secs_f64(),
            r.many_total.as_secs_f64(),
            r.cons_udf.as_secs_f64(),
            r.cons_total.as_secs_f64(),
            r.consolidation.as_secs_f64(),
            r.stats.tier.as_str(),
            r.quarantined,
            if r.outputs_agree { "" } else { "  OUTPUT MISMATCH" },
        );
    }
    println!("---");
    println!("expected shape (paper): many-* grows linearly with nUDFs; cons-udf stays");
    println!("roughly flat; consolidation time grows but remains far below execution.");
}
