//! Regenerates **Figure 9**: UDF-time and total-time speedups of
//! `where_consolidated` over `where_many` for every query family of every
//! domain, 50 queries per family.
//!
//! ```text
//! cargo run -p udf-bench --release --bin figure9 -- [domain|all] [--fast] [--queries N] [--seed S] [--metrics] [--guard] [--explain] [--prefilter] [--backend B] [--json PATH]
//! ```
//!
//! `--metrics` installs an in-memory [`udf_obs`] recorder shared by the Ω
//! engine, the entailment layer, the SMT solver, and the dataflow engine,
//! prints the JSON snapshot after the sweep, and cross-checks the recorder
//! counters against the summed [`consolidate::ConsolidationStats`] (they
//! must agree — both are incremented at the same sites). It also appends a
//! small guarded-execution demo (audited healthy plan, corrupted plan that
//! demotes, transient faults that retry, snapshot corruption that salvages)
//! so the guard/retry/salvage metric names are populated and cross-checked
//! the same way.
//!
//! `--guard` additionally runs the benchmark sweep itself under a
//! `LogOnly` plan guard auditing every record — the shadow/mismatch columns
//! then report real differential-validation work (and must show zero
//! mismatches: Theorem 1 holds).
//!
//! `--explain` skips the benchmark and instead consolidates a small worked
//! pair of flight-style queries with derivation tracing on, printing the
//! rule-derivation tree (which rule of §4 fired at each node, justified by
//! which entailment queries) as indented text and as JSON. See
//! `OBSERVABILITY.md` for a walkthrough.
//!
//! `--prefilter` runs every (backend, domain, family) cell twice — pushdown
//! off, then on — gates the two runs' output digests on bit-identity (a
//! sound pre-filter must be unobservable), and appends a summary table of
//! records skipped, selectivity, and the consolidated-total speedup the
//! skip bought. Families whose candidates the verifier rejects (every
//! query body reaches a library call) legitimately report zero skips.
//!
//! The paper reports UDF speedups of 2.6×–24.2× (avg 8.4×) and total
//! speedups of 1.4×–23.1× (avg 6.0×), with consolidation averaging 0.3 s for
//! 50 UDFs. We reproduce the shape: consolidation wins in every family, the
//! largest wins come from families with heavy shared computation, and
//! consolidation time stays far below execution time.

use consolidate::Options;
use naiad_lite::engine::ExecBackend;
use udf_bench::{format_row, header, Scale};
use udf_data::DomainKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut domains: Vec<DomainKind> = Vec::new();
    let mut scale = Scale::full();
    let mut seed = 42u64;
    let mut metrics = false;
    let mut guard = false;
    let mut explain = false;
    let mut prefilter = false;
    let mut json: Option<String> = None;
    let mut backends = vec![ExecBackend::PerRecord];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => scale = Scale::fast(),
            "--metrics" => metrics = true,
            "--guard" => guard = true,
            "--explain" => explain = true,
            "--prefilter" => prefilter = true,
            "--json" => {
                json = Some(it.next().expect("--json PATH").clone());
            }
            "--backend" => {
                let v = it.next().expect("--backend per-record|columnar|both");
                backends = match v.as_str() {
                    "both" => vec![ExecBackend::PerRecord, ExecBackend::Columnar],
                    other => vec![ExecBackend::parse(other).unwrap_or_else(|| {
                        eprintln!("unknown backend `{other}`; use per-record, columnar, or both");
                        std::process::exit(2);
                    })],
                };
            }
            "--queries" => {
                scale.queries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--queries N");
            }
            "--passes" => {
                scale.passes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--passes P");
            }
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "all" => domains.extend(DomainKind::ALL),
            name => match DomainKind::parse(name) {
                Some(d) => domains.push(d),
                None => {
                    eprintln!("unknown domain `{name}`; use one of weather/flight/news/twitter/stock/all");
                    std::process::exit(2);
                }
            },
        }
    }
    if domains.is_empty() {
        domains.extend(DomainKind::ALL);
    }

    if explain {
        run_explain();
        return;
    }

    let mut opts = Options::default();
    if metrics {
        opts.recorder = udf_obs::RecorderCell::memory();
    }
    // `--guard`: audit the whole sweep through the sequential path without
    // changing any output (LogOnly). Theorem 1 says zero mismatches.
    let guard_policy = if guard {
        naiad_lite::GuardPolicy {
            on_mismatch: naiad_lite::GuardAction::LogOnly,
            ..naiad_lite::GuardPolicy::audit_all()
        }
    } else {
        naiad_lite::GuardPolicy::default()
    };
    println!("Figure 9 — speedup of where_consolidated over where_many");
    println!("(queries per family: {}, passes: {}, seed {seed})", scale.queries, scale.passes);
    println!("{}", header());
    let mut runs = Vec::new();
    // `--prefilter`: every cell runs twice, pushdown off then on, so the
    // digest gate below can prove the pre-filter was unobservable.
    let pf_passes: &[bool] = if prefilter { &[false, true] } else { &[false] };
    for &pf in pf_passes {
        opts.prefilter = pf;
        if prefilter {
            println!("-- prefilter: {}", if pf { "on" } else { "off" });
        }
        for &backend in &backends {
            if backends.len() > 1 {
                println!("-- backend: {}", backend.as_str());
            }
            for &d in &domains {
                for r in udf_bench::run_domain_guarded(
                    d,
                    scale,
                    seed,
                    &opts,
                    guard_policy,
                    naiad_lite::RetryPolicy::default(),
                    backend,
                ) {
                    println!("{}", format_row(&r));
                    runs.push(r);
                }
            }
        }
    }
    // `--backend both`: the two backends must observe identical outputs —
    // every (domain, family) cell's output digest must agree bit-for-bit.
    if backends.len() > 1 {
        let mut diverged = 0usize;
        let base: Vec<&udf_bench::FamilyRun> = runs
            .iter()
            .filter(|r| r.backend == ExecBackend::PerRecord)
            .collect();
        for r in runs.iter().filter(|r| r.backend == ExecBackend::Columnar) {
            let Some(b) = base
                .iter()
                .find(|b| b.domain == r.domain && b.family == r.family && b.prefilter == r.prefilter)
            else {
                continue;
            };
            if b.output_digest != r.output_digest {
                diverged += 1;
                eprintln!(
                    "DIVERGENCE {}/{}: per-record digest {:016x} != columnar digest {:016x}",
                    r.domain, r.family, b.output_digest, r.output_digest
                );
            }
        }
        println!(
            "backend parity: {} cells compared, {diverged} divergences",
            base.len()
        );
        if diverged > 0 {
            std::process::exit(1);
        }
    }
    // `--prefilter`: soundness gate + summary. Every pushdown-on run must
    // reproduce the pushdown-off digest bit-for-bit (Theorem: skipping only
    // records the verifier proved notify-all-false is unobservable), and the
    // summary shows what the skip bought where a candidate survived.
    if prefilter {
        let mut diverged = 0usize;
        println!("---");
        // The speedup column compares the *UDF phase* (per-record execution,
        // the thing skipping accelerates) — consolidation and pre-filter
        // synthesis are one-off costs amortized over the standing query's
        // lifetime, reported in the main table's `consolid.` column.
        println!(
            "{:>8} {:>6} {:>11} {:>10} {:>9} {:>11} {:>11} {:>9}",
            "domain", "family", "backend", "skipped", "select.", "off-udf(s)", "on-udf(s)", "udf-spdup"
        );
        let off: Vec<&udf_bench::FamilyRun> = runs.iter().filter(|r| !r.prefilter).collect();
        for r in runs.iter().filter(|r| r.prefilter) {
            let Some(b) = off.iter().find(|b| {
                b.domain == r.domain && b.family == r.family && b.backend == r.backend
            }) else {
                continue;
            };
            if b.output_digest != r.output_digest {
                diverged += 1;
                eprintln!(
                    "PREFILTER DIVERGENCE {}/{} ({}): off digest {:016x} != on digest {:016x}",
                    r.domain,
                    r.family,
                    r.backend.as_str(),
                    b.output_digest,
                    r.output_digest
                );
            }
            println!(
                "{:>8} {:>6} {:>11} {:>10} {:>8.1}% {:>11.4} {:>11.4} {:>7.2}x",
                r.domain,
                r.family,
                r.backend.as_str(),
                r.prefilter_skipped,
                r.prefilter_skip_rate() * 100.0,
                b.cons_udf.as_secs_f64(),
                r.cons_udf.as_secs_f64(),
                b.cons_udf.as_secs_f64() / r.cons_udf.as_secs_f64().max(1e-9),
            );
        }
        println!(
            "prefilter parity: {} cells compared, {diverged} divergences",
            off.len()
        );
        if diverged > 0 {
            std::process::exit(1);
        }
    }
    if let Some(path) = &json {
        std::fs::write(path, udf_bench::family_runs_json(&runs)).expect("write --json file");
        println!("wrote {} rows to {path}", runs.len());
    }
    if runs.len() > 1 {
        let udf: Vec<f64> = runs.iter().map(|r| r.udf_speedup()).collect();
        let tot: Vec<f64> = runs.iter().map(|r| r.total_speedup()).collect();
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        let max = |v: &[f64]| v.iter().copied().fold(0.0, f64::max);
        let cons_avg = runs
            .iter()
            .map(|r| r.consolidation.as_secs_f64())
            .sum::<f64>()
            / runs.len() as f64;
        println!("---");
        println!(
            "UDF speedup   : min {:.2}x  max {:.2}x  avg {:.2}x   (paper: 2.6x / 24.2x / 8.4x)",
            min(&udf),
            max(&udf),
            avg(&udf)
        );
        println!(
            "total speedup : min {:.2}x  max {:.2}x  avg {:.2}x   (paper: 1.4x / 23.1x / 6.0x)",
            min(&tot),
            max(&tot),
            avg(&tot)
        );
        println!(
            "consolidation : avg {:.3}s per family of {} UDFs   (paper: ~0.3s for 50 UDFs)",
            cons_avg, scale.queries
        );
        let checks: u64 = runs.iter().map(|r| r.stats.solver.checks).sum();
        let memo: u64 = runs.iter().map(|r| r.stats.memo_hits).sum();
        let pairs: u64 = runs.iter().map(|r| r.stats.pairs_consolidated).sum();
        println!(
            "solver work   : {checks} SMT checks, {memo} memo hits over {pairs} pairs ({:.1} checks/pair)",
            checks as f64 / pairs.max(1) as f64
        );
        let disagreements = runs.iter().filter(|r| !r.outputs_agree).count();
        println!("output checks : {} families, {disagreements} mismatches", runs.len());
        if disagreements > 0 {
            std::process::exit(1);
        }
    }

    // `--metrics`: exercise the guarded-execution machinery (the sweep's
    // healthy plans never trip it), then dump the shared recorder and
    // cross-check it against the summed per-family stats and the demo's
    // job reports. The recorder and the stats are incremented at the same
    // sites, so any drift here is a bug in the instrumentation.
    let demo = metrics.then(|| run_guard_demo(&opts.recorder));
    if let Some(snap) = opts.recorder.snapshot() {
        println!("--- metrics snapshot (udf-obs) ---");
        println!("{}", snap.to_json());
        let checks: u64 = runs.iter().map(|r| r.stats.solver.checks).sum();
        let memo: u64 = runs.iter().map(|r| r.stats.memo_hits).sum();
        let pairs: u64 = runs.iter().map(|r| r.stats.pairs_consolidated).sum();
        let demo = demo.unwrap_or_default();
        let shadow = demo.shadow_runs + runs.iter().map(|r| r.shadow_runs).sum::<u64>();
        let mismatches =
            demo.mismatches + runs.iter().map(|r| r.guard_mismatches).sum::<u64>();
        let demotions =
            demo.demotions + runs.iter().map(|r| r.guard_demotions).sum::<u64>();
        let retries = demo.retries + runs.iter().map(|r| r.retries).sum::<u64>();
        let mut coherent = true;
        for (name, stat) in [
            (udf_obs::names::SMT_CHECKS, checks),
            (udf_obs::names::ENTAIL_MEMO_HITS, memo),
            (udf_obs::names::PAIRS, pairs),
            (udf_obs::names::GUARD_SHADOW_RUNS, shadow),
            (udf_obs::names::GUARD_MISMATCHES, mismatches),
            (udf_obs::names::GUARD_DEMOTIONS, demotions),
            (udf_obs::names::ENGINE_RETRIES, retries),
            (udf_obs::names::CACHE_SNAPSHOT_SALVAGED, demo.salvaged),
        ] {
            let rec = snap.counter(name);
            let ok = rec == stat;
            coherent &= ok;
            println!(
                "coherence: {name:<28} recorder={rec:>8} stats={stat:>8} {}",
                if ok { "ok" } else { "MISMATCH" }
            );
        }
        // The guard span histogram must have timed exactly one shadow run
        // per sample.
        let guard_ns = snap
            .histogram(udf_obs::names::GUARD_NS)
            .map_or(0, |h| h.count);
        let ok = guard_ns == shadow;
        coherent &= ok;
        println!(
            "coherence: {:<28} recorder={guard_ns:>8} stats={shadow:>8} {}",
            udf_obs::names::GUARD_NS,
            if ok { "ok" } else { "MISMATCH" }
        );
        if !coherent {
            std::process::exit(1);
        }
    }
}

/// Report-side totals of the guarded-execution demo, used to cross-check
/// the recorder counters.
#[derive(Default)]
struct GuardDemo {
    shadow_runs: u64,
    mismatches: u64,
    demotions: u64,
    retries: u64,
    salvaged: u64,
}

/// Exercises every guarded-execution metric once, against `recorder`:
/// a fully audited healthy plan (shadow runs, zero mismatches), a corrupted
/// plan that trips the guard and demotes (mismatches + demotion + cache
/// eviction), transient faults drained by retry, and a bit-flipped snapshot
/// salvaged on load. Prints a short transcript and returns the totals
/// according to the job reports.
fn run_guard_demo(recorder: &udf_obs::RecorderCell) -> GuardDemo {
    use naiad_lite::engine::{EngineConfig, QuerySet};
    use naiad_lite::{
        fault, Engine, ErrorPolicy, ExecMode, GuardPolicy, RetryPolicy, ScalarEnv,
    };
    use std::sync::Arc;

    println!("--- guarded-execution demo ---");
    let mut demo = GuardDemo::default();
    let mut interner = udf_lang::intern::Interner::new();
    let probe = interner.intern("probe");
    let mut lib = udf_lang::FnLibrary::new();
    lib.register(probe, "probe", 1, 20, |a| a[0]);
    let programs: Vec<udf_lang::ast::Program> = (0..3u32)
        .map(|k| {
            udf_lang::parse::parse_program(
                &format!(
                    "program g{k} @{k} (v) {{ p := probe(v); if (p > {}) {{ notify true; }} else {{ notify false; }} }}",
                    k * 16
                ),
                &mut interner,
            )
            .expect("demo program parses")
        })
        .collect();
    let cm = udf_lang::cost::CostModel::default();
    let opts = consolidate::Options::default();
    let cache = Arc::new(plan_cache::PlanCache::default());
    let (queries, _, _) = QuerySet::compile_consolidated_cached(
        &programs,
        &mut interner,
        &cm,
        &lib,
        &|f| udf_lang::library::Library::cost(&lib, f),
        &opts,
        false,
        &cache,
        ExecBackend::PerRecord,
    )
    .expect("demo consolidates");
    let records: Vec<Vec<i64>> = (0..64i64).map(|v| vec![v]).collect();
    let env = ScalarEnv::new(1, lib);
    let engine = |guard: GuardPolicy, retry: RetryPolicy| {
        Engine::new(2).with_config(EngineConfig {
            error_policy: ErrorPolicy::Quarantine { max_errors: 64 },
            guard,
            retry,
            plan_cache: Some(Arc::clone(&cache)),
            recorder: recorder.clone(),
            ..EngineConfig::default()
        })
    };

    // 1. Healthy plan under full audit: shadow work, no divergence.
    let audited = engine(GuardPolicy::audit_all(), RetryPolicy::default())
        .run(&env, &records, &queries, ExecMode::Consolidated, false)
        .expect("audited healthy run");
    let g = audited.guard.expect("guard report");
    demo.shadow_runs += g.shadow_runs;
    demo.mismatches += g.mismatches;
    println!("healthy audit : {} shadow runs, {} mismatches", g.shadow_runs, g.mismatches);

    // 2. Corrupted plan: flip one Notify instruction; the guard detects the
    // divergence, demotes to sequential, and evicts the cached plan.
    let mut corrupted = queries.clone();
    let compiled = corrupted.consolidated.as_mut().expect("demo plan");
    for op in &mut compiled.ops {
        if let naiad_lite::compile::Op::Notify { value, .. } = op {
            *value = !*value;
            break;
        }
    }
    let healed = engine(GuardPolicy::audit_all(), RetryPolicy::default())
        .run(&env, &records, &corrupted, ExecMode::Consolidated, false)
        .expect("demotion self-heals");
    let g = healed.guard.expect("guard report");
    demo.shadow_runs += g.shadow_runs;
    demo.mismatches += g.mismatches;
    demo.demotions += u64::from(g.demoted);
    println!(
        "corrupted plan: {} mismatches, demoted={}, cache evictions={}",
        g.mismatches,
        g.demoted,
        cache.stats().invalidations
    );

    // 3. Transient faults drained by retry (no quarantine).
    let mut plan = fault::FaultPlan::none();
    for r in [5usize, 23, 41] {
        plan.insert(r, fault::FaultKind::Transient(2));
    }
    let mut interner2 = udf_lang::intern::Interner::new();
    let probe2 = interner2.intern("probe");
    let mut lib2 = udf_lang::FnLibrary::new();
    lib2.register(probe2, "probe", 1, 20, |a| a[0]);
    let faulty = fault::FaultyEnv::new(ScalarEnv::new(1, lib2), probe2, plan);
    let indexed = fault::FaultyEnv::<ScalarEnv>::index_records(records.iter().cloned());
    let retried = engine(GuardPolicy::default(), RetryPolicy::immediate(3))
        .run(&faulty, &indexed, &queries, ExecMode::Many, false)
        .expect("transients drain");
    demo.retries += retried.quarantine.retry_attempts;
    println!(
        "transients    : {} retries, {} records recovered, {} quarantined",
        retried.quarantine.retry_attempts,
        retried.quarantine.records_recovered,
        retried.quarantine.records_quarantined
    );

    // 4. Snapshot a cache, flip one payload byte, salvage on load.
    let cache2 = plan_cache::PlanCache::default();
    let (_, _, _) = QuerySet::compile_consolidated_cached(
        &programs,
        &mut interner,
        &cm,
        &udf_lang::cost::UniformFnCost(20),
        &|_| 20,
        &opts,
        false,
        &cache2,
        ExecBackend::PerRecord,
    )
    .expect("demo reconsolidates");
    let path = std::env::temp_dir().join(format!("figure9-demo-{}.snap", std::process::id()));
    let recovery = cache2
        .save(&path)
        .and_then(|()| {
            let mut bytes = std::fs::read(&path)?;
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&path, bytes)?;
            let (_, recovery) = plan_cache::PlanCache::load_recovering(
                &path,
                plan_cache::CacheConfig::default(),
                recorder,
            )?;
            Ok(recovery)
        })
        .expect("snapshot demo round-trips");
    let _ = std::fs::remove_file(&path);
    demo.salvaged += recovery.salvaged as u64;
    println!(
        "snapshot      : {} entries, {} loaded, {} salvaged",
        recovery.total, recovery.loaded, recovery.salvaged
    );
    demo
}

/// Worked example for `--explain`: two flight-style standing queries that
/// share a per-day accumulation loop and differ only in their alert
/// thresholds. Consolidation interleaves the shared prologue, fuses (or
/// sequences) the twin loops, and merges the overlapping conditionals, so
/// the printed derivation names Seq, Assign, If, and Loop rules.
fn run_explain() {
    let mut interner = udf_lang::intern::Interner::new();
    let src = "program fare_alert @1 (price, days) {
                   total := 0;
                   i := days;
                   while (i > 0) { total := total + price; i := i - 1; }
                   if (total >= 900) { notify true; } else { notify false; }
               }
               program fare_deal @2 (price, days) {
                   total := 0;
                   i := days;
                   while (i > 0) { total := total + price; i := i - 1; }
                   if (total >= 500) { notify true; } else { notify false; }
               }";
    let programs =
        udf_lang::parse::parse_programs(src, &mut interner).expect("worked example parses");
    let opts = Options {
        explain: true,
        ..Options::default()
    };
    let cm = udf_lang::cost::CostModel::default();
    let merged = consolidate::consolidate_many(
        &programs,
        &mut interner,
        &cm,
        &udf_lang::cost::UniformFnCost(30),
        &opts,
        false,
    )
    .expect("worked example consolidates");
    let report = merged.explain.expect("explain was requested");

    println!("Consolidation explain — worked example (two flight-style queries)");
    println!();
    for p in &programs {
        println!("{}", udf_lang::pretty::program(p, &interner));
    }
    println!("merged plan:");
    println!("{}", udf_lang::pretty::program(&merged.program, &interner));
    println!("derivation (rule per node, `|=` lines are the entailment queries");
    println!("that justified it):");
    print!("{}", report.render_text());
    println!();
    println!("rules fired: {}", report.rules_fired().join(", "));
    println!();
    println!("json:");
    println!("{}", report.to_json());
}
