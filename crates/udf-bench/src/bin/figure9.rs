//! Regenerates **Figure 9**: UDF-time and total-time speedups of
//! `where_consolidated` over `where_many` for every query family of every
//! domain, 50 queries per family.
//!
//! ```text
//! cargo run -p udf-bench --release --bin figure9 -- [domain|all] [--fast] [--queries N] [--seed S] [--metrics] [--explain]
//! ```
//!
//! `--metrics` installs an in-memory [`udf_obs`] recorder shared by the Ω
//! engine, the entailment layer, the SMT solver, and the dataflow engine,
//! prints the JSON snapshot after the sweep, and cross-checks the recorder
//! counters against the summed [`consolidate::ConsolidationStats`] (they
//! must agree — both are incremented at the same sites).
//!
//! `--explain` skips the benchmark and instead consolidates a small worked
//! pair of flight-style queries with derivation tracing on, printing the
//! rule-derivation tree (which rule of §4 fired at each node, justified by
//! which entailment queries) as indented text and as JSON. See
//! `OBSERVABILITY.md` for a walkthrough.
//!
//! The paper reports UDF speedups of 2.6×–24.2× (avg 8.4×) and total
//! speedups of 1.4×–23.1× (avg 6.0×), with consolidation averaging 0.3 s for
//! 50 UDFs. We reproduce the shape: consolidation wins in every family, the
//! largest wins come from families with heavy shared computation, and
//! consolidation time stays far below execution time.

use consolidate::Options;
use udf_bench::{format_row, header, run_domain, Scale};
use udf_data::DomainKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut domains: Vec<DomainKind> = Vec::new();
    let mut scale = Scale::full();
    let mut seed = 42u64;
    let mut metrics = false;
    let mut explain = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => scale = Scale::fast(),
            "--metrics" => metrics = true,
            "--explain" => explain = true,
            "--queries" => {
                scale.queries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--queries N");
            }
            "--passes" => {
                scale.passes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--passes P");
            }
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "all" => domains.extend(DomainKind::ALL),
            name => match DomainKind::parse(name) {
                Some(d) => domains.push(d),
                None => {
                    eprintln!("unknown domain `{name}`; use one of weather/flight/news/twitter/stock/all");
                    std::process::exit(2);
                }
            },
        }
    }
    if domains.is_empty() {
        domains.extend(DomainKind::ALL);
    }

    if explain {
        run_explain();
        return;
    }

    let mut opts = Options::default();
    if metrics {
        opts.recorder = udf_obs::RecorderCell::memory();
    }
    println!("Figure 9 — speedup of where_consolidated over where_many");
    println!("(queries per family: {}, passes: {}, seed {seed})", scale.queries, scale.passes);
    println!("{}", header());
    let mut runs = Vec::new();
    for d in domains {
        for r in run_domain(d, scale, seed, &opts) {
            println!("{}", format_row(&r));
            runs.push(r);
        }
    }
    if runs.len() > 1 {
        let udf: Vec<f64> = runs.iter().map(|r| r.udf_speedup()).collect();
        let tot: Vec<f64> = runs.iter().map(|r| r.total_speedup()).collect();
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        let max = |v: &[f64]| v.iter().copied().fold(0.0, f64::max);
        let cons_avg = runs
            .iter()
            .map(|r| r.consolidation.as_secs_f64())
            .sum::<f64>()
            / runs.len() as f64;
        println!("---");
        println!(
            "UDF speedup   : min {:.2}x  max {:.2}x  avg {:.2}x   (paper: 2.6x / 24.2x / 8.4x)",
            min(&udf),
            max(&udf),
            avg(&udf)
        );
        println!(
            "total speedup : min {:.2}x  max {:.2}x  avg {:.2}x   (paper: 1.4x / 23.1x / 6.0x)",
            min(&tot),
            max(&tot),
            avg(&tot)
        );
        println!(
            "consolidation : avg {:.3}s per family of {} UDFs   (paper: ~0.3s for 50 UDFs)",
            cons_avg, scale.queries
        );
        let checks: u64 = runs.iter().map(|r| r.stats.solver.checks).sum();
        let memo: u64 = runs.iter().map(|r| r.stats.memo_hits).sum();
        let pairs: u64 = runs.iter().map(|r| r.stats.pairs_consolidated).sum();
        println!(
            "solver work   : {checks} SMT checks, {memo} memo hits over {pairs} pairs ({:.1} checks/pair)",
            checks as f64 / pairs.max(1) as f64
        );
        let disagreements = runs.iter().filter(|r| !r.outputs_agree).count();
        println!("output checks : {} families, {disagreements} mismatches", runs.len());
        if disagreements > 0 {
            std::process::exit(1);
        }
    }

    // `--metrics`: dump the shared recorder and cross-check it against the
    // summed per-family stats. The recorder and the stats are incremented at
    // the same sites, so any drift here is a bug in the instrumentation.
    if let Some(snap) = opts.recorder.snapshot() {
        println!("--- metrics snapshot (udf-obs) ---");
        println!("{}", snap.to_json());
        let checks: u64 = runs.iter().map(|r| r.stats.solver.checks).sum();
        let memo: u64 = runs.iter().map(|r| r.stats.memo_hits).sum();
        let pairs: u64 = runs.iter().map(|r| r.stats.pairs_consolidated).sum();
        let mut coherent = true;
        for (name, stat) in [
            (udf_obs::names::SMT_CHECKS, checks),
            (udf_obs::names::ENTAIL_MEMO_HITS, memo),
            (udf_obs::names::PAIRS, pairs),
        ] {
            let rec = snap.counter(name);
            let ok = rec == stat;
            coherent &= ok;
            println!(
                "coherence: {name:<28} recorder={rec:>8} stats={stat:>8} {}",
                if ok { "ok" } else { "MISMATCH" }
            );
        }
        if !coherent {
            std::process::exit(1);
        }
    }
}

/// Worked example for `--explain`: two flight-style standing queries that
/// share a per-day accumulation loop and differ only in their alert
/// thresholds. Consolidation interleaves the shared prologue, fuses (or
/// sequences) the twin loops, and merges the overlapping conditionals, so
/// the printed derivation names Seq, Assign, If, and Loop rules.
fn run_explain() {
    let mut interner = udf_lang::intern::Interner::new();
    let src = "program fare_alert @1 (price, days) {
                   total := 0;
                   i := days;
                   while (i > 0) { total := total + price; i := i - 1; }
                   if (total >= 900) { notify true; } else { notify false; }
               }
               program fare_deal @2 (price, days) {
                   total := 0;
                   i := days;
                   while (i > 0) { total := total + price; i := i - 1; }
                   if (total >= 500) { notify true; } else { notify false; }
               }";
    let programs =
        udf_lang::parse::parse_programs(src, &mut interner).expect("worked example parses");
    let opts = Options {
        explain: true,
        ..Options::default()
    };
    let cm = udf_lang::cost::CostModel::default();
    let merged = consolidate::consolidate_many(
        &programs,
        &mut interner,
        &cm,
        &udf_lang::cost::UniformFnCost(30),
        &opts,
        false,
    )
    .expect("worked example consolidates");
    let report = merged.explain.expect("explain was requested");

    println!("Consolidation explain — worked example (two flight-style queries)");
    println!();
    for p in &programs {
        println!("{}", udf_lang::pretty::program(p, &interner));
    }
    println!("merged plan:");
    println!("{}", udf_lang::pretty::program(&merged.program, &interner));
    println!("derivation (rule per node, `|=` lines are the entailment queries");
    println!("that justified it):");
    print!("{}", report.render_text());
    println!();
    println!("rules fired: {}", report.rules_fired().join(", "));
    println!();
    println!("json:");
    println!("{}", report.to_json());
}
