//! Regenerates the **user-defined aggregation** figure: fold-phase speedup
//! of the consolidated multi-state pass (one shared scan for n UDAFs) over
//! one-scan-per-definition, plus consolidated scaling across worker counts.
//!
//! ```text
//! cargo run -p udf-bench --release --bin figure_agg -- [domain|all] [--fast] [--defs N] [--seed S] [--workers 1,2,4,8] [--json PATH] [--metrics]
//! ```
//!
//! Every cell digests its observable output (final states + quarantine
//! pairs) and requires bit-for-bit agreement between the separate scans,
//! the consolidated pass at *every* worker count, and a sequential
//! single-shard reference fold — any divergence exits non-zero, which is
//! the determinism gate `ci/bench-smoke.sh` relies on.
//!
//! `--metrics` installs an in-memory [`udf_obs`] recorder shared by the
//! homomorphism prover and the engine's fold/merge path and cross-checks
//! the recorder counters (`agg.folds`, `agg.merges`,
//! `agg.homomorphism_checks`, `agg.proof_memo_hits`) against the summed
//! per-cell report statistics — both are incremented at the same sites, so
//! drift is an instrumentation bug and exits non-zero.

use consolidate::Options;
use udf_bench::{agg_header, agg_runs_json, format_agg_row, run_agg_domain, AggScale};
use udf_data::DomainKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut domains: Vec<DomainKind> = Vec::new();
    let mut scale = AggScale::full();
    let mut seed = 42u64;
    let mut metrics = false;
    let mut json: Option<String> = None;
    let mut workers: Vec<usize> = vec![1, 2, 4, 8];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => scale = AggScale::fast(),
            "--metrics" => metrics = true,
            "--json" => {
                json = Some(it.next().expect("--json PATH").clone());
            }
            "--defs" => {
                scale.defs = it.next().and_then(|v| v.parse().ok()).expect("--defs N");
            }
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "--workers" => {
                let v = it.next().expect("--workers 1,2,4,8");
                workers = v
                    .split(',')
                    .map(|w| w.parse().expect("--workers takes a comma-separated list"))
                    .collect();
                assert!(!workers.is_empty(), "--workers needs at least one count");
            }
            "all" => domains.extend(DomainKind::ALL),
            name => match DomainKind::parse(name) {
                Some(d) => domains.push(d),
                None => {
                    eprintln!(
                        "unknown domain `{name}`; use one of weather/flight/news/twitter/stock/all"
                    );
                    std::process::exit(2);
                }
            },
        }
    }
    if domains.is_empty() {
        domains.extend(DomainKind::ALL);
    }

    let mut opts = Options::default();
    if metrics {
        opts.recorder = udf_obs::RecorderCell::memory();
    }

    println!("Aggregation figure — consolidated multi-state pass vs separate scans");
    println!(
        "(defs per family: {}, seed {seed}, workers {:?}; headline = {} workers)",
        scale.defs,
        workers,
        workers.last().copied().unwrap_or(1)
    );
    println!("{}", agg_header());
    let mut runs = Vec::new();
    for &d in &domains {
        for r in run_agg_domain(d, scale, seed, &workers, &opts) {
            println!("{}", format_agg_row(&r));
            runs.push(r);
        }
    }

    let diverged = runs.iter().filter(|r| !r.digests_agree).count();
    println!(
        "determinism: {} cells × {} worker counts + separate + reference, {diverged} divergences",
        runs.len(),
        workers.len()
    );
    if let Some(path) = &json {
        std::fs::write(path, agg_runs_json(&runs)).expect("write --json file");
        println!("wrote {} rows to {path}", runs.len());
    }
    if !runs.is_empty() {
        let spd: Vec<f64> = runs.iter().map(|r| r.speedup()).collect();
        let avg = spd.iter().sum::<f64>() / spd.len() as f64;
        let min = spd.iter().copied().fold(f64::INFINITY, f64::min);
        let max = spd.iter().copied().fold(0.0, f64::max);
        let above = spd.iter().filter(|s| **s > 1.0).count();
        println!("---");
        println!(
            "fold speedup : min {min:.2}x  max {max:.2}x  avg {avg:.2}x  ({above}/{} cells > 1x)",
            spd.len()
        );
        let proof_avg = runs
            .iter()
            .map(|r| r.consolidation.as_secs_f64())
            .sum::<f64>()
            / runs.len() as f64;
        let proved: usize = runs.iter().map(|r| r.proved).sum();
        let total: usize = runs.iter().map(|r| r.n_defs).sum();
        println!(
            "homomorphism : {proved}/{total} definitions proved, avg {proof_avg:.3}s per family"
        );
    }
    if diverged > 0 {
        std::process::exit(1);
    }

    // `--metrics`: the recorder and the per-cell reports are incremented at
    // the same sites, so the totals must agree exactly.
    if let Some(snap) = opts.recorder.snapshot() {
        println!("--- metrics snapshot (udf-obs) ---");
        println!("{}", snap.to_json());
        let folds: u64 = runs.iter().map(|r| r.total_folds).sum();
        let merges: u64 = runs.iter().map(|r| r.total_merges).sum();
        let checks: u64 = runs.iter().map(|r| r.proof_stats.checks).sum();
        let memo: u64 = runs.iter().map(|r| r.proof_stats.proof_memo_hits).sum();
        let mut coherent = true;
        for (name, stat) in [
            (udf_obs::names::AGG_FOLDS, folds),
            (udf_obs::names::AGG_MERGES, merges),
            (udf_obs::names::AGG_HOMOMORPHISM_CHECKS, checks),
            (udf_obs::names::AGG_PROOF_MEMO_HITS, memo),
        ] {
            let rec = snap.counter(name);
            let ok = rec == stat;
            coherent &= ok;
            println!(
                "coherence: {name:<28} recorder={rec:>10} stats={stat:>10} {}",
                if ok { "ok" } else { "MISMATCH" }
            );
        }
        // Fold spans are per surviving record per scan group; the histogram
        // must have been populated whenever folds were.
        let fold_ns = snap
            .histogram(udf_obs::names::ENGINE_FOLD_NS)
            .map_or(0, |h| h.count);
        let ok = (fold_ns > 0) == (folds > 0);
        coherent &= ok;
        println!(
            "coherence: {:<28} recorder={fold_ns:>10} spans ({} folds) {}",
            udf_obs::names::ENGINE_FOLD_NS,
            folds,
            if ok { "ok" } else { "MISMATCH" }
        );
        if !coherent {
            std::process::exit(1);
        }
    }
}
