//! Benchmark harness regenerating the paper's evaluation (§6.3).
//!
//! * [`run_family`] executes one (domain, query family) cell of Figure 9:
//!   generate the dataset and `n` queries, consolidate them (timed, parallel
//!   divide-and-conquer), run `where_many` and `where_consolidated` on the
//!   multi-worker engine, verify the outputs agree record-for-record, and
//!   report UDF-time and total-time speedups.
//! * The `figure9`, `figure10`, and `ablation` binaries print the tables;
//!   see `EXPERIMENTS.md` for the recorded paper-vs-measured numbers.
//!
//! Absolute numbers differ from the paper (different hardware, language, and
//! SMT solver); the quantities that must reproduce are the *shape*: every
//! family speeds up, speedups grow with intra-family similarity, and the
//! consolidated runtime stays roughly flat as the query count grows while
//! the sequential runtime grows linearly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub use agg::{
    agg_header, agg_output_digest, agg_runs_json, format_agg_row, run_agg_domain, run_agg_family,
    AggFamilyRun, AggScale,
};

use consolidate::Options;
use naiad_lite::digest::Fnv64;
use naiad_lite::engine::{Engine, ExecBackend, ExecMode, QuerySet};
use naiad_lite::env::UdfEnv;
use std::time::{Duration, Instant};
use udf_data::DomainKind;
use udf_lang::ast::Program;
use udf_lang::cost::CostModel;
use udf_lang::intern::Interner;

/// Result of one (domain, family) cell.
#[derive(Debug, Clone)]
pub struct FamilyRun {
    /// Domain name.
    pub domain: String,
    /// Family label (Q1…, Mix, BC).
    pub family: String,
    /// Number of queries consolidated.
    pub n_queries: usize,
    /// Records scanned.
    pub n_records: usize,
    /// Total records evaluated per mode across all passes
    /// (`n_records × passes`); the numerator of
    /// [`FamilyRun::records_per_sec`].
    pub scanned: usize,
    /// `where_many` UDF-phase wall time.
    pub many_udf: Duration,
    /// `where_consolidated` UDF-phase wall time.
    pub cons_udf: Duration,
    /// `where_many` total (compile + scan).
    pub many_total: Duration,
    /// `where_consolidated` total (consolidate + compile + scan).
    pub cons_total: Duration,
    /// Consolidation wall time (also folded into `cons_total`).
    pub consolidation: Duration,
    /// AST size of the merged program.
    pub merged_size: usize,
    /// Sum of AST sizes of the source programs.
    pub source_size: usize,
    /// Whether both modes selected identical record counts per query.
    pub outputs_agree: bool,
    /// Consolidation statistics (rule counters, queries, degradation tier).
    pub stats: consolidate::ConsolidationStats,
    /// Records quarantined across all passes and both modes (0 for healthy
    /// datasets; benches run under [`naiad_lite::ErrorPolicy::Quarantine`]
    /// so a faulting record degrades the row instead of killing the sweep).
    pub quarantined: usize,
    /// Pretty-printed merged program — lets warm-cache sweeps assert the
    /// cached plan is textually identical to a freshly consolidated one.
    pub merged_text: String,
    /// How the plan cache satisfied the request (`None` when no cache was
    /// supplied and consolidation always ran fresh).
    pub plan_outcome: Option<plan_cache::PlanOutcome>,
    /// Rule-derivation tree for the merged plan; present only when
    /// [`Options::explain`](consolidate::Options) was set and the plan was
    /// consolidated fresh (cache hits carry no derivation).
    pub explain: Option<consolidate::ExplainReport>,
    /// Shadow (sequential) re-executions performed by the plan guard across
    /// all passes — 0 unless a [`naiad_lite::GuardPolicy`] was active.
    pub shadow_runs: u64,
    /// Consolidated-vs-sequential divergences the guard observed.
    pub guard_mismatches: u64,
    /// Passes whose consolidated run was demoted to sequential execution by
    /// the guard (self-healing fallback).
    pub guard_demotions: u64,
    /// Transient-fault retry attempts spent across all passes and both
    /// modes — 0 unless a [`naiad_lite::RetryPolicy`] was active.
    pub retries: u64,
    /// Execution backend the engine ran under.
    pub backend: ExecBackend,
    /// Order-insensitive digest of the observable outputs (per-query counts
    /// and missing totals of both modes, plus the quarantined record set).
    /// Two runs of the same cell under different backends must produce the
    /// same digest — the cross-backend divergence check in CI compares it.
    /// A pre-filtered run must also reproduce the unfiltered digest (skips
    /// only elide work the verifier proved observation-free).
    pub output_digest: u64,
    /// Whether pre-filter synthesis was requested
    /// ([`Options::prefilter`](consolidate::Options)).
    pub prefilter: bool,
    /// Records the synthesized pre-filter skipped across all consolidated
    /// passes (0 when disabled, or when every candidate was rejected and
    /// the run fell open to full evaluation).
    pub prefilter_skipped: u64,
}

impl FamilyRun {
    /// UDF-time speedup (`where_many` / `where_consolidated`).
    pub fn udf_speedup(&self) -> f64 {
        self.many_udf.as_secs_f64() / self.cons_udf.as_secs_f64().max(1e-9)
    }

    /// Total-time speedup, charging consolidation to the consolidated side.
    pub fn total_speedup(&self) -> f64 {
        self.many_total.as_secs_f64() / self.cons_total.as_secs_f64().max(1e-9)
    }

    /// Consolidated-scan throughput: records evaluated per second of
    /// `where_consolidated` UDF time, across all passes.
    pub fn records_per_sec(&self) -> f64 {
        self.scanned as f64 / self.cons_udf.as_secs_f64().max(1e-9)
    }

    /// Fraction of scanned records the pre-filter skipped (its measured
    /// selectivity complement — 0.0 when the pre-filter is off or rejected).
    pub fn prefilter_skip_rate(&self) -> f64 {
        self.prefilter_skipped as f64 / (self.scanned as f64).max(1.0)
    }
}

/// Executes one family benchmark over an arbitrary dataset binding.
#[allow(clippy::too_many_arguments)]
pub fn run_family<E: UdfEnv>(
    domain: &str,
    family: &str,
    env: &E,
    records: &[E::Rec],
    programs: Vec<Program>,
    interner: &mut Interner,
    workers: usize,
    opts: &Options,
) -> FamilyRun {
    run_family_passes(domain, family, env, records, programs, interner, workers, opts, 1)
}

/// Like [`run_family`] but evaluates the query set over `passes` arrivals of
/// the collection — the standing-query scenario of the paper's introduction
/// (a stream platform consolidates once and evaluates the merged UDF on
/// every arriving batch). UDF-time speedup is independent of `passes`;
/// total-time speedup amortizes the one-off consolidation cost the same way
/// a long-running job amortizes it over I/O volume.
#[allow(clippy::too_many_arguments)]
pub fn run_family_passes<E: UdfEnv>(
    domain: &str,
    family: &str,
    env: &E,
    records: &[E::Rec],
    programs: Vec<Program>,
    interner: &mut Interner,
    workers: usize,
    opts: &Options,
    passes: usize,
) -> FamilyRun {
    run_family_cached(
        domain, family, env, records, programs, interner, workers, opts, passes, None,
    )
}

/// Like [`run_family_passes`] but consults `cache` before consolidating:
/// a stored plan for the same (canonical) query set is served without
/// touching the Ω engine or the SMT solver, modelling a platform that
/// amortizes consolidation across job submissions.
#[allow(clippy::too_many_arguments)]
pub fn run_family_cached<E: UdfEnv>(
    domain: &str,
    family: &str,
    env: &E,
    records: &[E::Rec],
    programs: Vec<Program>,
    interner: &mut Interner,
    workers: usize,
    opts: &Options,
    passes: usize,
    cache: Option<&plan_cache::PlanCache>,
) -> FamilyRun {
    run_family_guarded(
        domain,
        family,
        env,
        records,
        programs,
        interner,
        workers,
        opts,
        passes,
        cache,
        naiad_lite::GuardPolicy::default(),
        naiad_lite::RetryPolicy::default(),
        ExecBackend::PerRecord,
    )
}

/// Like [`run_family_cached`] but with an explicit plan-guard,
/// transient-retry, and execution-backend configuration on the engine; the
/// guard/retry counters land in the returned [`FamilyRun`] columns. The
/// defaults (guard/retry disabled, [`ExecBackend::PerRecord`]) make this
/// exactly [`run_family_cached`].
#[allow(clippy::too_many_arguments)]
pub fn run_family_guarded<E: UdfEnv>(
    domain: &str,
    family: &str,
    env: &E,
    records: &[E::Rec],
    programs: Vec<Program>,
    interner: &mut Interner,
    workers: usize,
    opts: &Options,
    passes: usize,
    cache: Option<&plan_cache::PlanCache>,
    guard: naiad_lite::GuardPolicy,
    retry: naiad_lite::RetryPolicy,
    backend: ExecBackend,
) -> FamilyRun {
    let cm = CostModel::default();
    let n_queries = programs.len();
    let source_size: usize = programs.iter().map(Program::size).sum();

    // Consolidate (timed, parallel divide-and-conquer as in §6.1), going
    // through the plan cache when one is supplied.
    let fns = FnCostOf(env);
    let (merged, plan_outcome) = match cache {
        Some(cache) => {
            let (merged, outcome) = plan_cache::consolidate_many_cached(
                cache, &programs, interner, &cm, &fns, opts, true, backend,
            )
            .expect("families share params and have distinct ids");
            (merged, Some(outcome))
        }
        None => (
            consolidate::consolidate_many(&programs, interner, &cm, &fns, opts, true)
                .expect("families share params and have distinct ids"),
            None,
        ),
    };
    let consolidation = merged.elapsed;

    // Compile both plans.
    let t0 = Instant::now();
    let qs =
        QuerySet::compile_many(&programs, &cm, &|f| env.fn_cost(f)).expect("family compiles");
    let compile_many = t0.elapsed();
    let t0 = Instant::now();
    let mut qs = qs
        .with_consolidated(&merged.program, &cm, &|f| env.fn_cost(f), consolidation)
        .expect("merged program compiles");
    if let Some(pf) = &merged.prefilter {
        qs = qs
            .with_prefilter(&pf.cond, &merged.program, &cm, &|f| env.fn_cost(f))
            .expect("pre-filter guard compiles");
    }
    let compile_cons = t0.elapsed();

    // Execute (each pass re-evaluates the whole collection). Quarantine
    // instead of fail-fast: one bad record degrades the row, not the sweep.
    // Engine metrics share the consolidation sink, so a `--metrics` run gets
    // one coherent snapshot across all three layers.
    let engine = Engine::new(workers)
        .with_error_policy(naiad_lite::ErrorPolicy::Quarantine {
            max_errors: usize::MAX,
        })
        .with_guard(guard)
        .with_retry(retry)
        .with_backend(backend)
        .with_recorder(opts.recorder.clone());
    let mut many_udf = Duration::ZERO;
    let mut cons_udf = Duration::ZERO;
    let mut outputs_agree = true;
    let mut quarantined = 0usize;
    let mut shadow_runs = 0u64;
    let mut guard_mismatches = 0u64;
    let mut guard_demotions = 0u64;
    let mut retries = 0u64;
    let mut prefilter_skipped = 0u64;
    let mut first = None;
    for _ in 0..passes.max(1) {
        let many = engine
            .run(env, records, &qs, ExecMode::Many, false)
            .expect("where_many runs");
        let cons = engine
            .run(env, records, &qs, ExecMode::Consolidated, false)
            .expect("where_consolidated runs");
        many_udf += many.udf_time;
        cons_udf += cons.udf_time;
        if let Some(g) = &cons.guard {
            shadow_runs += g.shadow_runs;
            guard_mismatches += g.mismatches;
            guard_demotions += u64::from(g.demoted);
        }
        retries += many.quarantine.retry_attempts + cons.quarantine.retry_attempts;
        prefilter_skipped += cons.prefilter_skipped;
        // Parity must hold on the surviving records, so the two modes must
        // also have quarantined the same records.
        outputs_agree &= many.counts == cons.counts
            && cons.missing.iter().all(|&m| m == 0)
            && many.missing.iter().all(|&m| m == 0)
            && many.quarantine.records() == cons.quarantine.records();
        quarantined += many.quarantine.records_quarantined + cons.quarantine.records_quarantined;
        first.get_or_insert((many, cons));
    }
    let (many, cons) = first.expect("at least one pass");
    let many = naiad_lite::engine::JobReport { udf_time: many_udf, ..many };
    let cons = naiad_lite::engine::JobReport { udf_time: cons_udf, ..cons };
    let output_digest = {
        let mut h = Fnv64::new();
        for report in [&many, &cons] {
            for &c in &report.counts {
                h.u64(c);
            }
            for &m in &report.missing {
                h.u64(m);
            }
            for r in report.quarantine.records() {
                h.u64(r as u64);
            }
        }
        h.finish()
    };

    FamilyRun {
        domain: domain.to_owned(),
        family: family.to_owned(),
        n_queries,
        n_records: records.len(),
        scanned: records.len() * passes.max(1),
        many_udf: many.udf_time,
        cons_udf: cons.udf_time,
        many_total: compile_many + many.udf_time,
        cons_total: consolidation + compile_cons + cons.udf_time,
        consolidation,
        merged_size: merged.program.size(),
        source_size,
        outputs_agree,
        stats: merged.stats,
        quarantined,
        merged_text: udf_lang::pretty::program(&merged.program, interner),
        plan_outcome,
        explain: merged.explain,
        shadow_runs,
        guard_mismatches,
        guard_demotions,
        retries,
        backend,
        output_digest,
        prefilter: opts.prefilter,
        prefilter_skipped,
    }
}

struct FnCostOf<'a, E: UdfEnv>(&'a E);

impl<'a, E: UdfEnv> udf_lang::cost::FnCost for FnCostOf<'a, E> {
    fn fn_cost(&self, f: udf_lang::intern::Symbol) -> udf_lang::cost::Cost {
        self.0.fn_cost(f)
    }
}

/// Dataset scale factor: 1.0 = paper-sized.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Fraction of paper-sized record counts.
    pub records: f64,
    /// Queries per family (paper: 50).
    pub queries: usize,
    /// Collection arrivals evaluated per job (standing-query scenario).
    pub passes: usize,
}

impl Scale {
    /// Paper-sized run.
    pub fn full() -> Scale {
        Scale {
            records: 1.0,
            queries: 50,
            passes: 20,
        }
    }

    /// Reduced run for smoke tests / CI.
    pub fn fast() -> Scale {
        Scale {
            records: 0.08,
            queries: 12,
            passes: 2,
        }
    }

    fn n(&self, full: usize) -> usize {
        ((full as f64 * self.records) as usize).max(4)
    }
}

/// Runs every family of `domain` at the given scale, returning one
/// [`FamilyRun`] per family.
pub fn run_domain(domain: DomainKind, scale: Scale, seed: u64, opts: &Options) -> Vec<FamilyRun> {
    run_domain_guarded(
        domain,
        scale,
        seed,
        opts,
        naiad_lite::GuardPolicy::default(),
        naiad_lite::RetryPolicy::default(),
        ExecBackend::PerRecord,
    )
}

/// Like [`run_domain`] but running every family under the given plan-guard,
/// transient-retry, and execution-backend configuration (see
/// [`run_family_guarded`]).
pub fn run_domain_guarded(
    domain: DomainKind,
    scale: Scale,
    seed: u64,
    opts: &Options,
    guard: naiad_lite::GuardPolicy,
    retry: naiad_lite::RetryPolicy,
    backend: ExecBackend,
) -> Vec<FamilyRun> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut out = Vec::new();
    match domain {
        DomainKind::Weather => {
            let mut interner = Interner::new();
            let env = udf_data::weather::WeatherEnv::new(&mut interner);
            let records =
                udf_data::weather::dataset_sized(scale.n(udf_data::weather::DEFAULT_CITIES), seed);
            for fam in udf_data::weather::families() {
                let programs = (fam.build)(scale.queries, seed, &mut interner);
                out.push(run_family_guarded(
                    "weather", fam.label, &env, &records, programs, &mut interner, workers, opts,
                    scale.passes, None, guard, retry, backend,
                ));
            }
        }
        DomainKind::Flight => {
            let mut interner = Interner::new();
            let per_pair = if scale.records >= 0.99 { 12 } else { 2 };
            let (env, records) = udf_data::flight::dataset_sized(per_pair, &mut interner, seed);
            for fam in udf_data::flight::families() {
                let programs = (fam.build)(scale.queries, seed, &mut interner);
                out.push(run_family_guarded(
                    "flight", fam.label, &env, &records, programs, &mut interner, workers, opts,
                    scale.passes, None, guard, retry, backend,
                ));
            }
        }
        DomainKind::News => {
            let mut interner = Interner::new();
            let env = udf_data::news::NewsEnv::new(&mut interner);
            let records =
                udf_data::news::dataset_sized(scale.n(udf_data::news::DEFAULT_ARTICLES), seed);
            for fam in udf_data::news::families() {
                let programs = (fam.build)(scale.queries, seed, &mut interner);
                out.push(run_family_guarded(
                    "news", fam.label, &env, &records, programs, &mut interner, workers, opts,
                    scale.passes, None, guard, retry, backend,
                ));
            }
        }
        DomainKind::Twitter => {
            let mut interner = Interner::new();
            let env = udf_data::twitter::TwitterEnv::new(&mut interner);
            let records =
                udf_data::twitter::dataset_sized(scale.n(udf_data::twitter::DEFAULT_TWEETS), seed);
            for fam in udf_data::twitter::families() {
                let programs = (fam.build)(scale.queries, seed, &mut interner);
                out.push(run_family_guarded(
                    "twitter", fam.label, &env, &records, programs, &mut interner, workers, opts,
                    scale.passes, None, guard, retry, backend,
                ));
            }
        }
        DomainKind::Stock => {
            let mut interner = Interner::new();
            let env = udf_data::stock::StockEnv::new(&mut interner);
            let days = if scale.records >= 0.99 {
                udf_data::stock::DAYS
            } else {
                600
            };
            let records = udf_data::stock::dataset_sized(
                scale.n(udf_data::stock::DEFAULT_TICKERS),
                days,
                seed,
            );
            for (label, build) in udf_data::stock::families_sized(days as i64) {
                let programs = build(scale.queries, seed, &mut interner);
                out.push(run_family_guarded(
                    "stock", label, &env, &records, programs, &mut interner, workers, opts,
                    scale.passes, None, guard, retry, backend,
                ));
            }
        }
    }
    out
}

/// Formats a [`FamilyRun`] table row.
pub fn format_row(r: &FamilyRun) -> String {
    format!(
        "{:<8} {:<4} {:>4} {:>9} {:>10.2}x {:>10.2}x {:>12.3}s {:>8} {:>8} {:>7} {:>8} {:>6} {:>6} {:>7} {:>5} {:>5} {:>5} {:>8}",
        r.domain,
        r.family,
        r.n_queries,
        r.n_records,
        r.udf_speedup(),
        r.total_speedup(),
        r.consolidation.as_secs_f64(),
        if r.outputs_agree { "ok" } else { "MISMATCH" },
        r.merged_size,
        r.stats.tier.as_str(),
        r.stats.solver.checks,
        r.stats.memo_hits,
        r.quarantined,
        r.shadow_runs,
        r.guard_mismatches,
        r.guard_demotions,
        r.retries,
        r.prefilter_skipped,
    )
}

/// Table header matching [`format_row`].
pub fn header() -> String {
    format!(
        "{:<8} {:<4} {:>4} {:>9} {:>11} {:>11} {:>13} {:>8} {:>8} {:>7} {:>8} {:>6} {:>6} {:>7} {:>5} {:>5} {:>5} {:>8}",
        "domain", "fam", "n", "records", "udf-spdup", "tot-spdup", "consolid.", "agree", "size",
        "tier", "smt-chk", "memo", "q'tine", "shadow", "g-mis", "demot", "retry", "pf-skip"
    )
}

/// Serializes benchmark rows as a JSON array (hand-rolled — the offline
/// workspace vendors no serde). Wall times are seconds; the schema is the
/// stable surface behind the committed `BENCH_fig9.json` /
/// `BENCH_fig10.json` artifacts at the repository root.
pub fn family_runs_json(runs: &[FamilyRun]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("[\n");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            concat!(
                "  {{\"domain\":\"{}\",\"family\":\"{}\",\"n_queries\":{},\"n_records\":{},",
                "\"many_udf_s\":{:.6},\"cons_udf_s\":{:.6},\"many_total_s\":{:.6},",
                "\"cons_total_s\":{:.6},\"consolidation_s\":{:.6},\"udf_speedup\":{:.4},",
                "\"total_speedup\":{:.4},\"merged_size\":{},\"source_size\":{},\"tier\":\"{}\",",
                "\"smt_checks\":{},\"memo_hits\":{},\"outputs_agree\":{},\"quarantined\":{},",
                "\"backend\":\"{}\",\"records_per_sec\":{:.1},\"output_digest\":\"{:016x}\",",
                "\"prefilter\":{},\"prefilter_skipped\":{},\"prefilter_skip_rate\":{:.4}}}"
            ),
            esc(&r.domain),
            esc(&r.family),
            r.n_queries,
            r.n_records,
            r.many_udf.as_secs_f64(),
            r.cons_udf.as_secs_f64(),
            r.many_total.as_secs_f64(),
            r.cons_total.as_secs_f64(),
            r.consolidation.as_secs_f64(),
            r.udf_speedup(),
            r.total_speedup(),
            r.merged_size,
            r.source_size,
            r.stats.tier.as_str(),
            r.stats.solver.checks,
            r.stats.memo_hits,
            r.outputs_agree,
            r.quarantined,
            r.backend.as_str(),
            r.records_per_sec(),
            r.output_digest,
            r.prefilter,
            r.prefilter_skipped,
            r.prefilter_skip_rate(),
        ));
    }
    out.push_str("\n]\n");
    out
}
