//! The observability layer must agree with the structured results it
//! shadows: recorder counters are incremented at the same sites as
//! [`consolidate::ConsolidationStats`] and the engine's
//! [`naiad_lite::engine::QuarantineReport`], so any drift between the two is
//! an instrumentation bug. These tests pin the contract, and also pin that
//! turning `--explain` tracing on does not change the consolidated plan.

// Integration tests may unwrap freely; the clippy gate denies it in src/.
#![allow(clippy::unwrap_used)]

use consolidate::Options;
use naiad_lite::engine::{Engine, ExecMode, QuerySet};
use naiad_lite::env::ScalarEnv;
use naiad_lite::{FaultKind, FaultPlan, FaultyEnv};
use udf_lang::ast::Program;
use udf_lang::cost::{CostModel, UniformFnCost};
use udf_lang::intern::Interner;
use udf_lang::parse::parse_programs;
use udf_lang::FnLibrary;
use udf_obs::{names, RecorderCell};

/// A small family with shared structure: overlapping thresholds trigger
/// If3/If5 merging, repeated guards hit the entailment memo, and the guard
/// pairs exercise the solver.
fn family(interner: &mut Interner) -> Vec<Program> {
    parse_programs(
        "program q0 @0 (v, w) {
             if (v > 10) { notify true; } else { notify false; }
         }
         program q1 @1 (v, w) {
             if (v > 10) { if (w > 3) { notify true; } else { notify false; } }
             else { notify false; }
         }
         program q2 @2 (v, w) {
             if (v > 25) { notify true; } else { notify false; }
         }
         program q3 @3 (v, w) {
             x := v + w;
             if (x > 10) { notify true; } else { notify false; }
         }",
        interner,
    )
    .expect("family parses")
}

fn consolidate_with(opts: &Options) -> (consolidate::Consolidated, String) {
    let mut interner = Interner::new();
    let programs = family(&mut interner);
    let cm = CostModel::default();
    let merged = consolidate::consolidate_many(
        &programs,
        &mut interner,
        &cm,
        &UniformFnCost(20),
        opts,
        false,
    )
    .expect("family consolidates");
    let text = udf_lang::pretty::program(&merged.program, &interner);
    (merged, text)
}

#[test]
fn recorder_counters_match_consolidation_stats() {
    let opts = Options {
        recorder: RecorderCell::memory(),
        ..Options::default()
    };
    let (merged, _) = consolidate_with(&opts);
    let snap = opts.recorder.snapshot().expect("memory recorder snapshots");
    let s = &merged.stats;

    // Every pair below is (recorder metric, stats field) incremented at the
    // same source line; the assertion failing means an emission site moved.
    let pairs: &[(&str, u64)] = &[
        (names::PAIRS, s.pairs_consolidated),
        (names::PAIRS_DEGRADED, s.pairs_degraded),
        (names::ENTAIL_QUERIES, s.entailment_queries),
        (names::ENTAIL_MEMO_HITS, s.memo_hits),
        (names::SMT_CHECKS, s.solver.checks),
        (names::SMT_THEORY_CHECKS, s.solver.theory_checks),
        (names::SMT_THEORY_CONFLICTS, s.solver.theory_conflicts),
        (names::SMT_MINIMIZED_LITERALS, s.solver.minimized_literals),
        (names::SMT_SAT_DECISIONS, s.solver.sat_decisions),
        (names::SMT_SAT_CONFLICTS, s.solver.sat_conflicts),
        (names::SMT_SAT_PROPAGATIONS, s.solver.sat_propagations),
        (names::SMT_SIMPLEX_PIVOTS, s.solver.simplex_pivots),
        (names::SMT_THEORY_ROUNDS, s.solver.theory_rounds),
        (names::RULE_IF3, s.rules.if3),
        (names::RULE_IF4, s.rules.if4),
        (names::RULE_IF5, s.rules.if5),
        (names::RULE_LOOP2, s.rules.loop2),
        (names::RULE_LOOP3, s.rules.loop3),
        (names::RULE_LOOP_SEQ, s.rules.loop_seq),
        (names::RULE_DEPTH_FALLBACK, s.rules.depth_fallbacks),
        (names::RULE_BUDGET_FALLBACK, s.rules.budget_fallbacks),
    ];
    for (metric, stat) in pairs {
        assert_eq!(
            snap.counter(metric),
            *stat,
            "recorder counter {metric} drifted from ConsolidationStats"
        );
    }
    // If1 and If2 share one stats field.
    assert_eq!(
        snap.counter(names::RULE_IF1) + snap.counter(names::RULE_IF2),
        s.rules.if_eliminated,
        "if1+if2 counters drifted from rules.if_eliminated"
    );
    // Sanity: the family is non-trivial — work actually happened.
    assert!(s.entailment_queries > 0, "family produced no queries");
    assert!(s.solver.checks > 0, "family never reached the solver");
}

#[test]
fn engine_quarantine_counters_match_report() {
    naiad_lite::fault::silence_injected_panics();
    let mut interner = Interner::new();
    let probe = interner.intern("probe");
    let mut lib = FnLibrary::new();
    lib.register(probe, "probe", 1, 10, |args| args[0]);
    let programs = parse_programs(
        "program p0 @0 (v) {
             if (probe(v) > 4) { notify true; } else { notify false; }
         }",
        &mut interner,
    )
    .unwrap();
    let cm = CostModel::default();
    let qs = QuerySet::compile_many(&programs, &cm, &|_| 10).unwrap();

    // Records 3 and 5 fault (library error / panic); everything else is
    // healthy. The recorder's quarantine counters must mirror the report.
    let mut plan = FaultPlan::none();
    plan.insert(3, FaultKind::LibError);
    plan.insert(5, FaultKind::Panic);
    let env = FaultyEnv::new(ScalarEnv::new(1, lib), probe, plan);
    let records = FaultyEnv::<ScalarEnv>::index_records((0..16).map(|v| vec![v]));

    let recorder = RecorderCell::memory();
    let engine = Engine::new(2)
        .with_error_policy(naiad_lite::ErrorPolicy::Quarantine {
            max_errors: usize::MAX,
        })
        .with_recorder(recorder.clone());
    let report = engine
        .run(&env, &records, &qs, ExecMode::Many, false)
        .expect("quarantine policy absorbs the faults");

    assert_eq!(report.quarantine.records_quarantined, 2);
    assert_eq!(report.quarantine.records(), vec![3, 5]);

    // JobReport::metrics is the same snapshot the recorder cell yields.
    let snap = report.metrics.expect("engine had a live recorder");
    assert_eq!(
        snap.counter(names::ENGINE_QUARANTINED),
        report.quarantine.records_quarantined as u64,
        "engine.quarantined.records drifted from the QuarantineReport"
    );
    assert_eq!(snap.counter(names::ENGINE_QUARANTINED_LIB), 1);
    assert_eq!(snap.counter(names::ENGINE_QUARANTINED_PANIC), 1);
    assert_eq!(snap.counter(names::ENGINE_QUARANTINED_OUT_OF_FUEL), 0);
    // Every record was attempted exactly once (quarantined ones included).
    assert_eq!(snap.counter(names::ENGINE_RECORDS), records.len() as u64);
    assert_eq!(
        snap.histogram(names::ENGINE_RECORD_NS).map(|h| h.count),
        Some(records.len() as u64)
    );
}

#[test]
fn explain_toggle_does_not_change_the_plan() {
    let (plain, plain_text) = consolidate_with(&Options::default());
    let explain_opts = Options {
        explain: true,
        ..Options::default()
    };
    let (traced, traced_text) = consolidate_with(&explain_opts);

    assert!(plain.explain.is_none(), "explain off must not build a report");
    let report = traced.explain.expect("explain on must build a report");
    assert!(!report.rules_fired().is_empty(), "derivation must name rules");

    // Tracing is observation only: the merged program and every counter the
    // Ω engine drives must be identical. Solver-internal search counters
    // (pivots, propagations) legitimately vary across runs with hash-map
    // iteration order, so they are excluded — but the number of checks the
    // engine issued is not allowed to move.
    assert_eq!(plain_text, traced_text, "explain changed the merged plan");
    assert_eq!(plain.stats.rules, traced.stats.rules, "explain changed the rules fired");
    assert_eq!(plain.stats.entailment_queries, traced.stats.entailment_queries);
    assert_eq!(plain.stats.memo_hits, traced.stats.memo_hits);
    assert_eq!(plain.stats.pairs_consolidated, traced.stats.pairs_consolidated);
    assert_eq!(plain.stats.pairs_degraded, traced.stats.pairs_degraded);
    assert_eq!(plain.stats.tier, traced.stats.tier);
    assert_eq!(plain.stats.solver.checks, traced.stats.solver.checks);
}
