//! User-defined aggregation (UDAF) query sets — the aggregation edition of
//! the §6.2 workloads. Each domain gets four families of generated
//! [`AggDef`]s over its environment accessors:
//!
//! * **SUM** — linear sums of a record measure (weighted, so definitions
//!   within a family differ);
//! * **CNT** — conditional counts against seeded thresholds;
//! * **VAR** — two-slot sum + sum-of-squares (fixed-point variance inputs);
//! * **MIX** — sums and counts plus one *last-value* definition whose merge
//!   is provably **not** a homomorphism (`merge(x, init) = init ≠ x`), so a
//!   proved set degrades to `Partial` and the engine folds that definition
//!   sequentially.
//!
//! The first three shapes are exactly the ones the homomorphism prover
//! discharges; `MIX` exists to exercise the sound fallback tier end to end.

use crate::util::rng;
use crate::DomainKind;
use rand::rngs::SmallRng;
use rand::Rng;
use udf_lang::agg::{parse_agg, AggDef};
use udf_lang::intern::Interner;

/// Shape labels, in builder order.
pub const SHAPES: [&str; 4] = ["SUM", "CNT", "VAR", "MIX"];

/// An aggregation-family builder: `(n_defs, seed, interner) → definitions`.
pub type AggBuilder = fn(usize, u64, &mut Interner) -> Vec<AggDef>;

/// A named aggregation family within a domain.
#[derive(Clone, Debug)]
pub struct AggFamily {
    /// Label used in tables ("SUM", "CNT", "VAR", "MIX").
    pub label: &'static str,
    /// Whether every definition in the family is expected to prove (the
    /// `MIX` families deliberately contain one refutable definition).
    pub provable: bool,
    /// Builder: `(n_defs, seed, interner) → definitions`.
    pub build: AggBuilder,
}

/// Record parameter list for a domain, matching its `UdfEnv::args` order.
fn params(domain: DomainKind) -> &'static str {
    match domain {
        DomainKind::Weather => "city",
        DomainKind::Flight => "airline, origin, dest, price, stops, day",
        DomainKind::News => "tokens",
        DomainKind::Twitter => "smileys, lang",
        DomainKind::Stock => "ticker",
    }
}

/// A per-record integer measure: `(binding statements, expression)`. The
/// bindings compute scratch locals the expression may read; both vary by
/// seeded draw so definitions within a family differ.
fn measure(domain: DomainKind, r: &mut SmallRng) -> (String, String) {
    match domain {
        DomainKind::Weather => {
            let m = r.gen_range(1..13);
            (format!("t := tempOfMonth({m});"), "t".to_string())
        }
        DomainKind::Flight => (String::new(), "price".to_string()),
        DomainKind::News => (String::new(), "tokens".to_string()),
        DomainKind::Twitter => {
            let k = r.gen_range(0..5);
            (format!("t := sentimentScore({k});"), "t".to_string())
        }
        DomainKind::Stock => {
            let d = r.gen_range(0..600);
            (format!("t := volumeAt({d});"), "t".to_string())
        }
    }
}

/// A per-record boolean predicate for the conditional-count shape.
fn predicate(domain: DomainKind, r: &mut SmallRng) -> String {
    match domain {
        DomainKind::Weather => {
            // Two-year monthly rainfall total, tenths of mm.
            let m = r.gen_range(1..13);
            let thr = r.gen_range(500..80_000);
            format!("rainOfMonth({m}) > {thr}")
        }
        DomainKind::Flight => {
            // Flights cheaper than their route average (minus a margin).
            let margin = r.gen_range(0..60);
            format!("price < avgPrice(origin, dest) - {margin}")
        }
        DomainKind::News => {
            let w = r.gen_range(0..2_000);
            format!("containsWord({w}) > 0")
        }
        DomainKind::Twitter => {
            let k = r.gen_range(0..5);
            let thr = r.gen_range(20..80);
            format!("sentimentScore({k}) > {thr}")
        }
        DomainKind::Stock => {
            let d = r.gen_range(0..600);
            let thr = r.gen_range(5_000..45_000);
            format!("closeAt({d}) > {thr}")
        }
    }
}

fn sum_source(domain: DomainKind, id: u32, r: &mut SmallRng) -> String {
    let (bind, x) = measure(domain, r);
    let w = r.gen_range(1..5);
    format!(
        "aggregate sum_{id} @{id} ({}) {{
             state s = 0;
             fold  {{ {bind} s := s + {w} * {x}; }}
             merge {{ s := s + rhs_s; }}
         }}",
        params(domain)
    )
}

fn cnt_source(domain: DomainKind, id: u32, r: &mut SmallRng) -> String {
    let p = predicate(domain, r);
    format!(
        "aggregate cnt_{id} @{id} ({}) {{
             state c = 0;
             fold  {{ if ({p}) {{ c := c + 1; }} }}
             merge {{ c := c + rhs_c; }}
         }}",
        params(domain)
    )
}

fn var_source(domain: DomainKind, id: u32, r: &mut SmallRng) -> String {
    let (bind, x) = measure(domain, r);
    format!(
        "aggregate var_{id} @{id} ({}) {{
             state s = 0;
             state ss = 0;
             fold  {{ {bind} s := s + {x}; ss := ss + {x} * {x}; }}
             merge {{ s := s + rhs_s; ss := ss + rhs_ss; }}
         }}",
        params(domain)
    )
}

/// Last-value: `merge` keeps the right-hand state, so `merge(x, init)` is
/// `init`, not `x` — the prover refutes H1 and the engine must fall back.
fn last_source(domain: DomainKind, id: u32, r: &mut SmallRng) -> String {
    let (bind, x) = measure(domain, r);
    format!(
        "aggregate last_{id} @{id} ({}) {{
             state l = -1;
             fold  {{ {bind} l := {x}; }}
             merge {{ l := rhs_l; }}
         }}",
        params(domain)
    )
}

fn def_source(domain: DomainKind, shape: usize, q: usize, n: usize, r: &mut SmallRng) -> String {
    let id = u32::try_from(q).expect("query index fits");
    match shape {
        0 => sum_source(domain, id, r),
        1 => cnt_source(domain, id, r),
        2 => var_source(domain, id, r),
        _ => {
            // MIX: sums and counts, with the final definition refutable.
            if q + 1 == n {
                last_source(domain, id, r)
            } else if q.is_multiple_of(2) {
                sum_source(domain, id, r)
            } else {
                cnt_source(domain, id, r)
            }
        }
    }
}

fn build_set(
    domain: DomainKind,
    shape: usize,
    n: usize,
    seed: u64,
    interner: &mut Interner,
) -> Vec<AggDef> {
    let mut r = rng(domain.name(), "aggs", seed.wrapping_add(shape as u64));
    (0..n)
        .map(|q| {
            let src = def_source(domain, shape, q, n, &mut r);
            parse_agg(&src, interner).expect("generated aggregation parses")
        })
        .collect()
}

macro_rules! domain_builds {
    ($d:path) => {
        [
            |n, s, i| build_set($d, 0, n, s, i),
            |n, s, i| build_set($d, 1, n, s, i),
            |n, s, i| build_set($d, 2, n, s, i),
            |n, s, i| build_set($d, 3, n, s, i),
        ]
    };
}

/// Aggregation families for one domain: `SUM`, `CNT`, `VAR`, `MIX`.
pub fn families(domain: DomainKind) -> Vec<AggFamily> {
    let builds: [AggBuilder; 4] = match domain {
        DomainKind::Weather => domain_builds!(DomainKind::Weather),
        DomainKind::Flight => domain_builds!(DomainKind::Flight),
        DomainKind::News => domain_builds!(DomainKind::News),
        DomainKind::Twitter => domain_builds!(DomainKind::Twitter),
        DomainKind::Stock => domain_builds!(DomainKind::Stock),
    };
    SHAPES
        .iter()
        .zip(builds)
        .map(|(label, build)| AggFamily {
            label,
            provable: *label != "MIX",
            build,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use consolidate::{consolidate_aggs, DegradationTier, Options};

    #[test]
    fn generation_is_deterministic() {
        let mut i = Interner::new();
        for d in DomainKind::ALL {
            for f in families(d) {
                let a = (f.build)(3, 11, &mut i);
                let b = (f.build)(3, 11, &mut i);
                assert_eq!(a, b, "{} {}", d.name(), f.label);
                assert_eq!(a.len(), 3);
            }
        }
    }

    #[test]
    fn provable_families_prove_and_mix_degrades_partially() {
        let mut i = Interner::new();
        let opts = Options::default();
        for d in DomainKind::ALL {
            for f in families(d) {
                let defs = (f.build)(3, 7, &mut i);
                let c = consolidate_aggs(&defs, &mut i, &opts).expect("consolidates");
                if f.provable {
                    assert_eq!(
                        c.tier,
                        DegradationTier::Full,
                        "{} {} should fully prove: {:?}",
                        d.name(),
                        f.label,
                        c.outcomes
                    );
                } else {
                    assert_eq!(
                        c.proved_flags(),
                        vec![true, true, false],
                        "{} {} should refute only the last definition",
                        d.name(),
                        f.label
                    );
                    assert_eq!(c.tier, DegradationTier::Partial);
                }
            }
        }
    }
}
