//! Flight domain (paper §6.2): synthetic flight inventory for the first half
//! of November 2013 — 500 airlines across 10 cities, 12 daily flights per
//! city pair, a quarter of them direct. Prices follow an arithmetic
//! progression in the airline and city identifiers, as the paper describes.
//!
//! Query families:
//!
//! * **Q1** — direct flight between two cities under a price cap;
//! * **Q2** — flight with connections between two cities under a price cap;
//! * **Q3** — airline's average price between two cities under a cap
//!   (via the `avgPrice(o, d)` accessor);
//! * **Mix** — 50 queries sampled `{15, 20, 15}` from Q1–Q3.
//!
//! City pairs are drawn from a Zipf distribution so that popular routes are
//! queried by many UDFs — the paper's price-monitoring-application scenario.

use crate::util::{self, rng, Zipf};
use crate::Family;
use naiad_lite::env::UdfEnv;
use rand::distributions::Distribution;
use rand::Rng;
use std::sync::Arc;
use udf_lang::ast::Program;
use udf_lang::cost::Cost;
use udf_lang::intern::{Interner, Symbol};
use udf_lang::library::LibError;
use udf_lang::parse::parse_program;

/// Number of cities.
pub const CITIES: i64 = 10;
/// Number of airlines.
pub const AIRLINES: i64 = 500;
/// Days covered (Nov 1–15).
pub const DAYS: i64 = 15;

/// One flight row.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// Operating airline id.
    pub airline: i64,
    /// Origin city id.
    pub origin: i64,
    /// Destination city id.
    pub dest: i64,
    /// Ticket price.
    pub price: i64,
    /// 0 = direct, ≥1 = connections.
    pub stops: i64,
    /// Day of month (1–15).
    pub day: i64,
}

/// Environment: scalar fields plus the `avgPrice(o, d)` accessor backed by a
/// per-airline average-price table computed at generation time.
#[derive(Debug, Clone)]
pub struct FlightEnv {
    avg_price: Symbol,
    /// `avg_table[airline × 100 + o × 10 + d]`.
    table: Arc<Vec<i64>>,
}

/// Cost of the average-price aggregation.
pub const AVG_PRICE_COST: Cost = 40;

impl FlightEnv {
    /// Parameter names, in argument order.
    pub const PARAMS: [&'static str; 6] = ["airline", "origin", "dest", "price", "stops", "day"];

    fn new(interner: &mut Interner, table: Arc<Vec<i64>>) -> FlightEnv {
        FlightEnv {
            avg_price: interner.intern("avgPrice"),
            table,
        }
    }
}

impl UdfEnv for FlightEnv {
    type Rec = FlightRecord;

    fn arity(&self) -> usize {
        6
    }

    fn args(&self, rec: &FlightRecord, out: &mut Vec<i64>) {
        out.extend_from_slice(&[rec.airline, rec.origin, rec.dest, rec.price, rec.stops, rec.day]);
    }

    fn call(&self, rec: &FlightRecord, f: Symbol, args: &[i64]) -> Result<i64, LibError> {
        if f != self.avg_price {
            return Err(LibError::UnknownFunction(format!("#{}", f.index())));
        }
        if args.len() != 2 {
            return Err(LibError::ArityMismatch {
                name: "avgPrice".to_owned(),
                expected: 2,
                got: args.len(),
            });
        }
        let (o, d) = (args[0].rem_euclid(CITIES), args[1].rem_euclid(CITIES));
        let idx = (rec.airline.rem_euclid(AIRLINES) * 100 + o * 10 + d) as usize;
        Ok(self.table[idx])
    }

    fn fn_cost(&self, _f: Symbol) -> Cost {
        AVG_PRICE_COST
    }
}

/// Generates the dataset and its environment.
pub fn dataset_sized(
    flights_per_pair_day: i64,
    interner: &mut Interner,
    seed: u64,
) -> (FlightEnv, Vec<FlightRecord>) {
    let mut r = rng("flight", "data", seed);
    let mut records = Vec::new();
    for day in 1..=DAYS {
        for o in 0..CITIES {
            for d in 0..CITIES {
                if o == d {
                    continue;
                }
                for _ in 0..flights_per_pair_day {
                    let airline = r.gen_range(0..AIRLINES);
                    // The paper: price is a multiple arithmetic progression
                    // in the airline and city identifiers.
                    let price = 60 + airline * 3 % 220 + o * 23 + d * 17 + day * 5
                        + r.gen_range(0..40);
                    let stops = i64::from(r.gen_range(0..4) != 0); // 1/4 direct
                    records.push(FlightRecord {
                        airline,
                        origin: o,
                        dest: d,
                        price,
                        stops,
                        day,
                    });
                }
            }
        }
    }
    // Per-airline average price table.
    let mut sums = vec![0i64; (AIRLINES * 100) as usize];
    let mut counts = vec![0i64; (AIRLINES * 100) as usize];
    for f in &records {
        let idx = (f.airline * 100 + f.origin * 10 + f.dest) as usize;
        sums[idx] += f.price;
        counts[idx] += 1;
    }
    let table: Vec<i64> = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| if c > 0 { s / c } else { 0 })
        .collect();
    (FlightEnv::new(interner, Arc::new(table)), records)
}

/// Paper-sized dataset: 12 daily flights per pair.
pub fn dataset(interner: &mut Interner, seed: u64) -> (FlightEnv, Vec<FlightRecord>) {
    dataset_sized(12, interner, seed)
}

fn pick_pair(r: &mut rand::rngs::SmallRng, zipf: &Zipf) -> (i64, i64) {
    let pair = zipf.sample(r) as i64;
    let o = pair / (CITIES - 1);
    let mut d = pair % (CITIES - 1);
    if d >= o {
        d += 1;
    }
    (o.min(CITIES - 1), d)
}

fn build_family(
    fam: usize,
    id: u32,
    r: &mut rand::rngs::SmallRng,
    zipf: &Zipf,
    interner: &mut Interner,
) -> Program {
    let (o, d) = pick_pair(r, zipf);
    let p = r.gen_range(150..420);
    let src = match fam {
        0 => format!(
            "program f_q1_{id} @{id} (airline, origin, dest, price, stops, day) {{
                 if (origin == {o} && dest == {d} && stops == 0 && price < {p})
                 {{ notify true; }} else {{ notify false; }}
             }}"
        ),
        1 => format!(
            "program f_q2_{id} @{id} (airline, origin, dest, price, stops, day) {{
                 if (origin == {o} && dest == {d} && stops >= 1 && price < {p})
                 {{ notify true; }} else {{ notify false; }}
             }}"
        ),
        _ => format!(
            "program f_q3_{id} @{id} (airline, origin, dest, price, stops, day) {{
                 a := avgPrice({o}, {d});
                 if (a < {p}) {{ notify true; }} else {{ notify false; }}
             }}"
        ),
    };
    parse_program(&src, interner).expect("generated flight query parses")
}

fn build_n(fam: usize, n: usize, seed: u64, interner: &mut Interner) -> Vec<Program> {
    let mut r = rng("flight", "queries", seed.wrapping_add(fam as u64));
    let zipf = Zipf::new((CITIES * (CITIES - 1)) as usize);
    (0..n)
        .map(|q| build_family(fam, u32::try_from(q).expect("fits"), &mut r, &zipf, interner))
        .collect()
}

/// The Mix family: `{15, 20, 15}` over Q1–Q3 (§6.2's Q4).
pub fn mix(n: usize, seed: u64, interner: &mut Interner) -> Vec<Program> {
    let mut r = rng("flight", "mix", seed);
    let zipf = Zipf::new((CITIES * (CITIES - 1)) as usize);
    let cell = std::cell::RefCell::new(interner);
    util::sample_mix(n, &[15, 20, 15], &mut r, |fam, id, r| {
        build_family(fam, id, r, &zipf, &mut cell.borrow_mut())
    })
}

/// Query families in presentation order: Q1–Q3 plus Mix.
pub fn families() -> Vec<Family> {
    vec![
        Family { label: "Q1", build: |n, s, i| build_n(0, n, s, i) },
        Family { label: "Q2", build: |n, s, i| build_n(1, n, s, i) },
        Family { label: "Q3", build: |n, s, i| build_n(2, n, s, i) },
        Family { label: "Mix", build: mix },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use naiad_lite::engine::{Engine, ExecMode, QuerySet};
    use udf_lang::cost::CostModel;

    #[test]
    fn dataset_shape() {
        let mut i = Interner::new();
        let (env, records) = dataset_sized(2, &mut i, 5);
        assert_eq!(records.len(), (DAYS * CITIES * (CITIES - 1) * 2) as usize);
        let f = records.iter().find(|f| f.stops == 0).expect("some direct flights");
        let avg = env
            .call(f, i.intern("avgPrice"), &[f.origin, f.dest])
            .unwrap();
        assert!(avg > 0);
    }

    #[test]
    fn families_generate_runnable_queries() {
        let mut i = Interner::new();
        let (env, records) = dataset_sized(1, &mut i, 5);
        for fam in families() {
            let programs = (fam.build)(5, 9, &mut i);
            let cm = CostModel::default();
            let qs = QuerySet::compile_many(&programs, &cm, &|f| env.fn_cost(f)).unwrap();
            let r = Engine::new(2)
                .run(&env, &records, &qs, ExecMode::Many, false)
                .unwrap();
            assert_eq!(r.missing, vec![0; 5], "family {}", fam.label);
        }
    }

    #[test]
    fn pair_picking_avoids_self_loops() {
        let mut r = rng("flight", "pairs", 0);
        let zipf = Zipf::new((CITIES * (CITIES - 1)) as usize);
        for _ in 0..200 {
            let (o, d) = pick_pair(&mut r, &zipf);
            assert_ne!(o, d);
            assert!((0..CITIES).contains(&o) && (0..CITIES).contains(&d));
        }
    }
}
