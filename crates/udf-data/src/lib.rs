//! Workloads for the PLDI 2014 UDF-consolidation evaluation (§6.2).
//!
//! Five domains, each with a seeded synthetic dataset generator, a
//! [`naiad_lite::UdfEnv`] binding records to the UDF language, and the
//! paper's query families:
//!
//! | Domain  | Records | Families |
//! |---------|---------|----------|
//! | [`weather`] | 500 cities, 2 years of hourly readings aggregated monthly | monthly/yearly temperature & rainfall filters + mix |
//! | [`flight`]  | half-month of flights, 500 airlines × 10 cities × 12 daily | direct / connecting / average-price filters + mix |
//! | [`news`]    | 19043 articles (Zipf vocabulary)                           | word containment, average & maximum word length + boolean combos |
//! | [`twitter`] | 31152 tweets                                               | smiley count, sentiment, topic + boolean combos |
//! | [`stock`]   | 100 tickers × ~3774 trading days (377k rows)               | average volume, maximum value, standard deviation + boolean combos |
//!
//! The paper used real Reuters/Twitter/Yahoo-Finance data; we substitute
//! seeded generators with the same shapes and sizes (see `DESIGN.md`). Query
//! parameters are drawn from the distributions described in §6.2, so queries
//! within a family overlap exactly the way the evaluation relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod flight;
pub mod news;
pub mod stock;
pub mod twitter;
pub mod util;
pub mod weather;

use udf_lang::ast::Program;
use udf_lang::intern::Interner;

/// The five evaluation domains.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DomainKind {
    /// Synthetic hourly weather for 500 cities.
    Weather,
    /// Synthetic flight inventory.
    Flight,
    /// Synthetic news articles.
    News,
    /// Synthetic tweets.
    Twitter,
    /// Synthetic daily stock rows.
    Stock,
}

impl DomainKind {
    /// All domains, in the paper's presentation order.
    pub const ALL: [DomainKind; 5] = [
        DomainKind::Weather,
        DomainKind::Flight,
        DomainKind::News,
        DomainKind::Twitter,
        DomainKind::Stock,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DomainKind::Weather => "weather",
            DomainKind::Flight => "flight",
            DomainKind::News => "news",
            DomainKind::Twitter => "twitter",
            DomainKind::Stock => "stock",
        }
    }

    /// Parses a domain name.
    pub fn parse(s: &str) -> Option<DomainKind> {
        DomainKind::ALL.iter().copied().find(|d| d.name() == s)
    }
}

/// A named query family within a domain (the paper's Q1…Q4/Q5, `Mix`, `BC`).
#[derive(Clone, Debug)]
pub struct Family {
    /// Label used in tables ("Q1", "Mix", "BC", …).
    pub label: &'static str,
    /// Builder: `(n_queries, seed, interner) → programs`.
    pub build: fn(usize, u64, &mut Interner) -> Vec<Program>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_names_round_trip() {
        for d in DomainKind::ALL {
            assert_eq!(DomainKind::parse(d.name()), Some(d));
        }
        assert_eq!(DomainKind::parse("nope"), None);
    }
}
