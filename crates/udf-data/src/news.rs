//! News domain (paper §6.2): 19043 synthetic English news articles standing
//! in for the Reuters-21578 collection (see the substitution note in
//! `DESIGN.md`). Article vocabularies follow a Zipf distribution; word
//! lengths are a deterministic function of the word id so the aggregate
//! statistics (average/maximum word length) have realistic spreads.
//!
//! Query families:
//!
//! * **Q1** — word containment, the word drawn from a 50-word list;
//! * **Q2** — average word length above a threshold;
//! * **Q3** — maximum word length above a threshold;
//! * **BC** — boolean combinations of atoms from Q1–Q3;
//! * **PF** — long-article statistics: a cheap token-count guard *nests*
//!   around the expensive text scan, the shape the cross-query pre-filter
//!   synthesis exploits (most articles fail every guard and are skipped).

use crate::util::{rng, Zipf};
use crate::Family;
use naiad_lite::env::UdfEnv;
use rand::distributions::Distribution;
use rand::Rng;
use udf_lang::ast::Program;
use udf_lang::cost::Cost;
use udf_lang::intern::{Interner, Symbol};
use udf_lang::library::LibError;
use udf_lang::parse::parse_program;

/// Default article count (the Reuters collection size).
pub const DEFAULT_ARTICLES: usize = 19_043;
/// Vocabulary size.
pub const VOCAB: usize = 5_000;

/// Length (characters) of word `w` — deterministic so article statistics are
/// reproducible.
pub fn word_len(w: i64) -> i64 {
    3 + (w * 7 + 1) % 10
}

/// One article: its distinct words and token statistics.
#[derive(Debug, Clone)]
pub struct Article {
    /// Sorted distinct word ids.
    pub words: Vec<u32>,
    /// Total token count.
    pub tokens: i64,
    /// Total characters across tokens.
    pub chars: i64,
    /// Longest word length.
    pub max_len: i64,
}

/// Environment: `containsWord(w)`, `avgWordLen100()`, `maxWordLen()`.
#[derive(Debug, Clone)]
pub struct NewsEnv {
    contains_word: Symbol,
    avg_word_len: Symbol,
    max_word_len: Symbol,
}

impl NewsEnv {
    /// Creates the environment.
    pub fn new(interner: &mut Interner) -> NewsEnv {
        NewsEnv {
            contains_word: interner.intern("containsWord"),
            avg_word_len: interner.intern("avgWordLen100"),
            max_word_len: interner.intern("maxWordLen"),
        }
    }
}

impl UdfEnv for NewsEnv {
    type Rec = Article;

    fn arity(&self) -> usize {
        1
    }

    fn args(&self, rec: &Article, out: &mut Vec<i64>) {
        out.push(rec.tokens);
    }

    fn call(&self, rec: &Article, f: Symbol, args: &[i64]) -> Result<i64, LibError> {
        if f == self.contains_word {
            if args.len() != 1 {
                return Err(LibError::ArityMismatch {
                    name: "containsWord".to_owned(),
                    expected: 1,
                    got: args.len(),
                });
            }
            let w = u32::try_from(args[0].rem_euclid(VOCAB as i64)).expect("in range");
            Ok(i64::from(rec.words.binary_search(&w).is_ok()))
        } else if f == self.avg_word_len {
            // Scan the article's vocabulary (real text work, shareable
            // across queries).
            let mut chars = 0i64;
            for &w in &rec.words {
                chars += word_len(i64::from(w));
            }
            Ok(if rec.words.is_empty() {
                0
            } else {
                chars * 100 / rec.words.len() as i64
            })
        } else if f == self.max_word_len {
            let mut max = 0i64;
            for &w in &rec.words {
                max = max.max(word_len(i64::from(w)));
            }
            Ok(max)
        } else {
            Err(LibError::UnknownFunction(format!("#{}", f.index())))
        }
    }

    fn fn_cost(&self, f: Symbol) -> Cost {
        if f == self.contains_word {
            30 // word search
        } else {
            45 // full-text scan to compute the statistic
        }
    }
}

/// Generates `n` articles.
pub fn dataset_sized(n: usize, seed: u64) -> Vec<Article> {
    let mut r = rng("news", "data", seed);
    let zipf = Zipf::new(VOCAB);
    (0..n)
        .map(|_| {
            let tokens = r.gen_range(50..600);
            let mut words: Vec<u32> = Vec::new();
            let mut chars = 0i64;
            let mut max_len = 0i64;
            for _ in 0..tokens {
                let w = zipf.sample(&mut r) as i64;
                let len = word_len(w);
                chars += len;
                max_len = max_len.max(len);
                words.push(u32::try_from(w).expect("vocab fits u32"));
            }
            words.sort_unstable();
            words.dedup();
            Article {
                words,
                tokens,
                chars,
                max_len,
            }
        })
        .collect()
}

/// Paper-sized dataset (19043 articles).
pub fn dataset(seed: u64) -> Vec<Article> {
    dataset_sized(DEFAULT_ARTICLES, seed)
}

fn atom(fam: usize, r: &mut rand::rngs::SmallRng, word_list: &Zipf) -> String {
    match fam {
        0 => format!("containsWord({}) == 1", word_list.sample(r)),
        1 => format!("avgWordLen100() > {}", r.gen_range(700..800)),
        _ => format!("maxWordLen() >= {}", r.gen_range(9..13)),
    }
}

fn build_family(
    fam: usize,
    id: u32,
    r: &mut rand::rngs::SmallRng,
    words: &Zipf,
    interner: &mut Interner,
) -> Program {
    if fam == 4 {
        // PF: a cheap necessary condition over the record's `tokens` field
        // guards the expensive text statistic. The guard *nests* around the
        // call instead of conjoining with it — connectives evaluate
        // strictly, so only the nested form keeps the library call
        // unreachable when the guard fails, which is exactly what the
        // pre-filter verifier must prove before it may skip a record.
        // "Long article" means the top decile: with tokens ∈ 50..600 the
        // weakest guard (550) admits ~9% of articles, so the synthesized
        // pre-filter skips the other ~91% — the selectivity regime the
        // pushdown is built for.
        let k = 550 + i64::from(id % 8) * 5; // 550..=585 over tokens ∈ 50..600
        let t = r.gen_range(700..800);
        let src = format!(
            "program n_{fam}_{id} @{id} (tokens) {{
                 if (tokens >= {k}) {{
                     if (avgWordLen100() > {t}) {{ notify true; }} else {{ notify false; }}
                 }} else {{ notify false; }}
             }}"
        );
        return parse_program(&src, interner).expect("generated news query parses");
    }
    let cond = if fam < 3 {
        atom(fam, r, words)
    } else {
        // BC: boolean combination of two or three atoms.
        let a = atom(r.gen_range(0..3), r, words);
        let b = atom(r.gen_range(0..3), r, words);
        let join = if r.gen_bool(0.5) { "&&" } else { "||" };
        if r.gen_bool(0.4) {
            let c = atom(r.gen_range(0..3), r, words);
            format!("({a} {join} {b}) && {c}")
        } else {
            format!("{a} {join} {b}")
        }
    };
    let src = format!(
        "program n_{fam}_{id} @{id} (tokens) {{
             if ({cond}) {{ notify true; }} else {{ notify false; }}
         }}"
    );
    parse_program(&src, interner).expect("generated news query parses")
}

fn build_n(fam: usize, n: usize, seed: u64, interner: &mut Interner) -> Vec<Program> {
    let mut r = rng("news", "queries", seed.wrapping_add(fam as u64));
    let words = Zipf::new(50); // the §6.2 "list of specified words"
    (0..n)
        .map(|q| build_family(fam, u32::try_from(q).expect("fits"), &mut r, &words, interner))
        .collect()
}

/// Query families: Q1–Q3 plus BC.
pub fn families() -> Vec<Family> {
    vec![
        Family { label: "Q1", build: |n, s, i| build_n(0, n, s, i) },
        Family { label: "Q2", build: |n, s, i| build_n(1, n, s, i) },
        Family { label: "Q3", build: |n, s, i| build_n(2, n, s, i) },
        Family { label: "BC", build: |n, s, i| build_n(3, n, s, i) },
        Family { label: "PF", build: |n, s, i| build_n(4, n, s, i) },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use naiad_lite::engine::{Engine, ExecMode, QuerySet};
    use udf_lang::cost::CostModel;

    #[test]
    fn articles_have_consistent_stats() {
        let arts = dataset_sized(50, 3);
        for a in &arts {
            assert!(a.tokens >= 50 && a.tokens < 600);
            assert!(a.chars >= a.tokens * 3);
            assert!(a.max_len >= 3 && a.max_len <= 12);
            assert!(a.words.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn env_functions_work() {
        let mut i = Interner::new();
        let env = NewsEnv::new(&mut i);
        let a = Article {
            words: vec![5, 9],
            tokens: 10,
            chars: 57,
            max_len: 9,
        };
        assert_eq!(env.call(&a, i.intern("containsWord"), &[5]).unwrap(), 1);
        assert_eq!(env.call(&a, i.intern("containsWord"), &[6]).unwrap(), 0);
        // word_len(5) = 9, word_len(9) = 7 → avg over distinct words = 800.
        assert_eq!(env.call(&a, i.intern("avgWordLen100"), &[]).unwrap(), 800);
        assert_eq!(env.call(&a, i.intern("maxWordLen"), &[]).unwrap(), 9);
    }

    #[test]
    fn families_generate_runnable_queries() {
        let mut i = Interner::new();
        let env = NewsEnv::new(&mut i);
        let records = dataset_sized(40, 5);
        for fam in families() {
            let programs = (fam.build)(5, 13, &mut i);
            let cm = CostModel::default();
            let qs = QuerySet::compile_many(&programs, &cm, &|f| env.fn_cost(f)).unwrap();
            let r = Engine::new(2)
                .run(&env, &records, &qs, ExecMode::Many, false)
                .unwrap();
            assert_eq!(r.missing, vec![0; 5], "family {}", fam.label);
        }
    }
}
