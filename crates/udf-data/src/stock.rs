//! Stock domain (paper §6.2): ~377k synthetic daily rows for a Nasdaq-100
//! style universe (100 tickers × ~3774 trading days), standing in for the
//! Yahoo-Finance history (see `DESIGN.md`). Prices follow a geometric random
//! walk; volumes are noisy around a per-ticker base.
//!
//! Records are per *company* (the unit the paper's queries filter), and the
//! daily rows are accessed through `closeAt(d)` / `volumeAt(d)`. The query
//! families are window aggregations written as explicit loops — exactly the
//! shape that exercises Loop 2/Loop 3 fusion:
//!
//! * **Q1** — average volume over a window above a threshold;
//! * **Q2** — maximum closing value over a window above a threshold;
//! * **Q3** — variance of the close over a window above a threshold
//!   (fixed-point, no square root);
//! * **BC** — boolean combinations: two window aggregations per UDF.

use crate::util::rng;
use crate::Family;
use naiad_lite::env::UdfEnv;
use rand::Rng;
use udf_lang::ast::Program;
use udf_lang::cost::Cost;
use udf_lang::intern::{Interner, Symbol};
use udf_lang::library::LibError;
use udf_lang::parse::parse_program;

/// Trading days per ticker (100 × 3774 ≈ the paper's 377423 rows).
pub const DAYS: usize = 3_774;
/// Number of tickers.
pub const DEFAULT_TICKERS: usize = 100;
/// Aggregation window length used by the query families.
pub const WINDOW: i64 = 250;

/// One company's history.
#[derive(Debug, Clone)]
pub struct Ticker {
    /// Ticker id.
    pub id: i64,
    /// Daily closing price in cents.
    pub close: Vec<i32>,
    /// Daily volume in thousands.
    pub volume: Vec<i32>,
}

/// Environment: `closeAt(d)` / `volumeAt(d)` accessors.
#[derive(Debug, Clone)]
pub struct StockEnv {
    close_at: Symbol,
    volume_at: Symbol,
}

impl StockEnv {
    /// Creates the environment.
    pub fn new(interner: &mut Interner) -> StockEnv {
        StockEnv {
            close_at: interner.intern("closeAt"),
            volume_at: interner.intern("volumeAt"),
        }
    }
}

impl UdfEnv for StockEnv {
    type Rec = Ticker;

    fn arity(&self) -> usize {
        1
    }

    fn args(&self, rec: &Ticker, out: &mut Vec<i64>) {
        out.push(rec.id);
    }

    fn call(&self, rec: &Ticker, f: Symbol, args: &[i64]) -> Result<i64, LibError> {
        let series: &[i32] = if f == self.close_at {
            &rec.close
        } else if f == self.volume_at {
            &rec.volume
        } else {
            return Err(LibError::UnknownFunction(format!("#{}", f.index())));
        };
        if args.len() != 1 {
            return Err(LibError::ArityMismatch {
                name: "seriesAt".to_owned(),
                expected: 1,
                got: args.len(),
            });
        }
        let d = args[0].rem_euclid(series.len() as i64) as usize;
        Ok(i64::from(series[d]))
    }

    fn fn_cost(&self, _f: Symbol) -> Cost {
        5 // array access
    }
}

/// Generates `n` tickers of `days` days.
pub fn dataset_sized(n: usize, days: usize, seed: u64) -> Vec<Ticker> {
    let mut r = rng("stock", "data", seed);
    (0..n)
        .map(|id| {
            let mut price = r.gen_range(1_000..40_000); // cents
            let base_vol = r.gen_range(100..5_000);
            let mut close = Vec::with_capacity(days);
            let mut volume = Vec::with_capacity(days);
            for _ in 0..days {
                // Geometric-ish random walk, ±2% daily.
                let delta = price * r.gen_range(-20..21) / 1000;
                price = (price + delta).max(50);
                close.push(price);
                volume.push((base_vol * r.gen_range(50..150) / 100).max(1));
            }
            Ticker {
                id: i64::try_from(id).expect("ticker id fits"),
                close,
                volume,
            }
        })
        .collect()
}

/// Paper-sized dataset (100 tickers × 3774 days).
pub fn dataset(seed: u64) -> Vec<Ticker> {
    dataset_sized(DEFAULT_TICKERS, DAYS, seed)
}

/// Window starts are drawn from a small set so queries in a family share
/// loops (the prerequisite for fusing them).
fn window_start(r: &mut rand::rngs::SmallRng, days: i64) -> i64 {
    let slots = ((days - WINDOW).max(1) / 500).max(1);
    r.gen_range(0..slots) * 500
}

fn q1_source(id: u32, a: i64, b: i64, avg: i64) -> String {
    // Σ volume > avg · window  ⇔  average volume > avg.
    let total = avg * (b - a);
    format!(
        "program s_q1_{id} @{id} (ticker) {{
             s := 0; d := {a};
             while (d < {b}) {{ v := volumeAt(d); s := s + v; d := d + 1; }}
             if (s > {total}) {{ notify true; }} else {{ notify false; }}
         }}"
    )
}

fn q2_source(id: u32, a: i64, b: i64, cap: i64) -> String {
    format!(
        "program s_q2_{id} @{id} (ticker) {{
             m := closeAt({a}); d := {a} + 1;
             while (d < {b}) {{ c := closeAt(d); if (c > m) {{ m := c; }} d := d + 1; }}
             if (m > {cap}) {{ notify true; }} else {{ notify false; }}
         }}"
    )
}

fn q3_source(id: u32, a: i64, b: i64, dev: i64) -> String {
    // Variance × W² in fixed point: W·Σx² − (Σx)² > W²·dev².
    let w = b - a;
    let bound = w * w * dev * dev;
    format!(
        "program s_q3_{id} @{id} (ticker) {{
             s := 0; ss := 0; d := {a};
             while (d < {b}) {{ c := closeAt(d); s := s + c; ss := ss + c * c; d := d + 1; }}
             if ({w} * ss - s * s > {bound}) {{ notify true; }} else {{ notify false; }}
         }}"
    )
}

fn build_family(
    fam: usize,
    id: u32,
    days: i64,
    r: &mut rand::rngs::SmallRng,
    interner: &mut Interner,
) -> Program {
    let a = window_start(r, days);
    let b = (a + WINDOW).min(days);
    let src = match fam {
        0 => q1_source(id, a, b, r.gen_range(500..4_000)),
        1 => q2_source(id, a, b, r.gen_range(5_000..45_000)),
        2 => q3_source(id, a, b, r.gen_range(200..4_000)),
        _ => {
            // BC: two aggregations over the same window, combined.
            let t1 = r.gen_range(500..4_000);
            let cap = r.gen_range(5_000..45_000);
            let total = t1 * (b - a);
            let join = if r.gen_bool(0.5) { "&&" } else { "||" };
            format!(
                "program s_bc_{id} @{id} (ticker) {{
                     s := 0; d := {a};
                     while (d < {b}) {{ v := volumeAt(d); s := s + v; d := d + 1; }}
                     m := closeAt({a}); e := {a} + 1;
                     while (e < {b}) {{ c := closeAt(e); if (c > m) {{ m := c; }} e := e + 1; }}
                     if (s > {total} {join} m > {cap}) {{ notify true; }} else {{ notify false; }}
                 }}"
            )
        }
    };
    parse_program(&src, interner).expect("generated stock query parses")
}

fn build_sized(fam: usize, n: usize, days: i64, seed: u64, interner: &mut Interner) -> Vec<Program> {
    let mut r = rng("stock", "queries", seed.wrapping_add(fam as u64));
    (0..n)
        .map(|q| build_family(fam, u32::try_from(q).expect("fits"), days, &mut r, interner))
        .collect()
}

fn build_n(fam: usize, n: usize, seed: u64, interner: &mut Interner) -> Vec<Program> {
    build_sized(fam, n, DAYS as i64, seed, interner)
}

/// Query families: Q1–Q3 plus BC.
pub fn families() -> Vec<Family> {
    vec![
        Family { label: "Q1", build: |n, s, i| build_n(0, n, s, i) },
        Family { label: "Q2", build: |n, s, i| build_n(1, n, s, i) },
        Family { label: "Q3", build: |n, s, i| build_n(2, n, s, i) },
        Family { label: "BC", build: |n, s, i| build_n(3, n, s, i) },
    ]
}

/// A boxed family builder: `(n_queries, seed, interner) -> programs`.
pub type FamilyBuilder = Box<dyn Fn(usize, u64, &mut Interner) -> Vec<Program>>;

/// Family builders against a reduced number of days (for fast tests).
pub fn families_sized(days: i64) -> Vec<(&'static str, FamilyBuilder)> {
    (0..4usize)
        .map(|fam| {
            let label = ["Q1", "Q2", "Q3", "BC"][fam];
            let b: FamilyBuilder = Box::new(move |n, s, i| build_sized(fam, n, days, s, i));
            (label, b)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use naiad_lite::engine::{Engine, ExecMode, QuerySet};
    use udf_lang::cost::CostModel;

    #[test]
    fn walk_is_positive_and_deterministic() {
        let a = dataset_sized(3, 100, 9);
        let b = dataset_sized(3, 100, 9);
        assert_eq!(a[2].close, b[2].close);
        assert!(a.iter().all(|t| t.close.iter().all(|&c| c >= 50)));
    }

    #[test]
    fn families_generate_runnable_queries() {
        let mut i = Interner::new();
        let env = StockEnv::new(&mut i);
        let records = dataset_sized(5, 600, 4);
        for (label, build) in families_sized(600) {
            let programs = build(4, 17, &mut i);
            let cm = CostModel::default();
            let qs = QuerySet::compile_many(&programs, &cm, &|f| env.fn_cost(f)).unwrap();
            let r = Engine::new(2)
                .run(&env, &records, &qs, ExecMode::Many, false)
                .unwrap();
            assert_eq!(r.missing, vec![0; 4], "family {label}");
        }
    }
}
