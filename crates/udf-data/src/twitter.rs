//! Twitter domain (paper §6.2): 31152 synthetic tweets (standing in for the
//! IBM Many Eyes datasets — see `DESIGN.md`). Each tweet carries a smiley
//! count, a language tag, and latent sentiment/topic affinities; the
//! `sentimentScore(s)` / `topicScore(t)` accessors emulate per-tweet text
//! analysis (expensive pure functions, ideal for cross-query reuse).
//!
//! Query families:
//!
//! * **Q1** — number of smileys at least a threshold;
//! * **Q2** — sentiment analysis: `sentimentScore(s)` above a threshold,
//!   `s` drawn from a list of common sentiments;
//! * **Q3** — topic analysis: `topicScore(t)` above a threshold;
//! * **BC** — boolean combinations of atoms from Q1–Q3.

use crate::util::{rng, Zipf};
use crate::Family;
use naiad_lite::env::UdfEnv;
use rand::distributions::Distribution;
use rand::Rng;
use udf_lang::ast::Program;
use udf_lang::cost::Cost;
use udf_lang::intern::{Interner, Symbol};
use udf_lang::library::LibError;
use udf_lang::parse::parse_program;

/// Default tweet count.
pub const DEFAULT_TWEETS: usize = 31_152;
/// Number of sentiment classes ("happiness", …).
pub const SENTIMENTS: usize = 8;
/// Number of topic classes ("movies", …).
pub const TOPICS: usize = 8;

/// One tweet.
#[derive(Debug, Clone)]
pub struct Tweet {
    /// Smiley count.
    pub smileys: i64,
    /// Language id (0 = en, 1 = es, 2 = pt).
    pub lang: i64,
    /// Latent sentiment affinities, 0..100.
    pub sentiment: [i8; SENTIMENTS],
    /// Latent topic affinities, 0..100.
    pub topic: [i8; TOPICS],
}

/// Environment: `sentimentScore(s)` / `topicScore(t)`.
#[derive(Debug, Clone)]
pub struct TwitterEnv {
    sentiment_score: Symbol,
    topic_score: Symbol,
}

impl TwitterEnv {
    /// Creates the environment.
    pub fn new(interner: &mut Interner) -> TwitterEnv {
        TwitterEnv {
            sentiment_score: interner.intern("sentimentScore"),
            topic_score: interner.intern("topicScore"),
        }
    }
}

impl UdfEnv for TwitterEnv {
    type Rec = Tweet;

    fn arity(&self) -> usize {
        2
    }

    fn args(&self, rec: &Tweet, out: &mut Vec<i64>) {
        out.push(rec.smileys);
        out.push(rec.lang);
    }

    fn call(&self, rec: &Tweet, f: Symbol, args: &[i64]) -> Result<i64, LibError> {
        let table: &[i8] = if f == self.sentiment_score {
            &rec.sentiment
        } else if f == self.topic_score {
            &rec.topic
        } else {
            return Err(LibError::UnknownFunction(format!("#{}", f.index())));
        };
        if args.len() != 1 {
            return Err(LibError::ArityMismatch {
                name: "score".to_owned(),
                expected: 1,
                got: args.len(),
            });
        }
        let k = args[0].rem_euclid(table.len() as i64) as usize;
        Ok(i64::from(table[k]))
    }

    fn fn_cost(&self, _f: Symbol) -> Cost {
        50 // emulated text analysis
    }
}

/// Generates `n` tweets.
pub fn dataset_sized(n: usize, seed: u64) -> Vec<Tweet> {
    let mut r = rng("twitter", "data", seed);
    (0..n)
        .map(|_| {
            // Geometric-ish smiley count.
            let mut smileys = 0i64;
            while smileys < 6 && r.gen_bool(0.35) {
                smileys += 1;
            }
            let lang = r.gen_range(0..3);
            let dominant_s = r.gen_range(0..SENTIMENTS);
            let dominant_t = r.gen_range(0..TOPICS);
            let mut sentiment = [0i8; SENTIMENTS];
            let mut topic = [0i8; TOPICS];
            for (k, v) in sentiment.iter_mut().enumerate() {
                let base = if k == dominant_s { 55 } else { 10 };
                *v = i8::try_from(base + r.gen_range(0..40)).expect("fits i8");
            }
            for (k, v) in topic.iter_mut().enumerate() {
                let base = if k == dominant_t { 55 } else { 10 };
                *v = i8::try_from(base + r.gen_range(0..40)).expect("fits i8");
            }
            Tweet {
                smileys,
                lang,
                sentiment,
                topic,
            }
        })
        .collect()
}

/// Paper-sized dataset (31152 tweets).
pub fn dataset(seed: u64) -> Vec<Tweet> {
    dataset_sized(DEFAULT_TWEETS, seed)
}

fn atom(fam: usize, r: &mut rand::rngs::SmallRng, pop: &Zipf) -> String {
    match fam {
        0 => format!("smileys >= {}", r.gen_range(1..4)),
        1 => format!(
            "sentimentScore({}) > {}",
            pop.sample(r) % SENTIMENTS,
            r.gen_range(45..85)
        ),
        _ => format!(
            "topicScore({}) > {}",
            pop.sample(r) % TOPICS,
            r.gen_range(45..85)
        ),
    }
}

fn build_family(
    fam: usize,
    id: u32,
    r: &mut rand::rngs::SmallRng,
    pop: &Zipf,
    interner: &mut Interner,
) -> Program {
    let cond = if fam < 3 {
        atom(fam, r, pop)
    } else {
        let a = atom(r.gen_range(0..3), r, pop);
        let b = atom(r.gen_range(0..3), r, pop);
        let join = if r.gen_bool(0.5) { "&&" } else { "||" };
        format!("{a} {join} {b}")
    };
    let src = format!(
        "program t_{fam}_{id} @{id} (smileys, lang) {{
             if ({cond}) {{ notify true; }} else {{ notify false; }}
         }}"
    );
    parse_program(&src, interner).expect("generated twitter query parses")
}

fn build_n(fam: usize, n: usize, seed: u64, interner: &mut Interner) -> Vec<Program> {
    let mut r = rng("twitter", "queries", seed.wrapping_add(fam as u64));
    let pop = Zipf::new(SENTIMENTS.max(TOPICS));
    (0..n)
        .map(|q| build_family(fam, u32::try_from(q).expect("fits"), &mut r, &pop, interner))
        .collect()
}

/// Query families: Q1–Q3 plus BC.
pub fn families() -> Vec<Family> {
    vec![
        Family { label: "Q1", build: |n, s, i| build_n(0, n, s, i) },
        Family { label: "Q2", build: |n, s, i| build_n(1, n, s, i) },
        Family { label: "Q3", build: |n, s, i| build_n(2, n, s, i) },
        Family { label: "BC", build: |n, s, i| build_n(3, n, s, i) },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use naiad_lite::engine::{Engine, ExecMode, QuerySet};
    use udf_lang::cost::CostModel;

    #[test]
    fn tweets_have_plausible_fields() {
        let tw = dataset_sized(200, 1);
        assert!(tw.iter().any(|t| t.smileys > 0));
        assert!(tw.iter().all(|t| (0..3).contains(&t.lang)));
        assert!(tw.iter().all(|t| t.sentiment.iter().all(|&s| (10..=95).contains(&s))));
    }

    #[test]
    fn families_generate_runnable_queries() {
        let mut i = Interner::new();
        let env = TwitterEnv::new(&mut i);
        let records = dataset_sized(60, 2);
        for fam in families() {
            let programs = (fam.build)(5, 21, &mut i);
            let cm = CostModel::default();
            let qs = QuerySet::compile_many(&programs, &cm, &|f| env.fn_cost(f)).unwrap();
            let r = Engine::new(2)
                .run(&env, &records, &qs, ExecMode::Many, false)
                .unwrap();
            assert_eq!(r.missing, vec![0; 5], "family {}", fam.label);
        }
    }
}
