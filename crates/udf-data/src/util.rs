//! Shared helpers for dataset generation and query-family construction.

use rand::distributions::Distribution;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use udf_lang::ast::{BoolExpr, ProgId, Program, Stmt};
use udf_lang::intern::{Interner, Symbol};

/// Deterministic RNG for a `(domain, purpose, seed)` triple.
pub fn rng(domain: &str, purpose: &str, seed: u64) -> SmallRng {
    // Mix the strings into the seed so each (domain, purpose) stream is
    // independent but reproducible.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in domain.bytes().chain(purpose.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    SmallRng::seed_from_u64(h)
}

/// A Zipf-like sampler over `0..n` with exponent ~1 (rank-frequency shape of
/// natural-language vocabularies).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks.
    pub fn new(n: usize) -> Zipf {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / k as f64;
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }
}

impl Distribution<usize> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Wraps a filter predicate into the standard UDF shape
/// `if (cond) { notifyᵢ true } else { notifyᵢ false }` preceded by `prologue`.
pub fn filter_program(
    id: u32,
    params: &[Symbol],
    prologue: Stmt,
    cond: BoolExpr,
) -> Program {
    let body = prologue.then(Stmt::ite(
        cond,
        Stmt::Notify(ProgId(id), true),
        Stmt::Notify(ProgId(id), false),
    ));
    Program::new(ProgId(id), params.to_vec(), body)
}

/// Interns a list of parameter names.
pub fn params(interner: &mut Interner, names: &[&str]) -> Vec<Symbol> {
    names.iter().map(|n| interner.intern(n)).collect()
}

/// Samples `n` queries by drawing a family index from `weights` for each
/// (the paper's Mix/Q5 construction, e.g. `{15, 15, 10, 10}`), delegating to
/// `build(family_idx, query_id, rng)`.
pub fn sample_mix<F>(
    n: usize,
    weights: &[u32],
    rng: &mut SmallRng,
    mut build: F,
) -> Vec<Program>
where
    F: FnMut(usize, u32, &mut SmallRng) -> Program,
{
    let total: u32 = weights.iter().sum();
    (0..n)
        .map(|q| {
            let mut pick = rng.gen_range(0..total);
            let mut fam = 0usize;
            for (k, &w) in weights.iter().enumerate() {
                if pick < w {
                    fam = k;
                    break;
                }
                pick -= w;
            }
            build(fam, u32::try_from(q).expect("query index fits u32"), rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_stream_separated() {
        let a: u64 = rng("weather", "data", 1).gen();
        let b: u64 = rng("weather", "data", 1).gen();
        let c: u64 = rng("weather", "queries", 1).gen();
        let d: u64 = rng("weather", "data", 2).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn zipf_favors_low_ranks() {
        let z = Zipf::new(100);
        let mut r = rng("t", "zipf", 7);
        let mut counts = [0usize; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > 500);
    }

    #[test]
    fn mix_respects_weights_roughly() {
        let mut r = rng("t", "mix", 3);
        let mut fam_counts = [0usize; 4];
        let progs = sample_mix(400, &[15, 15, 10, 10], &mut r, |fam, q, _| {
            fam_counts[fam] += 1;
            filter_program(q, &[], Stmt::Skip, BoolExpr::Const(true))
        });
        assert_eq!(progs.len(), 400);
        assert!(fam_counts[0] > fam_counts[2]);
        assert!(fam_counts.iter().all(|&c| c > 40));
    }
}
