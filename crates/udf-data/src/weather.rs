//! Weather domain (paper §6.2): two years of synthetic hourly weather for
//! 500 cities. UDFs access a record through `tempOfMonth(m)` /
//! `rainOfMonth(m)` accessors which *compute* the monthly aggregate by
//! scanning ~1440 raw hourly samples — an intentionally expensive pure
//! function, exactly the kind of shared computation consolidation is
//! designed to reuse.
//!
//! Query families (50 queries each, parameters drawn per §6.2):
//!
//! * **Q1** — monthly average temperature, varying month and threshold;
//! * **Q2** — monthly rainfall, varying month and threshold;
//! * **Q3** — yearly average temperature (a 12-iteration loop over
//!   `tempOfMonth`), varying threshold;
//! * **Q4** — yearly rainfall (same loop shape over `rainOfMonth`);
//! * **Mix** — 50 queries sampled `{15, 15, 10, 10}` from Q1–Q4.

use crate::util::{self, rng};
use crate::Family;
use naiad_lite::env::UdfEnv;
use rand::Rng;
use udf_lang::ast::Program;
use udf_lang::cost::Cost;
use udf_lang::intern::{Interner, Symbol};
use udf_lang::library::LibError;
use udf_lang::parse::parse_program;

/// Hourly samples stored per city (two years).
pub const HOURS: usize = 17_520;
/// Hours per month window used by the accessors.
pub const MONTH_HOURS: usize = 720;
/// Default number of cities (the paper's 500).
pub const DEFAULT_CITIES: usize = 500;

/// One city's weather history.
#[derive(Debug, Clone)]
pub struct CityRecord {
    /// City identifier (the UDF argument).
    pub city: i64,
    /// Hourly temperature in tenths of °C.
    pub hourly_temp: Vec<i16>,
    /// Hourly rainfall in tenths of millimetres.
    pub hourly_rain: Vec<i16>,
}

/// The dataset binding: `tempOfMonth` / `rainOfMonth` accessors.
#[derive(Debug, Clone)]
pub struct WeatherEnv {
    temp_of_month: Symbol,
    rain_of_month: Symbol,
}

/// Abstract cost of one monthly aggregation (≈ 1440 hourly samples scanned
/// across both years — the accessor really does this work).
pub const ACCESSOR_COST: Cost = 1_440;

impl WeatherEnv {
    /// Creates the environment, interning its function names.
    pub fn new(interner: &mut Interner) -> WeatherEnv {
        WeatherEnv {
            temp_of_month: interner.intern("tempOfMonth"),
            rain_of_month: interner.intern("rainOfMonth"),
        }
    }

    fn month_aggregate(series: &[i16], month: i64, average: bool) -> i64 {
        // Month m ∈ 1..=12 selects the same calendar month of both years;
        // the aggregate is computed by scanning the raw hourly samples, as a
        // real `getTempOfMonth` UDF helper would.
        let m = ((month - 1).rem_euclid(12)) as usize;
        let year = HOURS / 2;
        let start1 = m * MONTH_HOURS;
        let start2 = year + m * MONTH_HOURS;
        let mut sum: i64 = 0;
        let mut n: i64 = 0;
        for start in [start1, start2] {
            for &v in series.iter().take(start + MONTH_HOURS).skip(start) {
                sum += i64::from(v);
                n += 1;
            }
        }
        if average && n > 0 {
            sum / n
        } else {
            // Rainfall totals are reported per average month (`/2` for the
            // two years) scaled to whole millimetres elsewhere; keep the raw
            // two-year total here.
            sum
        }
    }
}

impl UdfEnv for WeatherEnv {
    type Rec = CityRecord;

    fn arity(&self) -> usize {
        1
    }

    fn args(&self, rec: &CityRecord, out: &mut Vec<i64>) {
        out.push(rec.city);
    }

    fn call(&self, rec: &CityRecord, f: Symbol, args: &[i64]) -> Result<i64, LibError> {
        if f == self.temp_of_month {
            if args.len() != 1 {
                return Err(LibError::ArityMismatch {
                    name: "tempOfMonth".to_owned(),
                    expected: 1,
                    got: args.len(),
                });
            }
            Ok(WeatherEnv::month_aggregate(&rec.hourly_temp, args[0], true))
        } else if f == self.rain_of_month {
            if args.len() != 1 {
                return Err(LibError::ArityMismatch {
                    name: "rainOfMonth".to_owned(),
                    expected: 1,
                    got: args.len(),
                });
            }
            Ok(WeatherEnv::month_aggregate(&rec.hourly_rain, args[0], false))
        } else {
            Err(LibError::UnknownFunction(format!("#{}", f.index())))
        }
    }

    fn fn_cost(&self, _f: Symbol) -> Cost {
        ACCESSOR_COST
    }
}

/// Generates the dataset: `n_cities` cities with seasonal + diurnal
/// temperature structure (average hourly −1..10 °C) and rainfall in the
/// 0..200 mm-per-month range, as §6.2 specifies.
pub fn dataset_sized(n_cities: usize, seed: u64) -> Vec<CityRecord> {
    let mut r = rng("weather", "data", seed);
    (0..n_cities)
        .map(|c| {
            let base = r.gen_range(-10..60); // city-specific offset, tenths of °C
            let wet = r.gen_range(1..6); // rainfall scale, tenths of mm hourly
            let hourly_temp = (0..HOURS)
                .map(|h| {
                    let day = (h / 24) % 365;
                    let season =
                        (f64::from(day as u32) / 365.0 * std::f64::consts::TAU).sin();
                    let diurnal = (f64::from((h % 24) as u32) / 24.0
                        * std::f64::consts::TAU)
                        .sin();
                    let noise = r.gen_range(-10..11);
                    i16::try_from(
                        base + (season * 55.0) as i64 + (diurnal * 10.0) as i64 + noise,
                    )
                    .unwrap_or(0)
                })
                .collect();
            let hourly_rain = (0..HOURS)
                .map(|_| i16::try_from(r.gen_range(0..wet)).unwrap_or(0))
                .collect();
            CityRecord {
                city: i64::try_from(c).expect("city id fits"),
                hourly_temp,
                hourly_rain,
            }
        })
        .collect()
}

/// The paper-sized dataset (500 cities).
pub fn dataset(seed: u64) -> Vec<CityRecord> {
    dataset_sized(DEFAULT_CITIES, seed)
}

fn q1_source(id: u32, month: i64, threshold: i64) -> String {
    format!(
        "program w_q1_{id} @{id} (city) {{
             t := tempOfMonth({month});
             if (t > {threshold}) {{ notify true; }} else {{ notify false; }}
         }}"
    )
}

fn q2_source(id: u32, month: i64, threshold: i64) -> String {
    format!(
        "program w_q2_{id} @{id} (city) {{
             r := rainOfMonth({month});
             if (r < {threshold}) {{ notify true; }} else {{ notify false; }}
         }}"
    )
}

fn q3_source(id: u32, threshold: i64) -> String {
    // Yearly average temperature via the paper's loop shape (Example 2).
    format!(
        "program w_q3_{id} @{id} (city) {{
             s := 0; m := 1;
             while (m <= 12) {{ t := tempOfMonth(m); s := s + t; m := m + 1; }}
             if (s > {threshold}) {{ notify true; }} else {{ notify false; }}
         }}"
    )
}

fn q4_source(id: u32, threshold: i64) -> String {
    format!(
        "program w_q4_{id} @{id} (city) {{
             s := 0; m := 1;
             while (m <= 12) {{ r := rainOfMonth(m); s := s + r; m := m + 1; }}
             if (s < {threshold}) {{ notify true; }} else {{ notify false; }}
         }}"
    )
}

fn build_family(
    fam: usize,
    id: u32,
    r: &mut rand::rngs::SmallRng,
    interner: &mut Interner,
) -> Program {
    let src = match fam {
        0 => q1_source(id, r.gen_range(1..=12), r.gen_range(-40..70)),
        1 => q2_source(id, r.gen_range(1..=12), r.gen_range(1500..4500)),
        2 => q3_source(id, r.gen_range(-200..600)),
        _ => q4_source(id, r.gen_range(20000..46000)),
    };
    parse_program(&src, interner).expect("generated weather query parses")
}

fn family_n(fam: usize) -> fn(usize, u64, &mut Interner) -> Vec<Program> {
    match fam {
        0 => |n, seed, i| build_n(0, n, seed, i),
        1 => |n, seed, i| build_n(1, n, seed, i),
        2 => |n, seed, i| build_n(2, n, seed, i),
        3 => |n, seed, i| build_n(3, n, seed, i),
        _ => mix,
    }
}

fn build_n(fam: usize, n: usize, seed: u64, interner: &mut Interner) -> Vec<Program> {
    let mut r = rng("weather", "queries", seed.wrapping_add(fam as u64));
    (0..n)
        .map(|q| build_family(fam, u32::try_from(q).expect("fits"), &mut r, interner))
        .collect()
}

/// The Mix family: `{15, 15, 10, 10}` over Q1–Q4 (§6.2's Q5).
pub fn mix(n: usize, seed: u64, interner: &mut Interner) -> Vec<Program> {
    let mut r = rng("weather", "mix", seed);
    let cell = std::cell::RefCell::new(interner);
    util::sample_mix(n, &[15, 15, 10, 10], &mut r, |fam, id, r| {
        build_family(fam, id, r, &mut cell.borrow_mut())
    })
}

/// Query families in presentation order: Q1–Q4 plus Mix.
pub fn families() -> Vec<Family> {
    vec![
        Family { label: "Q1", build: family_n(0) },
        Family { label: "Q2", build: family_n(1) },
        Family { label: "Q3", build: family_n(2) },
        Family { label: "Q4", build: family_n(3) },
        Family { label: "Mix", build: mix },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use naiad_lite::engine::{Engine, ExecMode, QuerySet};
    use udf_lang::cost::CostModel;

    #[test]
    fn dataset_is_deterministic() {
        let a = dataset_sized(3, 42);
        let b = dataset_sized(3, 42);
        assert_eq!(a[1].hourly_temp, b[1].hourly_temp);
        let c = dataset_sized(3, 43);
        assert_ne!(a[1].hourly_temp, c[1].hourly_temp);
    }

    #[test]
    fn accessors_aggregate() {
        let mut i = Interner::new();
        let env = WeatherEnv::new(&mut i);
        let rec = CityRecord {
            city: 0,
            hourly_temp: vec![10; HOURS],
            hourly_rain: vec![2; HOURS],
        };
        let t = env.call(&rec, i.intern("tempOfMonth"), &[3]).unwrap();
        assert_eq!(t, 10);
        let r = env.call(&rec, i.intern("rainOfMonth"), &[3]).unwrap();
        assert_eq!(r, i64::try_from(MONTH_HOURS).unwrap() * 2 * 2); // 2 windows × 2/h
        assert!(env.call(&rec, i.intern("nope"), &[1]).is_err());
        assert!(env.call(&rec, i.intern("tempOfMonth"), &[1, 2]).is_err());
    }

    #[test]
    fn families_generate_runnable_queries() {
        let mut i = Interner::new();
        let env = WeatherEnv::new(&mut i);
        let records = dataset_sized(10, 7);
        for fam in families() {
            let programs = (fam.build)(6, 11, &mut i);
            assert_eq!(programs.len(), 6);
            let cm = CostModel::default();
            let qs = QuerySet::compile_many(&programs, &cm, &|f| env.fn_cost(f)).unwrap();
            let r = Engine::new(2)
                .run(&env, &records, &qs, ExecMode::Many, false)
                .unwrap();
            assert_eq!(r.missing, vec![0; 6], "family {}", fam.label);
        }
    }
}
