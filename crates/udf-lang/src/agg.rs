//! User-defined aggregations (UDAFs).
//!
//! An aggregation is the triple of the Homomorphism Calculus for
//! user-defined aggregations (Wang et al.): an initial state, a per-record
//! `fold(state, record)` step, and a `merge(state, state)` combiner. Both
//! bodies are ordinary statements of the UDF language:
//!
//! * **fold** reads the record parameters and the current state slots and
//!   reassigns the state slots (plus any scratch locals);
//! * **merge** reads the left state (the slot names) and the right state
//!   (each slot's `rhs` alias) and reassigns the left slots. Merge may not
//!   call library functions — it combines already-computed partial states —
//!   which is what lets the engine run it without a record in scope.
//!
//! Parallel execution is only sound when `merge` really is a homomorphism
//! for `fold`; [`crate::agg`] carries the *definitions*, the prover living
//! in the `consolidate` crate discharges that obligation per definition and
//! the engine falls back to a sequential single-shard fold when it cannot.
//!
//! # Concrete syntax
//!
//! ```text
//! aggregate sumvol @3 (id) {
//!   state s = 0;
//!   fold  { s := s + volumeAt(0); }
//!   merge { s := s + rhs_s; }
//! }
//! ```
//!
//! Each `state` declaration introduces one slot with its `init` constant;
//! inside `merge` the right-hand partial state is visible as `rhs_<slot>`.

use crate::analysis::{assigned_vars, called_fns, notify_ids, read_vars};
use crate::ast::{ProgId, Program, Stmt};
use crate::canon::{program_hash, Fnv128};
use crate::intern::{Interner, Symbol};
use crate::parse::parse_program;
use std::collections::BTreeSet;
use std::fmt;

/// Domain-separation byte for [`agg_hash`] (distinct from program set keys
/// and entailment keys so an aggregation key can never collide with either).
const AGG_HASH_DOMAIN: u8 = 0xA6;
/// Domain-separation byte for [`agg_set_key`].
const AGG_SET_DOMAIN: u8 = 0xA7;

/// One named state slot of an aggregation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateSlot {
    /// Slot name; `fold` and `merge` read and reassign this variable.
    pub name: Symbol,
    /// Initial value of the slot (the `init` element of the triple).
    pub init: i64,
    /// Name under which `merge` sees the right-hand partial state's copy of
    /// this slot (conventionally `rhs_<name>`).
    pub rhs: Symbol,
}

/// A user-defined aggregation definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggDef {
    /// Identifier of the aggregation; per-UDAF results and quarantine
    /// entries are keyed on it, like `notify` ids for filter queries.
    pub id: ProgId,
    /// Record parameters visible to `fold` (shared scan schema).
    pub params: Vec<Symbol>,
    /// State slots with their initial values and merge-side aliases.
    pub state: Vec<StateSlot>,
    /// Per-record step: may read `params ∪ state`, call library functions,
    /// and reassign state slots and scratch locals.
    pub fold: Stmt,
    /// Partial-state combiner: may read `state ∪ rhs` (and its own locals),
    /// reassigns state slots; call- and notify-free.
    pub merge: Stmt,
}

/// Validation failure for an [`AggDef`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AggError {
    /// The aggregation declares no state slots.
    EmptyState,
    /// A name is used for more than one of: parameter, state slot, rhs alias.
    DuplicateName(String),
    /// `fold` or `merge` contains a `notify` statement.
    NotifyInAggregate,
    /// `merge` calls a library function (named).
    CallInMerge(String),
    /// `fold` assigns a record parameter or an rhs alias (named).
    FoldAssignsInput(String),
    /// `merge` assigns a record parameter or an rhs alias (named).
    MergeAssignsInput(String),
    /// `merge` reads a variable outside `state ∪ rhs ∪ own locals` (named);
    /// in particular merge may not reference record parameters.
    MergeReadsForeign(String),
    /// `fold` reads a variable outside `params ∪ state ∪ own locals` (named).
    FoldReadsForeign(String),
}

impl fmt::Display for AggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggError::EmptyState => write!(f, "aggregation declares no state slots"),
            AggError::DuplicateName(n) => write!(f, "name `{n}` declared more than once"),
            AggError::NotifyInAggregate => write!(f, "notify is not allowed in fold/merge"),
            AggError::CallInMerge(n) => write!(f, "merge calls library function `{n}`"),
            AggError::FoldAssignsInput(n) => write!(f, "fold assigns input `{n}`"),
            AggError::MergeAssignsInput(n) => write!(f, "merge assigns input `{n}`"),
            AggError::MergeReadsForeign(n) => write!(f, "merge reads foreign variable `{n}`"),
            AggError::FoldReadsForeign(n) => write!(f, "fold reads foreign variable `{n}`"),
        }
    }
}

impl std::error::Error for AggError {}

impl AggDef {
    /// Creates and validates an aggregation definition.
    ///
    /// # Errors
    ///
    /// Returns the first [`AggError`] violated by the definition.
    pub fn new(
        id: ProgId,
        params: Vec<Symbol>,
        state: Vec<StateSlot>,
        fold: Stmt,
        merge: Stmt,
        interner: &Interner,
    ) -> Result<AggDef, AggError> {
        let def = AggDef {
            id,
            params,
            state,
            fold,
            merge,
        };
        def.validate(interner)?;
        Ok(def)
    }

    /// Checks the structural well-formedness rules listed on [`AggError`].
    ///
    /// The read checks are *scope* checks, not definite-assignment: a scratch
    /// local read before its first assignment is caught at run time by the
    /// interpreter (`UnboundVar`) and quarantined like any other per-record
    /// fault.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule.
    pub fn validate(&self, interner: &Interner) -> Result<(), AggError> {
        if self.state.is_empty() {
            return Err(AggError::EmptyState);
        }
        let mut seen: BTreeSet<Symbol> = BTreeSet::new();
        let all_names = self
            .params
            .iter()
            .copied()
            .chain(self.state.iter().flat_map(|s| [s.name, s.rhs]));
        for n in all_names {
            if !seen.insert(n) {
                return Err(AggError::DuplicateName(interner.resolve(n).to_string()));
            }
        }
        if !notify_ids(&self.fold).is_empty() || !notify_ids(&self.merge).is_empty() {
            return Err(AggError::NotifyInAggregate);
        }
        if let Some(f) = called_fns(&self.merge).into_iter().next() {
            return Err(AggError::CallInMerge(interner.resolve(f).to_string()));
        }

        let params: BTreeSet<Symbol> = self.params.iter().copied().collect();
        let state: BTreeSet<Symbol> = self.state.iter().map(|s| s.name).collect();
        let rhs: BTreeSet<Symbol> = self.state.iter().map(|s| s.rhs).collect();

        let fold_assigned = assigned_vars(&self.fold);
        if let Some(v) = fold_assigned.iter().find(|v| params.contains(v) || rhs.contains(v)) {
            return Err(AggError::FoldAssignsInput(interner.resolve(*v).to_string()));
        }
        if let Some(v) = read_vars(&self.fold)
            .into_iter()
            .find(|v| !params.contains(v) && !state.contains(v) && !fold_assigned.contains(v))
        {
            return Err(AggError::FoldReadsForeign(interner.resolve(v).to_string()));
        }

        let merge_assigned = assigned_vars(&self.merge);
        if let Some(v) = merge_assigned.iter().find(|v| params.contains(v) || rhs.contains(v)) {
            return Err(AggError::MergeAssignsInput(interner.resolve(*v).to_string()));
        }
        if let Some(v) = read_vars(&self.merge)
            .into_iter()
            .find(|v| !state.contains(v) && !rhs.contains(v) && !merge_assigned.contains(v))
        {
            return Err(AggError::MergeReadsForeign(interner.resolve(v).to_string()));
        }
        Ok(())
    }

    /// Slot names, in declaration order.
    pub fn state_names(&self) -> Vec<Symbol> {
        self.state.iter().map(|s| s.name).collect()
    }

    /// Rhs aliases, in declaration order.
    pub fn rhs_names(&self) -> Vec<Symbol> {
        self.state.iter().map(|s| s.rhs).collect()
    }

    /// Initial state vector, in declaration order.
    pub fn init_state(&self) -> Vec<i64> {
        self.state.iter().map(|s| s.init).collect()
    }

    /// The fold step viewed as a closed [`Program`] over
    /// `state ++ params` — the form hashed by [`agg_hash`] and symbolically
    /// executed by the homomorphism prover.
    pub fn fold_view(&self) -> Program {
        let mut ps = self.state_names();
        ps.extend(self.params.iter().copied());
        Program::new(self.id, ps, self.fold.clone())
    }

    /// The merge step viewed as a closed [`Program`] over `state ++ rhs`.
    pub fn merge_view(&self) -> Program {
        let mut ps = self.state_names();
        ps.extend(self.rhs_names());
        Program::new(self.id, ps, self.merge.clone())
    }

    /// Number of AST nodes across both bodies, used in code-size reports.
    pub fn size(&self) -> usize {
        self.fold.size() + self.merge.size()
    }

    /// Whether either body contains a `while` loop. The homomorphism prover
    /// refuses loopy definitions up front (strongest-postcondition havocs
    /// loop targets, so the obligation could never be discharged anyway).
    pub fn has_loop(&self) -> bool {
        fn loopy(s: &Stmt) -> bool {
            match s {
                Stmt::While(_, _) => true,
                Stmt::Seq(a, b) | Stmt::If(_, a, b) => loopy(a) || loopy(b),
                Stmt::Skip | Stmt::Assign(_, _) | Stmt::Notify(_, _) => false,
            }
        }
        loopy(&self.fold) || loopy(&self.merge)
    }
}

/// Alpha-invariant structural hash of one aggregation definition.
///
/// Two definitions that differ only in variable naming hash identically
/// (both views are canonicalized via [`program_hash`], which De Bruijn-renames
/// parameters and locals). This is the memo key for homomorphism proofs: a
/// warm hit skips the solver entirely.
pub fn agg_hash(def: &AggDef, interner: &Interner) -> u128 {
    let mut h = Fnv128::new();
    h.byte(AGG_HASH_DOMAIN);
    h.u64(def.state.len() as u64);
    for s in &def.state {
        h.i64(s.init);
    }
    h.u128(program_hash(&def.fold_view(), interner));
    h.u128(program_hash(&def.merge_view(), interner));
    h.finish()
}

/// Order-*sensitive* combined key for a set of aggregations sharing a scan.
///
/// Unlike `canon::set_key` this does not sort: a cached aggregation plan
/// stores per-definition proof verdicts positionally, so permuted sets must
/// key differently.
pub fn agg_set_key(defs: &[AggDef], interner: &Interner) -> u128 {
    let mut h = Fnv128::new();
    h.byte(AGG_SET_DOMAIN);
    h.u64(defs.len() as u64);
    for d in defs {
        h.u128(agg_hash(d, interner));
    }
    h.finish()
}

/// Parses one `aggregate … { … }` definition (syntax in the module docs).
///
/// Inside `merge`, each slot `s` has its right-hand copy in scope as
/// `rhs_s`. The result is validated via [`AggDef::validate`].
///
/// # Errors
///
/// Returns a description of the first syntax or validation error.
pub fn parse_agg(src: &str, interner: &mut Interner) -> Result<AggDef, String> {
    let mut c = Cursor::new(src);
    let def = parse_one(&mut c, interner)?;
    c.skip_ws();
    if !c.eof() {
        return Err(format!("trailing input after aggregate: `{}`", c.rest_preview()));
    }
    Ok(def)
}

/// Parses a source file containing any number of `aggregate` definitions.
///
/// # Errors
///
/// Returns a description of the first syntax or validation error.
pub fn parse_aggs(src: &str, interner: &mut Interner) -> Result<Vec<AggDef>, String> {
    let mut c = Cursor::new(src);
    let mut out = Vec::new();
    loop {
        c.skip_ws();
        if c.eof() {
            return Ok(out);
        }
        out.push(parse_one(&mut c, interner)?);
    }
}

/// Byte-cursor over comment-stripped source.
struct Cursor {
    src: Vec<char>,
    pos: usize,
}

impl Cursor {
    fn new(src: &str) -> Cursor {
        // Strip `//`-to-end-of-line comments so brace balancing can't be
        // fooled; `/` is not an operator of the language.
        let mut stripped = String::with_capacity(src.len());
        for line in src.lines() {
            let code = line.split_once("//").map_or(line, |(c, _)| c);
            stripped.push_str(code);
            stripped.push('\n');
        }
        Cursor {
            src: stripped.chars().collect(),
            pos: 0,
        }
    }

    fn eof(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<char> {
        self.src.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn rest_preview(&self) -> String {
        self.src[self.pos..].iter().take(24).collect()
    }

    fn ident(&mut self) -> Result<String, String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
            self.pos += 1;
        }
        if self.pos == start || self.src[start].is_ascii_digit() {
            return Err(format!("expected identifier at `{}`", self.rest_preview()));
        }
        Ok(self.src[start..self.pos].iter().collect())
    }

    fn number(&mut self) -> Result<i64, String> {
        self.skip_ws();
        let neg = self.peek() == Some('-');
        if neg {
            self.pos += 1;
        }
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected number at `{}`", self.rest_preview()));
        }
        let digits: String = self.src[start..self.pos].iter().collect();
        let v: i64 = digits
            .parse()
            .map_err(|_| format!("number out of range: `{digits}`"))?;
        Ok(if neg { -v } else { v })
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{c}` at `{}`", self.rest_preview()))
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), String> {
        let id = self.ident()?;
        if id == kw {
            Ok(())
        } else {
            Err(format!("expected `{kw}`, found `{id}`"))
        }
    }

    /// At a `{`: returns the text between it and its matching `}`.
    fn brace_block(&mut self) -> Result<String, String> {
        self.expect('{')?;
        let start = self.pos;
        let mut depth = 1usize;
        while let Some(c) = self.peek() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        let body: String = self.src[start..self.pos].iter().collect();
                        self.pos += 1;
                        return Ok(body);
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
        Err("unterminated `{` block".to_string())
    }
}

fn parse_one(c: &mut Cursor, interner: &mut Interner) -> Result<AggDef, String> {
    c.keyword("aggregate")?;
    let _name = c.ident()?;
    c.skip_ws();
    let id = if c.peek() == Some('@') {
        c.pos += 1;
        let n = c.number()?;
        ProgId(u32::try_from(n).map_err(|_| "aggregate id out of range".to_string())?)
    } else {
        ProgId(0)
    };
    c.expect('(')?;
    let mut params = Vec::new();
    c.skip_ws();
    if c.peek() != Some(')') {
        loop {
            params.push(interner.intern(&c.ident()?));
            c.skip_ws();
            if c.peek() == Some(',') {
                c.pos += 1;
            } else {
                break;
            }
        }
    }
    c.expect(')')?;
    c.expect('{')?;

    let mut state = Vec::new();
    loop {
        c.skip_ws();
        let save = c.pos;
        let kw = c.ident()?;
        match kw.as_str() {
            "state" => {
                let name = c.ident()?;
                c.expect('=')?;
                let init = c.number()?;
                c.expect(';')?;
                let slot = StateSlot {
                    name: interner.intern(&name),
                    init,
                    rhs: interner.intern(&format!("rhs_{name}")),
                };
                state.push(slot);
            }
            "fold" => {
                c.pos = save;
                break;
            }
            other => {
                return Err(format!("expected `state` or `fold`, found `{other}`"));
            }
        }
    }

    c.keyword("fold")?;
    let fold_src = c.brace_block()?;
    c.keyword("merge")?;
    let merge_src = c.brace_block()?;
    c.expect('}')?;

    // Each body is parsed by wrapping it as a parameterless program; the
    // shared parser does no scope checking, so state/rhs reads are fine here
    // and AggDef::validate applies the aggregation-specific rules after.
    let fold = parse_program(&format!("program __fold @{} () {{ {fold_src} }}", id.0), interner)
        .map_err(|e| format!("in fold: {e}"))?
        .body;
    let merge = parse_program(
        &format!("program __merge @{} () {{ {merge_src} }}", id.0),
        interner,
    )
    .map_err(|e| format!("in merge: {e}"))?
    .body;

    AggDef::new(id, params, state, fold, merge, interner).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_src() -> &'static str {
        "aggregate sumvol @3 (id) {
            state s = 0;
            fold  { v := volumeAt(0); s := s + v; }
            merge { s := s + rhs_s; }
        }"
    }

    #[test]
    fn parses_and_validates_sum() {
        let mut it = Interner::new();
        let d = parse_agg(sum_src(), &mut it).unwrap();
        assert_eq!(d.id, ProgId(3));
        assert_eq!(d.params.len(), 1);
        assert_eq!(d.state.len(), 1);
        assert_eq!(d.init_state(), vec![0]);
        assert!(!d.has_loop());
        assert_eq!(it.resolve(d.state[0].rhs), "rhs_s");
    }

    #[test]
    fn rejects_notify_and_merge_calls() {
        let mut it = Interner::new();
        let bad = "aggregate a @1 (x) { state s = 0; fold { notify true; } merge { s := rhs_s; } }";
        assert!(parse_agg(bad, &mut it).unwrap_err().contains("notify"));
        let bad2 =
            "aggregate a @1 (x) { state s = 0; fold { s := x; } merge { s := f(rhs_s); } }";
        assert!(parse_agg(bad2, &mut it).unwrap_err().contains("merge calls"));
    }

    #[test]
    fn rejects_scope_violations() {
        let mut it = Interner::new();
        // fold assigns a parameter
        let bad = "aggregate a @1 (x) { state s = 0; fold { x := 1; } merge { s := rhs_s; } }";
        assert!(parse_agg(bad, &mut it).unwrap_err().contains("fold assigns"));
        // merge reads a record parameter
        let bad2 = "aggregate a @1 (x) { state s = 0; fold { s := x; } merge { s := x + rhs_s; } }";
        assert!(parse_agg(bad2, &mut it).unwrap_err().contains("foreign"));
        // fold reads an undeclared variable
        let bad3 = "aggregate a @1 (x) { state s = 0; fold { s := q; } merge { s := rhs_s; } }";
        assert!(parse_agg(bad3, &mut it).unwrap_err().contains("foreign"));
    }

    #[test]
    fn hash_is_alpha_invariant_and_init_sensitive() {
        let mut it = Interner::new();
        let a = parse_agg(sum_src(), &mut it).unwrap();
        let b = parse_agg(
            "aggregate sumvol @3 (ident) {
                state acc = 0;
                fold  { w := volumeAt(0); acc := acc + w; }
                merge { acc := acc + rhs_acc; }
            }",
            &mut it,
        )
        .unwrap();
        assert_eq!(agg_hash(&a, &it), agg_hash(&b, &it));
        let c = parse_agg(
            "aggregate sumvol @3 (id) {
                state s = 7;
                fold  { v := volumeAt(0); s := s + v; }
                merge { s := s + rhs_s; }
            }",
            &mut it,
        )
        .unwrap();
        assert_ne!(agg_hash(&a, &it), agg_hash(&c, &it));
    }

    #[test]
    fn set_key_is_order_sensitive() {
        let mut it = Interner::new();
        let a = parse_agg(sum_src(), &mut it).unwrap();
        let b = parse_agg(
            "aggregate cnt @4 (id) { state c = 0; fold { c := c + 1; } merge { c := c + rhs_c; } }",
            &mut it,
        )
        .unwrap();
        let ab = agg_set_key(&[a.clone(), b.clone()], &it);
        let ba = agg_set_key(&[b, a], &it);
        assert_ne!(ab, ba);
    }

    #[test]
    fn parse_aggs_reads_many() {
        let mut it = Interner::new();
        let src = format!(
            "{}\naggregate cnt @4 (id) {{ state c = 0; fold {{ c := c + 1; }} merge {{ c := c + rhs_c; }} }}",
            sum_src()
        );
        let defs = parse_aggs(&src, &mut it).unwrap();
        assert_eq!(defs.len(), 2);
        assert_eq!(defs[1].id, ProgId(4));
    }
}
