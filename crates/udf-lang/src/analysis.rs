//! Syntactic analyses used by the consolidation engine: variable and function
//! collection, substitution, local renaming, and static validation.
//!
//! The paper requires the local variables of the two programs being
//! consolidated to be disjoint (variables are written `xᵢⱼ`, labelled by the
//! program id). [`rename_locals`] establishes that precondition mechanically.

use crate::ast::{BoolExpr, IntExpr, Program, Stmt};
use crate::intern::{Interner, Symbol};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Collects variables *read* by an integer expression into `out`.
pub fn int_expr_vars(e: &IntExpr, out: &mut BTreeSet<Symbol>) {
    match e {
        IntExpr::Const(_) => {}
        IntExpr::Var(v) => {
            out.insert(*v);
        }
        IntExpr::Call(_, args) => {
            for a in args {
                int_expr_vars(a, out);
            }
        }
        IntExpr::Bin(_, a, b) => {
            int_expr_vars(a, out);
            int_expr_vars(b, out);
        }
    }
}

/// Collects variables *read* by a boolean expression into `out`.
pub fn bool_expr_vars(e: &BoolExpr, out: &mut BTreeSet<Symbol>) {
    match e {
        BoolExpr::Const(_) => {}
        BoolExpr::Cmp(_, a, b) => {
            int_expr_vars(a, out);
            int_expr_vars(b, out);
        }
        BoolExpr::Not(a) => bool_expr_vars(a, out),
        BoolExpr::Bin(_, a, b) => {
            bool_expr_vars(a, out);
            bool_expr_vars(b, out);
        }
    }
}

/// All variables read anywhere in a statement.
pub fn read_vars(s: &Stmt) -> BTreeSet<Symbol> {
    let mut out = BTreeSet::new();
    collect_reads(s, &mut out);
    out
}

fn collect_reads(s: &Stmt, out: &mut BTreeSet<Symbol>) {
    match s {
        Stmt::Skip | Stmt::Notify(..) => {}
        Stmt::Assign(_, e) => int_expr_vars(e, out),
        Stmt::Seq(a, b) => {
            collect_reads(a, out);
            collect_reads(b, out);
        }
        Stmt::If(c, a, b) => {
            bool_expr_vars(c, out);
            collect_reads(a, out);
            collect_reads(b, out);
        }
        Stmt::While(c, b) => {
            bool_expr_vars(c, out);
            collect_reads(b, out);
        }
    }
}

/// All variables assigned anywhere in a statement.
pub fn assigned_vars(s: &Stmt) -> BTreeSet<Symbol> {
    let mut out = BTreeSet::new();
    collect_assigned(s, &mut out);
    out
}

fn collect_assigned(s: &Stmt, out: &mut BTreeSet<Symbol>) {
    match s {
        Stmt::Skip | Stmt::Notify(..) => {}
        Stmt::Assign(x, _) => {
            out.insert(*x);
        }
        Stmt::Seq(a, b) | Stmt::If(_, a, b) => {
            collect_assigned(a, out);
            collect_assigned(b, out);
        }
        Stmt::While(_, b) => collect_assigned(b, out),
    }
}

/// All external function symbols called in an integer expression.
pub fn int_expr_fns(e: &IntExpr, out: &mut BTreeSet<Symbol>) {
    match e {
        IntExpr::Const(_) | IntExpr::Var(_) => {}
        IntExpr::Call(f, args) => {
            out.insert(*f);
            for a in args {
                int_expr_fns(a, out);
            }
        }
        IntExpr::Bin(_, a, b) => {
            int_expr_fns(a, out);
            int_expr_fns(b, out);
        }
    }
}

/// All external function symbols called in a boolean expression.
pub fn bool_expr_fns(e: &BoolExpr, out: &mut BTreeSet<Symbol>) {
    match e {
        BoolExpr::Const(_) => {}
        BoolExpr::Cmp(_, a, b) => {
            int_expr_fns(a, out);
            int_expr_fns(b, out);
        }
        BoolExpr::Not(a) => bool_expr_fns(a, out),
        BoolExpr::Bin(_, a, b) => {
            bool_expr_fns(a, out);
            bool_expr_fns(b, out);
        }
    }
}

/// All external function symbols called anywhere in a statement.
pub fn called_fns(s: &Stmt) -> BTreeSet<Symbol> {
    let mut out = BTreeSet::new();
    collect_fns(s, &mut out);
    out
}

fn collect_fns(s: &Stmt, out: &mut BTreeSet<Symbol>) {
    match s {
        Stmt::Skip | Stmt::Notify(..) => {}
        Stmt::Assign(_, e) => int_expr_fns(e, out),
        Stmt::Seq(a, b) => {
            collect_fns(a, out);
            collect_fns(b, out);
        }
        Stmt::If(c, a, b) => {
            bool_expr_fns(c, out);
            collect_fns(a, out);
            collect_fns(b, out);
        }
        Stmt::While(c, b) => {
            bool_expr_fns(c, out);
            collect_fns(b, out);
        }
    }
}

/// All program ids broadcast by `notify` statements in `s`.
pub fn notify_ids(s: &Stmt) -> BTreeSet<crate::ast::ProgId> {
    fn walk(s: &Stmt, out: &mut BTreeSet<crate::ast::ProgId>) {
        match s {
            Stmt::Skip | Stmt::Assign(..) => {}
            Stmt::Notify(id, _) => {
                out.insert(*id);
            }
            Stmt::Seq(a, b) | Stmt::If(_, a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Stmt::While(_, b) => walk(b, out),
        }
    }
    let mut out = BTreeSet::new();
    walk(s, &mut out);
    out
}

/// Applies a variable substitution to an integer expression.
pub fn subst_int(e: &IntExpr, map: &BTreeMap<Symbol, Symbol>) -> IntExpr {
    match e {
        IntExpr::Const(c) => IntExpr::Const(*c),
        IntExpr::Var(v) => IntExpr::Var(map.get(v).copied().unwrap_or(*v)),
        IntExpr::Call(f, args) => {
            IntExpr::Call(*f, args.iter().map(|a| subst_int(a, map)).collect())
        }
        IntExpr::Bin(op, a, b) => IntExpr::Bin(
            *op,
            Box::new(subst_int(a, map)),
            Box::new(subst_int(b, map)),
        ),
    }
}

/// Applies a variable substitution to a boolean expression.
pub fn subst_bool(e: &BoolExpr, map: &BTreeMap<Symbol, Symbol>) -> BoolExpr {
    match e {
        BoolExpr::Const(b) => BoolExpr::Const(*b),
        BoolExpr::Cmp(op, a, b) => BoolExpr::Cmp(*op, subst_int(a, map), subst_int(b, map)),
        BoolExpr::Not(a) => BoolExpr::not(subst_bool(a, map)),
        BoolExpr::Bin(op, a, b) => BoolExpr::Bin(
            *op,
            Box::new(subst_bool(a, map)),
            Box::new(subst_bool(b, map)),
        ),
    }
}

/// Applies a variable substitution to a statement (both reads and writes).
pub fn subst_stmt(s: &Stmt, map: &BTreeMap<Symbol, Symbol>) -> Stmt {
    match s {
        Stmt::Skip => Stmt::Skip,
        Stmt::Notify(id, b) => Stmt::Notify(*id, *b),
        Stmt::Assign(x, e) => Stmt::Assign(map.get(x).copied().unwrap_or(*x), subst_int(e, map)),
        Stmt::Seq(a, b) => Stmt::Seq(
            Box::new(subst_stmt(a, map)),
            Box::new(subst_stmt(b, map)),
        ),
        Stmt::If(c, a, b) => Stmt::If(
            subst_bool(c, map),
            Box::new(subst_stmt(a, map)),
            Box::new(subst_stmt(b, map)),
        ),
        Stmt::While(c, b) => Stmt::While(subst_bool(c, map), Box::new(subst_stmt(b, map))),
    }
}

/// Renames every local variable (assigned variable that is not a parameter)
/// of `program` to a fresh name starting with `prefix`, returning the renamed
/// program. Parameters are left untouched: consolidated programs share their
/// input `ᾱ`.
pub fn rename_locals(program: &Program, interner: &mut Interner, prefix: &str) -> Program {
    let params: BTreeSet<Symbol> = program.params.iter().copied().collect();
    let mut map = BTreeMap::new();
    for v in assigned_vars(&program.body) {
        if !params.contains(&v) {
            let base = interner.resolve(v).to_owned();
            map.insert(v, interner.fresh(&format!("{prefix}{base}")));
        }
    }
    Program::new(program.id, program.params.clone(), subst_stmt(&program.body, &map))
}

/// Static validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A parameter appears on the left of `:=`.
    AssignsParameter(String),
    /// A variable may be read before any assignment reaches it.
    MaybeUninitialized(String),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::AssignsParameter(v) => {
                write!(f, "parameter `{v}` is assigned; parameters are read-only")
            }
            ValidateError::MaybeUninitialized(v) => {
                write!(f, "variable `{v}` may be read before initialization")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Validates a program: parameters are never assigned, and every variable is
/// definitely assigned before each read (a conservative forward analysis —
/// conditional assignments only count when they occur on both branches).
///
/// # Errors
///
/// Returns the first [`ValidateError`] found.
pub fn validate(program: &Program, interner: &Interner) -> Result<(), ValidateError> {
    let params: BTreeSet<Symbol> = program.params.iter().copied().collect();
    for v in assigned_vars(&program.body) {
        if params.contains(&v) {
            return Err(ValidateError::AssignsParameter(
                interner.resolve(v).to_owned(),
            ));
        }
    }
    let mut defined = params;
    check_defined(&program.body, &mut defined, interner)?;
    Ok(())
}

fn expr_defined(
    vars: &BTreeSet<Symbol>,
    defined: &BTreeSet<Symbol>,
    interner: &Interner,
) -> Result<(), ValidateError> {
    for v in vars {
        if !defined.contains(v) {
            return Err(ValidateError::MaybeUninitialized(
                interner.resolve(*v).to_owned(),
            ));
        }
    }
    Ok(())
}

fn check_defined(
    s: &Stmt,
    defined: &mut BTreeSet<Symbol>,
    interner: &Interner,
) -> Result<(), ValidateError> {
    match s {
        Stmt::Skip | Stmt::Notify(..) => Ok(()),
        Stmt::Assign(x, e) => {
            let mut vars = BTreeSet::new();
            int_expr_vars(e, &mut vars);
            expr_defined(&vars, defined, interner)?;
            defined.insert(*x);
            Ok(())
        }
        Stmt::Seq(a, b) => {
            check_defined(a, defined, interner)?;
            check_defined(b, defined, interner)
        }
        Stmt::If(c, a, b) => {
            let mut vars = BTreeSet::new();
            bool_expr_vars(c, &mut vars);
            expr_defined(&vars, defined, interner)?;
            let mut then_defs = defined.clone();
            check_defined(a, &mut then_defs, interner)?;
            let mut else_defs = defined.clone();
            check_defined(b, &mut else_defs, interner)?;
            *defined = then_defs.intersection(&else_defs).copied().collect();
            Ok(())
        }
        Stmt::While(c, b) => {
            let mut vars = BTreeSet::new();
            bool_expr_vars(c, &mut vars);
            expr_defined(&vars, defined, interner)?;
            // The body may execute zero times: definitions inside it do not
            // flow out, but the body itself is checked starting from the
            // current definitions.
            let mut body_defs = defined.clone();
            check_defined(b, &mut body_defs, interner)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn prog(src: &str) -> (Program, Interner) {
        let mut i = Interner::new();
        let p = parse_program(src, &mut i).unwrap();
        (p, i)
    }

    #[test]
    fn collects_reads_writes_and_fns() {
        let (p, i) = prog(
            "program a @0 (n) { x := f(n) + 1; while (x > 0) { x := x - g(x); } notify true; }",
        );
        let reads: Vec<&str> = read_vars(&p.body).iter().map(|&s| i.resolve(s)).collect();
        assert_eq!(reads, vec!["n", "x"]);
        let writes: Vec<&str> = assigned_vars(&p.body).iter().map(|&s| i.resolve(s)).collect();
        assert_eq!(writes, vec!["x"]);
        let fns: Vec<&str> = called_fns(&p.body).iter().map(|&s| i.resolve(s)).collect();
        assert_eq!(fns, vec!["f", "g"]);
    }

    #[test]
    fn rename_locals_keeps_params_and_freshens_locals() {
        let (p, mut i) = prog("program a @0 (n) { x := n + 1; y := x * 2; }");
        let renamed = rename_locals(&p, &mut i, "p0$");
        assert_eq!(renamed.params, p.params);
        let writes: Vec<String> = assigned_vars(&renamed.body)
            .iter()
            .map(|&s| i.resolve(s).to_owned())
            .collect();
        assert_eq!(writes.len(), 2);
        for w in &writes {
            assert!(w.starts_with("p0$"), "{w}");
        }
        // Dataflow is preserved: the read of `x` in the second assignment
        // follows the renaming.
        let reads = read_vars(&renamed.body);
        assert!(reads.iter().any(|&s| i.resolve(s).starts_with("p0$x")));
    }

    #[test]
    fn validate_accepts_well_formed() {
        let (p, i) =
            prog("program a @0 (n) { x := n; if (x < 3) { y := 1; } else { y := 2; } z := y; }");
        assert_eq!(validate(&p, &i), Ok(()));
    }

    #[test]
    fn validate_rejects_parameter_assignment() {
        let (p, i) = prog("program a @0 (n) { n := 3; }");
        assert_eq!(
            validate(&p, &i),
            Err(ValidateError::AssignsParameter("n".to_owned()))
        );
    }

    #[test]
    fn validate_rejects_one_sided_definition() {
        let (p, i) = prog("program a @0 (n) { if (n < 0) { y := 1; } z := y; }");
        assert_eq!(
            validate(&p, &i),
            Err(ValidateError::MaybeUninitialized("y".to_owned()))
        );
    }

    #[test]
    fn validate_loop_definitions_do_not_escape() {
        let (p, i) = prog("program a @0 (n) { while (n < 0) { y := 1; } z := y; }");
        assert_eq!(
            validate(&p, &i),
            Err(ValidateError::MaybeUninitialized("y".to_owned()))
        );
    }

    #[test]
    fn subst_replaces_reads_and_writes() {
        let mut i = Interner::new();
        let x = i.intern("x");
        let y = i.intern("y");
        let s = Stmt::Assign(x, IntExpr::add(IntExpr::Var(x), IntExpr::Const(1)));
        let mut map = BTreeMap::new();
        map.insert(x, y);
        let s2 = subst_stmt(&s, &map);
        assert_eq!(s2, Stmt::Assign(y, IntExpr::add(IntExpr::Var(y), IntExpr::Const(1))));
    }
}
