//! Abstract syntax of the UDF language (paper Figure 1).
//!
//! ```text
//! Program Π  := λα₁,…,αₖ. S
//! Stmt    S  := skip | x := IE | S₁;S₂ | S₁ ⊕ᴮᴱ S₂ | notifyᵢ b | while BE do S
//! IntExpr IE := int | α | x | f(IE₁,…,IEₖ) | IE₁ ⊙ IE₂        ⊙ ∈ {+,−,∗}
//! BoolExpr BE:= b | IE₁ ▷ IE₂ | ¬BE | BE₁ ⋈ BE₂               ▷ ∈ {<,=,≤}, ⋈ ∈ {∧,∨}
//! ```
//!
//! Parameters and local variables are both represented as [`IntExpr::Var`];
//! the parameter list lives in [`Program::params`] and the validator enforces
//! that parameters are never assigned.

use crate::intern::Symbol;
use std::fmt;

/// Identifier of a source program `Πᵢ`; `notifyᵢ b` broadcasts the boolean
/// result of the program with this id. Consolidated programs carry
/// notifications for several distinct ids.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProgId(pub u32);

impl fmt::Display for ProgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Integer binary operators `+ - *`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IntOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
}

impl IntOp {
    /// Applies the operator with wrapping semantics (the language is defined
    /// over mathematical integers; we fix two's-complement wrapping as the
    /// machine semantics so the interpreter is total).
    #[inline]
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            IntOp::Add => a.wrapping_add(b),
            IntOp::Sub => a.wrapping_sub(b),
            IntOp::Mul => a.wrapping_mul(b),
        }
    }

    /// Source text of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            IntOp::Add => "+",
            IntOp::Sub => "-",
            IntOp::Mul => "*",
        }
    }
}

/// Comparison operators `< = ≤` (the `>` and `≥` forms are desugared by the
/// parser by swapping operands).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Strictly less than.
    Lt,
    /// Equality.
    Eq,
    /// Less than or equal.
    Le,
}

impl CmpOp {
    /// Applies the comparison.
    #[inline]
    pub fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Eq => a == b,
            CmpOp::Le => a <= b,
        }
    }

    /// Source text of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Eq => "==",
            CmpOp::Le => "<=",
        }
    }
}

/// Boolean connectives `∧ ∨`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BoolOp {
    /// Conjunction. Note the semantics of Figure 2 is *strict* (both operands
    /// are always evaluated), matching the paper's cost model.
    And,
    /// Disjunction (also strict).
    Or,
}

impl BoolOp {
    /// Applies the connective.
    #[inline]
    pub fn apply(self, a: bool, b: bool) -> bool {
        match self {
            BoolOp::And => a && b,
            BoolOp::Or => a || b,
        }
    }

    /// Source text of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            BoolOp::And => "&&",
            BoolOp::Or => "||",
        }
    }
}

/// Integer expressions `IE`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum IntExpr {
    /// Integer literal.
    Const(i64),
    /// Parameter or local variable reference.
    Var(Symbol),
    /// Call to an externally provided pure library function.
    Call(Symbol, Vec<IntExpr>),
    /// Binary arithmetic.
    Bin(IntOp, Box<IntExpr>, Box<IntExpr>),
}

// The constructors below are associated functions taking both operands, not
// operator-trait methods; the ambiguity clippy warns about cannot arise.
#[allow(clippy::should_implement_trait)]
impl IntExpr {
    /// `a + b`.
    pub fn add(a: IntExpr, b: IntExpr) -> IntExpr {
        IntExpr::Bin(IntOp::Add, Box::new(a), Box::new(b))
    }

    /// `a - b`.
    pub fn sub(a: IntExpr, b: IntExpr) -> IntExpr {
        IntExpr::Bin(IntOp::Sub, Box::new(a), Box::new(b))
    }

    /// `a * b`.
    pub fn mul(a: IntExpr, b: IntExpr) -> IntExpr {
        IntExpr::Bin(IntOp::Mul, Box::new(a), Box::new(b))
    }

    /// Number of AST nodes, used in code-size reports.
    pub fn size(&self) -> usize {
        match self {
            IntExpr::Const(_) | IntExpr::Var(_) => 1,
            IntExpr::Call(_, args) => 1 + args.iter().map(IntExpr::size).sum::<usize>(),
            IntExpr::Bin(_, a, b) => 1 + a.size() + b.size(),
        }
    }
}

/// Boolean expressions `BE`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum BoolExpr {
    /// Boolean literal `⊤` / `⊥`.
    Const(bool),
    /// Arithmetic comparison `IE₁ ▷ IE₂`.
    Cmp(CmpOp, IntExpr, IntExpr),
    /// Negation.
    Not(Box<BoolExpr>),
    /// Connective `BE₁ ⋈ BE₂`.
    Bin(BoolOp, Box<BoolExpr>, Box<BoolExpr>),
}

#[allow(clippy::should_implement_trait)]
impl BoolExpr {
    /// `a && b`.
    pub fn and(a: BoolExpr, b: BoolExpr) -> BoolExpr {
        BoolExpr::Bin(BoolOp::And, Box::new(a), Box::new(b))
    }

    /// `a || b`.
    pub fn or(a: BoolExpr, b: BoolExpr) -> BoolExpr {
        BoolExpr::Bin(BoolOp::Or, Box::new(a), Box::new(b))
    }

    /// `!a`.
    pub fn not(a: BoolExpr) -> BoolExpr {
        BoolExpr::Not(Box::new(a))
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            BoolExpr::Const(_) => 1,
            BoolExpr::Cmp(_, a, b) => 1 + a.size() + b.size(),
            BoolExpr::Not(a) => 1 + a.size(),
            BoolExpr::Bin(_, a, b) => 1 + a.size() + b.size(),
        }
    }
}

/// Statements `S`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Stmt {
    /// `skip`.
    Skip,
    /// `x := e` (only local variables may be assigned).
    Assign(Symbol, IntExpr),
    /// `S₁; S₂`.
    Seq(Box<Stmt>, Box<Stmt>),
    /// `S₁ ⊕ᵉ S₂`: executes the first statement when `e` holds, the second
    /// otherwise.
    If(BoolExpr, Box<Stmt>, Box<Stmt>),
    /// `while e do S`.
    While(BoolExpr, Box<Stmt>),
    /// `notifyᵢ b`: broadcast constant `b` as the result of program `i`.
    Notify(ProgId, bool),
}

impl Stmt {
    /// Sequences two statements, eliding `skip`s.
    pub fn then(self, next: Stmt) -> Stmt {
        match (self, next) {
            (Stmt::Skip, s) | (s, Stmt::Skip) => s,
            (a, b) => Stmt::Seq(Box::new(a), Box::new(b)),
        }
    }

    /// Folds a list of statements into a right-associated sequence.
    pub fn seq_all<I: IntoIterator<Item = Stmt>>(stmts: I) -> Stmt {
        let mut items: Vec<Stmt> = stmts.into_iter().collect();
        let mut acc = match items.pop() {
            Some(s) => s,
            None => return Stmt::Skip,
        };
        while let Some(s) = items.pop() {
            acc = s.then(acc);
        }
        acc
    }

    /// Conditional constructor.
    pub fn ite(cond: BoolExpr, then_s: Stmt, else_s: Stmt) -> Stmt {
        Stmt::If(cond, Box::new(then_s), Box::new(else_s))
    }

    /// Loop constructor.
    pub fn while_do(cond: BoolExpr, body: Stmt) -> Stmt {
        Stmt::While(cond, Box::new(body))
    }

    /// Splits a statement into its first non-sequence statement (`hd`) and
    /// the remainder (`tl`), the decomposition used throughout the
    /// consolidation algorithm (paper Figure 8). When the statement is not a
    /// sequence, the tail is `skip`.
    ///
    /// # Example
    ///
    /// ```
    /// use udf_lang::ast::Stmt;
    /// let s = Stmt::Skip.then(Stmt::Notify(udf_lang::ast::ProgId(0), true));
    /// let (hd, tl) = s.split_head();
    /// assert_eq!(tl, Stmt::Skip);
    /// assert!(matches!(hd, Stmt::Notify(..)));
    /// ```
    pub fn split_head(self) -> (Stmt, Stmt) {
        match self {
            Stmt::Seq(a, b) => {
                let (hd, tl) = a.split_head();
                (hd, tl.then(*b))
            }
            s => (s, Stmt::Skip),
        }
    }

    /// Number of AST nodes, used for the code-size trade-off reports of the
    /// If 3 / If 4 / If 5 rules.
    pub fn size(&self) -> usize {
        match self {
            Stmt::Skip | Stmt::Notify(..) => 1,
            Stmt::Assign(_, e) => 1 + e.size(),
            Stmt::Seq(a, b) => a.size() + b.size(),
            Stmt::If(c, a, b) => 1 + c.size() + a.size() + b.size(),
            Stmt::While(c, b) => 1 + c.size() + b.size(),
        }
    }

    /// Whether the statement is `skip`.
    pub fn is_skip(&self) -> bool {
        matches!(self, Stmt::Skip)
    }
}

/// A program `λα₁,…,αₖ. S` with a distinguished identifier.
///
/// Different programs must use disjoint local-variable names (the paper
/// labels variables `xᵢⱼ` by program id); [`crate::analysis::rename_locals`]
/// establishes this before consolidation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    /// Program identifier used by its `notify` statements.
    pub id: ProgId,
    /// Parameter list `α₁,…,αₖ`.
    pub params: Vec<Symbol>,
    /// Body statement.
    pub body: Stmt,
}

impl Program {
    /// Creates a program.
    pub fn new(id: ProgId, params: Vec<Symbol>, body: Stmt) -> Program {
        Program { id, params, body }
    }

    /// Number of AST nodes in the body.
    pub fn size(&self) -> usize {
        self.body.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::Interner;

    #[test]
    fn ops_apply() {
        assert_eq!(IntOp::Add.apply(2, 3), 5);
        assert_eq!(IntOp::Sub.apply(2, 3), -1);
        assert_eq!(IntOp::Mul.apply(2, 3), 6);
        assert!(CmpOp::Lt.apply(1, 2));
        assert!(CmpOp::Le.apply(2, 2));
        assert!(CmpOp::Eq.apply(4, 4));
        assert!(!CmpOp::Eq.apply(4, 5));
        assert!(BoolOp::And.apply(true, true));
        assert!(!BoolOp::And.apply(true, false));
        assert!(BoolOp::Or.apply(false, true));
    }

    #[test]
    fn wrapping_arithmetic_is_total() {
        assert_eq!(IntOp::Add.apply(i64::MAX, 1), i64::MIN);
        assert_eq!(IntOp::Mul.apply(i64::MAX, 2), -2);
    }

    #[test]
    fn then_elides_skip() {
        let s = Stmt::Skip.then(Stmt::Skip);
        assert_eq!(s, Stmt::Skip);
        let n = Stmt::Notify(ProgId(1), true);
        assert_eq!(Stmt::Skip.then(n.clone()), n.clone());
        assert_eq!(n.clone().then(Stmt::Skip), n);
    }

    #[test]
    fn split_head_peels_nested_sequences() {
        let mut i = Interner::new();
        let x = i.intern("x");
        let y = i.intern("y");
        let s = Stmt::Seq(
            Box::new(Stmt::Seq(
                Box::new(Stmt::Assign(x, IntExpr::Const(1))),
                Box::new(Stmt::Assign(y, IntExpr::Const(2))),
            )),
            Box::new(Stmt::Notify(ProgId(0), false)),
        );
        let (hd, tl) = s.split_head();
        assert_eq!(hd, Stmt::Assign(x, IntExpr::Const(1)));
        let (hd2, tl2) = tl.split_head();
        assert_eq!(hd2, Stmt::Assign(y, IntExpr::Const(2)));
        let (hd3, tl3) = tl2.split_head();
        assert_eq!(hd3, Stmt::Notify(ProgId(0), false));
        assert_eq!(tl3, Stmt::Skip);
    }

    #[test]
    fn seq_all_folds() {
        let ss = vec![Stmt::Skip, Stmt::Notify(ProgId(0), true), Stmt::Skip];
        assert_eq!(Stmt::seq_all(ss), Stmt::Notify(ProgId(0), true));
        assert_eq!(Stmt::seq_all(Vec::new()), Stmt::Skip);
    }

    #[test]
    fn sizes_count_nodes() {
        let e = IntExpr::add(IntExpr::Const(1), IntExpr::Const(2));
        assert_eq!(e.size(), 3);
        let b = BoolExpr::Cmp(CmpOp::Lt, e.clone(), IntExpr::Const(0));
        assert_eq!(b.size(), 5);
        let s = Stmt::ite(b, Stmt::Skip, Stmt::Skip);
        assert_eq!(s.size(), 8);
    }
}
