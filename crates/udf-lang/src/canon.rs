//! Canonicalization: alpha-renaming to De Bruijn-style indices and stable
//! 128-bit structural hashing.
//!
//! Consolidation is pure static analysis: Ω over the same UDF pair always
//! produces the same program, so a plan cache can key consolidated outputs
//! on the *structure* of the inputs. Two programs that differ only in the
//! names of their local variables — `f(x){y:=x+1}` and `f(a){b:=a+1}` — must
//! key identically, while a single changed operator or constant must key
//! differently.
//!
//! The canonical form maps every variable to a De Bruijn-style index:
//! parameters take their declaration position, locals take first-occurrence
//! order during a fixed left-to-right traversal. Library-function names and
//! notification ids are *not* renamed (they are semantic, not binders), and
//! neither are constants or operators. [`canonical_text`] renders that form
//! as a readable S-expression; [`program_hash`] / [`set_key`] hash the same
//! byte stream with a 128-bit FNV-1a, so the keys are stable across
//! processes (a requirement for warm-start snapshots).

use crate::ast::{BoolExpr, IntExpr, Program, Stmt};
use crate::intern::{Interner, Symbol};
use std::collections::HashMap;

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Incremental 128-bit FNV-1a hasher over a canonical byte stream.
#[derive(Clone, Copy, Debug)]
pub struct Fnv128(u128);

impl Default for Fnv128 {
    fn default() -> Fnv128 {
        Fnv128::new()
    }
}

impl Fnv128 {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv128 {
        Fnv128(FNV_OFFSET)
    }

    /// Feeds one byte.
    #[inline]
    pub fn byte(&mut self, b: u8) {
        self.0 ^= u128::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Feeds a byte slice.
    pub fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    /// Feeds a string, length-prefixed so adjacent strings cannot alias.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    /// Feeds a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Feeds an `i64` little-endian.
    pub fn i64(&mut self, v: i64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Feeds another 128-bit hash value.
    pub fn u128(&mut self, v: u128) {
        self.bytes(&v.to_le_bytes());
    }

    /// Final hash value.
    pub fn finish(self) -> u128 {
        self.0
    }
}

/// Node tags of the canonical stream. Every tag is followed by a fixed
/// number of operands (variable-length children are length-prefixed), so the
/// stream is prefix-free and structurally unambiguous.
#[derive(Clone, Copy)]
enum Tag {
    IntConst = 1,
    Var = 2,
    Call = 3,
    Add = 4,
    Sub = 5,
    Mul = 6,
    BoolConst = 7,
    Lt = 8,
    Eq = 9,
    Le = 10,
    Not = 11,
    And = 12,
    Or = 13,
    Skip = 14,
    Assign = 15,
    Seq = 16,
    If = 17,
    While = 18,
    Notify = 19,
    Program = 20,
}

/// One canonicalization pass: the De Bruijn variable numbering plus the two
/// synchronized sinks (hash always, text only when requested).
struct Canon<'i> {
    interner: &'i Interner,
    vars: HashMap<Symbol, u64>,
    hash: Fnv128,
    text: Option<String>,
}

impl<'i> Canon<'i> {
    fn new(interner: &'i Interner, with_text: bool) -> Canon<'i> {
        Canon {
            interner,
            vars: HashMap::new(),
            hash: Fnv128::new(),
            text: with_text.then(String::new),
        }
    }

    /// De Bruijn-style index of `v`: first occurrence order (parameters are
    /// pre-seeded with their declaration positions).
    fn var_index(&mut self, v: Symbol) -> u64 {
        let next = self.vars.len() as u64;
        *self.vars.entry(v).or_insert(next)
    }

    fn tag(&mut self, t: Tag, label: &str) {
        self.hash.byte(t as u8);
        if let Some(s) = &mut self.text {
            if !s.is_empty() && !s.ends_with('(') {
                s.push(' ');
            }
            s.push('(');
            s.push_str(label);
        }
    }

    fn close(&mut self) {
        if let Some(s) = &mut self.text {
            s.push(')');
        }
    }

    fn atom(&mut self, a: impl std::fmt::Display) {
        if let Some(s) = &mut self.text {
            use std::fmt::Write as _;
            let _ = write!(s, " {a}");
        }
    }

    fn int_expr(&mut self, e: &IntExpr) {
        match e {
            IntExpr::Const(c) => {
                self.tag(Tag::IntConst, "int");
                self.hash.i64(*c);
                self.atom(c);
                self.close();
            }
            IntExpr::Var(v) => {
                let idx = self.var_index(*v);
                self.tag(Tag::Var, "v");
                self.hash.u64(idx);
                self.atom(idx);
                self.close();
            }
            IntExpr::Call(f, args) => {
                self.tag(Tag::Call, "call");
                let name = self.interner.resolve(*f).to_owned();
                self.hash.str(&name);
                self.hash.u64(args.len() as u64);
                self.atom(&name);
                for a in args {
                    self.int_expr(a);
                }
                self.close();
            }
            IntExpr::Bin(op, a, b) => {
                let (tag, label) = match op {
                    crate::ast::IntOp::Add => (Tag::Add, "+"),
                    crate::ast::IntOp::Sub => (Tag::Sub, "-"),
                    crate::ast::IntOp::Mul => (Tag::Mul, "*"),
                };
                self.tag(tag, label);
                self.int_expr(a);
                self.int_expr(b);
                self.close();
            }
        }
    }

    fn bool_expr(&mut self, e: &BoolExpr) {
        match e {
            BoolExpr::Const(b) => {
                self.tag(Tag::BoolConst, "bool");
                self.hash.byte(u8::from(*b));
                self.atom(b);
                self.close();
            }
            BoolExpr::Cmp(op, a, b) => {
                let (tag, label) = match op {
                    crate::ast::CmpOp::Lt => (Tag::Lt, "<"),
                    crate::ast::CmpOp::Eq => (Tag::Eq, "=="),
                    crate::ast::CmpOp::Le => (Tag::Le, "<="),
                };
                self.tag(tag, label);
                self.int_expr(a);
                self.int_expr(b);
                self.close();
            }
            BoolExpr::Not(a) => {
                self.tag(Tag::Not, "!");
                self.bool_expr(a);
                self.close();
            }
            BoolExpr::Bin(op, a, b) => {
                let (tag, label) = match op {
                    crate::ast::BoolOp::And => (Tag::And, "&&"),
                    crate::ast::BoolOp::Or => (Tag::Or, "||"),
                };
                self.tag(tag, label);
                self.bool_expr(a);
                self.bool_expr(b);
                self.close();
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Skip => {
                self.tag(Tag::Skip, "skip");
                self.close();
            }
            Stmt::Assign(x, e) => {
                // Right-hand side first: `x := x + 1` must number the *read*
                // of `x` before (re)binding it, matching evaluation order.
                self.tag(Tag::Assign, ":=");
                self.int_expr(e);
                let idx = self.var_index(*x);
                self.hash.u64(idx);
                self.atom(idx);
                self.close();
            }
            Stmt::Seq(a, b) => {
                self.tag(Tag::Seq, "seq");
                self.stmt(a);
                self.stmt(b);
                self.close();
            }
            Stmt::If(c, a, b) => {
                self.tag(Tag::If, "if");
                self.bool_expr(c);
                self.stmt(a);
                self.stmt(b);
                self.close();
            }
            Stmt::While(c, b) => {
                self.tag(Tag::While, "while");
                self.bool_expr(c);
                self.stmt(b);
                self.close();
            }
            Stmt::Notify(id, b) => {
                self.tag(Tag::Notify, "notify");
                self.hash.u64(u64::from(id.0));
                self.hash.byte(u8::from(*b));
                self.atom(id.0);
                self.atom(b);
                self.close();
            }
        }
    }

    fn program(&mut self, p: &Program) {
        self.tag(Tag::Program, "program");
        self.hash.u64(u64::from(p.id.0));
        self.hash.u64(p.params.len() as u64);
        self.atom(p.id.0);
        self.atom(p.params.len());
        for &param in &p.params {
            // Parameters take their declaration position; their names vanish.
            self.var_index(param);
        }
        self.stmt(&p.body);
        self.close();
    }
}

/// Stable 128-bit structural hash of one program. Alpha-equivalent programs
/// (same structure up to variable renaming) hash identically.
pub fn program_hash(p: &Program, interner: &Interner) -> u128 {
    let mut c = Canon::new(interner, false);
    c.program(p);
    c.hash.finish()
}

/// Stable 128-bit key for an *ordered* set of programs: the hash of the
/// sequence of per-program canonical streams. This is the plan-cache key
/// basis for `consolidate_many` inputs.
pub fn set_key(programs: &[Program], interner: &Interner) -> u128 {
    let mut h = Fnv128::new();
    h.u64(programs.len() as u64);
    for p in programs {
        h.u128(program_hash(p, interner));
    }
    h.finish()
}

/// Canonical S-expression rendering of a program with De Bruijn variable
/// indices — the human-readable counterpart of [`program_hash`]. Two
/// programs produce identical text iff they are alpha-equivalent (same
/// structure, function names, constants, and notification ids).
pub fn canonical_text(p: &Program, interner: &Interner) -> String {
    let mut c = Canon::new(interner, true);
    c.program(p);
    c.text.expect("text sink was requested")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn parse(src: &str, i: &mut Interner) -> Program {
        parse_program(src, i).expect("test program parses")
    }

    #[test]
    fn alpha_equivalent_programs_hash_identically() {
        let mut i = Interner::new();
        let p = parse("program f @1 (x) { y := x + 1; notify true; }", &mut i);
        let q = parse("program f @1 (a) { b := a + 1; notify true; }", &mut i);
        assert_eq!(program_hash(&p, &i), program_hash(&q, &i));
        assert_eq!(canonical_text(&p, &i), canonical_text(&q, &i));
    }

    #[test]
    fn operator_and_constant_changes_hash_differently() {
        let mut i = Interner::new();
        let p = parse("program f @1 (x) { y := x + 1; }", &mut i);
        let q = parse("program f @1 (x) { y := x - 1; }", &mut i);
        let r = parse("program f @1 (x) { y := x + 2; }", &mut i);
        assert_ne!(program_hash(&p, &i), program_hash(&q, &i));
        assert_ne!(program_hash(&p, &i), program_hash(&r, &i));
    }

    #[test]
    fn function_names_are_not_alpha_renamed() {
        let mut i = Interner::new();
        let p = parse("program f @1 (x) { y := g(x); }", &mut i);
        let q = parse("program f @1 (x) { y := h(x); }", &mut i);
        assert_ne!(program_hash(&p, &i), program_hash(&q, &i));
    }

    #[test]
    fn notify_ids_are_semantic() {
        let mut i = Interner::new();
        let p = parse("program f @1 (x) { notify @3 true; }", &mut i);
        let q = parse("program f @1 (x) { notify @4 true; }", &mut i);
        assert_ne!(program_hash(&p, &i), program_hash(&q, &i));
    }

    #[test]
    fn set_key_is_order_sensitive() {
        let mut i = Interner::new();
        let p = parse("program f @1 (x) { notify true; }", &mut i);
        let q = parse("program g @2 (x) { notify false; }", &mut i);
        let a = set_key(&[p.clone(), q.clone()], &i);
        let b = set_key(&[q, p], &i);
        assert_ne!(a, b);
    }

    #[test]
    fn assignment_reads_before_it_binds() {
        // In `y := x + 1`, the read of `x` is numbered before the bind of
        // `y`; a program reading an *unbound* fresh local in the same
        // position must not collide.
        let mut i = Interner::new();
        let p = parse("program f @1 (x) { y := x + 1; z := y; }", &mut i);
        let q = parse("program f @1 (x) { y := x + 1; z := x; }", &mut i);
        assert_ne!(program_hash(&p, &i), program_hash(&q, &i));
    }

    #[test]
    fn canonical_text_is_readable() {
        let mut i = Interner::new();
        let p = parse("program f @7 (x) { y := x + 1; }", &mut i);
        let t = canonical_text(&p, &i);
        assert_eq!(t, "(program 7 1 (:= (+ (v 0) (int 1)) 1))");
    }
}
