//! The abstract cost model `cost(·)` of the operational semantics
//! (paper Figure 2).
//!
//! Every syntactic operation carries an abstract cost; evaluating an
//! expression or statement accumulates the costs of the operations it
//! performs. External function calls are priced by the library that provides
//! them (the paper's `eval(f(c̄)) = (c, m)` returns both value and cost `m`).
//!
//! The same table is consulted both by the dynamic interpreter and by the
//! *static* expression-cost estimator used by the cross-simplification
//! judgement `Ψ ⊢ᵢ e : e'`, which only rewrites when
//! `static_cost(e') ≤ static_cost(e)`. Static cost is exact for this language
//! because every subexpression of an expression is evaluated unconditionally.

use crate::ast::{BoolExpr, IntExpr};
use crate::intern::Symbol;

/// Abstract execution cost.
pub type Cost = u64;

/// Lookup of the declared static cost of an external function.
pub trait FnCost {
    /// Cost charged for one call to `f` (excluding argument evaluation).
    fn fn_cost(&self, f: Symbol) -> Cost;
}

/// A [`FnCost`] assigning the same cost to every function; handy in tests.
#[derive(Debug, Clone, Copy)]
pub struct UniformFnCost(pub Cost);

impl FnCost for UniformFnCost {
    fn fn_cost(&self, _f: Symbol) -> Cost {
        self.0
    }
}

/// Cost table for the primitive operations of Figure 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// `cost(int)` — integer literal.
    pub int_const: Cost,
    /// `cost(var)` — variable lookup.
    pub var: Cost,
    /// `cost(bool)` — boolean literal.
    pub bool_const: Cost,
    /// `cost(¬)` — negation.
    pub not: Cost,
    /// `cost(⋈)` — boolean connective.
    pub connective: Cost,
    /// `cost(▷)` — integer comparison.
    pub cmp: Cost,
    /// `cost(⊙)` — integer arithmetic.
    pub arith: Cost,
    /// `cost(assign)` — assignment.
    pub assign: Cost,
    /// `cost(branch)` — conditional / loop test dispatch.
    pub branch: Cost,
    /// `cost(notify)` — notification broadcast.
    pub notify: Cost,
    /// `cost(fold)` — per-record fold step dispatch of a user-defined
    /// aggregation (charged once per record on top of the body's own cost).
    pub fold: Cost,
    /// `cost(merge)` — partial-state merge dispatch of a user-defined
    /// aggregation (charged once per merge on top of the body's own cost).
    pub merge: Cost,
    /// `cost(prefilter)` — per-record dispatch of a synthesized pre-filter
    /// (charged once, on top of the filter condition's own expression cost,
    /// when a consolidated plan runs a sound pre-filter ahead of the merged
    /// program).
    pub prefilter: Cost,
}

impl Default for CostModel {
    /// Unit costs for every primitive. External calls are priced by the
    /// library and are typically much more expensive.
    fn default() -> CostModel {
        CostModel {
            int_const: 1,
            var: 1,
            bool_const: 1,
            not: 1,
            connective: 1,
            cmp: 1,
            arith: 1,
            assign: 1,
            branch: 1,
            notify: 1,
            fold: 1,
            merge: 1,
            prefilter: 1,
        }
    }
}

impl CostModel {
    /// The cost table as a fixed-order array, one entry per primitive.
    ///
    /// This is the fingerprint hook consumed by plan caching and by the
    /// register-bytecode lowering: any code that needs to hash or serialize
    /// the model iterates this array instead of naming the fields, so adding
    /// a primitive updates every consumer in one place. Order is stable:
    /// `int_const, var, bool_const, not, connective, cmp, arith, assign,
    /// branch, notify, fold, merge, prefilter`.
    pub fn components(&self) -> [Cost; 13] {
        [
            self.int_const,
            self.var,
            self.bool_const,
            self.not,
            self.connective,
            self.cmp,
            self.arith,
            self.assign,
            self.branch,
            self.notify,
            self.fold,
            self.merge,
            self.prefilter,
        ]
    }

    /// Static cost of evaluating an integer expression. Exact: the language
    /// evaluates every subexpression unconditionally.
    pub fn int_expr_cost(&self, e: &IntExpr, fns: &dyn FnCost) -> Cost {
        match e {
            IntExpr::Const(_) => self.int_const,
            IntExpr::Var(_) => self.var,
            IntExpr::Call(f, args) => {
                let args_cost: Cost = args.iter().map(|a| self.int_expr_cost(a, fns)).sum();
                args_cost + fns.fn_cost(*f)
            }
            IntExpr::Bin(_, a, b) => {
                self.arith + self.int_expr_cost(a, fns) + self.int_expr_cost(b, fns)
            }
        }
    }

    /// Static cost of evaluating a boolean expression.
    pub fn bool_expr_cost(&self, e: &BoolExpr, fns: &dyn FnCost) -> Cost {
        match e {
            BoolExpr::Const(_) => self.bool_const,
            BoolExpr::Cmp(_, a, b) => {
                self.cmp + self.int_expr_cost(a, fns) + self.int_expr_cost(b, fns)
            }
            BoolExpr::Not(a) => self.not + self.bool_expr_cost(a, fns),
            BoolExpr::Bin(_, a, b) => {
                self.connective + self.bool_expr_cost(a, fns) + self.bool_expr_cost(b, fns)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use crate::intern::Interner;

    #[test]
    fn int_costs_add_up() {
        let mut i = Interner::new();
        let f = i.intern("f");
        let x = i.intern("x");
        let cm = CostModel::default();
        let fns = UniformFnCost(10);
        // f(x + 1): call(10) + arith(1) + var(1) + const(1) = 13
        let e = IntExpr::Call(f, vec![IntExpr::add(IntExpr::Var(x), IntExpr::Const(1))]);
        assert_eq!(cm.int_expr_cost(&e, &fns), 13);
    }

    #[test]
    fn bool_costs_add_up() {
        let mut i = Interner::new();
        let x = i.intern("x");
        let cm = CostModel::default();
        let fns = UniformFnCost(10);
        // !(x < 0 && x < 1): not(1) + connective(1) + 2*(cmp(1)+var(1)+const(1)) = 8
        let c0 = BoolExpr::Cmp(CmpOp::Lt, IntExpr::Var(x), IntExpr::Const(0));
        let c1 = BoolExpr::Cmp(CmpOp::Lt, IntExpr::Var(x), IntExpr::Const(1));
        let e = BoolExpr::not(BoolExpr::and(c0, c1));
        assert_eq!(cm.bool_expr_cost(&e, &fns), 8);
    }

    #[test]
    fn default_is_all_units() {
        let cm = CostModel::default();
        assert_eq!(cm.var, 1);
        assert_eq!(cm.branch, 1);
    }
}
