//! Static cost bounds for programs.
//!
//! The dynamic cost of a run (Figure 2) depends on the input; this module
//! computes *static* bounds: exact costs for loop-free code, and best/worst
//! bounds for loops given an iteration-count interval. The consolidation
//! reports use these to estimate savings without executing anything.

use crate::ast::{BoolExpr, Stmt};
use crate::cost::{Cost, CostModel, FnCost};

/// A `[min, max]` interval of abstract costs. `max` is `None` when no static
/// bound exists (a loop without a supplied iteration bound).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CostBounds {
    /// Lower bound (every run costs at least this much).
    pub min: Cost,
    /// Upper bound, if one exists.
    pub max: Option<Cost>,
}

impl CostBounds {
    fn exact(c: Cost) -> CostBounds {
        CostBounds {
            min: c,
            max: Some(c),
        }
    }

    fn add(self, o: CostBounds) -> CostBounds {
        CostBounds {
            min: self.min + o.min,
            max: match (self.max, o.max) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            },
        }
    }

    fn join(self, o: CostBounds) -> CostBounds {
        CostBounds {
            min: self.min.min(o.min),
            max: match (self.max, o.max) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }
}

/// Options for the bound computation.
#[derive(Clone, Copy, Debug, Default)]
pub struct BoundsOptions {
    /// Assumed maximum trip count for loops whose bound is not syntactically
    /// evident; `None` leaves such loops unbounded above.
    pub loop_iterations: Option<u64>,
}

fn bool_cost(e: &BoolExpr, cm: &CostModel, fns: &dyn FnCost) -> Cost {
    cm.bool_expr_cost(e, fns)
}

/// Computes static cost bounds of `s`.
pub fn stmt_bounds(
    s: &Stmt,
    cm: &CostModel,
    fns: &dyn FnCost,
    opts: &BoundsOptions,
) -> CostBounds {
    match s {
        Stmt::Skip => CostBounds::exact(0),
        Stmt::Assign(_, e) => CostBounds::exact(cm.int_expr_cost(e, fns) + cm.assign),
        Stmt::Notify(..) => CostBounds::exact(cm.notify),
        Stmt::Seq(a, b) => {
            stmt_bounds(a, cm, fns, opts).add(stmt_bounds(b, cm, fns, opts))
        }
        Stmt::If(c, a, b) => {
            let test = CostBounds::exact(bool_cost(c, cm, fns) + cm.branch);
            let branches = stmt_bounds(a, cm, fns, opts).join(stmt_bounds(b, cm, fns, opts));
            test.add(branches)
        }
        Stmt::While(c, body) => {
            let guard = bool_cost(c, cm, fns) + cm.branch;
            let body_bounds = stmt_bounds(body, cm, fns, opts);
            // Zero iterations: one guard evaluation.
            let min = guard;
            let max = opts.loop_iterations.and_then(|n| {
                body_bounds
                    .max
                    .map(|bm| guard * (n + 1) + bm * n)
            });
            CostBounds { min, max }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UniformFnCost;
    use crate::intern::Interner;
    use crate::interp::Interp;
    use crate::library::FnLibrary;
    use crate::parse::parse_program;

    fn bounds(src: &str, iters: Option<u64>) -> (CostBounds, Interner, crate::ast::Program) {
        let mut i = Interner::new();
        let p = parse_program(src, &mut i).unwrap();
        let b = stmt_bounds(
            &p.body,
            &CostModel::default(),
            &UniformFnCost(10),
            &BoundsOptions {
                loop_iterations: iters,
            },
        );
        (b, i, p)
    }

    #[test]
    fn straight_line_is_exact() {
        let (b, i, p) = bounds("program p @0 (a) { x := a + 1; notify true; }", None);
        assert_eq!(b.max, Some(b.min));
        // Cross-check against the interpreter.
        let lib = FnLibrary::new();
        let interp = Interp::new(CostModel::default(), &lib);
        let r = interp.run(&p, &[5], &i).unwrap();
        assert_eq!(r.cost, b.min);
    }

    #[test]
    fn branches_produce_intervals() {
        let (b, i, p) = bounds(
            "program p @0 (a) { if (a > 0) { x := f(a); } else { skip; } notify true; }",
            None,
        );
        assert!(b.min < b.max.unwrap());
        let mut i2 = i.clone();
        let f = i2.intern("f");
        let mut lib = FnLibrary::new();
        lib.register(f, "f", 1, 10, |a| a[0]);
        let interp = Interp::new(CostModel::default(), &lib);
        for a in [-3i64, 3] {
            let r = interp.run(&p, &[a], &i2).unwrap();
            assert!(r.cost >= b.min && r.cost <= b.max.unwrap(), "{a}: {}", r.cost);
        }
    }

    #[test]
    fn unbounded_loops_have_no_max() {
        let (b, _, _) = bounds(
            "program p @0 (a) { k := a; while (k > 0) { k := k - 1; } }",
            None,
        );
        assert_eq!(b.max, None);
        assert!(b.min > 0, "at least one guard evaluation");
    }

    #[test]
    fn bounded_loops_bracket_the_interpreter() {
        let (b, i, p) = bounds(
            "program p @0 (a) { k := 5; while (k > 0) { x := f(k); k := k - 1; } }",
            Some(5),
        );
        let mut i2 = i.clone();
        let f = i2.intern("f");
        let mut lib = FnLibrary::new();
        lib.register(f, "f", 1, 10, |a| a[0]);
        let interp = Interp::new(CostModel::default(), &lib);
        let r = interp.run(&p, &[0], &i2).unwrap();
        assert!(r.cost >= b.min);
        assert!(r.cost <= b.max.unwrap(), "{} vs {:?}", r.cost, b);
    }
}
