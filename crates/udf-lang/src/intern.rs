//! String interning for variable, parameter, and function names.
//!
//! All identifiers in the AST are [`Symbol`]s — cheap `Copy` indices into an
//! [`Interner`]. Consolidation merges programs from different sources, so the
//! interner also supports generating *fresh* symbols that are guaranteed not
//! to collide with any previously interned name.

use std::collections::HashMap;
use std::fmt;

/// An interned identifier. Cheap to copy and compare; resolve it back to text
/// with [`Interner::resolve`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Raw index of this symbol inside its interner.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a symbol from a raw index previously obtained through
    /// [`Symbol::index`]. The caller must ensure the index came from the same
    /// interner the symbol will be resolved against.
    #[inline]
    pub fn from_index(index: usize) -> Symbol {
        Symbol(u32::try_from(index).expect("symbol index overflow"))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

/// A string interner mapping identifier text to [`Symbol`]s and back.
///
/// # Example
///
/// ```
/// use udf_lang::intern::Interner;
///
/// let mut interner = Interner::new();
/// let a = interner.intern("x");
/// let b = interner.intern("x");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a), "x");
/// ```
#[derive(Debug, Default, Clone)]
pub struct Interner {
    names: Vec<Box<str>>,
    map: HashMap<Box<str>, Symbol>,
    fresh_counter: u64,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `name`, returning its symbol. Interning the same text twice
    /// returns the same symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.names.len()).expect("too many symbols"));
        self.names.push(Box::from(name));
        self.map.insert(Box::from(name), sym);
        sym
    }

    /// Resolves a symbol back to its text.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was created by a different interner and is out of
    /// range for this one.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Looks up a name without interning it.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// Generates a fresh symbol whose name starts with `prefix` and is
    /// guaranteed to differ from every symbol interned so far.
    ///
    /// Fresh names use the reserved `%` character, which the parser rejects in
    /// identifiers, so fresh symbols can never collide with source names.
    pub fn fresh(&mut self, prefix: &str) -> Symbol {
        loop {
            let candidate = format!("{prefix}%{}", self.fresh_counter);
            self.fresh_counter += 1;
            if !self.map.contains_key(candidate.as_str()) {
                return self.intern(&candidate);
            }
        }
    }

    /// Number of distinct symbols interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no symbol has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("foo");
        let c = i.intern("bar");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.resolve(a), "foo");
        assert_eq!(i.resolve(c), "bar");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn fresh_symbols_are_distinct() {
        let mut i = Interner::new();
        let x = i.intern("x");
        let f1 = i.fresh("x");
        let f2 = i.fresh("x");
        assert_ne!(f1, x);
        assert_ne!(f1, f2);
        assert!(i.resolve(f1).starts_with("x%"));
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("missing"), None);
        let s = i.intern("present");
        assert_eq!(i.get("present"), Some(s));
    }

    #[test]
    fn from_index_round_trips() {
        let mut i = Interner::new();
        let s = i.intern("v");
        assert_eq!(Symbol::from_index(s.index()), s);
    }
}
