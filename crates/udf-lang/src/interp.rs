//! Big-step, cost-annotated interpreter (paper Figure 2).
//!
//! Judgements `E, e ⇓ᵏ c` and `E, S ⇓ᵏ E', N` are realized by
//! [`Interp::int_expr`], [`Interp::bool_expr`], and [`Interp::stmt_in`]; the
//! notification environment `N` collects every `notifyᵢ b` executed. The
//! disjoint-union `N₁ ⊎ N₂` of Figure 2 is enforced: broadcasting twice for
//! the same program id is a runtime error.
//!
//! The interpreter is the semantic ground truth for the whole repository:
//! the soundness property of consolidation (Definition 1) is tested by
//! running original and consolidated programs here and comparing
//! notifications, final environments, and costs.

use crate::ast::{BoolExpr, IntExpr, ProgId, Program, Stmt};
use crate::cost::{Cost, CostModel};
use crate::intern::{Interner, Symbol};
use crate::library::{LibError, Library};
use std::collections::BTreeMap;
use std::fmt;

/// Default step budget for one program run.
pub const DEFAULT_FUEL: u64 = 10_000_000;

/// Variable environment `E`.
pub type Env = BTreeMap<Symbol, i64>;

/// Notification environment `N`: a map from program ids to broadcast booleans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NotificationEnv {
    map: BTreeMap<ProgId, bool>,
}

impl NotificationEnv {
    /// Creates an empty notification environment.
    pub fn new() -> NotificationEnv {
        NotificationEnv::default()
    }

    /// Records `notifyᵢ b`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::DuplicateNotify`] if id `i` already broadcast —
    /// Figure 2's `⊎` is a *disjoint* union.
    pub fn notify(&mut self, id: ProgId, b: bool) -> Result<(), EvalError> {
        if self.map.insert(id, b).is_some() {
            return Err(EvalError::DuplicateNotify(id));
        }
        Ok(())
    }

    /// Broadcast value of program `id`, if any.
    pub fn get(&self, id: ProgId) -> Option<bool> {
        self.map.get(&id).copied()
    }

    /// Disjoint union `self ⊎ other`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::DuplicateNotify`] when the two environments share
    /// a program id.
    pub fn disjoint_union(mut self, other: NotificationEnv) -> Result<NotificationEnv, EvalError> {
        for (id, b) in other.map {
            self.notify(id, b)?;
        }
        Ok(self)
    }

    /// Iterates over `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ProgId, bool)> + '_ {
        self.map.iter().map(|(&id, &b)| (id, b))
    }

    /// Number of broadcasts recorded.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing was broadcast.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Errors raised during evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable was read before being assigned.
    UnboundVar(String),
    /// `notifyᵢ` executed twice for the same `i`.
    DuplicateNotify(ProgId),
    /// External call failed.
    Lib(LibError),
    /// The step budget was exhausted (guards divergent loops).
    OutOfFuel,
    /// The program was invoked with the wrong number of arguments.
    ArityMismatch {
        /// Declared parameter count.
        expected: usize,
        /// Supplied argument count.
        got: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVar(v) => write!(f, "unbound variable `{v}`"),
            EvalError::DuplicateNotify(id) => {
                write!(f, "duplicate notification for program {id}")
            }
            EvalError::Lib(e) => write!(f, "library error: {e}"),
            EvalError::OutOfFuel => write!(f, "evaluation exceeded its step budget"),
            EvalError::ArityMismatch { expected, got } => {
                write!(f, "program expects {expected} argument(s), got {got}")
            }
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Lib(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LibError> for EvalError {
    fn from(e: LibError) -> EvalError {
        EvalError::Lib(e)
    }
}

/// Result of running a program: final environment, notifications, and total
/// abstract cost `k` of `E, S ⇓ᵏ E', N`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Final variable environment `E'`.
    pub env: Env,
    /// Notification environment `N`.
    pub notifications: NotificationEnv,
    /// Total abstract cost.
    pub cost: Cost,
}

/// The interpreter, parameterized by a [`CostModel`] and a [`Library`].
pub struct Interp<'l, L: Library + ?Sized> {
    cost_model: CostModel,
    library: &'l L,
    fuel: u64,
}

impl<'l, L: Library + ?Sized> fmt::Debug for Interp<'l, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interp")
            .field("cost_model", &self.cost_model)
            .field("fuel", &self.fuel)
            .finish_non_exhaustive()
    }
}

struct EvalState<'a, L: Library + ?Sized> {
    cm: &'a CostModel,
    lib: &'a L,
    interner: &'a Interner,
    fuel: u64,
    cost: Cost,
}

impl<'a, L: Library + ?Sized> EvalState<'a, L> {
    #[inline]
    fn tick(&mut self) -> Result<(), EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn int_expr(&mut self, env: &Env, e: &IntExpr) -> Result<i64, EvalError> {
        self.tick()?;
        match e {
            IntExpr::Const(c) => {
                self.cost += self.cm.int_const;
                Ok(*c)
            }
            IntExpr::Var(v) => {
                self.cost += self.cm.var;
                env.get(v)
                    .copied()
                    .ok_or_else(|| EvalError::UnboundVar(self.interner.resolve(*v).to_owned()))
            }
            IntExpr::Call(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.int_expr(env, a)?);
                }
                self.cost += self.lib.cost(*f);
                Ok(self.lib.call(*f, &vals)?)
            }
            IntExpr::Bin(op, a, b) => {
                let va = self.int_expr(env, a)?;
                let vb = self.int_expr(env, b)?;
                self.cost += self.cm.arith;
                Ok(op.apply(va, vb))
            }
        }
    }

    fn bool_expr(&mut self, env: &Env, e: &BoolExpr) -> Result<bool, EvalError> {
        self.tick()?;
        match e {
            BoolExpr::Const(b) => {
                self.cost += self.cm.bool_const;
                Ok(*b)
            }
            BoolExpr::Cmp(op, a, b) => {
                let va = self.int_expr(env, a)?;
                let vb = self.int_expr(env, b)?;
                self.cost += self.cm.cmp;
                Ok(op.apply(va, vb))
            }
            BoolExpr::Not(a) => {
                let v = self.bool_expr(env, a)?;
                self.cost += self.cm.not;
                Ok(!v)
            }
            // Figure 2 gives *strict* connectives: both operands are
            // evaluated and both costs are paid.
            BoolExpr::Bin(op, a, b) => {
                let va = self.bool_expr(env, a)?;
                let vb = self.bool_expr(env, b)?;
                self.cost += self.cm.connective;
                Ok(op.apply(va, vb))
            }
        }
    }

    fn stmt(
        &mut self,
        env: &mut Env,
        notifications: &mut NotificationEnv,
        s: &Stmt,
    ) -> Result<(), EvalError> {
        self.tick()?;
        match s {
            Stmt::Skip => Ok(()),
            Stmt::Assign(x, e) => {
                let v = self.int_expr(env, e)?;
                self.cost += self.cm.assign;
                env.insert(*x, v);
                Ok(())
            }
            Stmt::Seq(a, b) => {
                self.stmt(env, notifications, a)?;
                self.stmt(env, notifications, b)
            }
            Stmt::If(c, then_s, else_s) => {
                let v = self.bool_expr(env, c)?;
                self.cost += self.cm.branch;
                if v {
                    self.stmt(env, notifications, then_s)
                } else {
                    self.stmt(env, notifications, else_s)
                }
            }
            Stmt::While(c, body) => loop {
                let v = self.bool_expr(env, c)?;
                self.cost += self.cm.branch;
                if !v {
                    return Ok(());
                }
                self.stmt(env, notifications, body)?;
                self.tick()?;
            },
            Stmt::Notify(id, b) => {
                self.cost += self.cm.notify;
                notifications.notify(*id, *b)
            }
        }
    }
}

impl<'l, L: Library + ?Sized> Interp<'l, L> {
    /// Creates an interpreter with the [`DEFAULT_FUEL`] step budget.
    pub fn new(cost_model: CostModel, library: &'l L) -> Interp<'l, L> {
        Interp {
            cost_model,
            library,
            fuel: DEFAULT_FUEL,
        }
    }

    /// Replaces the step budget used to guard divergent loops.
    pub fn with_fuel(mut self, fuel: u64) -> Interp<'l, L> {
        self.fuel = fuel;
        self
    }

    /// Runs a whole program on the argument vector `args` (bound positionally
    /// to [`Program::params`]), starting from an otherwise empty environment.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] for arity mismatches, unbound variables,
    /// duplicate notifications, library failures, or fuel exhaustion.
    pub fn run(
        &self,
        program: &Program,
        args: &[i64],
        interner: &Interner,
    ) -> Result<RunResult, EvalError> {
        if args.len() != program.params.len() {
            return Err(EvalError::ArityMismatch {
                expected: program.params.len(),
                got: args.len(),
            });
        }
        let mut env = Env::new();
        for (&p, &v) in program.params.iter().zip(args) {
            env.insert(p, v);
        }
        self.stmt_in(&mut env, &program.body, interner)
    }

    /// Runs a statement in a caller-supplied environment, returning the final
    /// environment, notifications, and cost.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Interp::run`].
    pub fn stmt_in(
        &self,
        env: &mut Env,
        s: &Stmt,
        interner: &Interner,
    ) -> Result<RunResult, EvalError> {
        let mut st = EvalState {
            cm: &self.cost_model,
            lib: self.library,
            interner,
            fuel: self.fuel,
            cost: 0,
        };
        let mut notifications = NotificationEnv::new();
        st.stmt(env, &mut notifications, s)?;
        Ok(RunResult {
            env: env.clone(),
            notifications,
            cost: st.cost,
        })
    }

    /// Evaluates an integer expression under `env`, returning `(value, cost)`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Interp::run`].
    pub fn int_expr(
        &self,
        env: &Env,
        e: &IntExpr,
        interner: &Interner,
    ) -> Result<(i64, Cost), EvalError> {
        let mut st = EvalState {
            cm: &self.cost_model,
            lib: self.library,
            interner,
            fuel: self.fuel,
            cost: 0,
        };
        let v = st.int_expr(env, e)?;
        Ok((v, st.cost))
    }

    /// Evaluates a boolean expression under `env`, returning `(value, cost)`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Interp::run`].
    pub fn bool_expr(
        &self,
        env: &Env,
        e: &BoolExpr,
        interner: &Interner,
    ) -> Result<(bool, Cost), EvalError> {
        let mut st = EvalState {
            cm: &self.cost_model,
            lib: self.library,
            interner,
            fuel: self.fuel,
            cost: 0,
        };
        let v = st.bool_expr(env, e)?;
        Ok((v, st.cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, IntExpr, ProgId, Stmt};
    use crate::library::FnLibrary;

    fn setup() -> (Interner, FnLibrary) {
        let mut i = Interner::new();
        let f = i.intern("f");
        let mut lib = FnLibrary::new();
        lib.register(f, "f", 1, 10, |a| a[0] * 2);
        (i, lib)
    }

    #[test]
    fn assignment_and_cost() {
        let (mut i, lib) = setup();
        let x = i.intern("x");
        let s = Stmt::Assign(x, IntExpr::add(IntExpr::Const(1), IntExpr::Const(2)));
        let interp = Interp::new(CostModel::default(), &lib);
        let mut env = Env::new();
        let r = interp.stmt_in(&mut env, &s, &i).unwrap();
        assert_eq!(r.env.get(&x), Some(&3));
        // const + const + arith + assign = 4
        assert_eq!(r.cost, 4);
    }

    #[test]
    fn call_uses_library_value_and_cost() {
        let (mut i, lib) = setup();
        let f = i.intern("f");
        let e = IntExpr::Call(f, vec![IntExpr::Const(21)]);
        let interp = Interp::new(CostModel::default(), &lib);
        let (v, k) = interp.int_expr(&Env::new(), &e, &i).unwrap();
        assert_eq!(v, 42);
        assert_eq!(k, 11); // const(1) + call(10)
    }

    #[test]
    fn while_loop_terminates_and_counts_branches() {
        let (mut i, lib) = setup();
        let x = i.intern("x");
        // while (x < 3) { x := x + 1 }
        let body = Stmt::Assign(x, IntExpr::add(IntExpr::Var(x), IntExpr::Const(1)));
        let s = Stmt::while_do(
            BoolExpr::Cmp(CmpOp::Lt, IntExpr::Var(x), IntExpr::Const(3)),
            body,
        );
        let interp = Interp::new(CostModel::default(), &lib);
        let mut env = Env::new();
        env.insert(x, 0);
        let r = interp.stmt_in(&mut env, &s, &i).unwrap();
        assert_eq!(r.env.get(&x), Some(&3));
        // 4 guard evaluations: 4*(var+const+cmp+branch) = 16; 3 iterations of
        // body: 3*(var+const+arith+assign) = 12 → 28
        assert_eq!(r.cost, 28);
    }

    #[test]
    fn divergent_loop_runs_out_of_fuel() {
        let (i, lib) = setup();
        let s = Stmt::while_do(BoolExpr::Const(true), Stmt::Skip);
        let interp = Interp::new(CostModel::default(), &lib).with_fuel(1000);
        let mut env = Env::new();
        assert_eq!(
            interp.stmt_in(&mut env, &s, &i).unwrap_err(),
            EvalError::OutOfFuel
        );
    }

    #[test]
    fn duplicate_notification_is_an_error() {
        let (i, lib) = setup();
        let s = Stmt::Notify(ProgId(0), true).then(Stmt::Notify(ProgId(0), false));
        let interp = Interp::new(CostModel::default(), &lib);
        let mut env = Env::new();
        assert_eq!(
            interp.stmt_in(&mut env, &s, &i).unwrap_err(),
            EvalError::DuplicateNotify(ProgId(0))
        );
    }

    #[test]
    fn distinct_notifications_accumulate() {
        let (i, lib) = setup();
        let s = Stmt::Notify(ProgId(0), true).then(Stmt::Notify(ProgId(1), false));
        let interp = Interp::new(CostModel::default(), &lib);
        let mut env = Env::new();
        let r = interp.stmt_in(&mut env, &s, &i).unwrap();
        assert_eq!(r.notifications.get(ProgId(0)), Some(true));
        assert_eq!(r.notifications.get(ProgId(1)), Some(false));
        assert_eq!(r.notifications.len(), 2);
    }

    #[test]
    fn unbound_variable_is_reported_by_name() {
        let (mut i, lib) = setup();
        let y = i.intern("mystery");
        let interp = Interp::new(CostModel::default(), &lib);
        let err = interp.int_expr(&Env::new(), &IntExpr::Var(y), &i).unwrap_err();
        assert_eq!(err, EvalError::UnboundVar("mystery".to_owned()));
    }

    #[test]
    fn run_binds_parameters_positionally() {
        let (mut i, lib) = setup();
        let a = i.intern("a");
        let b = i.intern("b");
        let x = i.intern("x");
        let p = Program::new(
            ProgId(7),
            vec![a, b],
            Stmt::Assign(x, IntExpr::sub(IntExpr::Var(a), IntExpr::Var(b))),
        );
        let interp = Interp::new(CostModel::default(), &lib);
        let r = interp.run(&p, &[10, 4], &i).unwrap();
        assert_eq!(r.env.get(&x), Some(&6));
        assert!(matches!(
            interp.run(&p, &[1], &i),
            Err(EvalError::ArityMismatch { expected: 2, got: 1 })
        ));
    }

    #[test]
    fn strict_connectives_pay_both_sides() {
        let (i, lib) = setup();
        let e = BoolExpr::and(BoolExpr::Const(false), BoolExpr::Const(true));
        let interp = Interp::new(CostModel::default(), &lib);
        let (v, k) = interp.bool_expr(&Env::new(), &e, &i).unwrap();
        assert!(!v);
        assert_eq!(k, 3); // both bools + connective
    }

    #[test]
    fn disjoint_union_detects_collisions() {
        let mut n1 = NotificationEnv::new();
        n1.notify(ProgId(0), true).unwrap();
        let mut n2 = NotificationEnv::new();
        n2.notify(ProgId(0), false).unwrap();
        assert!(n1.clone().disjoint_union(n2).is_err());
        let mut n3 = NotificationEnv::new();
        n3.notify(ProgId(1), false).unwrap();
        let merged = n1.disjoint_union(n3).unwrap();
        assert_eq!(merged.len(), 2);
    }
}
