//! The imperative UDF language from *Consolidation of Queries with
//! User-Defined Functions* (PLDI 2014), Figure 1, together with its
//! cost-annotated big-step operational semantics (Figure 2).
//!
//! A [`Program`] is `λα₁…αₖ. S`: a parameter list plus a statement. Statements
//! are `skip`, integer assignments, sequencing, conditionals (`S₁ ⊕ᵉ S₂`),
//! `while` loops, and `notifyᵢ b` broadcasts. Integer expressions include
//! constants, parameters, local variables, `+ - *`, and calls to externally
//! provided pure library functions; boolean expressions are comparisons and
//! connectives over them.
//!
//! The crate provides:
//!
//! * [`ast`] — the abstract syntax, built over interned [`Symbol`]s,
//! * [`parse`] — a small concrete syntax, so UDFs can be written as text,
//! * [`pretty`] — a pretty-printer round-tripping with the parser,
//! * [`cost`] — the abstract cost model `cost(·)` of Figure 2,
//! * [`costs`] — static cost bounds derived from it,
//! * [`interp`] — the big-step interpreter producing `E, S ⇓ᵏ E', N`,
//! * [`library`] — the interface for external (uninterpreted) functions,
//! * [`analysis`] — free/assigned-variable analyses and renaming used by the
//!   consolidation engine,
//! * [`canon`] — De Bruijn-style alpha-canonicalization and stable structural
//!   hashing, the key basis for the plan cache.
//!
//! # Example
//!
//! ```
//! use udf_lang::{parse::parse_program, interp::Interp, library::FnLibrary,
//!                cost::CostModel, intern::Interner};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut interner = Interner::new();
//! let prog = parse_program(
//!     "program p1(price) { if (price < 200) { notify true; } else { notify false; } }",
//!     &mut interner,
//! )?;
//! let lib = FnLibrary::new();
//! let interp = Interp::new(CostModel::default(), &lib);
//! let run = interp.run(&prog, &[150], &interner)?;
//! assert_eq!(run.notifications.get(prog.id), Some(true));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod analysis;
pub mod ast;
pub mod canon;
pub mod cost;
pub mod costs;
pub mod intern;
pub mod interp;
pub mod library;
pub mod parse;
pub mod pretty;

pub use agg::{agg_hash, agg_set_key, parse_agg, parse_aggs, AggDef, AggError, StateSlot};
pub use ast::{BoolExpr, BoolOp, CmpOp, IntExpr, IntOp, ProgId, Program, Stmt};
pub use cost::{Cost, CostModel};
pub use intern::{Interner, Symbol};
pub use interp::{EvalError, Interp, NotificationEnv, RunResult};
pub use library::{FnLibrary, Library};
