//! External function libraries.
//!
//! The language has no function definitions: every `f(e₁,…,eₖ)` call targets
//! an externally provided *pure, deterministic* function (paper §3). The
//! operational semantics consults `eval(f(c̄)) = (c, m)` for both the return
//! value and the call cost `m`; a [`Library`] packages both.
//!
//! Purity matters: the consolidation calculus models calls as uninterpreted
//! functions, so two calls with provably equal arguments may be collapsed
//! into one. A library implementation must therefore be deterministic and
//! side-effect free.

use crate::cost::{Cost, FnCost};
use crate::intern::Symbol;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Default cost charged for calls to functions without a declared cost.
pub const DEFAULT_CALL_COST: Cost = 10;

/// Errors raised by library calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LibError {
    /// The function name is not provided by this library.
    UnknownFunction(String),
    /// The function was called with the wrong number of arguments.
    ArityMismatch {
        /// Function name.
        name: String,
        /// Declared arity.
        expected: usize,
        /// Number of arguments supplied.
        got: usize,
    },
    /// The call failed for a reason expected to clear on its own (an I/O
    /// hiccup, a momentarily unavailable backend). Engines may retry the
    /// record before quarantining it; every other [`LibError`] is permanent
    /// and retrying would only repeat the failure.
    Transient(String),
}

impl fmt::Display for LibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibError::UnknownFunction(name) => write!(f, "unknown external function `{name}`"),
            LibError::ArityMismatch {
                name,
                expected,
                got,
            } => write!(
                f,
                "external function `{name}` expects {expected} argument(s), got {got}"
            ),
            LibError::Transient(detail) => write!(f, "transient library failure: {detail}"),
        }
    }
}

impl std::error::Error for LibError {}

/// Interface the interpreter uses to evaluate external calls.
pub trait Library {
    /// Evaluates `f(args)`. Must be pure and deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`LibError`] when `f` is unknown or called at the wrong arity.
    fn call(&self, f: Symbol, args: &[i64]) -> Result<i64, LibError>;

    /// Static cost of one call to `f` (excluding argument evaluation).
    fn cost(&self, f: Symbol) -> Cost;
}

impl<L: Library + ?Sized> FnCost for L {
    fn fn_cost(&self, f: Symbol) -> Cost {
        self.cost(f)
    }
}

type FnImpl = Arc<dyn Fn(&[i64]) -> i64 + Send + Sync>;

struct Entry {
    name: String,
    arity: usize,
    cost: Cost,
    imp: FnImpl,
}

/// A table-backed [`Library`].
///
/// # Example
///
/// ```
/// use udf_lang::library::{FnLibrary, Library};
/// use udf_lang::intern::Interner;
///
/// let mut interner = Interner::new();
/// let sq = interner.intern("square");
/// let mut lib = FnLibrary::new();
/// lib.register(sq, "square", 1, 20, |args| args[0] * args[0]);
/// assert_eq!(lib.call(sq, &[7]), Ok(49));
/// assert_eq!(lib.cost(sq), 20);
/// ```
#[derive(Default, Clone)]
pub struct FnLibrary {
    entries: HashMap<Symbol, Arc<Entry>>,
}

impl fmt::Debug for FnLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.entries.values().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        f.debug_struct("FnLibrary").field("functions", &names).finish()
    }
}

impl FnLibrary {
    /// Creates an empty library.
    pub fn new() -> FnLibrary {
        FnLibrary::default()
    }

    /// Registers (or replaces) function `sym` with the given display `name`,
    /// `arity`, per-call `cost`, and implementation.
    pub fn register<F>(&mut self, sym: Symbol, name: &str, arity: usize, cost: Cost, imp: F)
    where
        F: Fn(&[i64]) -> i64 + Send + Sync + 'static,
    {
        self.entries.insert(
            sym,
            Arc::new(Entry {
                name: name.to_owned(),
                arity,
                cost,
                imp: Arc::new(imp),
            }),
        );
    }

    /// Declared arity of `f`, if registered.
    pub fn arity(&self, f: Symbol) -> Option<usize> {
        self.entries.get(&f).map(|e| e.arity)
    }

    /// Whether `f` is registered.
    pub fn contains(&self, f: Symbol) -> bool {
        self.entries.contains_key(&f)
    }
}

impl Library for FnLibrary {
    fn call(&self, f: Symbol, args: &[i64]) -> Result<i64, LibError> {
        let entry = self
            .entries
            .get(&f)
            .ok_or_else(|| LibError::UnknownFunction(format!("#{}", f.index())))?;
        if args.len() != entry.arity {
            return Err(LibError::ArityMismatch {
                name: entry.name.clone(),
                expected: entry.arity,
                got: args.len(),
            });
        }
        Ok((entry.imp)(args))
    }

    fn cost(&self, f: Symbol) -> Cost {
        self.entries.get(&f).map_or(DEFAULT_CALL_COST, |e| e.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::Interner;

    #[test]
    fn register_and_call() {
        let mut i = Interner::new();
        let add3 = i.intern("add3");
        let mut lib = FnLibrary::new();
        lib.register(add3, "add3", 3, 7, |a| a[0] + a[1] + a[2]);
        assert_eq!(lib.call(add3, &[1, 2, 3]), Ok(6));
        assert_eq!(lib.cost(add3), 7);
        assert_eq!(lib.arity(add3), Some(3));
        assert!(lib.contains(add3));
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let mut i = Interner::new();
        let f = i.intern("f");
        let mut lib = FnLibrary::new();
        lib.register(f, "f", 1, 1, |a| a[0]);
        let err = lib.call(f, &[1, 2]).unwrap_err();
        assert!(matches!(err, LibError::ArityMismatch { expected: 1, got: 2, .. }));
    }

    #[test]
    fn unknown_function_is_reported() {
        let mut i = Interner::new();
        let g = i.intern("g");
        let lib = FnLibrary::new();
        assert!(matches!(lib.call(g, &[]), Err(LibError::UnknownFunction(_))));
        // Unknown functions still have a (default) cost so static estimation
        // never fails.
        assert_eq!(lib.cost(g), DEFAULT_CALL_COST);
    }
}
