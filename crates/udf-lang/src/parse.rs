//! Concrete syntax for the UDF language.
//!
//! The grammar mirrors the paper's examples, written C-style:
//!
//! ```text
//! program f1 @0 (price, city) {
//!     x := getDistance(city, 94305);
//!     if (x < 10 && price < 200) { notify true; } else { notify false; }
//!     while (i > 0) { i := i - 1; }
//! }
//! ```
//!
//! * `@0` sets the program id (defaults to `@0`); `notify` may override the
//!   target id with `notify @3 true;` — consolidated programs broadcast for
//!   several ids.
//! * `>` / `>=` / `!=` are desugared to the core `<` / `<=` / `==` forms of
//!   Figure 1 by operand swapping and negation.
//! * `&&` binds tighter than `||`; `!` tighter than both.

use crate::ast::{BoolExpr, BoolOp, CmpOp, IntExpr, IntOp, ProgId, Program, Stmt};
use crate::intern::Interner;
use std::fmt;

/// A parse error with 1-based line/column location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(i64),
    KwProgram,
    KwSkip,
    KwIf,
    KwElse,
    KwWhile,
    KwNotify,
    KwTrue,
    KwFalse,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    At,
    Assign, // :=
    Plus,
    Minus,
    Star,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    Not,
    AndAnd,
    OrOr,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tok::Ident(s) => return write!(f, "identifier `{s}`"),
            Tok::Num(n) => return write!(f, "number `{n}`"),
            Tok::KwProgram => "`program`",
            Tok::KwSkip => "`skip`",
            Tok::KwIf => "`if`",
            Tok::KwElse => "`else`",
            Tok::KwWhile => "`while`",
            Tok::KwNotify => "`notify`",
            Tok::KwTrue => "`true`",
            Tok::KwFalse => "`false`",
            Tok::LParen => "`(`",
            Tok::RParen => "`)`",
            Tok::LBrace => "`{`",
            Tok::RBrace => "`}`",
            Tok::Comma => "`,`",
            Tok::Semi => "`;`",
            Tok::At => "`@`",
            Tok::Assign => "`:=`",
            Tok::Plus => "`+`",
            Tok::Minus => "`-`",
            Tok::Star => "`*`",
            Tok::Lt => "`<`",
            Tok::Le => "`<=`",
            Tok::Gt => "`>`",
            Tok::Ge => "`>=`",
            Tok::EqEq => "`==`",
            Tok::Ne => "`!=`",
            Tok::Not => "`!`",
            Tok::AndAnd => "`&&`",
            Tok::OrOr => "`||`",
            Tok::Eof => "end of input",
        };
        f.write_str(s)
    }
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: usize,
    col: usize,
}

#[derive(Debug, Clone, Copy)]
struct Loc {
    line: usize,
    col: usize,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Lexer<'s> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn tokenize(mut self) -> Result<Vec<(Tok, Loc)>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let loc = Loc {
                line: self.line,
                col: self.col,
            };
            let Some(c) = self.peek() else {
                out.push((Tok::Eof, loc));
                return Ok(out);
            };
            let tok = match c {
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b'{' => {
                    self.bump();
                    Tok::LBrace
                }
                b'}' => {
                    self.bump();
                    Tok::RBrace
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b';' => {
                    self.bump();
                    Tok::Semi
                }
                b'@' => {
                    self.bump();
                    Tok::At
                }
                b'+' => {
                    self.bump();
                    Tok::Plus
                }
                b'-' => {
                    self.bump();
                    Tok::Minus
                }
                b'*' => {
                    self.bump();
                    Tok::Star
                }
                b':' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Assign
                    } else {
                        return Err(self.err("expected `:=`"));
                    }
                }
                b'<' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Le
                    } else {
                        Tok::Lt
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Ge
                    } else {
                        Tok::Gt
                    }
                }
                b'=' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::EqEq
                    } else {
                        return Err(self.err("expected `==` (assignment is `:=`)"));
                    }
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Ne
                    } else {
                        Tok::Not
                    }
                }
                b'&' => {
                    self.bump();
                    if self.peek() == Some(b'&') {
                        self.bump();
                        Tok::AndAnd
                    } else {
                        return Err(self.err("expected `&&`"));
                    }
                }
                b'|' => {
                    self.bump();
                    if self.peek() == Some(b'|') {
                        self.bump();
                        Tok::OrOr
                    } else {
                        return Err(self.err("expected `||`"));
                    }
                }
                b'0'..=b'9' => {
                    let mut n: i64 = 0;
                    while let Some(d @ b'0'..=b'9') = self.peek() {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(i64::from(d - b'0')))
                            .ok_or_else(|| self.err("integer literal overflows i64"))?;
                        self.bump();
                    }
                    Tok::Num(n)
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == b'_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let word = std::str::from_utf8(&self.src[start..self.pos])
                        .expect("ASCII slice is valid UTF-8");
                    match word {
                        "program" => Tok::KwProgram,
                        "skip" => Tok::KwSkip,
                        "if" => Tok::KwIf,
                        "else" => Tok::KwElse,
                        "while" => Tok::KwWhile,
                        "notify" => Tok::KwNotify,
                        "true" => Tok::KwTrue,
                        "false" => Tok::KwFalse,
                        _ => Tok::Ident(word.to_owned()),
                    }
                }
                other => {
                    return Err(self.err(format!("unexpected character `{}`", other as char)))
                }
            };
            out.push((tok, loc));
        }
    }
}

struct Parser<'a> {
    toks: Vec<(Tok, Loc)>,
    pos: usize,
    interner: &'a mut Interner,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn loc(&self) -> Loc {
        self.toks[self.pos].1
    }

    fn err_here(&self, message: impl Into<String>) -> ParseError {
        let loc = self.loc();
        ParseError {
            message: message.into(),
            line: loc.line,
            col: loc.col,
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.err_here(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err_here(format!("expected identifier, found {other}"))),
        }
    }

    fn number(&mut self) -> Result<i64, ParseError> {
        match self.bump() {
            Tok::Num(n) => Ok(n),
            other => Err(self.err_here(format!("expected number, found {other}"))),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        self.eat(&Tok::KwProgram)?;
        let _name = self.ident()?;
        let id = if *self.peek() == Tok::At {
            self.bump();
            ProgId(u32::try_from(self.number()?).map_err(|_| self.err_here("program id out of range"))?)
        } else {
            ProgId(0)
        };
        self.eat(&Tok::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                let p = self.ident()?;
                params.push(self.interner.intern(&p));
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat(&Tok::RParen)?;
        let body = self.block(id)?;
        Ok(Program::new(id, params, body))
    }

    fn block(&mut self, ctx: ProgId) -> Result<Stmt, ParseError> {
        self.eat(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            stmts.push(self.stmt(ctx)?);
        }
        self.eat(&Tok::RBrace)?;
        Ok(Stmt::seq_all(stmts))
    }

    fn stmt(&mut self, ctx: ProgId) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::KwSkip => {
                self.bump();
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Skip)
            }
            Tok::KwIf => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let cond = self.bool_expr()?;
                self.eat(&Tok::RParen)?;
                let then_s = self.block(ctx)?;
                let else_s = if *self.peek() == Tok::KwElse {
                    self.bump();
                    self.block(ctx)?
                } else {
                    Stmt::Skip
                };
                Ok(Stmt::ite(cond, then_s, else_s))
            }
            Tok::KwWhile => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let cond = self.bool_expr()?;
                self.eat(&Tok::RParen)?;
                let body = self.block(ctx)?;
                Ok(Stmt::while_do(cond, body))
            }
            Tok::KwNotify => {
                self.bump();
                let id = if *self.peek() == Tok::At {
                    self.bump();
                    ProgId(
                        u32::try_from(self.number()?)
                            .map_err(|_| self.err_here("notify id out of range"))?,
                    )
                } else {
                    ctx
                };
                let b = match self.bump() {
                    Tok::KwTrue => true,
                    Tok::KwFalse => false,
                    other => {
                        return Err(self.err_here(format!(
                            "expected `true` or `false` after `notify`, found {other}"
                        )))
                    }
                };
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Notify(id, b))
            }
            Tok::Ident(name) => {
                self.bump();
                self.eat(&Tok::Assign)?;
                let e = self.int_expr()?;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Assign(self.interner.intern(&name), e))
            }
            other => Err(self.err_here(format!("expected statement, found {other}"))),
        }
    }

    fn int_expr(&mut self) -> Result<IntExpr, ParseError> {
        let mut lhs = self.int_term()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => IntOp::Add,
                Tok::Minus => IntOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.int_term()?;
            lhs = IntExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn int_term(&mut self) -> Result<IntExpr, ParseError> {
        let mut lhs = self.int_atom()?;
        while *self.peek() == Tok::Star {
            self.bump();
            let rhs = self.int_atom()?;
            lhs = IntExpr::Bin(IntOp::Mul, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn int_atom(&mut self) -> Result<IntExpr, ParseError> {
        match self.peek().clone() {
            Tok::Num(n) => {
                self.bump();
                Ok(IntExpr::Const(n))
            }
            Tok::Minus => {
                self.bump();
                let n = self.number()?;
                Ok(IntExpr::Const(n.wrapping_neg()))
            }
            Tok::LParen => {
                self.bump();
                let e = self.int_expr()?;
                self.eat(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.int_expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat(&Tok::RParen)?;
                    Ok(IntExpr::Call(self.interner.intern(&name), args))
                } else {
                    Ok(IntExpr::Var(self.interner.intern(&name)))
                }
            }
            other => Err(self.err_here(format!("expected integer expression, found {other}"))),
        }
    }

    fn bool_expr(&mut self) -> Result<BoolExpr, ParseError> {
        let mut lhs = self.bool_and()?;
        while *self.peek() == Tok::OrOr {
            self.bump();
            let rhs = self.bool_and()?;
            lhs = BoolExpr::Bin(BoolOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bool_and(&mut self) -> Result<BoolExpr, ParseError> {
        let mut lhs = self.bool_unary()?;
        while *self.peek() == Tok::AndAnd {
            self.bump();
            let rhs = self.bool_unary()?;
            lhs = BoolExpr::Bin(BoolOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bool_unary(&mut self) -> Result<BoolExpr, ParseError> {
        if *self.peek() == Tok::Not {
            self.bump();
            return Ok(BoolExpr::not(self.bool_unary()?));
        }
        self.bool_atom()
    }

    /// Parses `true`, `false`, a comparison, or a parenthesized boolean
    /// expression. `(` is ambiguous between grouping of integer and boolean
    /// expressions, so we backtrack on the token index.
    fn bool_atom(&mut self) -> Result<BoolExpr, ParseError> {
        match self.peek() {
            Tok::KwTrue => {
                self.bump();
                return Ok(BoolExpr::Const(true));
            }
            Tok::KwFalse => {
                self.bump();
                return Ok(BoolExpr::Const(false));
            }
            _ => {}
        }
        let save = self.pos;
        // Try a comparison first: `IE ▷ IE`.
        if let Ok(lhs) = self.int_expr() {
            let tok = self.peek().clone();
            let cmp = match tok {
                Tok::Lt => Some((CmpOp::Lt, false, false)),
                Tok::Le => Some((CmpOp::Le, false, false)),
                Tok::Gt => Some((CmpOp::Lt, true, false)),
                Tok::Ge => Some((CmpOp::Le, true, false)),
                Tok::EqEq => Some((CmpOp::Eq, false, false)),
                Tok::Ne => Some((CmpOp::Eq, false, true)),
                _ => None,
            };
            if let Some((op, swap, negate)) = cmp {
                self.bump();
                let rhs = self.int_expr()?;
                let (a, b) = if swap { (rhs, lhs) } else { (lhs, rhs) };
                let c = BoolExpr::Cmp(op, a, b);
                return Ok(if negate { BoolExpr::not(c) } else { c });
            }
        }
        // Backtrack: parenthesized boolean expression.
        self.pos = save;
        if *self.peek() == Tok::LParen {
            self.bump();
            let e = self.bool_expr()?;
            self.eat(&Tok::RParen)?;
            return Ok(e);
        }
        Err(self.err_here(format!(
            "expected boolean expression, found {}",
            self.peek()
        )))
    }
}

/// Parses a single `program … { … }` definition.
///
/// # Errors
///
/// Returns a [`ParseError`] with location information on malformed input.
pub fn parse_program(src: &str, interner: &mut Interner) -> Result<Program, ParseError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser {
        toks,
        pos: 0,
        interner,
    };
    let prog = p.program()?;
    p.eat(&Tok::Eof)?;
    Ok(prog)
}

/// Parses a source file containing any number of `program` definitions.
///
/// # Errors
///
/// Returns a [`ParseError`] with location information on malformed input.
pub fn parse_programs(src: &str, interner: &mut Interner) -> Result<Vec<Program>, ParseError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser {
        toks,
        pos: 0,
        interner,
    };
    let mut out = Vec::new();
    while *p.peek() != Tok::Eof {
        out.push(p.program()?);
    }
    Ok(out)
}

/// Parses a standalone boolean expression (used by tests and the
/// consolidation REPL-style examples).
///
/// # Errors
///
/// Returns a [`ParseError`] with location information on malformed input.
pub fn parse_bool_expr(src: &str, interner: &mut Interner) -> Result<BoolExpr, ParseError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser {
        toks,
        pos: 0,
        interner,
    };
    let e = p.bool_expr()?;
    p.eat(&Tok::Eof)?;
    Ok(e)
}

/// Parses a standalone integer expression.
///
/// # Errors
///
/// Returns a [`ParseError`] with location information on malformed input.
pub fn parse_int_expr(src: &str, interner: &mut Interner) -> Result<IntExpr, ParseError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser {
        toks,
        pos: 0,
        interner,
    };
    let e = p.int_expr()?;
    p.eat(&Tok::Eof)?;
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BoolExpr, CmpOp, IntExpr, ProgId, Stmt};

    #[test]
    fn parses_paper_example_shape() {
        let mut i = Interner::new();
        let p = parse_program(
            "program f2 @2 (price, airline) {
                 // filter cheap united flights
                 if (price >= 200) { notify false; }
                 else {
                     if (toLower(airline) == 42) { notify true; } else { notify false; }
                 }
             }",
            &mut i,
        )
        .unwrap();
        assert_eq!(p.id, ProgId(2));
        assert_eq!(p.params.len(), 2);
        // `price >= 200` desugars to `200 <= price`.
        let Stmt::If(cond, ..) = &p.body else {
            panic!("expected if, got {:?}", p.body)
        };
        assert_eq!(
            *cond,
            BoolExpr::Cmp(
                CmpOp::Le,
                IntExpr::Const(200),
                IntExpr::Var(i.get("price").unwrap())
            )
        );
    }

    #[test]
    fn notify_defaults_to_program_id() {
        let mut i = Interner::new();
        let p = parse_program("program g @5 () { notify true; }", &mut i).unwrap();
        assert_eq!(p.body, Stmt::Notify(ProgId(5), true));
    }

    #[test]
    fn notify_with_explicit_id() {
        let mut i = Interner::new();
        let p = parse_program("program g @5 () { notify @7 false; }", &mut i).unwrap();
        assert_eq!(p.body, Stmt::Notify(ProgId(7), false));
    }

    #[test]
    fn precedence_mul_over_add() {
        let mut i = Interner::new();
        let e = parse_int_expr("1 + 2 * 3", &mut i).unwrap();
        assert_eq!(
            e,
            IntExpr::add(
                IntExpr::Const(1),
                IntExpr::mul(IntExpr::Const(2), IntExpr::Const(3))
            )
        );
    }

    #[test]
    fn precedence_and_over_or() {
        let mut i = Interner::new();
        let e = parse_bool_expr("x < 1 || y < 2 && z < 3", &mut i).unwrap();
        let BoolExpr::Bin(crate::ast::BoolOp::Or, _, rhs) = e else {
            panic!("expected top-level ||")
        };
        assert!(matches!(*rhs, BoolExpr::Bin(crate::ast::BoolOp::And, ..)));
    }

    #[test]
    fn parenthesized_bool_vs_int() {
        let mut i = Interner::new();
        let e1 = parse_bool_expr("(x + 1) < 2", &mut i).unwrap();
        assert!(matches!(e1, BoolExpr::Cmp(CmpOp::Lt, ..)));
        let e2 = parse_bool_expr("(x < 1) && true", &mut i).unwrap();
        assert!(matches!(e2, BoolExpr::Bin(..)));
        let e3 = parse_bool_expr("!(x == y)", &mut i).unwrap();
        assert!(matches!(e3, BoolExpr::Not(_)));
    }

    #[test]
    fn ne_desugars_to_negated_eq() {
        let mut i = Interner::new();
        let e = parse_bool_expr("x != 3", &mut i).unwrap();
        let BoolExpr::Not(inner) = e else { panic!() };
        assert!(matches!(*inner, BoolExpr::Cmp(CmpOp::Eq, ..)));
    }

    #[test]
    fn gt_swaps_operands() {
        let mut i = Interner::new();
        let e = parse_bool_expr("x > 3", &mut i).unwrap();
        assert_eq!(
            e,
            BoolExpr::Cmp(
                CmpOp::Lt,
                IntExpr::Const(3),
                IntExpr::Var(i.get("x").unwrap())
            )
        );
    }

    #[test]
    fn calls_and_nested_args() {
        let mut i = Interner::new();
        let e = parse_int_expr("f(g(x), y + 1, 3)", &mut i).unwrap();
        let IntExpr::Call(f, args) = e else { panic!() };
        assert_eq!(i.resolve(f), "f");
        assert_eq!(args.len(), 3);
        assert!(matches!(args[0], IntExpr::Call(..)));
    }

    #[test]
    fn multiple_programs_in_one_source() {
        let mut i = Interner::new();
        let ps = parse_programs(
            "program a @0 (x) { notify true; } program b @1 (x) { notify false; }",
            &mut i,
        )
        .unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].id, ProgId(0));
        assert_eq!(ps[1].id, ProgId(1));
    }

    #[test]
    fn error_reports_location() {
        let mut i = Interner::new();
        let err = parse_program("program a @0 (x) {\n  y = 3;\n}", &mut i).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains(":="));
    }

    #[test]
    fn negative_literals() {
        let mut i = Interner::new();
        let e = parse_int_expr("-5 + x", &mut i).unwrap();
        assert!(matches!(e, IntExpr::Bin(IntOp::Add, ..)));
        let p = parse_bool_expr("x < -1", &mut i).unwrap();
        assert_eq!(
            p,
            BoolExpr::Cmp(
                CmpOp::Lt,
                IntExpr::Var(i.get("x").unwrap()),
                IntExpr::Const(-1)
            )
        );
    }

    #[test]
    fn while_and_skip_statements() {
        let mut i = Interner::new();
        let p = parse_program(
            "program w @0 (n) { i := n; while (i > 0) { i := i - 1; skip; } }",
            &mut i,
        )
        .unwrap();
        let (_, tl) = p.body.split_head();
        assert!(matches!(tl, Stmt::While(..)));
    }

    #[test]
    fn comments_are_skipped() {
        let mut i = Interner::new();
        let p = parse_program(
            "// header comment\nprogram c @0 () { // inline\n skip; }",
            &mut i,
        )
        .unwrap();
        assert_eq!(p.body, Stmt::Skip);
    }
}
