//! Pretty-printing of programs, statements, and expressions.
//!
//! Output round-trips through [`crate::parse`]: for any well-formed program
//! `p`, `parse(print(p)) == p` (up to `skip` elision in sequences). The
//! property tests in the crate rely on this.

use crate::ast::{BoolExpr, IntExpr, IntOp, ProgId, Program, Stmt};
use crate::intern::Interner;
use std::fmt::Write as _;

/// Pretty-prints an integer expression.
pub fn int_expr(e: &IntExpr, interner: &Interner) -> String {
    let mut s = String::new();
    write_int(&mut s, e, interner, 0);
    s
}

/// Pretty-prints a boolean expression.
pub fn bool_expr(e: &BoolExpr, interner: &Interner) -> String {
    let mut s = String::new();
    write_bool(&mut s, e, interner, 0);
    s
}

/// Pretty-prints a statement at the given indentation level.
pub fn stmt(s: &Stmt, interner: &Interner) -> String {
    let mut out = String::new();
    write_stmt(&mut out, s, interner, 0, None);
    out
}

/// Pretty-prints a whole program as parseable source text.
pub fn program(p: &Program, interner: &Interner) -> String {
    let mut out = String::new();
    let params: Vec<&str> = p.params.iter().map(|&s| interner.resolve(s)).collect();
    let _ = writeln!(out, "program p{} @{} ({}) {{", p.id.0, p.id.0, params.join(", "));
    write_stmt(&mut out, &p.body, interner, 1, Some(p.id));
    out.push_str("}\n");
    out
}

// Integer precedence: atoms 2, `*` 1, `+ -` 0.
fn int_prec(e: &IntExpr) -> u8 {
    match e {
        IntExpr::Const(_) | IntExpr::Var(_) | IntExpr::Call(..) => 2,
        IntExpr::Bin(IntOp::Mul, ..) => 1,
        IntExpr::Bin(..) => 0,
    }
}

fn write_int(out: &mut String, e: &IntExpr, interner: &Interner, min_prec: u8) {
    let prec = int_prec(e);
    let paren = prec < min_prec;
    if paren {
        out.push('(');
    }
    match e {
        IntExpr::Const(c) => {
            let _ = write!(out, "{c}");
        }
        IntExpr::Var(v) => out.push_str(interner.resolve(*v)),
        IntExpr::Call(f, args) => {
            out.push_str(interner.resolve(*f));
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_int(out, a, interner, 0);
            }
            out.push(')');
        }
        IntExpr::Bin(op, a, b) => {
            write_int(out, a, interner, prec);
            let _ = write!(out, " {} ", op.as_str());
            // Left-associative: the right operand needs strictly higher
            // precedence to avoid re-association on reparse.
            write_int(out, b, interner, prec + 1);
        }
    }
    if paren {
        out.push(')');
    }
}

// Boolean precedence: literals 4, comparisons 3, `!` 2, `&&` 1, `||` 0.
// Comparisons after `!` are parenthesized (`!(x == 0)`) for readability even
// though the grammar would re-parse the bare form identically.
fn bool_prec(e: &BoolExpr) -> u8 {
    match e {
        BoolExpr::Const(_) => 4,
        BoolExpr::Cmp(..) => 3,
        BoolExpr::Not(_) => 2,
        BoolExpr::Bin(crate::ast::BoolOp::And, ..) => 1,
        BoolExpr::Bin(crate::ast::BoolOp::Or, ..) => 0,
    }
}

fn write_bool(out: &mut String, e: &BoolExpr, interner: &Interner, min_prec: u8) {
    let prec = bool_prec(e);
    let paren = prec < min_prec;
    if paren {
        out.push('(');
    }
    match e {
        BoolExpr::Const(b) => out.push_str(if *b { "true" } else { "false" }),
        BoolExpr::Cmp(op, a, b) => {
            write_int(out, a, interner, 0);
            let _ = write!(out, " {} ", op.as_str());
            write_int(out, b, interner, 0);
        }
        BoolExpr::Not(a) => {
            out.push('!');
            // `!` applies to a literal or parenthesized expression.
            write_bool(out, a, interner, 4);
        }
        BoolExpr::Bin(op, a, b) => {
            write_bool(out, a, interner, prec);
            let _ = write!(out, " {} ", op.as_str());
            write_bool(out, b, interner, prec + 1);
        }
    }
    if paren {
        out.push(')');
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn write_stmt(out: &mut String, s: &Stmt, interner: &Interner, level: usize, ctx: Option<ProgId>) {
    match s {
        Stmt::Skip => {
            indent(out, level);
            out.push_str("skip;\n");
        }
        Stmt::Assign(x, e) => {
            indent(out, level);
            out.push_str(interner.resolve(*x));
            out.push_str(" := ");
            write_int(out, e, interner, 0);
            out.push_str(";\n");
        }
        Stmt::Seq(a, b) => {
            write_stmt(out, a, interner, level, ctx);
            write_stmt(out, b, interner, level, ctx);
        }
        Stmt::If(c, t, e) => {
            indent(out, level);
            out.push_str("if (");
            write_bool(out, c, interner, 0);
            out.push_str(") {\n");
            write_stmt(out, t, interner, level + 1, ctx);
            indent(out, level);
            if e.is_skip() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                write_stmt(out, e, interner, level + 1, ctx);
                indent(out, level);
                out.push_str("}\n");
            }
        }
        Stmt::While(c, b) => {
            indent(out, level);
            out.push_str("while (");
            write_bool(out, c, interner, 0);
            out.push_str(") {\n");
            write_stmt(out, b, interner, level + 1, ctx);
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::Notify(id, b) => {
            indent(out, level);
            if ctx == Some(*id) {
                let _ = writeln!(out, "notify {};", if *b { "true" } else { "false" });
            } else {
                let _ = writeln!(out, "notify @{} {};", id.0, if *b { "true" } else { "false" });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_bool_expr, parse_int_expr, parse_program};

    #[test]
    fn int_round_trip_preserves_associativity() {
        let mut i = Interner::new();
        let e = parse_int_expr("(1 - 2) - 3 * (4 + 5)", &mut i).unwrap();
        let printed = int_expr(&e, &i);
        let reparsed = parse_int_expr(&printed, &mut i).unwrap();
        assert_eq!(e, reparsed, "printed as {printed}");
    }

    #[test]
    fn bool_round_trip() {
        let mut i = Interner::new();
        for src in [
            "x < 1 && (y < 2 || z < 3)",
            "!(a == b) || c <= d",
            "!(!(x < 1))",
            "true && false",
        ] {
            let e = parse_bool_expr(src, &mut i).unwrap();
            let printed = bool_expr(&e, &i);
            let reparsed = parse_bool_expr(&printed, &mut i).unwrap();
            assert_eq!(e, reparsed, "source `{src}` printed as `{printed}`");
        }
    }

    #[test]
    fn program_round_trip() {
        let mut i = Interner::new();
        let src = "program f @3 (price) {
            x := price * 2;
            if (x >= 100) { notify false; } else { notify true; }
            while (x > 0) { x := x - 1; }
        }";
        let p = parse_program(src, &mut i).unwrap();
        let printed = program(&p, &i);
        let reparsed = parse_program(&printed, &mut i).unwrap();
        assert_eq!(p.body, reparsed.body);
        assert_eq!(p.id, reparsed.id);
    }

    #[test]
    fn foreign_notify_prints_id() {
        let mut i = Interner::new();
        let p = parse_program("program f @3 () { notify @4 true; }", &mut i).unwrap();
        let printed = program(&p, &i);
        assert!(printed.contains("notify @4 true;"), "{printed}");
    }
}
